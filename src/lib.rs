//! # antipode-repro
//!
//! Workspace façade for the Antipode (SOSP 2023) reproduction. This crate
//! re-exports the member crates so the examples and integration tests have a
//! single import root; the substance lives in:
//!
//! - [`antipode`] — the library itself (Lineage / Shim / Core APIs);
//! - [`antipode_lineage`] — lineages, write identifiers, baggage, and the
//!   formal XCY model;
//! - [`antipode_sim`] — the deterministic virtual-time simulator;
//! - [`antipode_store`] — the eight simulated datastores and their shims;
//! - [`antipode_runtime`] — the microservice runtime and load drivers;
//! - [`antipode_app`] — the evaluation applications;
//! - [`antipode_trace`] — the Alibaba-like trace generator.
//!
//! See `README.md` for the quickstart, `DESIGN.md` for the system inventory
//! and `EXPERIMENTS.md` for paper-vs-measured results.

#![forbid(unsafe_code)]

pub use antipode;
pub use antipode_app;
pub use antipode_lineage;
pub use antipode_runtime;
pub use antipode_sim;
pub use antipode_store;
pub use antipode_trace;

//! The DeathStarBench-style social network (paper §7.1, Fig 8): compose-post
//! in the US, home-timeline fanout in a remote region.
//!
//! Usage: `cargo run --release --example social_network [eu|sg] [rate] [seconds]`
//! Defaults: eu 100 120.

use std::time::Duration;

use antipode_app::social::{run, SocialConfig};
use antipode_sim::net::regions::{EU, SG};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let remote = match args.get(1).map(String::as_str) {
        Some("sg") => SG,
        _ => EU,
    };
    let rate: f64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(100.0);
    let secs: u64 = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(120);

    println!(
        "Social network: US→{remote}, {rate} req/s for {secs}s (virtual time) — compose-post flow"
    );
    for antipode in [false, true] {
        let mut cfg = SocialConfig::new(remote, rate).with_duration(Duration::from_secs(secs));
        if antipode {
            cfg = cfg.with_antipode();
        }
        let r = run(&cfg);
        let lat = r.writer.latency().expect("requests completed");
        let win = r.consistency_window.summary().expect("windows recorded");
        println!(
            "{}: tput {:.1} rps | writer latency mean {:.2} ms p99 {:.2} ms | violations {:.2}% | window mean {:.1} ms{}",
            if antipode { "antipode" } else { "baseline" },
            r.writer.throughput(),
            lat.mean * 1e3,
            lat.p99 * 1e3,
            r.violations.percent(),
            win.mean * 1e3,
            if antipode {
                format!(" | max lineage {} B", r.max_lineage_bytes)
            } else {
                String::new()
            }
        );
    }
}

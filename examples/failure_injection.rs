//! Failure injection: what happens to Antipode when replication misbehaves.
//!
//! Two scenarios:
//!
//! 1. A replication stall hits the US replica of the post store just before
//!    a post is written. Without Antipode, every read during the stall is a
//!    violation. With Antipode, barriers simply wait the fault out (or time
//!    out with an actionable report), and no inconsistent read ever happens.
//! 2. A scheduled US↔EU network partition, declared up front on the
//!    simulation's [`FaultPlan`](antipode_sim::FaultPlan): the partition
//!    severs replication for a fixed window and heals on schedule, and the
//!    barrier-gated reader rides it out.
//!
//! Run with `cargo run --release --example failure_injection`.

use std::rc::Rc;
use std::time::Duration;

use antipode::{Antipode, BarrierError, Lineage, LineageId};
use antipode_sim::net::regions::{EU, US};
use antipode_sim::{FaultKind, Network, Sim, SimTime};
use antipode_store::shim::KvShim;
use antipode_store::MySql;
use bytes::Bytes;

fn main() {
    replication_stall();
    println!();
    scheduled_partition();
}

fn replication_stall() {
    println!("=== scenario 1: US replica stall, imperative fault toggles ===");
    let sim = Sim::new(3);
    let net = Rc::new(Network::global_triangle());
    let posts = MySql::new(&sim, net, "post-storage", &[EU, US]);
    let shim = KvShim::new(posts.store().clone());
    let mut ap = Antipode::new(sim.clone());
    ap.register(Rc::new(shim.clone()));

    // Fault: the US replica stalls for 90 seconds, starting at t=1s.
    let store = posts.store().clone();
    let sim2 = sim.clone();
    sim.spawn(async move {
        sim2.sleep(Duration::from_secs(1)).await;
        println!(
            "[fault]    t={} US replica stalls (e.g. network partition)",
            sim2.now()
        );
        store.pause_replication(US);
        sim2.sleep(Duration::from_secs(90)).await;
        store.resume_replication(US);
        println!("[fault]    t={} US replica recovers", sim2.now());
    });

    let sim3 = sim.clone();
    sim.block_on(async move {
        // A write lands just as the stall begins.
        sim3.sleep(Duration::from_secs(4)).await;
        let mut lineage = Lineage::new(LineageId(1));
        shim.write(EU, "post-1", Bytes::from_static(b"body"), &mut lineage)
            .await
            .expect("EU configured");
        println!("[writer]   t={} post written in the EU", sim3.now());
        sim3.sleep(Duration::from_secs(2)).await;

        // A naive reader in the US would now read 'not found':
        let naive = shim.read(US, "post-1").await.expect("US configured");
        println!(
            "[baseline] t={} naive US read: {}",
            sim3.now(),
            if naive.is_some() {
                "found"
            } else {
                "POST NOT FOUND (violation)"
            }
        );

        // An Antipode reader first tries a bounded barrier…
        match ap
            .barrier_with_timeout(&lineage, US, Duration::from_secs(10))
            .await
        {
            Ok(_) => println!("[antipode] barrier passed within 10s"),
            Err(BarrierError::Timeout { unmet }) => {
                println!(
                    "[antipode] t={} barrier timed out; {} dependency still unmet: {}",
                    sim3.now(),
                    unmet.len(),
                    unmet[0]
                );
                println!("[antipode] falling back to an unbounded barrier (ride out the fault)…");
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
        let report = ap.barrier(&lineage, US).await.expect("registered");
        println!(
            "[antipode] t={} barrier returned after blocking {:.1}s",
            sim3.now(),
            report.blocked.as_secs_f64()
        );
        let got = shim.read(US, "post-1").await.expect("US configured");
        assert!(got.is_some());
        println!(
            "[antipode] t={} read after barrier: found — no violation, ever",
            sim3.now()
        );
    });
}

/// Scenario 2: the whole fault is declared up front as a window on the
/// simulation's fault plan — a US↔EU partition from t=2s to t=60s. Every
/// layer (replication streams, RPC hops, queue deliveries) consults the same
/// plan, so nothing crosses the partition until it heals, deterministically.
fn scheduled_partition() {
    println!("=== scenario 2: scheduled US↔EU partition on the fault plan ===");
    let sim = Sim::new(4);
    let net = Rc::new(Network::global_triangle());
    let posts = MySql::new(&sim, net, "post-storage", &[EU, US]);
    let shim = KvShim::new(posts.store().clone());
    let mut ap = Antipode::new(sim.clone());
    ap.register(Rc::new(shim.clone()));

    sim.faults().schedule(
        SimTime::from_secs(2),
        SimTime::from_secs(60),
        FaultKind::Partition { a: US, b: EU },
    );
    println!("[plan]     US↔EU partition scheduled for t=2s..60s");

    let sim2 = sim.clone();
    sim.block_on(async move {
        // The write lands just after the partition begins: its replication
        // to the US is caught behind the partition.
        sim2.sleep(Duration::from_secs(3)).await;
        let mut lineage = Lineage::new(LineageId(2));
        shim.write(EU, "post-2", Bytes::from_static(b"body"), &mut lineage)
            .await
            .expect("EU configured");
        println!(
            "[writer]   t={} post written in the EU (partition active)",
            sim2.now()
        );

        let naive = shim.read(US, "post-2").await.expect("US configured");
        println!(
            "[baseline] t={} naive US read: {}",
            sim2.now(),
            if naive.is_some() {
                "found"
            } else {
                "POST NOT FOUND (violation)"
            }
        );

        // The barrier-gated reader blocks until the partition heals at
        // t=60s and replication catches up.
        let report = ap.barrier(&lineage, US).await.expect("registered");
        println!(
            "[antipode] t={} barrier returned after blocking {:.1}s (store wait: {:?})",
            sim2.now(),
            report.blocked.as_secs_f64(),
            report
                .waits
                .iter()
                .map(|w| format!("{}: {:.1}s", w.datastore, w.blocked.as_secs_f64()))
                .collect::<Vec<_>>(),
        );
        assert!(sim2.now() >= SimTime::from_secs(60), "partition waited out");
        let got = shim.read(US, "post-2").await.expect("US configured");
        assert!(got.is_some());
        println!(
            "[antipode] t={} read after barrier: found — the partition was ridden out",
            sim2.now()
        );
    });
}

//! Failure injection: what happens to Antipode when replication misbehaves.
//!
//! Scenario: a replication stall hits the US replica of the post store just
//! before a post is written. Without Antipode, every read during the stall
//! is a violation. With Antipode, barriers simply wait the fault out (or
//! time out with an actionable report), and no inconsistent read ever
//! happens.
//!
//! Run with `cargo run --release --example failure_injection`.

use std::rc::Rc;
use std::time::Duration;

use antipode::{Antipode, BarrierError, Lineage, LineageId};
use antipode_sim::net::regions::{EU, US};
use antipode_sim::{Network, Sim};
use antipode_store::shim::KvShim;
use antipode_store::MySql;
use bytes::Bytes;

fn main() {
    let sim = Sim::new(3);
    let net = Rc::new(Network::global_triangle());
    let posts = MySql::new(&sim, net, "post-storage", &[EU, US]);
    let shim = KvShim::new(posts.store().clone());
    let mut ap = Antipode::new(sim.clone());
    ap.register(Rc::new(shim.clone()));

    // Fault: the US replica stalls for 90 seconds, starting at t=1s.
    let store = posts.store().clone();
    let sim2 = sim.clone();
    sim.spawn(async move {
        sim2.sleep(Duration::from_secs(1)).await;
        println!(
            "[fault]    t={} US replica stalls (e.g. network partition)",
            sim2.now()
        );
        store.pause_replication(US);
        sim2.sleep(Duration::from_secs(90)).await;
        store.resume_replication(US);
        println!("[fault]    t={} US replica recovers", sim2.now());
    });

    let sim3 = sim.clone();
    sim.block_on(async move {
        // A write lands just as the stall begins.
        sim3.sleep(Duration::from_secs(4)).await;
        let mut lineage = Lineage::new(LineageId(1));
        shim.write(EU, "post-1", Bytes::from_static(b"body"), &mut lineage)
            .await
            .expect("EU configured");
        println!("[writer]   t={} post written in the EU", sim3.now());
        sim3.sleep(Duration::from_secs(2)).await;

        // A naive reader in the US would now read 'not found':
        let naive = shim.read(US, "post-1").await.expect("US configured");
        println!(
            "[baseline] t={} naive US read: {}",
            sim3.now(),
            if naive.is_some() {
                "found"
            } else {
                "POST NOT FOUND (violation)"
            }
        );

        // An Antipode reader first tries a bounded barrier…
        match ap
            .barrier_with_timeout(&lineage, US, Duration::from_secs(10))
            .await
        {
            Ok(_) => println!("[antipode] barrier passed within 10s"),
            Err(BarrierError::Timeout { unmet }) => {
                println!(
                    "[antipode] t={} barrier timed out; {} dependency still unmet: {}",
                    sim3.now(),
                    unmet.len(),
                    unmet[0]
                );
                println!("[antipode] falling back to an unbounded barrier (ride out the fault)…");
            }
            Err(e) => panic!("unexpected error: {e}"),
        }
        let report = ap.barrier(&lineage, US).await.expect("registered");
        println!(
            "[antipode] t={} barrier returned after blocking {:.1}s",
            sim3.now(),
            report.blocked.as_secs_f64()
        );
        let got = shim.read(US, "post-1").await.expect("US configured");
        assert!(got.is_some());
        println!(
            "[antipode] t={} read after barrier: found — no violation, ever",
            sim3.now()
        );
    });
}

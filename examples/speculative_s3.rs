//! The speculation plane, end to end on the Table-1 worst case (S3 post
//! storage with its heavy-tailed cross-region replication):
//!
//! 1. **Speculate → confirm.** A Reader's barrier gives up blocking after a
//!    500 ms budget and opens a speculation frontier. The handler runs
//!    immediately — its feed write parked in a `ConfinementBuffer` — and
//!    when S3's ≈ 15 s replication finally lands, the frontier confirms and
//!    the buffer commits atomically.
//! 2. **Speculate → violate → rollback → redeliver.** The reader-side S3
//!    replica crashes for 60 s. The next speculation's confirmation budget
//!    (20 s) expires first: the frontier resolves *violated*, the confined
//!    write is discarded (nothing ever reached the store), and the handler
//!    is redelivered behind an unbounded blocking barrier that rides out
//!    the crash via the recovery plane.
//!
//! Throughout, the `ConsistencyChecker` sees only *speculative* unsatisfied
//! checkpoints — zero observed XCY violations, the relaxed invariant the
//! speculation plane enforces.
//!
//! Run with `cargo run --release --example speculative_s3`.

use std::rc::Rc;
use std::time::Duration;

use antipode::{Antipode, ConsistencyChecker, Lineage, LineageId, SpeculationConfig};
use antipode_runtime::{SpecOutcome, SpeculationPolicy, Speculator};
use antipode_sim::net::regions::{EU, US};
use antipode_sim::{FaultKind, Network, Sim, SimTime};
use antipode_store::shim::KvShim;
use antipode_store::speculation::ConfinementBuffer;
use antipode_store::{Redis, S3};
use bytes::Bytes;

fn main() {
    let sim = Sim::new(7);
    let net = Rc::new(Network::global_triangle());
    // Writer-side S3 post storage (LogNormal replication, ≈ 15 s median)
    // and a reader-side Redis feed store the handler renders into.
    let post = S3::new(&sim, net.clone(), "post-storage-s3", &[EU, US]);
    let feed = Redis::new(&sim, net, "feed-redis", &[US]);
    let post_shim = KvShim::new(post.store().clone());
    let feed_shim = KvShim::new(feed.store().clone());
    let mut ap = Antipode::new(sim.clone());
    ap.register(Rc::new(post_shim.clone()));
    ap.register(Rc::new(feed_shim.clone()));
    let checker = ConsistencyChecker::new(ap.clone());

    // Per-endpoint policies: a patient Reader (60 s confirmation budget)
    // and an impatient one (20 s) that the crash will push into violation.
    let patient = Speculator::new(
        ap.clone(),
        SpeculationPolicy {
            barrier: SpeculationConfig {
                budget: Duration::from_millis(500),
                confirm_budget: Duration::from_secs(60),
            },
            ..SpeculationPolicy::default()
        },
    );
    let impatient = Speculator::new(
        ap.clone(),
        SpeculationPolicy {
            barrier: SpeculationConfig {
                budget: Duration::from_millis(500),
                confirm_budget: Duration::from_secs(20),
            },
            ..SpeculationPolicy::default()
        },
    );

    // The reader-side S3 replica crashes t=100s..160s — squarely on top of
    // the second request's confirmation window.
    sim.faults().schedule(
        SimTime::from_secs(100),
        SimTime::from_secs(160),
        FaultKind::ReplicaCrash {
            store: "post-storage-s3".into(),
            region: US,
        },
    );
    println!("[plan]      US replica of post-storage-s3 crashes t=100s..160s");

    let sim2 = sim.clone();
    sim.block_on(async move {
        let sim = sim2;

        // ---- Request 1: speculate → confirm → commit. ----
        let mut lineage = Lineage::new(LineageId(1));
        post_shim
            .write(EU, "post-1", Bytes::from_static(b"hello"), &mut lineage)
            .await
            .expect("EU healthy");
        println!("[writer]    t={} post-1 written in the EU", sim.now());
        let snapshot = lineage.clone();
        let t0 = sim.now();
        let out = {
            let feed_shim = feed_shim.clone();
            let checker = checker.clone();
            let sim3 = sim.clone();
            patient
                .run(&mut lineage, US, move |attempt| {
                    let feed_shim = feed_shim.clone();
                    let checker = checker.clone();
                    let lineage = snapshot.clone();
                    let sim = sim3.clone();
                    async move {
                        // Unmet dependencies here are *speculative*, not
                        // observed — the write below stays confined.
                        checker.checkpoint_speculative("reader:feed", &lineage, US);
                        println!(
                            "[handler]   t={} post-1 attempt {attempt}: rendered, feed write confined",
                            sim.now()
                        );
                        let mut buf = ConfinementBuffer::new();
                        buf.confine_write(&feed_shim, US, "feed-post-1", Bytes::from_static(b"1"));
                        ((), buf)
                    }
                })
                .await
                .expect("stores registered")
        };
        match &out {
            SpecOutcome::Confirmed { committed, .. } => println!(
                "[speculate] t={} post-1 frontier confirmed: {} confined write(s) committed \
                 ({:.1}s after the 0.5s-budget handler ran)",
                sim.now(),
                committed.len(),
                sim.now().since(t0).as_secs_f64()
            ),
            other => panic!("S3's 15s-median tail must out-wait the budget, got {other:?}"),
        }

        // ---- Request 2: speculate → violate → rollback → redeliver. ----
        sim.sleep_until(SimTime::from_secs(101)).await;
        let mut lineage = Lineage::new(LineageId(2));
        post_shim
            .write(EU, "post-2", Bytes::from_static(b"again"), &mut lineage)
            .await
            .expect("EU healthy");
        println!(
            "[writer]    t={} post-2 written in the EU (US replica down)",
            sim.now()
        );
        let snapshot = lineage.clone();
        let out = {
            let feed_shim = feed_shim.clone();
            let checker = checker.clone();
            let sim3 = sim.clone();
            let snapshot = snapshot.clone();
            impatient
                .run(&mut lineage, US, move |attempt| {
                    let feed_shim = feed_shim.clone();
                    let checker = checker.clone();
                    let lineage = snapshot.clone();
                    let sim = sim3.clone();
                    async move {
                        checker.checkpoint_speculative("reader:feed", &lineage, US);
                        let phase = if attempt == 0 {
                            "feed write confined"
                        } else {
                            "redelivery, deps landed"
                        };
                        println!("[handler]   t={} post-2 attempt {attempt}: {phase}", sim.now());
                        let mut buf = ConfinementBuffer::new();
                        buf.confine_write(&feed_shim, US, "feed-post-2", Bytes::from_static(b"2"));
                        ((), buf)
                    }
                })
                .await
                .expect("crash heals before the barrier retry policy gives up")
        };
        match &out {
            SpecOutcome::RolledBack {
                committed,
                discarded,
                ..
            } => println!(
                "[speculate] t={} post-2 violated: {} confined write(s) discarded (never visible), \
                 handler redelivered behind a blocking barrier, {} write(s) committed",
                sim.now(),
                discarded,
                committed.len()
            ),
            other => panic!("60s crash vs 20s confirmation budget must violate, got {other:?}"),
        }
        assert!(
            sim.now() >= SimTime::from_secs(160),
            "redelivery had to wait out the crash"
        );

        // ---- The relaxed invariant held. ----
        for key in ["feed-post-1", "feed-post-2"] {
            assert!(feed_shim.store().get_sync(US, key).is_some(), "{key} committed");
        }
        // The single-region feed store's WAL counts every put that ever hit
        // it: exactly one per request — the discarded attempt never landed.
        assert_eq!(
            feed_shim.store().wal_len(US),
            2,
            "the discarded confined write must not leak"
        );
        let dry = checker.checkpoint("reader:post-commit", &snapshot, US);
        assert!(dry.is_satisfied(), "post-commit dependencies are visible");
        assert_eq!(checker.observed_violations(), 0);
        let (p, i) = (patient.stats(), impatient.stats());
        println!(
            "[checker]   t={} observed XCY violations: {} ({} speculative evaluations ran ahead)",
            sim.now(),
            checker.observed_violations(),
            p.speculated + i.speculated
        );
        println!(
            "[stats]     patient: {} speculated / {} confirmed; impatient: {} violated / {} redelivered / {} write(s) rolled back",
            p.speculated, p.confirmed, i.violated, i.redelivered, i.rolled_back_writes
        );
    });
    sim.run();
}

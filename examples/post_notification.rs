//! The Post-Notification microbenchmark (paper §2.2/§7.1) end to end:
//! pick a post-storage and a notifier, measure the inconsistency rate with
//! and without Antipode.
//!
//! Usage: `cargo run --release --example post_notification [post_store] [notifier] [requests]`
//! where `post_store` ∈ {mysql, dynamodb, redis, s3} and
//! `notifier` ∈ {sns, amq, dynamodb}. Defaults: mysql sns 500.

use antipode_app::post_notification::{run, NotifierKind, PostNotifConfig, PostStoreKind};

fn parse_store(s: &str) -> PostStoreKind {
    match s.to_ascii_lowercase().as_str() {
        "mysql" => PostStoreKind::MySql,
        "dynamodb" | "ddb" => PostStoreKind::DynamoDb,
        "redis" => PostStoreKind::Redis,
        "s3" => PostStoreKind::S3,
        other => {
            eprintln!("unknown post store {other:?}; using mysql");
            PostStoreKind::MySql
        }
    }
}

fn parse_notifier(s: &str) -> NotifierKind {
    match s.to_ascii_lowercase().as_str() {
        "sns" => NotifierKind::Sns,
        "amq" => NotifierKind::Amq,
        "dynamodb" | "ddb" => NotifierKind::DynamoDb,
        other => {
            eprintln!("unknown notifier {other:?}; using sns");
            NotifierKind::Sns
        }
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let post = args
        .get(1)
        .map(|s| parse_store(s))
        .unwrap_or(PostStoreKind::MySql);
    let notif = args
        .get(2)
        .map(|s| parse_notifier(s))
        .unwrap_or(NotifierKind::Sns);
    let requests: usize = args.get(3).and_then(|s| s.parse().ok()).unwrap_or(500);

    println!(
        "Post-Notification: post-storage={}, notifier={}, {requests} requests, EU writer → US reader",
        post.name(),
        notif.name()
    );

    let base = run(&PostNotifConfig::new(post, notif).with_requests(requests));
    println!(
        "baseline: {:.1}% inconsistencies ({} of {} reads returned 'post not found')",
        base.violations.percent(),
        base.violations.hits(),
        base.violations.total()
    );
    if let Some(w) = base.consistency_window.summary() {
        println!(
            "baseline consistency window: mean {:.3}s p95 {:.3}s (reads proceed immediately)",
            w.mean, w.p95
        );
    }

    let anti = run(&PostNotifConfig::new(post, notif)
        .with_requests(requests)
        .with_antipode());
    println!(
        "antipode: {:.1}% inconsistencies (barrier after the notification event)",
        anti.violations.percent()
    );
    if let Some(w) = anti.consistency_window.summary() {
        println!(
            "antipode consistency window: mean {:.3}s p95 {:.3}s (time-to-consistency)",
            w.mean, w.p95
        );
    }
    if let Some(b) = anti.barrier_blocked.summary() {
        println!("barrier blocked: mean {:.3}s max {:.3}s", b.mean, b.max);
    }
    if let Some(l) = anti.lineage_bytes.summary() {
        println!("lineage metadata: mean {:.0} B, max {:.0} B", l.mean, l.max);
    }
}

//! Region failover, end to end through the recovery plane:
//!
//! 1. An EU↔US partition opens, then a post is written in the EU — its
//!    replication to the US is suppressed at delivery time and queued as a
//!    **hinted handoff** at the origin.
//! 2. The EU replica **crashes** mid-partition: its memtable (and the queued
//!    hint) are lost. At the crash-window edge the replica restarts and
//!    **WAL replay** restores its data — but nobody holds a hint for the US
//!    anymore.
//! 3. A second post written after the restart queues a fresh hint, which the
//!    partition heal **flushes**; the first post's lost hint is repaired by
//!    the periodic **anti-entropy** sweep diffing replica version maps.
//! 4. A US reader runs a **budgeted barrier** the whole time: it degrades
//!    (serving a partial response with the unmet dependencies listed),
//!    re-arms, and turns complete the moment repair catches up.
//!
//! Run with `cargo run --release --example region_failover`.

use std::rc::Rc;
use std::time::Duration;

use antipode::{Antipode, BarrierOutcome, Lineage, LineageId};
use antipode_sim::dist::Dist;
use antipode_sim::net::regions::{EU, SG, US};
use antipode_sim::{FaultKind, Network, Sim, SimTime};
use antipode_store::replica::{KvProfile, KvStore};
use antipode_store::shim::KvShim;
use antipode_store::RepairConfig;
use bytes::Bytes;

fn main() {
    let sim = Sim::new(11);
    let net = Rc::new(Network::global_triangle());
    let posts = KvStore::new(
        &sim,
        net,
        "post-storage",
        &[EU, US, SG],
        KvProfile {
            local_write: Dist::constant_ms(1.0),
            local_read: Dist::constant_ms(0.5),
            replication: Dist::constant_ms(100.0),
            rtt_hops: 1.0,
            retry_interval: Dist::constant_ms(200.0),
        },
    );
    // WAL + hinted handoff are on by default; anti-entropy is the opt-in
    // piece of the recovery plane.
    posts.enable_anti_entropy(RepairConfig {
        period: Duration::from_secs(2),
        horizon: None,
    });
    let shim = KvShim::new(posts.clone());
    let mut ap = Antipode::new(sim.clone());
    ap.register(Rc::new(shim.clone()));

    sim.faults().schedule(
        SimTime::from_secs(1),
        SimTime::from_secs(20),
        FaultKind::Partition { a: EU, b: US },
    );
    sim.faults().schedule(
        SimTime::from_secs(5),
        SimTime::from_secs(12),
        FaultKind::ReplicaCrash {
            store: "post-storage".into(),
            region: EU,
        },
    );
    println!("[plan]     EU↔US partition t=1s..20s; EU replica crash t=5s..12s");

    // Narrator: observe the recovery plane at the fault edges.
    let observer = posts.clone();
    let sim2 = sim.clone();
    sim.spawn(async move {
        sim2.sleep_until(SimTime::from_millis(4_900)).await;
        println!(
            "[recovery] t={} pre-crash: {} hint(s) queued for the partitioned US replica",
            sim2.now(),
            observer.pending_hints()
        );
        sim2.sleep_until(SimTime::from_millis(5_100)).await;
        println!(
            "[fault]    t={} EU replica crashed: memtable wiped, {} hint(s) survive (origin lost), WAL holds {} record(s)",
            sim2.now(),
            observer.pending_hints(),
            observer.wal_len(EU)
        );
        sim2.sleep_until(SimTime::from_millis(12_100)).await;
        println!(
            "[recovery] t={} EU replica restarted: WAL replay restored {} record(s)",
            sim2.now(),
            observer.wal_len(EU)
        );
    });

    let sim3 = sim.clone();
    let store = posts.clone();
    sim.block_on(async move {
        let sim = sim3;
        let mut lineage = Lineage::new(LineageId(1));

        // Post 1 lands behind the partition: its US send becomes a hint —
        // which the t=5s crash will destroy.
        sim.sleep_until(SimTime::from_secs(2)).await;
        shim.write(EU, "post-1", Bytes::from_static(b"hello"), &mut lineage)
            .await
            .expect("EU healthy at t=2s");
        println!("[writer]   t={} post-1 written in the EU (partition active)", sim.now());

        // Post 2 lands after the WAL restart, still mid-partition: a fresh
        // hint, flushed when the partition heals at t=20s.
        sim.sleep_until(SimTime::from_secs(13)).await;
        shim.write(EU, "post-2", Bytes::from_static(b"again"), &mut lineage)
            .await
            .expect("EU restarted at t=12s");
        println!("[writer]   t={} post-2 written in the EU (after WAL restart)", sim.now());

        // The US reader: a budgeted barrier that degrades instead of
        // blocking the response, then re-arms until repair catches up.
        let budget = Duration::from_secs(3);
        let mut outcome = ap
            .barrier_budget(&lineage, US, budget)
            .await
            .expect("store registered");
        while let BarrierOutcome::Degraded(d) = outcome {
            println!(
                "[antipode] t={} barrier degraded: {} unmet ({}) — serving partial response, re-arming",
                sim.now(),
                d.unmet.len(),
                d.unmet
                    .iter()
                    .map(|w| w.to_string())
                    .collect::<Vec<_>>()
                    .join(", ")
            );
            outcome = ap
                .rearm(&d, US, Some(Duration::from_secs(5)))
                .await
                .expect("re-arm is always safe");
        }
        let report = outcome.report();
        println!(
            "[antipode] t={} barrier complete: blocked {:.1}s total across {} store wait(s)",
            sim.now(),
            report.blocked.as_secs_f64(),
            report.waits.len()
        );
        assert!(
            sim.now() >= SimTime::from_secs(20),
            "completion required the partition to heal"
        );
        for key in ["post-1", "post-2"] {
            let got = shim.read(US, key).await.expect("US healthy");
            assert!(got.is_some(), "{key} visible in the US after the barrier");
            println!("[reader]   t={} US read {key}: found", sim.now());
        }
    });

    // Anti-entropy keeps sweeping until every replica converged, then stops.
    sim.run();
    assert!(store.converged(), "all replicas converged at quiescence");
    assert_eq!(store.pending_hints(), 0, "no stranded hints");
    println!(
        "[repair]   t={} anti-entropy done: replicas converged, no hints pending",
        sim.now()
    );
}

//! The §5.1 ACL scenario: Alice blocks Bob, then posts. Without
//! `transfer(ℒblock, ℒpost)` the barrier cannot know about the ACL write and
//! Bob is notified anyway; with it, he is not.
//!
//! Usage: `cargo run --release --example acl_transfer [requests]`

use antipode_app::acl::{run, AclConfig};

fn main() {
    let requests: usize = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(200);

    println!("ACL scenario: Alice blocks Bob, then posts ({requests} request pairs)");
    let without = run(&AclConfig::new().with_requests(requests));
    println!(
        "without transfer: Bob wrongly notified in {:.1}% of cases ({} of {})",
        without.wrong_notifications.percent(),
        without.wrong_notifications.hits(),
        without.wrong_notifications.total()
    );
    let with = run(&AclConfig::new().with_requests(requests).with_transfer());
    println!(
        "with transfer(ℒblock, ℒpost): Bob wrongly notified in {:.1}% of cases",
        with.wrong_notifications.percent()
    );
    assert_eq!(with.wrong_notifications.hits(), 0);
    println!("transfer carries the ACL dependency into the post lineage; the reader-side barrier then waits for it.");
}

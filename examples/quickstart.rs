//! Quickstart: the Post-Notification violation in ~80 lines, and how
//! Antipode fixes it.
//!
//! Run with `cargo run --example quickstart`.

use std::rc::Rc;
use std::time::Duration;

use antipode::{Antipode, Lineage, LineageIdGen};
use antipode_sim::net::regions::{EU, US};
use antipode_sim::{Network, Sim};
use antipode_store::shim::{KvShim, QueueShim};
use antipode_store::{MySql, Sns};
use bytes::Bytes;

fn main() {
    let sim = Sim::new(42);
    let net = Rc::new(Network::global_triangle());

    // A geo-replicated post store and a pub/sub notifier — two independent,
    // mutually oblivious systems.
    let posts = MySql::new(&sim, net.clone(), "post-storage", &[EU, US]);
    let notifier = Sns::new(&sim, net, "notifier", &[EU, US]);

    // --- 1. The violation, without Antipode. ------------------------------
    {
        let posts = posts.clone();
        let notifier = notifier.clone();
        let sim2 = sim.clone();
        sim.block_on(async move {
            let mut sub = notifier.subscribe(US).expect("US replica exists");
            // Writer in the EU: store the post, then notify.
            posts
                .insert(EU, "posts", "1", Bytes::from_static(b"hello world"))
                .await
                .expect("EU replica exists");
            notifier
                .publish(EU, Bytes::from_static(b"post 1"))
                .await
                .expect("EU replica");
            // Reader in the US: the notification arrives in ~150 ms…
            let msg = sub.recv().await.expect("notification delivered");
            println!(
                "[baseline] t={} notification {:?} received in the US",
                sim2.now(),
                msg.payload
            );
            // …but MySQL replication takes ~600 ms, so the post is missing.
            let post = posts.select(US, "posts", "1").await.expect("US replica");
            println!(
                "[baseline] t={} reading the post: {}",
                sim2.now(),
                if post.is_some() {
                    "found"
                } else {
                    "POST NOT FOUND — XCY violation!"
                }
            );
            assert!(post.is_none(), "expected to observe the violation");
        });
    }

    // --- 2. The fix, with Antipode. ---------------------------------------
    sim.run_for(Duration::from_secs(30)); // let the first round settle
    let post_shim = KvShim::new(posts.store().clone());
    let notif_shim = QueueShim::new(notifier.queue().clone());
    let mut ap = Antipode::new(sim.clone());
    ap.register(Rc::new(post_shim.clone()));
    ap.register(Rc::new(notif_shim.clone()));

    let sim2 = sim.clone();
    sim.block_on(async move {
        let mut sub = notif_shim.subscribe(US).expect("US replica exists");
        let gen = LineageIdGen::new(1);

        // Writer: every shim write extends the request's lineage.
        let mut lineage: Lineage = Lineage::new(gen.next_id());
        post_shim
            .write(
                EU,
                "posts/2",
                Bytes::from_static(b"hello again"),
                &mut lineage,
            )
            .await
            .expect("EU replica exists");
        notif_shim
            .publish(EU, Bytes::from_static(b"post 2"), &mut lineage)
            .await
            .expect("EU replica exists");

        // Reader: the lineage arrives with the notification; barrier blocks
        // until every dependency is visible in the local region.
        let msg = sub
            .recv()
            .await
            .expect("delivered")
            .expect("valid envelope");
        let carried = msg.lineage.expect("publisher attached the lineage");
        println!(
            "[antipode] t={} notification received; calling barrier…",
            sim2.now()
        );
        let report = ap
            .barrier(&carried, US)
            .await
            .expect("all shims registered");
        println!(
            "[antipode] t={} barrier returned after blocking {:?}",
            sim2.now(),
            report.blocked
        );
        let post = post_shim
            .read(US, "posts/2")
            .await
            .expect("US replica exists");
        println!(
            "[antipode] t={} reading the post: {}",
            sim2.now(),
            if post.is_some() {
                "found — consistent!"
            } else {
                "missing"
            }
        );
        assert!(post.is_some(), "barrier must have enforced visibility");
    });
}

//! Silent disk corruption, end to end through the storage-integrity plane:
//!
//! 1. Three posts replicate across EU/US/SG; every replica's WAL holds
//!    them as framed, CRC32C-sealed records.
//! 2. **Bit rot** flips one bit of the US replica's log at t=4s. Nothing
//!    notices yet — the damage is latent, the memtable still serves.
//! 3. The US replica **crashes** at t=5s. At the t=8s restart, verified
//!    WAL replay hits the checksum mismatch mid-log: the replica cannot
//!    bound what else is damaged, so it is **quarantined** — reads refuse
//!    with an `IntegrityFault` instead of serving possibly-rotted bytes.
//! 4. A **scrub** sweep confirms the quarantine and kicks repair:
//!    **anti-entropy** back-fills the replica from its healthy peers, the
//!    WAL is re-framed from the repaired memtable, and the replica
//!    **rejoins with a bumped epoch**. Reads serve again, and all three
//!    replicas converge byte-for-byte.
//!
//! The same scenario with `verify_checksums: false` (the ablation the
//! integrity property tests run) replays the rotted log as truth —
//! that contrast is what the checksums buy.
//!
//! Run with `cargo run --release --example corruption_recovery`.

use std::rc::Rc;
use std::time::Duration;

use antipode_sim::dist::Dist;
use antipode_sim::net::regions::{EU, SG, US};
use antipode_sim::{DiskFaultKind, FaultKind, Network, Sim, SimTime};
use antipode_store::replica::{KvProfile, KvStore, StoreError};
use antipode_store::{RepairConfig, ReplicaHealth};
use bytes::Bytes;

fn main() {
    let sim = Sim::new(27);
    let net = Rc::new(Network::global_triangle());
    let posts = KvStore::new(
        &sim,
        net,
        "post-storage",
        &[EU, US, SG],
        KvProfile {
            local_write: Dist::constant_ms(1.0),
            local_read: Dist::constant_ms(0.5),
            replication: Dist::constant_ms(100.0),
            rtt_hops: 1.0,
            retry_interval: Dist::constant_ms(200.0),
        },
    );

    // Seed three posts and wait until every region holds them.
    let s = posts.clone();
    sim.block_on(async move {
        for (k, v) in [
            ("post-1", &b"value-one"[..]),
            ("post-2", &b"value-two"[..]),
            ("post-3", &b"value-three"[..]),
        ] {
            let ver = s.put(EU, k, Bytes::copy_from_slice(v)).await.unwrap();
            s.wait_visible(US, k, ver).await.unwrap();
            s.wait_visible(SG, k, ver).await.unwrap();
        }
    });
    println!(
        "[seed]     t={} three posts replicated; US WAL: {} sealed record(s), {} bytes",
        sim.now(),
        posts.wal_len(US),
        posts.wal_byte_len(US)
    );

    // The fault plan: latent bit rot at t=4s, then a crash window that
    // forces the damaged log through restart replay.
    sim.faults().schedule(
        SimTime::from_secs(4),
        SimTime::from_secs(5),
        FaultKind::DiskFault {
            store: "post-storage".into(),
            region: US,
            fault: DiskFaultKind::BitFlip { offset_seed: 3 },
        },
    );
    sim.faults().schedule(
        SimTime::from_secs(5),
        SimTime::from_secs(8),
        FaultKind::ReplicaCrash {
            store: "post-storage".into(),
            region: US,
        },
    );
    println!("[plan]     US bit flip t=4s; US replica crash t=5s..8s");
    sim.run_until(SimTime::from_secs(9));

    // Restart replay caught the mismatch: the replica is quarantined and
    // refuses to serve rather than guess.
    assert_eq!(posts.replica_health(US), ReplicaHealth::Tainted);
    println!(
        "[restart]  t={} verified replay hit a checksum mismatch: US replica quarantined",
        sim.now()
    );
    let s = posts.clone();
    sim.block_on(async move {
        match s.get(US, "post-1").await {
            Err(e @ StoreError::IntegrityFault { .. }) => {
                println!("[read]     t=9s US read post-1 refused: {e}")
            }
            other => panic!("quarantined replica must refuse, got {other:?}"),
        }
    });
    // Healthy regions are untouched the whole time.
    let eu = posts.get_sync(EU, "post-1").expect("EU serves");
    assert_eq!(eu.bytes, Bytes::from_static(b"value-one"));

    // Turn on the repair plane: scrub confirms the damage and kicks
    // anti-entropy, which back-fills the quarantined replica from healthy
    // peers and rejoins it under a bumped epoch.
    posts.enable_scrub(RepairConfig {
        period: Duration::from_secs(1),
        horizon: None,
    });
    posts.enable_anti_entropy(RepairConfig {
        period: Duration::from_secs(1),
        horizon: None,
    });
    sim.run();

    assert_eq!(posts.replica_health(US), ReplicaHealth::Healthy);
    println!(
        "[repair]   t={} anti-entropy back-filled the US replica; rejoined with a re-framed WAL ({} record(s))",
        sim.now(),
        posts.wal_len(US)
    );
    let s = posts.clone();
    sim.block_on(async move {
        let got = s.get(US, "post-1").await.expect("rejoined replica serves");
        assert_eq!(
            got.expect("post-1 present").bytes,
            Bytes::from_static(b"value-one")
        );
    });
    let report = posts.scrub_sweep();
    assert_eq!(report.quarantined, 0, "no fresh damage after repair");
    assert!(posts.converged_bytes(), "replicas converge byte-for-byte");
    println!(
        "[scrub]    t={} post-repair sweep: {} record(s) re-verified clean, 0 quarantined",
        sim.now(),
        report.verified
    );
    println!("[reader]   US read post-1: found (byte-identical across replicas)");
}

//! The TrainTicket cancel/refund flow (paper §7.1, Fig 9): the barrier on
//! the request's critical path.
//!
//! Usage: `cargo run --release --example train_ticket [rate] [seconds]`
//! Defaults: 300 120.

use std::time::Duration;

use antipode_app::train_ticket::{run, TrainTicketConfig};

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let rate: f64 = args.get(1).and_then(|s| s.parse().ok()).unwrap_or(300.0);
    let secs: u64 = args.get(2).and_then(|s| s.parse().ok()).unwrap_or(120);

    println!("TrainTicket cancel/refund: {rate} req/s for {secs}s (virtual time)");
    let mut base_lat = 0.0;
    for antipode in [false, true] {
        let mut cfg = TrainTicketConfig::new(rate).with_duration(Duration::from_secs(secs));
        if antipode {
            cfg = cfg.with_antipode();
        }
        let r = run(&cfg);
        let lat = r.client.latency().expect("requests completed");
        println!(
            "{}: tput {:.1} rps | latency mean {:.2} ms p99 {:.2} ms | refund-missing {:.2}%",
            if antipode { "antipode" } else { "baseline" },
            r.client.throughput(),
            lat.mean * 1e3,
            lat.p99 * 1e3,
            r.violations.percent()
        );
        if antipode {
            println!(
                "latency cost of the critical-path barrier: {:+.1}% (the user actively waits for the refund)",
                (lat.mean - base_lat) / base_lat * 100.0
            );
        } else {
            base_lat = lat.mean;
        }
    }
}

//! Antipode as a passive consistency checker (§6.3): find out *where*
//! barriers are needed before enforcing anything.
//!
//! We instrument two candidate locations in the post-notification reader —
//! right after the notification arrives, and right before rendering — with
//! dry-run checkpoints, run a test workload, and let the checker report
//! which locations would have violated XCY.
//!
//! Run with `cargo run --release --example dry_run_checker`.

use std::rc::Rc;
use std::time::Duration;

use antipode::{Antipode, ConsistencyChecker, Lineage, LineageId};
use antipode_sim::net::regions::{EU, US};
use antipode_sim::{Network, Sim};
use antipode_store::shim::{KvShim, QueueShim};
use antipode_store::{MySql, Sns};
use bytes::Bytes;

fn main() {
    let sim = Sim::new(7);
    let net = Rc::new(Network::global_triangle());
    let posts = MySql::new(&sim, net.clone(), "post-storage", &[EU, US]);
    let notifier = Sns::new(&sim, net, "notifier", &[EU, US]);
    let post_shim = KvShim::new(posts.store().clone());
    let notif_shim = QueueShim::new(notifier.queue().clone());

    let mut ap = Antipode::new(sim.clone());
    ap.register(Rc::new(post_shim.clone()));
    ap.register(Rc::new(notif_shim.clone()));
    let checker = ConsistencyChecker::new(ap);

    const N: usize = 50;

    // Reader with two instrumented candidate locations.
    {
        let checker = checker.clone();
        let notif_shim = notif_shim.clone();
        let sim2 = sim.clone();
        sim.spawn(async move {
            let mut sub = notif_shim.subscribe(US).expect("US configured");
            for _ in 0..N {
                let Ok(Some(msg)) = sub.recv().await else {
                    break;
                };
                let lineage = msg.lineage.expect("publisher attached lineage");
                // Candidate 1: right after the notification event.
                checker.checkpoint("follower-notify:on-event", &lineage, US);
                // ... some processing time passes ...
                sim2.sleep(Duration::from_millis(250)).await;
                // Candidate 2: right before rendering to the user.
                checker.checkpoint("follower-notify:pre-render", &lineage, US);
            }
        });
    }

    // Writers.
    for i in 0..N {
        let sim2 = sim.clone();
        let post_shim = post_shim.clone();
        let notif_shim = notif_shim.clone();
        sim.spawn(async move {
            sim2.sleep(Duration::from_millis(200 * i as u64)).await;
            let mut lineage = Lineage::new(LineageId(i as u64));
            post_shim
                .write(
                    EU,
                    &format!("post-{i}"),
                    Bytes::from_static(b"body"),
                    &mut lineage,
                )
                .await
                .expect("EU configured");
            notif_shim
                .publish(EU, Bytes::from(format!("post-{i}")), &mut lineage)
                .await
                .expect("EU configured");
        });
    }
    sim.run();

    println!("dry-run checker results over {N} requests:\n");
    println!(
        "{:<32} {:>6} {:>12} {:>16}",
        "location", "evals", "unsatisfied", "violation rate"
    );
    for (loc, stats) in checker.summary() {
        println!(
            "{:<32} {:>6} {:>12} {:>15.0}%",
            loc,
            stats.evaluations,
            stats.unsatisfied,
            stats.violation_rate() * 100.0
        );
    }
    println!();
    match checker.suggested_barriers().first() {
        Some((loc, stats)) => println!(
            "=> place a barrier at {loc:?} ({} of {} evaluations would have violated XCY)",
            stats.unsatisfied, stats.evaluations
        ),
        None => println!("=> no barrier needed: all checkpoints were satisfied"),
    }
}

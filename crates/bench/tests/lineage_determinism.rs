//! The perf baseline's deterministic section must be exactly that: two
//! same-seed runs — in fresh threads, so each starts from an empty
//! thread-local interner — produce identical structural counters. This is
//! what makes the committed `BENCH_lineage.json` comparable across machines
//! and CI runs.

use std::thread;

use antipode_bench::perf;

#[test]
fn deterministic_metrics_are_identical_across_fresh_threads() {
    let run = || perf::deterministic_workload(0xA471_90DE, perf::DEFAULT_DEPS, perf::DEFAULT_HOPS);
    let a = thread::spawn(run).join().unwrap();
    let b = thread::spawn(run).join().unwrap();
    assert_eq!(a, b);
}

#[test]
fn baseline_deterministic_section_matches_standalone_workload() {
    // `run` (the binary's entry point) must report the same deterministic
    // metrics as calling the workload directly — the timing pass that runs
    // alongside it must not perturb the counters.
    let a = thread::spawn(|| perf::run(7).deterministic).join().unwrap();
    let b =
        thread::spawn(|| perf::deterministic_workload(7, perf::DEFAULT_DEPS, perf::DEFAULT_HOPS))
            .join()
            .unwrap();
    assert_eq!(a, b);
}

#[test]
fn seed_changes_the_workload() {
    let a = thread::spawn(|| perf::deterministic_workload(1, 8, 32))
        .join()
        .unwrap();
    let b = thread::spawn(|| perf::deterministic_workload(2, 8, 32))
        .join()
        .unwrap();
    assert_ne!(a, b, "the workload must actually depend on its seed");
}

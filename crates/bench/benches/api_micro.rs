//! Criterion microbenchmarks for the Antipode API hot paths: lineage
//! serialization (the per-write datastore-propagation cost), baggage
//! injection/extraction (the per-RPC cost), envelope framing, the barrier
//! fast path, and the simulator's scheduling overhead. These quantify the
//! "limited programming effort, low overhead" claim at the API level.

use std::rc::Rc;
use std::time::Duration;

use antipode::{Antipode, Lineage, LineageId, WriteId};
use antipode_lineage::Baggage;
use antipode_sim::dist::Dist;
use antipode_sim::net::regions::{EU, US};
use antipode_sim::{Network, Sim};
use antipode_store::replica::{KvProfile, KvStore};
use antipode_store::shim::KvShim;
use antipode_store::Envelope;
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

fn lineage_with_deps(n: usize) -> Lineage {
    let mut l = Lineage::new(LineageId(0xBEEF));
    for i in 0..n {
        l.append(WriteId::new(
            format!("store-{}", i % 4),
            format!("key-{i}"),
            i as u64 + 1,
        ));
    }
    l
}

fn bench_lineage_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("lineage_codec");
    for n in [1usize, 4, 16, 64] {
        let l = lineage_with_deps(n);
        let bytes = l.serialize();
        group.bench_with_input(BenchmarkId::new("serialize", n), &l, |b, l| {
            b.iter(|| black_box(l.serialize()));
        });
        group.bench_with_input(BenchmarkId::new("deserialize", n), &bytes, |b, bytes| {
            b.iter(|| black_box(Lineage::deserialize(bytes).unwrap()));
        });
    }
    group.finish();
}

fn bench_baggage(c: &mut Criterion) {
    let mut group = c.benchmark_group("baggage");
    let l = lineage_with_deps(4);
    group.bench_function("inject", |b| {
        b.iter(|| {
            let mut bag = Baggage::new();
            bag.set_lineage(black_box(&l));
            black_box(bag)
        });
    });
    let mut bag = Baggage::new();
    bag.set_lineage(&l);
    let header = bag.to_header();
    group.bench_function("to_header", |b| {
        b.iter(|| black_box(bag.to_header()));
    });
    group.bench_function("from_header_and_extract", |b| {
        b.iter(|| {
            let bag = Baggage::from_header(black_box(&header));
            black_box(bag.lineage().unwrap())
        });
    });
    group.finish();
}

fn bench_envelope(c: &mut Criterion) {
    let mut group = c.benchmark_group("envelope");
    let l = lineage_with_deps(4);
    for size in [128usize, 4096, 65_536] {
        let env = Envelope::with_lineage(Bytes::from(vec![7u8; size]), l.clone());
        let enc = env.encode();
        group.bench_with_input(BenchmarkId::new("encode", size), &env, |b, env| {
            b.iter(|| black_box(env.encode()));
        });
        group.bench_with_input(BenchmarkId::new("decode", size), &enc, |b, enc| {
            b.iter(|| black_box(Envelope::decode(enc).unwrap()));
        });
    }
    group.finish();
}

fn bench_barrier_fast_path(c: &mut Criterion) {
    // Dependencies already visible: the barrier's no-wait cost.
    let sim = Sim::new(1);
    let net = Rc::new(Network::global_triangle());
    let store = KvStore::new(
        &sim,
        net,
        "db",
        &[EU, US],
        KvProfile {
            replication: Dist::constant_ms(1.0),
            ..KvProfile::default()
        },
    );
    let shim = KvShim::new(store.clone());
    let mut ap = Antipode::new(sim.clone());
    ap.register(Rc::new(shim.clone()));
    let lineage = {
        let shim = shim.clone();
        let sim2 = sim.clone();
        let l = sim.block_on(async move {
            let mut l = Lineage::new(LineageId(1));
            for i in 0..4 {
                shim.write(EU, &format!("k{i}"), Bytes::new(), &mut l)
                    .await
                    .unwrap();
            }
            sim2.sleep(Duration::from_secs(5)).await; // let replication land
            l
        });
        sim.run();
        l
    };
    c.bench_function("barrier_fast_path_4_deps", |b| {
        b.iter(|| {
            let ap = ap.clone();
            let l = lineage.clone();
            let report = sim.block_on(async move { ap.barrier(&l, US).await.unwrap() });
            black_box(report)
        });
    });
    c.bench_function("dry_run_4_deps", |b| {
        b.iter(|| black_box(ap.dry_run(&lineage, US)));
    });
}

fn bench_simulator(c: &mut Criterion) {
    let mut group = c.benchmark_group("simulator");
    group.bench_function("spawn_and_run_1000_timers", |b| {
        b.iter(|| {
            let sim = Sim::new(7);
            for i in 0..1000u64 {
                let s = sim.clone();
                sim.spawn(async move {
                    s.sleep(Duration::from_micros(i)).await;
                });
            }
            sim.run();
            black_box(sim.now())
        });
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_lineage_codec,
    bench_baggage,
    bench_envelope,
    bench_barrier_fast_path,
    bench_simulator
);
criterion_main!(benches);

//! Criterion microbenchmarks for the zero-copy lineage plane: the hot paths
//! the interner/COW/cached-encoding refactor targets (clone, hop, transfer,
//! append, serialize with warm and cold caches, deserialize), plus a
//! serialize-linearity sweep over dependency counts.
//!
//! The sweep is the regression guard for the old O(deps × stores) string
//! table scan: `serialize_dirty/{4,16,64,256}` must grow linearly in the
//! dependency count, not quadratically (asserted by the root
//! `serialize_scaling_is_linear` test; the bench makes the curve visible).

use antipode_bench::perf;
use antipode_lineage::{Baggage, Lineage, LineageId, WriteId};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;

const SEED: u64 = 0xA471_90DE;

fn bench_clone_and_hop(c: &mut Criterion) {
    let mut group = c.benchmark_group("lineage_plane");
    let lineage = perf::build_lineage(SEED, 16);

    // Shallow clone: Rc bumps on deps + caches, no dep copies.
    group.bench_function("clone_16dep", |b| {
        b.iter(|| black_box(lineage.clone()));
    });

    // One full service hop: inject → header → parse → extract. The lineage
    // is unchanged, so the injection re-uses the cached base64.
    lineage.serialize(); // warm the caches, as a steady-state hop would see
    group.bench_function("hop_unchanged_16dep", |b| {
        b.iter(|| {
            let mut bag = Baggage::new();
            bag.set_lineage(&lineage);
            let header = bag.to_header();
            let back = Baggage::from_header(&header);
            black_box(back.lineage().unwrap())
        });
    });

    // The read-path union into a request that has no deps yet: adopts the
    // shared vector, no merge.
    group.bench_function("transfer_16dep_into_empty", |b| {
        b.iter(|| {
            let mut l = Lineage::new(LineageId(2));
            l.transfer_from(&lineage);
            black_box(l)
        });
    });

    // Append to a shared lineage: pays one COW copy, then the push.
    group.bench_function("append_to_shared_16dep", |b| {
        let mut version = 0u64;
        b.iter(|| {
            let mut l = lineage.clone();
            version += 1;
            l.append(WriteId::new("post-storage-mongodb", "bench-key", version));
            black_box(l)
        });
    });

    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let mut group = c.benchmark_group("lineage_plane");
    let lineage = perf::build_lineage(SEED, 16);
    let bytes = lineage.serialize();

    // Warm cache: what every unchanged hop pays — a memcpy of cached bytes.
    group.bench_function("serialize_cached_16dep", |b| {
        b.iter(|| black_box(lineage.serialize()));
    });

    group.bench_function("deserialize_16dep", |b| {
        b.iter(|| black_box(Lineage::deserialize(&bytes).unwrap()));
    });

    // Cold cache: mutate, then serialize — the full encode each iteration.
    // Swept over sizes to expose the complexity curve of the encoder; a
    // relapse into the O(deps × stores) name scan shows up as
    // super-linear growth between adjacent sizes.
    for n in [4usize, 16, 64, 256] {
        let base = perf::build_lineage(SEED, n);
        group.bench_with_input(BenchmarkId::new("serialize_dirty", n), &base, |b, base| {
            let mut version = 1_000_000u64;
            b.iter(|| {
                // Fresh clone each iteration so the lineage stays n-dep; the
                // append pays the COW copy, the serialize the full encode.
                let mut dirty = base.clone();
                version += 1;
                dirty.append(WriteId::new("social-graph-redis", "dirty-key", version));
                black_box(dirty.serialize())
            });
        });
    }

    group.finish();
}

criterion_group!(benches, bench_clone_and_hop, bench_codec);
criterion_main!(benches);

//! Criterion benchmarks for the engine hot path: the commit → fan-out →
//! apply pipeline behind every replicated write, swept over offered batch
//! size.
//!
//! Each measurement runs the `engine_perf` workload — a persistent writer
//! fleet spread across three regions issuing sequential enveloped puts with
//! constant latencies, so every round's writes commit at the same virtual
//! instant and the (origin, dest) pair queues see the full offered batch
//! (≈ writers/3 entries). Reported per write via `Throughput::Elements`:
//! the `hop_batched/{writers}` curve shows per-write cost falling as the
//! flusher amortizes over bigger batches, while `hop_unbatched/{writers}`
//! (one virtual-time event per send entry, same trace) stays flat — the gap
//! is what batching buys at each scale. The committed `BENCH_engine.json`
//! pins the headline 256-writer numbers; this sweep makes the curve
//! visible.

use std::time::Duration;

use antipode_bench::engine_perf;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

const SEED: u64 = 0xE6E1_0E57;

/// Measured sequential puts per writer. Small enough that one workload run
/// stays in the low milliseconds at every sweep point; the per-write cost
/// is already steady at this depth (each run also does its own one-put
/// warmup to fill slab and caches).
const ROUNDS: usize = 8;

fn bench_hop_sweep(c: &mut Criterion) {
    let mut group = c.benchmark_group("engine_plane");
    // One sample is a whole workload run (thousands of writes at the top
    // sweep point); a handful of samples beats criterion's default 100.
    group.sample_size(10);
    for writers in [3usize, 24, 96, 256] {
        group.throughput(Throughput::Elements((writers * ROUNDS) as u64));
        group.bench_with_input(
            BenchmarkId::new("hop_batched", writers),
            &writers,
            |b, &writers| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        total += engine_perf::timed_workload(SEED, writers, ROUNDS, true);
                    }
                    total
                });
            },
        );
        group.bench_with_input(
            BenchmarkId::new("hop_unbatched", writers),
            &writers,
            |b, &writers| {
                b.iter_custom(|iters| {
                    let mut total = Duration::ZERO;
                    for _ in 0..iters {
                        total += engine_perf::timed_workload(SEED, writers, ROUNDS, false);
                    }
                    total
                });
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_hop_sweep);
criterion_main!(benches);

//! Criterion benchmarks for the simulated datastore hot paths: raw puts and
//! gets, shim-wrapped writes and reads (quantifying the shim's cost over the
//! raw store — the mechanism behind the paper's ≤ 2 % overhead), queue
//! publish/delivery, and the store-specific `wait`.

use std::hint::black_box;
use std::rc::Rc;
use std::time::Duration;

use antipode_lineage::{Lineage, LineageId, WriteId};
use antipode_sim::dist::Dist;
use antipode_sim::net::regions::{EU, US};
use antipode_sim::{Network, Sim};
use antipode_store::replica::{KvProfile, KvStore};
use antipode_store::shim::{KvShim, QueueShim};
use antipode_store::QueueStore;
use bytes::Bytes;
use criterion::{criterion_group, criterion_main, Criterion};

fn fast_profile() -> KvProfile {
    KvProfile {
        local_write: Dist::ZERO,
        local_read: Dist::ZERO,
        replication: Dist::constant_ms(1.0),
        rtt_hops: 0.0,
        retry_interval: Dist::constant_ms(1.0),
    }
}

fn setup_kv() -> (Sim, KvStore, KvShim) {
    let sim = Sim::new(1);
    let net = Rc::new(Network::global_triangle());
    let store = KvStore::new(&sim, net, "bench-db", &[EU, US], fast_profile());
    let shim = KvShim::new(store.clone());
    (sim, store, shim)
}

fn bench_kv_raw(c: &mut Criterion) {
    let (sim, store, _) = setup_kv();
    let body = Bytes::from(vec![0u8; 256]);
    c.bench_function("kv_raw_put_get", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let store = store.clone();
            let body = body.clone();
            let key = format!("k{}", i % 128);
            let got = sim.block_on(async move {
                store.put(EU, &key, body).await.unwrap();
                store.get(EU, &key).await.unwrap()
            });
            black_box(got)
        });
    });
}

fn bench_kv_shim(c: &mut Criterion) {
    let (sim, _, shim) = setup_kv();
    let body = Bytes::from(vec![0u8; 256]);
    c.bench_function("kv_shim_write_read", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let shim = shim.clone();
            let body = body.clone();
            let key = format!("k{}", i % 128);
            let got = sim.block_on(async move {
                let mut lineage = Lineage::new(LineageId(i));
                lineage.append(WriteId::new("upstream", "dep", 1));
                shim.write(EU, &key, body, &mut lineage).await.unwrap();
                shim.read(EU, &key).await.unwrap()
            });
            black_box(got)
        });
    });
}

fn bench_wait_visible(c: &mut Criterion) {
    let (sim, store, _) = setup_kv();
    c.bench_function("kv_wait_cross_region", |b| {
        let mut i = 0u64;
        b.iter(|| {
            i += 1;
            let store = store.clone();
            let key = format!("w{i}");
            sim.block_on(async move {
                let v = store.put(EU, &key, Bytes::new()).await.unwrap();
                store.wait_visible(US, &key, v).await.unwrap();
            });
        });
    });
}

fn bench_queue(c: &mut Criterion) {
    let sim = Sim::new(2);
    let net = Rc::new(Network::global_triangle());
    let q = QueueStore::new(
        &sim,
        net,
        "bench-q",
        &[EU, US],
        antipode_store::QueueProfile {
            local_publish: Dist::ZERO,
            delivery: Dist::constant_ms(1.0),
            local_delivery: Dist::ZERO,
            rtt_hops: 0.0,
        },
    );
    let shim = QueueShim::new(q);
    c.bench_function("queue_publish_deliver", |b| {
        b.iter(|| {
            let shim = shim.clone();
            sim.block_on(async move {
                let mut sub = shim.subscribe(US).unwrap();
                let mut lineage = Lineage::new(LineageId(1));
                shim.publish(EU, Bytes::from_static(b"msg"), &mut lineage)
                    .await
                    .unwrap();
                black_box(sub.recv().await.unwrap())
            });
        });
    });
}

fn bench_many_keys_replication(c: &mut Criterion) {
    // 1000 writes replicating to a remote region: executor + store pressure.
    c.bench_function("kv_1000_writes_full_replication", |b| {
        b.iter(|| {
            let (sim, store, _) = setup_kv();
            for i in 0..1000u64 {
                let store = store.clone();
                sim.spawn(async move {
                    store.put(EU, &format!("k{i}"), Bytes::new()).await.unwrap();
                });
            }
            sim.run();
            assert!(sim.now().since(antipode_sim::SimTime::ZERO) >= Duration::from_millis(1));
            black_box(store.get_sync(US, "k999"))
        });
    });
}

criterion_group!(
    benches,
    bench_kv_raw,
    bench_kv_shim,
    bench_wait_visible,
    bench_queue,
    bench_many_keys_replication
);
criterion_main!(benches);

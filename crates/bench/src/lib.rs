//! # antipode-bench
//!
//! The experiment harness: one binary per table/figure of the paper's
//! evaluation, each printing the same rows/series the paper reports and
//! writing a JSON artifact under `target/experiments/`.
//!
//! | binary | reproduces |
//! |---|---|
//! | `fig1_alibaba_cdf` | Fig 1 (stateful-call CDFs over the trace) |
//! | `table1_inconsistencies` | Table 1 (post-storage × notifier matrix) |
//! | `fig6_delay_sweep` | Fig 6 (inconsistencies vs artificial delay) |
//! | `fig7_consistency_window` | Fig 7 (consistency window per store) |
//! | `fig8_deathstarbench` | Fig 8 (DSB throughput/latency + window) |
//! | `fig9_trainticket` | Fig 9 (TrainTicket throughput/latency + window) |
//! | `table3_object_sizes` | Table 3 (per-store object-size increase) |
//! | `metadata_sizes` | §7.4 lineage-metadata analysis |
//! | `run_all` | all of the above in sequence |

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod engine_perf;
pub mod experiments;
pub mod perf;
pub mod speculation;

use std::fs;
use std::path::PathBuf;

use serde::Serialize;

/// Directory where experiment artifacts are written.
pub fn artifact_dir() -> PathBuf {
    let dir = PathBuf::from("target/experiments");
    let _ = fs::create_dir_all(&dir);
    dir
}

/// Serializes an experiment result to `target/experiments/<name>.json`.
pub fn write_artifact<T: Serialize>(name: &str, value: &T) {
    let path = artifact_dir().join(format!("{name}.json"));
    match serde_json::to_string_pretty(value) {
        Ok(json) => {
            if let Err(e) = fs::write(&path, json) {
                eprintln!("warning: could not write {}: {e}", path.display());
            } else {
                println!("[artifact] {}", path.display());
            }
        }
        Err(e) => eprintln!("warning: could not serialize {name}: {e}"),
    }
}

/// Prints a section header.
pub fn header(title: &str) {
    println!("\n=== {title} ===");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn artifacts_round_trip() {
        #[derive(Serialize)]
        struct T {
            x: u32,
        }
        write_artifact("selftest", &T { x: 7 });
        let content = fs::read_to_string(artifact_dir().join("selftest.json")).unwrap();
        assert!(content.contains("\"x\": 7"));
    }
}

//! Engine-plane performance baseline: the fixed-seed replication workload
//! behind `engine_baseline` (which writes `BENCH_engine.json`).
//!
//! Mirrors [`crate::perf`] for the commit → fan-out → apply pipeline. The
//! baseline is split the same way:
//!
//! - [`EngineDeterministicMetrics`] — structural counters from a fixed
//!   write workload: engine counters ([`antipode_store::EngineStats`]:
//!   commits, fan-out flusher wakes, send entries, applies, WAL
//!   appends/bytes, batch sizes) plus the slab counters
//!   ([`antipode_store::SlabStats`]) that prove the zero-allocation
//!   steady-state claim. Integer-only and byte-identical across same-seed
//!   runs on any machine — CI diffs this section against the committed
//!   artifact.
//! - [`EngineTimingMetrics`] — wall-clock ns per replicated write, for the
//!   batched fan-out and the unbatched ablation of the same workload.
//!   Machine-dependent, never asserted on.
//!
//! A *hop* here is one fully replicated write: commit at the origin, fan
//! out to every other replica, apply (with WAL append) at each. The
//! headline comparison is `batched_hop_ns` against the lineage plane's
//! `hop_ns` in `BENCH_lineage.json` — the engine pipeline moves a write
//! end-to-end across three regions in a fraction of what one baggage
//! header hop used to cost.

use std::rc::Rc;
use std::time::{Duration, Instant};

use antipode_lineage::Lineage;
use antipode_sim::dist::Dist;
use antipode_sim::net::regions::{EU, SG, US};
use antipode_sim::net::Network;
use antipode_sim::{Region, Sim};
use antipode_store::{slab, stats, Envelope, KvProfile, KvStore};
use bytes::Bytes;
use serde::Serialize;

use crate::perf::build_lineage;

/// Regions the bench store replicates across.
const REGIONS: [Region; 3] = [EU, US, SG];

/// Concurrent writers. Each writer is a persistent client task issuing
/// sequential puts; with constant commit latency every writer's n-th put
/// commits at the same virtual instant, so this is also the offered batch
/// size per (origin, dest) replication pair (writers are spread over the
/// regions).
pub const DEFAULT_WRITERS: usize = 256;
/// Sequential puts per writer (one warmup put per writer runs first and
/// is not counted). Sized so one repetition's measured window fits inside
/// a host scheduling quantum — the minimum over repetitions then has a
/// real chance of observing an unpreempted run on a busy machine.
pub const DEFAULT_ROUNDS: usize = 16;
/// Timing repetitions per mode; the reported wall time is the minimum
/// (the run least disturbed by the host machine). Deterministic counters
/// are asserted identical across repetitions.
pub const DEFAULT_REPS: usize = 15;
/// Dependencies in the lineage enveloped with every write.
pub const DEFAULT_DEPS: usize = 16;

/// Structural counters from the fixed-seed write workload. Identical
/// across runs with the same seed, on any machine. All counters cover the
/// measured rounds only (the warmup round is excluded), for the batched
/// run — except `unbatched_fanout_events`, the same workload's flusher
/// wakes with batching disabled.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct EngineDeterministicMetrics {
    /// Replicated writes in the measured rounds.
    pub writes: u64,
    /// Commits that assigned a version.
    pub commits: u64,
    /// Fan-out flusher wakes (virtual-time events spent on replication).
    pub fanout_events: u64,
    /// Replication send entries reaching their terminal step.
    pub send_entries: u64,
    /// Replica applies.
    pub applies: u64,
    /// WAL appends across all replicas.
    pub wal_appends: u64,
    /// Bytes logged across those appends.
    pub wal_bytes: u64,
    /// Apply batches handed to replicas.
    pub batch_flushes: u64,
    /// Largest apply batch observed.
    pub max_batch: u64,
    /// Scratch buffers allocated during the measured rounds — the
    /// zero-allocation steady-state claim is exactly `slab_allocated == 0`.
    pub slab_allocated: u64,
    /// Scratch buffers recycled from the slab during the measured rounds.
    pub slab_reused: u64,
    /// Flusher wakes for the identical workload with batching disabled
    /// (the determinism ablation): the event count batching amortizes.
    pub unbatched_fanout_events: u64,
}

/// Wall-clock measurements, ns per replicated write (machine-dependent).
#[derive(Clone, Debug, Serialize)]
pub struct EngineTimingMetrics {
    /// One replicated write, batched fan-out (the default engine).
    pub batched_hop_ns: f64,
    /// One replicated write, unbatched ablation (one event per entry).
    pub unbatched_hop_ns: f64,
    /// `unbatched_hop_ns / batched_hop_ns`.
    pub batching_speedup: f64,
    /// Replicated writes per second implied by `batched_hop_ns`.
    pub hop_ops_per_sec: f64,
    /// Commits per second of the batched run.
    pub commits_per_sec: f64,
    /// Fan-out flusher wakes per second of the batched run.
    pub fanout_events_per_sec: f64,
    /// Average WAL bytes logged per commit (from the deterministic
    /// counters; kept here so the deterministic section stays integral).
    pub wal_bytes_per_commit: f64,
    /// CRC32C cost of sealing one commit's WAL frames: the checksum of a
    /// representative framed body, times the appends each commit fans out
    /// to (one per replica). Sealing runs off the commit path (the WAL
    /// stages appends and seals at observation, group-commit style), so
    /// this is the deferred flush-side bill per commit — reported next to
    /// `batched_hop_ns` to keep the integrity plane's overhead visible and
    /// to show why it must stay off the hop: on the commit path it would
    /// blow the < 5 % hop budget roughly twentyfold.
    pub crc_ns_per_commit: f64,
    /// Average send entries per flusher wake — the realized batch size.
    pub avg_batch: f64,
}

/// The full baseline document written to `BENCH_engine.json`.
#[derive(Clone, Debug, Serialize)]
pub struct EngineBaseline {
    /// Artifact name.
    pub bench: String,
    /// Workload seed.
    pub seed: u64,
    /// Concurrent persistent writers.
    pub writers: usize,
    /// Measured sequential puts per writer.
    pub rounds: usize,
    /// Same-seed-stable structural counters.
    pub deterministic: EngineDeterministicMetrics,
    /// Machine-dependent timings.
    pub timing: EngineTimingMetrics,
}

/// One run's raw outcome: engine + slab counters over the measured
/// rounds, and their wall-clock duration.
struct RunOutcome {
    engine: antipode_store::EngineStats,
    slab: antipode_store::SlabStats,
    elapsed: Duration,
}

fn bench_profile() -> KvProfile {
    // Constant latencies: every write of a round commits at the same
    // virtual instant and replicates with the same lag, so the pair
    // queues see the full offered batch. (Jittered profiles spread
    // deliveries over distinct instants — which batching must preserve
    // exactly; the chaos suites cover those.)
    KvProfile {
        local_write: Dist::constant_ms(1.0),
        local_read: Dist::constant_ms(0.5),
        replication: Dist::constant_ms(100.0),
        rtt_hops: 1.0,
        retry_interval: Dist::constant_ms(50.0),
    }
}

fn bench_network() -> Network {
    // Constant link delays for the same reason as `bench_profile`: the
    // evaluation topology's lognormal jitter would give every send its
    // own delivery instant.
    Network::new(Dist::Constant(0.000_25), Dist::Constant(0.080))
}

/// Spawns the persistent writer fleet — one long-lived client task per
/// writer issuing `puts` sequential writes to its own key from its home
/// region — and drains the sim until all replication has landed. Each
/// write envelopes the payload under the shared lineage exactly as a shim
/// write would — the per-write slab bracket the zero-allocation claim is
/// about. Long-lived clients are the representative shape (a service shim
/// issues a stream of writes, not one task per write), and they keep the
/// harness out of the measurement: the task spawn amortizes over the
/// writer's whole stream.
fn run_writers(
    sim: &Sim,
    store: &KvStore,
    lineage: &Lineage,
    keys: &Rc<Vec<Rc<str>>>,
    puts: usize,
) {
    let sim2 = sim.clone();
    let store = store.clone();
    let lineage = lineage.clone();
    let keys = Rc::clone(keys);
    sim.block_on(async move {
        for (w, key) in keys.iter().enumerate() {
            let s = store.clone();
            let origin = REGIONS[w % REGIONS.len()];
            let key = Rc::clone(key);
            let lineage = lineage.clone();
            sim2.spawn_detached(async move {
                for n in 0..puts {
                    let value = Envelope::with_lineage(
                        Bytes::from_static(b"engine-bench-value"),
                        lineage.clone(),
                    )
                    .encode();
                    s.put(origin, &key, value)
                        .await
                        .unwrap_or_else(|e| panic!("bench put {n}: {e:?}"));
                }
            });
        }
        // puts × commit latency + transit + replication lag is well under
        // the horizon; the sleep drains every spawned task
        // deterministically.
        sim2.sleep(Duration::from_secs(2)).await;
    });
}

/// Runs one warmup put per writer, then `rounds` measured sequential puts
/// per writer, and returns the measured counters and wall time.
fn run_workload(seed: u64, writers: usize, rounds: usize, batched: bool) -> RunOutcome {
    let sim = Sim::new(seed);
    let net = Rc::new(bench_network());
    let store = KvStore::new(&sim, net, "bench-db", &REGIONS, bench_profile());
    store.set_batching(batched);

    // Every write carries a shim-style envelope: the value plus a
    // serialized lineage. The lineage is shared across writes, so its
    // wire form is cached after the first encode and each per-write
    // envelope encode is a slab-scratch assembly + memcpy.
    let lineage: Lineage = build_lineage(seed, DEFAULT_DEPS);
    // Warm the wire cache once: a shim's lineage has already crossed a hop
    // by the time it lands in a write, and clones share the cached wire
    // form — so a steady-state envelope encode is an assembly memcpy, not
    // a serialization.
    let _ = lineage.wire_bytes();
    // Keys are allocated once up front (clients reuse their key strings);
    // the measured loop shares them by refcount.
    let keys: Rc<Vec<Rc<str>>> = Rc::new(
        (0..writers)
            .map(|w| Rc::from(format!("w{w}").as_str()))
            .collect(),
    );

    run_writers(&sim, &store, &lineage, &keys, 1);

    stats::reset();
    slab::reset_stats();
    let start = Instant::now();
    run_writers(&sim, &store, &lineage, &keys, rounds);
    let elapsed = start.elapsed();
    let engine = stats::snapshot();
    let slab = slab::stats();

    assert!(
        store.pending_sends() == 0 && store.converged(),
        "bench workload must drain and converge (pending {}, converged {})",
        store.pending_sends(),
        store.converged(),
    );
    RunOutcome {
        engine,
        slab,
        elapsed,
    }
}

/// Wall time of one full workload run (per-writer warmup put, then
/// `rounds` measured sequential puts per writer). The measurement unit of
/// the criterion sweep in `benches/engine_plane.rs`, which divides by the
/// write count via `Throughput::Elements`.
pub fn timed_workload(seed: u64, writers: usize, rounds: usize, batched: bool) -> Duration {
    run_workload(seed, writers, rounds, batched).elapsed
}

/// Runs the batched workload and its unbatched ablation, returning the
/// combined deterministic counters.
pub fn deterministic_workload(
    seed: u64,
    writers: usize,
    rounds: usize,
) -> EngineDeterministicMetrics {
    let batched = run_workload(seed, writers, rounds, true);
    let unbatched = run_workload(seed, writers, rounds, false);
    metrics_of(writers, rounds, &batched, &unbatched)
}

fn metrics_of(
    writers: usize,
    rounds: usize,
    batched: &RunOutcome,
    unbatched: &RunOutcome,
) -> EngineDeterministicMetrics {
    let e = &batched.engine;
    EngineDeterministicMetrics {
        writes: (writers * rounds) as u64,
        commits: e.commits,
        fanout_events: e.fanout_events,
        send_entries: e.send_entries,
        applies: e.applies,
        wal_appends: e.wal_appends,
        wal_bytes: e.wal_bytes,
        batch_flushes: e.batch_flushes,
        max_batch: e.max_batch,
        slab_allocated: batched.slab.allocated,
        slab_reused: batched.slab.reused,
        unbatched_fanout_events: unbatched.engine.fanout_events,
    }
}

/// Runs `DEFAULT_REPS` repetitions of one mode, asserting the structural
/// counters replay identically, and returns the repetition with the
/// smallest wall time (host-noise floor).
fn best_of(seed: u64, writers: usize, rounds: usize, batched: bool) -> RunOutcome {
    let mut best: Option<RunOutcome> = None;
    for _ in 0..DEFAULT_REPS {
        let rep = run_workload(seed, writers, rounds, batched);
        if let Some(prev) = &best {
            assert_eq!(
                (prev.engine, prev.slab),
                (rep.engine, rep.slab),
                "same-seed repetitions must replay the same counters"
            );
            if rep.elapsed < prev.elapsed {
                best = Some(rep);
            }
        } else {
            best = Some(rep);
        }
    }
    best.expect("at least one repetition runs")
}

/// Measures the per-commit checksum cost of the self-validating WAL
/// framing: CRC32C over a body sized to the workload's own average append
/// (`wal_bytes / wal_appends` minus the 8-byte frame header), scaled by
/// the appends each commit produces. Min-of-reps like the hop timings, so
/// the number is the host-noise floor, not an average.
fn measure_crc_ns_per_commit(m: &EngineDeterministicMetrics) -> f64 {
    use antipode_lineage::crc32c::crc32c;
    let body_len = (m.wal_bytes / m.wal_appends).saturating_sub(8) as usize;
    let body: Vec<u8> = (0..body_len).map(|i| i as u8).collect();
    const ITERS: u32 = 100_000;
    let mut best = Duration::MAX;
    for _ in 0..5 {
        let start = Instant::now();
        let mut acc = 0u32;
        for _ in 0..ITERS {
            acc ^= crc32c(std::hint::black_box(&body));
        }
        let elapsed = start.elapsed();
        std::hint::black_box(acc);
        best = best.min(elapsed);
    }
    let per_append = best.as_nanos() as f64 / ITERS as f64;
    per_append * (m.wal_appends as f64 / m.commits as f64)
}

/// Runs the full baseline (deterministic counters + wall-clock timings).
pub fn run(seed: u64) -> EngineBaseline {
    let batched = best_of(seed, DEFAULT_WRITERS, DEFAULT_ROUNDS, true);
    let unbatched = best_of(seed, DEFAULT_WRITERS, DEFAULT_ROUNDS, false);
    let deterministic = metrics_of(DEFAULT_WRITERS, DEFAULT_ROUNDS, &batched, &unbatched);

    let writes = deterministic.writes as f64;
    let batched_hop_ns = batched.elapsed.as_nanos() as f64 / writes;
    let unbatched_hop_ns = unbatched.elapsed.as_nanos() as f64 / writes;
    let secs = batched.elapsed.as_secs_f64();
    let timing = EngineTimingMetrics {
        batched_hop_ns,
        unbatched_hop_ns,
        batching_speedup: unbatched_hop_ns / batched_hop_ns,
        hop_ops_per_sec: 1e9 / batched_hop_ns,
        commits_per_sec: deterministic.commits as f64 / secs,
        fanout_events_per_sec: deterministic.fanout_events as f64 / secs,
        wal_bytes_per_commit: deterministic.wal_bytes as f64 / deterministic.commits as f64,
        crc_ns_per_commit: measure_crc_ns_per_commit(&deterministic),
        avg_batch: deterministic.send_entries as f64 / deterministic.fanout_events as f64,
    };
    EngineBaseline {
        bench: "engine_plane".to_string(),
        seed,
        writers: DEFAULT_WRITERS,
        rounds: DEFAULT_ROUNDS,
        deterministic,
        timing,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const WRITERS: usize = 24;
    const ROUNDS: usize = 3;

    #[test]
    fn workload_is_deterministic() {
        let a = deterministic_workload(11, WRITERS, ROUNDS);
        let b = deterministic_workload(11, WRITERS, ROUNDS);
        assert_eq!(a, b);
    }

    #[test]
    fn every_write_commits_and_replicates() {
        let m = deterministic_workload(5, WRITERS, ROUNDS);
        assert_eq!(m.commits, m.writes);
        // Two replication destinations per write, each reaching a
        // terminal step; applies add the origin's local apply.
        assert_eq!(m.send_entries, m.writes * 2);
        assert_eq!(m.applies, m.writes * 3);
        assert_eq!(m.wal_appends, m.writes * 3);
        assert!(m.wal_bytes > m.wal_appends, "entries have a real footprint");
    }

    #[test]
    fn batching_amortizes_fanout_events() {
        let m = deterministic_workload(5, WRITERS, ROUNDS);
        // Unbatched pays at least one flusher wake per send entry; the
        // batched run must consume several times fewer events.
        assert!(m.unbatched_fanout_events >= m.send_entries);
        assert!(
            m.fanout_events * 4 <= m.unbatched_fanout_events,
            "batching must amortize events: batched {} vs unbatched {}",
            m.fanout_events,
            m.unbatched_fanout_events,
        );
        assert!(m.max_batch > 1, "rounds must actually batch");
    }

    #[test]
    fn steady_state_hops_do_not_allocate() {
        let m = deterministic_workload(5, WRITERS, ROUNDS);
        // The warmup round fills the slab; every measured envelope encode
        // must recycle.
        assert_eq!(
            m.slab_allocated, 0,
            "steady-state hops must not allocate scratch: {m:?}"
        );
        assert!(m.slab_reused > 0);
    }
}

//! Lineage-plane performance baseline: the fixed-seed workload behind
//! `perf_baseline` (which writes `BENCH_lineage.json`) and the determinism
//! test.
//!
//! The baseline is split in two:
//!
//! - [`DeterministicMetrics`] — structural counters from a fixed hop
//!   workload: lineage-plane stats ([`antipode_lineage::LineageStats`]: copy-on-write clones,
//!   wire/base64 encodes vs cache hits, canonical decode adoptions), final
//!   sizes, and interner population. These are an allocation/work *proxy*
//!   that must be byte-identical across runs with the same seed — the
//!   determinism test asserts exactly that.
//! - [`TimingMetrics`] — wall-clock ns/op for the hot operations (clone,
//!   hop, serialize cached/dirty, deserialize, transfer). Machine-dependent,
//!   never asserted on; recorded so regressions show up in CI artifacts.

use std::time::Instant;

use antipode_lineage::{interner, stats};
use antipode_lineage::{Baggage, Lineage, LineageId, WriteId};
use serde::Serialize;

/// Datastore population of the workload — shaped like the paper's
/// DeathStarBench deployment (a handful of stores, many keys).
const STORES: [&str; 6] = [
    "post-storage-mongodb",
    "post-storage-redis",
    "write-home-timeline-rabbitmq",
    "user-timeline-mongodb",
    "media-mongodb",
    "social-graph-redis",
];

/// Default dependency count per lineage (the paper's lineages are small;
/// 16 matches the PR's acceptance benchmarks).
pub const DEFAULT_DEPS: usize = 16;
/// Default number of RPC hops simulated by the deterministic workload.
pub const DEFAULT_HOPS: usize = 256;

/// splitmix64 — deterministic, dependency-free.
fn mix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Structural counters from the fixed-seed hop workload. Identical across
/// runs with the same seed, on any machine.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct DeterministicMetrics {
    /// Dependencies in the final lineage.
    pub final_deps: usize,
    /// Wire-format size of the final lineage, bytes.
    pub final_wire_bytes: usize,
    /// Flat v2 frame size of the final lineage, bytes.
    pub final_frame_bytes: usize,
    /// Header size of baggage carrying the final lineage, bytes.
    pub final_header_bytes: usize,
    /// Distinct datastore names interned by the workload thread.
    pub interned_stores: usize,
    /// Dependency-vector deep copies forced by copy-on-write.
    pub cow_dep_clones: u64,
    /// Full wire encodes performed.
    pub wire_encodes: u64,
    /// Wire requests served from cache.
    pub wire_cache_hits: u64,
    /// Base64 encodes performed.
    pub b64_encodes: u64,
    /// Base64 requests served from cache.
    pub b64_cache_hits: u64,
    /// Flat v2 frame encodes performed.
    pub frame_encodes: u64,
    /// Frame requests served from cache.
    pub frame_cache_hits: u64,
    /// Decodes that adopted canonical input bytes as the wire cache.
    pub canonical_decodes: u64,
}

/// Wall-clock measurements, ns per operation (machine-dependent).
#[derive(Clone, Debug, Serialize)]
pub struct TimingMetrics {
    /// Cloning a lineage (shallow, cache-sharing).
    pub clone_ns: f64,
    /// One full baggage hop: inject → header → parse → extract.
    pub hop_ns: f64,
    /// `serialize()` with a warm cache (the per-hop steady state).
    pub serialize_cached_ns: f64,
    /// `serialize()` immediately after a mutation (full re-encode).
    pub serialize_dirty_ns: f64,
    /// `deserialize()` of a canonical payload.
    pub deserialize_ns: f64,
    /// `transfer_from` into an empty lineage (the read-path union).
    pub transfer_into_empty_ns: f64,
    /// Hops per second implied by `hop_ns`.
    pub hop_ops_per_sec: f64,
}

/// The full baseline document written to `BENCH_lineage.json`.
#[derive(Clone, Debug, Serialize)]
pub struct LineageBaseline {
    /// Artifact name.
    pub bench: String,
    /// Workload seed.
    pub seed: u64,
    /// Dependencies per lineage.
    pub deps: usize,
    /// Hops in the deterministic workload.
    pub hops: usize,
    /// Same-seed-stable structural counters.
    pub deterministic: DeterministicMetrics,
    /// Machine-dependent timings.
    pub timing: TimingMetrics,
}

/// Builds a lineage with `deps` dependencies drawn deterministically from
/// `seed`.
pub fn build_lineage(seed: u64, deps: usize) -> Lineage {
    let mut state = seed;
    let mut l = Lineage::new(LineageId(seed));
    while l.len() < deps {
        let r = mix(&mut state);
        let store = STORES[(r % STORES.len() as u64) as usize];
        let key = format!("key-{}", r >> 16);
        l.append(WriteId::new(store, key, (r & 0xffff) + 1));
    }
    l
}

/// Runs the fixed hop workload and returns its structural counters.
///
/// Each hop models a service boundary: the lineage is injected into
/// baggage, carried across the edge, parsed on the far side, and extracted.
/// Half the edges are text (header render/parse, the HTTP path); the other
/// half are binary (flat v2 frame, the RPC/engine path) — in alternating
/// runs of four, so pass-through hops forward over the same transport that
/// delivered them and the adopted caches get re-used. On arrival the
/// receiving service persists the value, which serializes the lineage into
/// a datastore envelope — the wire-cache consumer that canonical decode
/// adoption exists for. Every fourth hop the receiving service starts a
/// request of its own — transferring the received lineage in and appending
/// a write — while the other hops forward the lineage unchanged, the
/// pass-through case the wire/base64/frame caches exist for.
pub fn deterministic_workload(seed: u64, deps: usize, hops: usize) -> DeterministicMetrics {
    let mut state = seed ^ 0x5eed;
    let mut lineage = build_lineage(seed, deps);
    stats::reset();
    for hop in 0..hops as u64 {
        let mut out = Baggage::new();
        out.set_lineage(&lineage);
        let incoming = if hop % 8 < 4 {
            Baggage::from_header(&out.to_header())
        } else {
            Baggage::from_frame(&out.to_frame()).expect("frame round-trips")
        };
        let received = incoming.lineage().expect("hop carries a lineage");
        // The receiver stores the value: the shim envelopes it under the
        // received lineage, which asks for the wire form. After a canonical
        // text-edge decode this must be a cache hit, not a re-encode.
        std::hint::black_box(received.wire_size());
        lineage = if hop % 4 == 0 {
            let mut request = Lineage::new(LineageId(seed ^ (hop + 1)));
            request.transfer_from(&received);
            let r = mix(&mut state);
            let store = STORES[(r % STORES.len() as u64) as usize];
            request.append(WriteId::new(store, format!("hop-{hop}"), (r & 0xffff) + 1));
            request
        } else {
            received
        };
    }
    let mut carrier = Baggage::new();
    carrier.set_lineage(&lineage);
    let final_wire_bytes = lineage.wire_size();
    let final_frame_bytes = lineage.frame_size();
    let final_header_bytes = carrier.header_size();
    // Snapshot last so the final-size probes above are themselves counted.
    let stats = stats::snapshot();
    DeterministicMetrics {
        final_deps: lineage.len(),
        final_wire_bytes,
        final_frame_bytes,
        final_header_bytes,
        interned_stores: interner::interned_count(),
        cow_dep_clones: stats.cow_dep_clones,
        wire_encodes: stats.wire_encodes,
        wire_cache_hits: stats.wire_cache_hits,
        b64_encodes: stats.b64_encodes,
        b64_cache_hits: stats.b64_cache_hits,
        frame_encodes: stats.frame_encodes,
        frame_cache_hits: stats.frame_cache_hits,
        canonical_decodes: stats.canonical_decodes,
    }
}

fn time_ns(iters: u64, mut f: impl FnMut()) -> f64 {
    // Warm-up, then one timed block.
    for _ in 0..iters.min(100) {
        f();
    }
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

/// Measures wall-clock timings of the lineage-plane hot paths.
pub fn timing_workload(seed: u64, deps: usize) -> TimingMetrics {
    let lineage = build_lineage(seed, deps);
    let bytes = lineage.serialize();

    let clone_ns = time_ns(100_000, || {
        std::hint::black_box(lineage.clone());
    });

    let hop_ns = time_ns(20_000, || {
        let mut b = Baggage::new();
        b.set_lineage(&lineage);
        let header = b.to_header();
        let back = Baggage::from_header(&header);
        std::hint::black_box(back.lineage().expect("valid hop"));
    });

    let serialize_cached_ns = time_ns(100_000, || {
        std::hint::black_box(lineage.serialize());
    });

    let mut version = 1_000_000u64;
    let serialize_dirty_ns = time_ns(20_000, || {
        // Fresh clone each iteration keeps the lineage at `deps` deps; the
        // append pays the COW copy, the serialize the full re-encode.
        let mut dirty = lineage.clone();
        version += 1;
        dirty.append(WriteId::new(STORES[0], "dirty-key", version));
        std::hint::black_box(dirty.serialize());
    });

    let deserialize_ns = time_ns(50_000, || {
        std::hint::black_box(Lineage::deserialize(&bytes).expect("round trip"));
    });

    let transfer_into_empty_ns = time_ns(100_000, || {
        let mut l = Lineage::new(LineageId(2));
        l.transfer_from(&lineage);
        std::hint::black_box(l);
    });

    TimingMetrics {
        clone_ns,
        hop_ns,
        serialize_cached_ns,
        serialize_dirty_ns,
        deserialize_ns,
        transfer_into_empty_ns,
        hop_ops_per_sec: 1e9 / hop_ns,
    }
}

/// Runs the full baseline (deterministic workload + timings).
pub fn run(seed: u64) -> LineageBaseline {
    LineageBaseline {
        bench: "lineage_plane".to_string(),
        seed,
        deps: DEFAULT_DEPS,
        hops: DEFAULT_HOPS,
        deterministic: deterministic_workload(seed, DEFAULT_DEPS, DEFAULT_HOPS),
        timing: timing_workload(seed, DEFAULT_DEPS),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workload_is_deterministic_within_a_thread() {
        // Same seed twice in one thread: interner population differs only if
        // the second run interns new names — it must not.
        let a = deterministic_workload(11, 8, 32);
        let b = deterministic_workload(11, 8, 32);
        assert_eq!(a, b);
    }

    #[test]
    fn hop_workload_hits_the_caches() {
        let m = deterministic_workload(3, DEFAULT_DEPS, DEFAULT_HOPS);
        assert!(
            m.canonical_decodes > 0,
            "hop decodes must adopt canonical inputs: {m:?}"
        );
        // The envelope write on every text-edge hop asks for the wire form
        // of a just-decoded lineage; canonical adoption must serve it from
        // cache. Both text edges of every 4-hop cycle qualify, so the hit
        // count is bounded below by half the hops — this pins the
        // historical regression where the counter sat at zero because no
        // consumer ever re-asked for the wire bytes.
        assert!(
            m.wire_cache_hits >= DEFAULT_HOPS as u64 / 2,
            "envelope writes after canonical decodes must hit the wire cache: {m:?}"
        );
        // Pass-through text hops forward the adopted base64 unchanged.
        assert!(
            m.b64_cache_hits > 0,
            "pass-through hops must be base64 cache hits: {m:?}"
        );
        // Binary edges: the first frame render of a binary run encodes,
        // later pass-through hops forward the adopted frame from cache.
        assert!(
            m.frame_encodes > 0 && m.frame_cache_hits > 0,
            "binary hops must exercise the frame codec and its cache: {m:?}"
        );
    }
}

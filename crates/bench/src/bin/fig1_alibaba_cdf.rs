//! Reproduces Fig 1 of the paper (Alibaba trace CDFs). Pass `--quick` for a
//! smaller corpus.
fn main() {
    antipode_bench::experiments::fig1::run(antipode_bench::experiments::quick_flag());
}

//! Ablation: early vs naïve read-path barrier placement (§6.3).
fn main() {
    antipode_bench::experiments::ablation_barrier::run_experiment(
        antipode_bench::experiments::quick_flag(),
    );
}

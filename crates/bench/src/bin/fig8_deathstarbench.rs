//! Reproduces Fig 8 (DeathStarBench throughput/latency + consistency window).
fn main() {
    antipode_bench::experiments::fig8::run_experiment(antipode_bench::experiments::quick_flag());
}

//! Writes the engine-plane perf baseline to `BENCH_engine.json`.
//!
//! Usage: `engine_baseline [seed] [output-path]`. The default seed is fixed
//! so CI runs and the committed artifact describe the same workload; the
//! `deterministic` section of the output is identical across machines, the
//! `timing` section is not.

use antipode_bench::engine_perf;

const DEFAULT_SEED: u64 = 0xA471_90DE;

fn main() {
    let mut args = std::env::args().skip(1);
    let seed = args
        .next()
        .map(|s| s.parse().expect("seed must be an integer"))
        .unwrap_or(DEFAULT_SEED);
    let path = args
        .next()
        .unwrap_or_else(|| "BENCH_engine.json".to_string());

    let baseline = engine_perf::run(seed);
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    std::fs::write(&path, format!("{json}\n")).expect("baseline file writes");

    let d = &baseline.deterministic;
    let t = &baseline.timing;
    println!("[artifact] {path}");
    println!(
        "deterministic: writes={} fanout_events={} (unbatched {}) send_entries={} applies={} wal={}B/{} appends slab_allocated={} slab_reused={}",
        d.writes,
        d.fanout_events,
        d.unbatched_fanout_events,
        d.send_entries,
        d.applies,
        d.wal_bytes,
        d.wal_appends,
        d.slab_allocated,
        d.slab_reused,
    );
    println!(
        "timing: hop={:.1}ns ({:.0} hops/s) unbatched={:.1}ns speedup={:.2}x commits/s={:.0} fanout_events/s={:.0} wal/commit={:.1}B crc/commit={:.1}ns avg_batch={:.1}",
        t.batched_hop_ns,
        t.hop_ops_per_sec,
        t.unbatched_hop_ns,
        t.batching_speedup,
        t.commits_per_sec,
        t.fanout_events_per_sec,
        t.wal_bytes_per_commit,
        t.crc_ns_per_commit,
        t.avg_batch,
    );
}

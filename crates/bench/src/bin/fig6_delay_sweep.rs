//! Reproduces Fig 6 (inconsistencies vs artificial notification delay).
fn main() {
    antipode_bench::experiments::fig6::run_experiment(antipode_bench::experiments::quick_flag());
}

//! Writes the speculation-plane baseline to `BENCH_speculation.json`.
//!
//! Usage: `speculation_baseline [seed] [output-path]`. The default seed is
//! fixed so CI runs and the committed artifact describe the same workload.
//! Latencies are virtual-time (deterministic per seed and build, but
//! floating-point derived) — the artifact documents the blocking vs
//! speculative divergence rather than gating CI bit-for-bit.

use antipode_bench::speculation;

const DEFAULT_SEED: u64 = 0x5BEC_BA55;

fn main() {
    let mut args = std::env::args().skip(1);
    let seed = args
        .next()
        .map(|s| s.parse().expect("seed must be an integer"))
        .unwrap_or(DEFAULT_SEED);
    let path = args
        .next()
        .unwrap_or_else(|| "BENCH_speculation.json".to_string());

    let baseline = speculation::run(seed);
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    std::fs::write(&path, format!("{json}\n")).expect("baseline file writes");

    println!("[artifact] {path}");
    for (name, cell) in [
        ("blocking", &baseline.blocking),
        ("speculative", &baseline.speculative),
        ("speculative+chaos", &baseline.speculative_chaos),
    ] {
        println!(
            "{name}: p50={:.2}s p99={:.2}s speculated={} confirmed={} violated={} \
             rollback_rate={:.2} buffer_hwm={} observed_violations={} leaked={}",
            cell.handler_latency.p50,
            cell.handler_latency.p99,
            cell.speculated,
            cell.confirmed,
            cell.violated,
            cell.rollback_rate,
            cell.buffer_high_water,
            cell.observed_violations,
            cell.leaked_writes,
        );
    }
    println!(
        "p99 speedup (blocking / speculative): {:.1}x",
        baseline.p99_speedup
    );
}

//! Reproduces Table 1 (inconsistency matrix). Pass `--quick` for fewer
//! requests per cell.
fn main() {
    antipode_bench::experiments::table1::run_experiment(antipode_bench::experiments::quick_flag());
}

//! Writes the lineage-plane perf baseline to `BENCH_lineage.json`.
//!
//! Usage: `perf_baseline [seed] [output-path]`. The default seed is fixed so
//! CI runs and the committed artifact describe the same workload; the
//! `deterministic` section of the output is identical across machines, the
//! `timing` section is not.

use antipode_bench::perf;

const DEFAULT_SEED: u64 = 0xA471_90DE;

fn main() {
    let mut args = std::env::args().skip(1);
    let seed = args
        .next()
        .map(|s| s.parse().expect("seed must be an integer"))
        .unwrap_or(DEFAULT_SEED);
    let path = args
        .next()
        .unwrap_or_else(|| "BENCH_lineage.json".to_string());

    let baseline = perf::run(seed);
    let json = serde_json::to_string_pretty(&baseline).expect("baseline serializes");
    std::fs::write(&path, format!("{json}\n")).expect("baseline file writes");

    let d = &baseline.deterministic;
    let t = &baseline.timing;
    println!("[artifact] {path}");
    println!(
        "deterministic: deps={} wire={}B header={}B cow_clones={} encodes={} cache_hits={} canonical_decodes={}",
        d.final_deps,
        d.final_wire_bytes,
        d.final_header_bytes,
        d.cow_dep_clones,
        d.wire_encodes,
        d.wire_cache_hits,
        d.canonical_decodes,
    );
    println!(
        "timing: clone={:.1}ns hop={:.1}ns ({:.0} hops/s) serialize cached={:.1}ns dirty={:.1}ns deserialize={:.1}ns transfer={:.1}ns",
        t.clone_ns,
        t.hop_ns,
        t.hop_ops_per_sec,
        t.serialize_cached_ns,
        t.serialize_dirty_ns,
        t.deserialize_ns,
        t.transfer_into_empty_ns,
    );
}

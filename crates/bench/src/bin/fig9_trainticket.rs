//! Reproduces Fig 9 (TrainTicket throughput/latency with the barrier on the
//! critical path).
fn main() {
    antipode_bench::experiments::fig9::run_experiment(antipode_bench::experiments::quick_flag());
}

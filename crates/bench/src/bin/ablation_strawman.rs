//! Ablation: synchronous replication vs Antipode (§3.3).
fn main() {
    antipode_bench::experiments::ablation_strawman::run_experiment(
        antipode_bench::experiments::quick_flag(),
    );
}

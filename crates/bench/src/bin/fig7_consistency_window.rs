//! Reproduces Fig 7 (consistency window, original vs Antipode).
fn main() {
    antipode_bench::experiments::fig7::run_experiment(antipode_bench::experiments::quick_flag());
}

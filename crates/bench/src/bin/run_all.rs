//! Runs every experiment in sequence (the full evaluation). Pass `--quick`
//! to shrink each experiment.
fn main() {
    use antipode_bench::experiments as e;
    let q = e::quick_flag();
    e::fig1::run(q);
    e::table1::run_experiment(q);
    e::fig6::run_experiment(q);
    e::fig7::run_experiment(q);
    e::fig8::run_experiment(q);
    e::fig9::run_experiment(q);
    e::table3::run_experiment(q);
    e::metadata::run_experiment(q);
    e::ablation_metadata::run_experiment(q);
    e::ablation_barrier::run_experiment(q);
    e::ablation_strawman::run_experiment(q);
    println!("\nAll experiments complete; artifacts in target/experiments/.");
}

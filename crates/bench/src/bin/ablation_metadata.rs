//! Ablation: lineage dependency sets vs vector clocks (§3.2).
fn main() {
    antipode_bench::experiments::ablation_metadata::run_experiment(
        antipode_bench::experiments::quick_flag(),
    );
}

//! Reproduces the §7.4 lineage-metadata size analysis.
fn main() {
    antipode_bench::experiments::metadata::run_experiment(antipode_bench::experiments::quick_flag());
}

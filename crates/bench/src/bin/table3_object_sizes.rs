//! Reproduces Table 3 (per-store object-size increase from lineage metadata).
fn main() {
    antipode_bench::experiments::table3::run_experiment(antipode_bench::experiments::quick_flag());
}

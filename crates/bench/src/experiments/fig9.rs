//! Fig 9: TrainTicket cancel/refund. (Left) average throughput vs latency
//! with and without Antipode — the barrier sits on the request's critical
//! path, so the consistency wait shows up directly (§7.4: ≈15 % throughput,
//! ≈17 % latency overhead). (Right) consistency window at peak. Also the
//! §7.3 baseline violation rate (≈0.57 %).

use std::time::Duration;

use antipode_app::train_ticket::{run, TrainTicketConfig};
use serde::Serialize;

/// One throughput/latency point.
#[derive(Clone, Debug, Serialize)]
pub struct LoadPoint {
    /// Offered load (req/s).
    pub offered_rps: f64,
    /// Achieved throughput (req/s).
    pub throughput_rps: f64,
    /// Mean latency (ms).
    pub latency_mean_ms: f64,
    /// p99 latency (ms).
    pub latency_p99_ms: f64,
    /// Violations (%).
    pub violations_pct: f64,
    /// Consistency window mean (ms).
    pub window_mean_ms: f64,
}

/// One variant curve.
#[derive(Clone, Debug, Serialize)]
pub struct Curve {
    /// "original" or "antipode".
    pub variant: String,
    /// The points.
    pub points: Vec<LoadPoint>,
}

/// The Fig 9 result.
#[derive(Clone, Debug, Serialize)]
pub struct Fig9 {
    /// Issue window per point (seconds).
    pub duration_s: u64,
    /// Both curves.
    pub curves: Vec<Curve>,
    /// Latency overhead at peak (fraction, antipode vs original).
    pub latency_overhead_at_peak: f64,
    /// Throughput change at peak (fraction).
    pub throughput_delta_at_peak: f64,
}

/// Runs the experiment.
pub fn run_experiment(quick: bool) -> Fig9 {
    let duration = Duration::from_secs(if quick { 60 } else { 300 });
    let rates: &[f64] = if quick {
        &[120.0, 300.0, 640.0]
    } else {
        &[60.0, 120.0, 200.0, 300.0, 360.0, 420.0, 480.0, 560.0, 640.0]
    };
    // Latency overhead is measured below the knee (300 rps); the
    // throughput penalty appears past the Antipode capacity knee (480 rps).
    let peak = 300.0;
    let sat = 640.0;
    crate::header(&format!(
        "Fig 9 — TrainTicket cancel/refund ({}s windows)",
        duration.as_secs()
    ));
    let mut curves = Vec::new();
    let mut peak_points: Vec<LoadPoint> = Vec::new();
    let mut sat_points: Vec<LoadPoint> = Vec::new();
    for antipode in [false, true] {
        let variant = if antipode { "antipode" } else { "original" };
        println!("--- {variant} ---");
        println!(
            "{:>9} {:>12} {:>13} {:>12} {:>11} {:>12}",
            "rps", "tput(rps)", "lat-mean(ms)", "lat-p99(ms)", "violations", "window(ms)"
        );
        let mut points = Vec::new();
        for &rate in rates {
            let mut cfg = TrainTicketConfig::new(rate).with_duration(duration);
            if antipode {
                cfg = cfg.with_antipode();
            }
            let r = run(&cfg);
            let lat = r.client.latency().expect("requests completed");
            let win = r
                .consistency_window
                .summary()
                .map(|s| s.mean)
                .unwrap_or(0.0);
            let pt = LoadPoint {
                offered_rps: rate,
                throughput_rps: r.client.throughput(),
                latency_mean_ms: lat.mean * 1e3,
                latency_p99_ms: lat.p99 * 1e3,
                violations_pct: r.violations.percent(),
                window_mean_ms: win * 1e3,
            };
            println!(
                "{:>9.0} {:>12.1} {:>13.2} {:>12.2} {:>10.2}% {:>12.2}",
                rate,
                pt.throughput_rps,
                pt.latency_mean_ms,
                pt.latency_p99_ms,
                pt.violations_pct,
                pt.window_mean_ms
            );
            if rate == peak {
                peak_points.push(pt.clone());
            }
            if rate == sat {
                sat_points.push(pt.clone());
            }
            points.push(pt);
        }
        curves.push(Curve {
            variant: variant.into(),
            points,
        });
    }
    let lat_overhead = if peak_points.len() == 2 {
        (peak_points[1].latency_mean_ms - peak_points[0].latency_mean_ms)
            / peak_points[0].latency_mean_ms
    } else {
        0.0
    };
    let tput_delta = if sat_points.len() == 2 {
        (sat_points[1].throughput_rps - sat_points[0].throughput_rps) / sat_points[0].throughput_rps
    } else {
        0.0
    };
    println!(
        "latency overhead at {peak} rps: {:.0}% (paper ≈17%); throughput delta at {sat} rps: {:.0}% (paper ≈-15%)",
        lat_overhead * 100.0,
        tput_delta * 100.0
    );
    let out = Fig9 {
        duration_s: duration.as_secs(),
        curves,
        latency_overhead_at_peak: lat_overhead,
        throughput_delta_at_peak: tput_delta,
    };
    crate::write_artifact("fig9_trainticket", &out);
    out
}

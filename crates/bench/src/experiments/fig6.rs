//! Fig 6: percentage of inconsistencies in Post-Notification as a function
//! of an artificial delay added before publishing the notification. One
//! line per post-storage datastore; the notifier is always SNS.

use std::time::Duration;

use antipode_app::post_notification::{run, NotifierKind, PostNotifConfig, PostStoreKind};
use serde::Serialize;

/// One sweep line.
#[derive(Clone, Debug, Serialize)]
pub struct SweepLine {
    /// Post-storage datastore.
    pub post_store: String,
    /// (delay seconds, inconsistency %) points.
    pub points: Vec<(f64, f64)>,
}

/// The Fig 6 result.
#[derive(Clone, Debug, Serialize)]
pub struct Fig6 {
    /// Requests per point.
    pub requests: usize,
    /// One line per store.
    pub lines: Vec<SweepLine>,
}

/// Runs the experiment.
pub fn run_experiment(quick: bool) -> Fig6 {
    let requests = if quick { 200 } else { 1000 };
    let delays: &[f64] = &[0.0, 0.5, 1.0, 2.0, 5.0, 10.0, 20.0, 30.0, 50.0];
    crate::header(&format!(
        "Fig 6 — inconsistencies vs artificial delay (notifier = SNS, {requests} req/point)"
    ));
    print!("{:>10}", "delay(s)");
    for d in delays {
        print!(" {d:>7.1}");
    }
    println!();
    let mut lines = Vec::new();
    for p in PostStoreKind::ALL {
        print!("{:>10}", p.name());
        let mut points = Vec::new();
        for &d in delays {
            let r = run(&PostNotifConfig::new(p, NotifierKind::Sns)
                .with_requests(requests)
                .with_delay(Duration::from_secs_f64(d)));
            let pct = r.violations.percent();
            print!(" {pct:>6.1}%");
            points.push((d, pct));
        }
        println!();
        lines.push(SweepLine {
            post_store: p.name().into(),
            points,
        });
    }
    println!("paper anchor: S3 still ≈20% inconsistent at 50 s of delay; the fast stores reach ~0% within a few seconds.");
    let out = Fig6 { requests, lines };
    crate::write_artifact("fig6_delay_sweep", &out);
    out
}

//! Table 1: percentage of observed inconsistencies for post-storage ×
//! notifier combinations of off-the-shelf geo-replicated services (EU
//! writer, US reader), plus the Antipode verification column (§7.3: always
//! corrected).

use antipode_app::post_notification::{run, NotifierKind, PostNotifConfig, PostStoreKind};
use serde::Serialize;

/// One matrix cell.
#[derive(Clone, Debug, Serialize)]
pub struct Cell {
    /// Notifier (row).
    pub notifier: String,
    /// Post-storage (column).
    pub post_store: String,
    /// Baseline inconsistency percentage.
    pub baseline_pct: f64,
    /// Inconsistency percentage with Antipode (must be 0).
    pub antipode_pct: f64,
}

/// The Table 1 result.
#[derive(Clone, Debug, Serialize)]
pub struct Table1 {
    /// Requests per cell.
    pub requests: usize,
    /// All cells, row-major.
    pub cells: Vec<Cell>,
}

/// Paper values for side-by-side printing.
fn paper_value(n: NotifierKind, p: PostStoreKind) -> f64 {
    use NotifierKind as N;
    use PostStoreKind as P;
    match (n, p) {
        (N::Sns, P::MySql) => 95.0,
        (N::Sns, P::DynamoDb) => 95.0,
        (N::Sns, P::Redis) => 88.0,
        (N::Sns, P::S3) => 100.0,
        (N::Amq, P::MySql) => 8.0,
        (N::Amq, P::DynamoDb) => 7.0,
        (N::Amq, P::Redis) => 13.0,
        (N::Amq, P::S3) => 100.0,
        (N::DynamoDb, P::MySql) => 0.0,
        (N::DynamoDb, P::DynamoDb) => 0.0,
        (N::DynamoDb, P::Redis) => 0.0,
        (N::DynamoDb, P::S3) => 13.0,
    }
}

/// Runs the experiment. `quick` shrinks the per-cell request count.
pub fn run_experiment(quick: bool) -> Table1 {
    let requests = if quick { 250 } else { 1000 };
    crate::header(&format!(
        "Table 1 — inconsistency matrix ({requests} requests/cell)"
    ));
    println!(
        "{:>10} | {:>22} {:>22} {:>22} {:>22}",
        "notifier", "MySQL", "DynamoDB", "Redis", "S3"
    );
    println!("{:->10}-+{:->92}", "", "");
    let mut cells = Vec::new();
    for n in NotifierKind::ALL {
        print!("{:>10} |", n.name());
        for p in PostStoreKind::ALL {
            let base = run(&PostNotifConfig::new(p, n).with_requests(requests));
            let anti = run(&PostNotifConfig::new(p, n)
                .with_requests(requests)
                .with_antipode());
            let cell = Cell {
                notifier: n.name().into(),
                post_store: p.name().into(),
                baseline_pct: base.violations.percent(),
                antipode_pct: anti.violations.percent(),
            };
            print!(
                " {:>5.0}% (paper {:>3.0}%) ap:{:>2.0}%",
                cell.baseline_pct,
                paper_value(n, p),
                cell.antipode_pct
            );
            cells.push(cell);
        }
        println!();
    }
    let out = Table1 { requests, cells };
    assert!(
        out.cells.iter().all(|c| c.antipode_pct == 0.0),
        "Antipode must correct every combination (§7.3)"
    );
    println!("Antipode corrected every combination (all 0%).");
    crate::write_artifact("table1_inconsistencies", &out);
    out
}

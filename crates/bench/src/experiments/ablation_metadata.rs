//! Ablation: lineage dependency sets vs vector clocks (paper §3.2).
//!
//! §3.2 argues that vector-clock-style tracking scales with the number of
//! tracked entities while lineages scale with the number of *relevant*
//! dependencies, and that blindly accumulating transitive dependencies
//! (which Antipode truncates at lineage boundaries, §5.1) explodes the
//! metadata. This experiment quantifies all three on the Alibaba-like
//! trace:
//!
//! - **lineage** — Antipode's worst case (every stateful op of the request);
//! - **sparse VC** — one entry per stateful service the request touches (the
//!   floor for any vector-clock protocol);
//! - **accumulated VC** — the sparse VC unioned with upstream requests'
//!   clocks (the linchpin-object effect: popular objects carry their
//!   writers' clocks into every reader).

use antipode_lineage::VectorClock;
use antipode_trace::{generate_many, worst_case_lineage, CallGraph};
use serde::Serialize;

/// Per-variant size statistics (bytes).
#[derive(Clone, Debug, Serialize)]
pub struct SizeStats {
    /// Variant name.
    pub variant: String,
    /// Mean size.
    pub mean: f64,
    /// Median size.
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

/// The ablation result.
#[derive(Clone, Debug, Serialize)]
pub struct AblationMetadata {
    /// Corpus size.
    pub requests: usize,
    /// One row per tracking strategy.
    pub rows: Vec<SizeStats>,
}

fn stats_of(label: &str, mut sizes: Vec<f64>) -> SizeStats {
    sizes.sort_by(f64::total_cmp);
    let pct = |p: f64| {
        let idx = ((p / 100.0) * (sizes.len() as f64 - 1.0)).round() as usize;
        sizes[idx.min(sizes.len() - 1)]
    };
    SizeStats {
        variant: label.into(),
        mean: sizes.iter().sum::<f64>() / sizes.len() as f64,
        p50: pct(50.0),
        p99: pct(99.0),
        max: *sizes.last().expect("nonempty"),
    }
}

fn sparse_vc(graph: &CallGraph) -> VectorClock {
    let mut vc = VectorClock::new();
    for call in graph.calls.iter().filter(|c| c.stateful) {
        vc.observe(format!("s{}", call.service), u64::from(call.depth) + 1);
    }
    vc
}

/// Runs the ablation. `quick` shrinks the corpus.
pub fn run_experiment(quick: bool) -> AblationMetadata {
    let n = if quick { 5_000 } else { 50_000 };
    crate::header(&format!(
        "Ablation §3.2 — lineage vs vector clocks ({n} requests)"
    ));
    let graphs = generate_many(0xAB1A, n);

    let lineage_sizes: Vec<f64> = graphs
        .iter()
        .enumerate()
        .map(|(i, g)| worst_case_lineage(g, i as u64).wire_size() as f64)
        .collect();

    let clocks: Vec<VectorClock> = graphs.iter().map(sparse_vc).collect();
    let sparse_sizes: Vec<f64> = clocks.iter().map(|c| c.wire_size() as f64).collect();

    // Accumulated VC: each request reads from K=5 "upstream" requests and,
    // without lineage truncation, must merge their clocks.
    let accumulated_sizes: Vec<f64> = clocks
        .iter()
        .enumerate()
        .map(|(i, c)| {
            let mut acc = c.clone();
            for j in 1..=5usize {
                acc.merge(&clocks[(i + j * 104_729) % clocks.len()]);
            }
            acc.wire_size() as f64
        })
        .collect();

    let rows = vec![
        stats_of("lineage (Antipode worst case)", lineage_sizes),
        stats_of("vector clock (touched services)", sparse_sizes),
        stats_of("vector clock (5 upstream merges)", accumulated_sizes),
    ];
    println!(
        "{:>36} {:>10} {:>10} {:>10} {:>10}",
        "variant", "mean(B)", "p50(B)", "p99(B)", "max(B)"
    );
    for r in &rows {
        println!(
            "{:>36} {:>10.0} {:>10.0} {:>10.0} {:>10.0}",
            r.variant, r.mean, r.p50, r.p99, r.max
        );
    }
    println!("takeaway: per-request lineages stay small; transitive accumulation (what");
    println!(
        "  Antipode's lineage truncation + explicit transfer avoids, §5.1) multiplies the cost."
    );
    println!("  (The touched-services clock is a *floor*: its entries cannot name which write to");
    println!("  wait for, so enforcing with it needs per-service replication-progress exchange.)");
    let out = AblationMetadata { requests: n, rows };
    crate::write_artifact("ablation_metadata", &out);
    out
}

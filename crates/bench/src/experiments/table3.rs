//! Table 3: average object-size increase from the original applications to
//! the Antipode-enabled version, per datastore.
//!
//! We build the representative lineage each store carries in the evaluation
//! (the Post-Notification or DeathStarBench write it participates in),
//! measure our shim's actual storage overhead (envelope + store-specific
//! amplification), and report it against the paper's measured base object
//! sizes.

use antipode_lineage::{Lineage, LineageId, WriteId};
use antipode_sim::net::regions::{EU, US};
use antipode_sim::net::Network;
use antipode_sim::Sim;
use antipode_store::{
    DynamoDb, DynamoDbShim, MongoDb, MongoDbShim, MySql, MySqlShim, RabbitMq, Redis, RedisShim,
    S3Shim, Sns, S3,
};
use serde::Serialize;
use std::rc::Rc;

/// One Table 3 row.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Datastore.
    pub store: String,
    /// Our measured per-object overhead (bytes).
    pub ours_bytes: usize,
    /// Our overhead as % of the paper's base object size.
    pub ours_pct: f64,
    /// Paper's reported increase (bytes).
    pub paper_bytes: usize,
    /// Paper's reported increase (%).
    pub paper_pct: f64,
}

/// The Table 3 result.
#[derive(Clone, Debug, Serialize)]
pub struct Table3 {
    /// All rows.
    pub rows: Vec<Row>,
}

/// The lineage a post-storage write carries in Post-Notification: the
/// request's prior deps (here: none — the post is the first write).
/// The notification's lineage carries the post write.
fn post_lineage(store: &str) -> Lineage {
    let mut l = Lineage::new(LineageId(0x7AB1E3));
    l.append(WriteId::new(
        format!("post-storage-{store}"),
        "post-123456",
        42,
    ));
    l
}

/// Runs the measurement.
pub fn run_experiment(_quick: bool) -> Table3 {
    crate::header("Table 3 — object-size increase from lineage metadata");
    let sim = Sim::new(0x7AB);
    let net = Rc::new(Network::global_triangle());
    let regions = [EU, US];

    // Paper base object sizes implied by Table 3 (bytes, pct):
    // DynamoDB +42B (0.01% of 400KB), MySQL +14kB (1.5% of ~933KB),
    // Redis +105B (2% of ~5.3KB), S3 +320B (0.03% of ~1MB),
    // MongoDB +46B (9% of ~511B), SNS +32B (4.8% of ~667B),
    // RabbitMQ +87B (20% of ~435B).
    let mysql = MySql::new(&sim, net.clone(), "mysql", &regions);
    let ddb = DynamoDb::new(&sim, net.clone(), "dynamodb", &regions);
    let redis = Redis::new(&sim, net.clone(), "redis", &regions);
    let s3 = S3::new(&sim, net.clone(), "s3", &regions);
    let mongo = MongoDb::new(&sim, net.clone(), "mongodb", &regions);
    let sns = Sns::new(&sim, net.clone(), "sns", &regions);
    let rabbit = RabbitMq::new(&sim, net.clone(), "rabbitmq", &regions);

    let lin = post_lineage("x");
    // Notifier messages carry the post dependency; envelope overhead =
    // serialized lineage + framing (measured identically via Envelope).
    let notif_env = antipode_store::Envelope::with_lineage(bytes::Bytes::new(), lin.clone());
    let notif_overhead = notif_env.overhead();

    let rows = vec![
        Row {
            store: "DynamoDB".into(),
            ours_bytes: DynamoDbShim::new(&ddb).storage_overhead(&lin),
            ours_pct: 0.0, // filled below
            paper_bytes: 42,
            paper_pct: 0.01,
        },
        Row {
            store: "MySQL".into(),
            ours_bytes: MySqlShim::new(&mysql).storage_overhead(&lin),
            ours_pct: 0.0,
            paper_bytes: 14_000,
            paper_pct: 1.5,
        },
        Row {
            store: "Redis".into(),
            ours_bytes: RedisShim::new(&redis).storage_overhead(&lin),
            ours_pct: 0.0,
            paper_bytes: 105,
            paper_pct: 2.0,
        },
        Row {
            store: "S3".into(),
            ours_bytes: S3Shim::new(&s3).storage_overhead(&lin),
            ours_pct: 0.0,
            paper_bytes: 320,
            paper_pct: 0.03,
        },
        Row {
            store: "MongoDB".into(),
            ours_bytes: MongoDbShim::new(&mongo).storage_overhead(&lin),
            ours_pct: 0.0,
            paper_bytes: 46,
            paper_pct: 9.0,
        },
        Row {
            store: "SNS".into(),
            ours_bytes: notif_overhead,
            ours_pct: 0.0,
            paper_bytes: 32,
            paper_pct: 4.8,
        },
        Row {
            store: "RabbitMQ".into(),
            ours_bytes: notif_overhead + antipode_store::rabbitmq::HEADER_OVERHEAD_BYTES,
            ours_pct: 0.0,
            paper_bytes: 87,
            paper_pct: 20.0,
        },
    ];
    // Base sizes implied by the paper's (bytes, pct) pairs.
    let mut rows: Vec<Row> = rows
        .into_iter()
        .map(|mut r| {
            let base = r.paper_bytes as f64 / (r.paper_pct / 100.0);
            r.ours_pct = r.ours_bytes as f64 / base * 100.0;
            r
        })
        .collect();
    rows.sort_by(|a, b| a.store.cmp(&b.store));

    println!(
        "{:>10} {:>12} {:>10} {:>14} {:>11}",
        "store", "ours(B)", "ours(%)", "paper(B)", "paper(%)"
    );
    for r in &rows {
        println!(
            "{:>10} {:>12} {:>9.2}% {:>14} {:>10.2}%",
            r.store, r.ours_bytes, r.ours_pct, r.paper_bytes, r.paper_pct
        );
    }
    let _ = (sns, rabbit);
    let out = Table3 { rows };
    crate::write_artifact("table3_object_sizes", &out);
    out
}

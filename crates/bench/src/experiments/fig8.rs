//! Fig 8: DeathStarBench social network. (Left) average throughput vs
//! latency for 50–150 req/s offered load, original vs Antipode, for US→EU
//! and US→SG replication pairs. (Right) consistency window at peak
//! (125 req/s). Also the §7.3 violation rates (≈0.1 % EU, ≈34 % SG with
//! high cross-run variance) and the §7.4 lineage-size observation (<200 B).

use std::time::Duration;

use antipode_app::social::{run, SocialConfig};
use antipode_sim::net::regions::{EU, SG};
use antipode_sim::Region;
use serde::Serialize;

/// One throughput/latency point.
#[derive(Clone, Debug, Serialize)]
pub struct LoadPoint {
    /// Offered load (req/s).
    pub offered_rps: f64,
    /// Achieved throughput (req/s).
    pub throughput_rps: f64,
    /// Mean writer latency (ms).
    pub latency_mean_ms: f64,
    /// p99 writer latency (ms).
    pub latency_p99_ms: f64,
}

/// One deployment × variant curve.
#[derive(Clone, Debug, Serialize)]
pub struct Curve {
    /// "US→EU" or "US→SG".
    pub pair: String,
    /// "original" or "antipode".
    pub variant: String,
    /// The throughput-latency points.
    pub points: Vec<LoadPoint>,
    /// Consistency window at peak load (ms, mean / p99).
    pub window_at_peak_ms: (f64, f64),
    /// Violation percentage (baseline) at peak.
    pub violations_pct: f64,
    /// Largest lineage observed (bytes; Antipode runs).
    pub max_lineage_bytes: usize,
}

/// The Fig 8 result.
#[derive(Clone, Debug, Serialize)]
pub struct Fig8 {
    /// Issue window per point (seconds).
    pub duration_s: u64,
    /// All four curves.
    pub curves: Vec<Curve>,
}

fn pair_name(r: Region) -> &'static str {
    if r == SG {
        "US→SG"
    } else {
        "US→EU"
    }
}

/// Runs the experiment.
pub fn run_experiment(quick: bool) -> Fig8 {
    let duration = Duration::from_secs(if quick { 60 } else { 300 });
    let rates: &[f64] = if quick {
        &[50.0, 100.0, 150.0]
    } else {
        &[50.0, 75.0, 100.0, 125.0, 150.0]
    };
    let peak = 125.0;
    crate::header(&format!(
        "Fig 8 — DeathStarBench social network ({}s windows)",
        duration.as_secs()
    ));
    let mut curves = Vec::new();
    for remote in [EU, SG] {
        for antipode in [false, true] {
            let variant = if antipode { "antipode" } else { "original" };
            println!("--- {} / {} ---", pair_name(remote), variant);
            println!(
                "{:>9} {:>12} {:>12} {:>12} {:>12} {:>11}",
                "rps", "tput(rps)", "lat-mean(ms)", "lat-p99(ms)", "window(ms)", "violations"
            );
            let mut points = Vec::new();
            let mut window_at_peak = (0.0, 0.0);
            let mut violations_at_peak = 0.0;
            let mut max_lineage = 0usize;
            for &rate in rates {
                let mut cfg = SocialConfig::new(remote, rate).with_duration(duration);
                if antipode {
                    cfg = cfg.with_antipode();
                }
                let r = run(&cfg);
                let lat = r.writer.latency().expect("requests completed");
                let win = r.consistency_window.summary().expect("windows recorded");
                let pt = LoadPoint {
                    offered_rps: rate,
                    throughput_rps: r.writer.throughput(),
                    latency_mean_ms: lat.mean * 1e3,
                    latency_p99_ms: lat.p99 * 1e3,
                };
                println!(
                    "{:>9.0} {:>12.1} {:>12.2} {:>12.2} {:>12.2} {:>10.2}%",
                    rate,
                    pt.throughput_rps,
                    pt.latency_mean_ms,
                    pt.latency_p99_ms,
                    win.mean * 1e3,
                    r.violations.percent()
                );
                if rate == peak || (quick && rate == 100.0) {
                    window_at_peak = (win.mean * 1e3, win.p99 * 1e3);
                    violations_at_peak = r.violations.percent();
                }
                max_lineage = max_lineage.max(r.max_lineage_bytes);
                points.push(pt);
            }
            curves.push(Curve {
                pair: pair_name(remote).into(),
                variant: variant.into(),
                points,
                window_at_peak_ms: window_at_peak,
                violations_pct: violations_at_peak,
                max_lineage_bytes: max_lineage,
            });
        }
    }
    println!("paper anchors: ≤2% throughput penalty with Antipode; window increase at peak");
    println!(
        "  small for US→EU, larger for US→SG; violations ≈0.1% (EU) vs ≈34% (SG, high variance);"
    );
    println!("  lineage metadata stayed below 200 bytes.");
    let out = Fig8 {
        duration_s: duration.as_secs(),
        curves,
    };
    crate::write_artifact("fig8_deathstarbench", &out);
    out
}

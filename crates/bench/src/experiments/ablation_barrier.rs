//! Ablation: barrier placement (paper §6.3).
//!
//! "Naïvely we could place a barrier call immediately preceding any read
//! call, and this would achieve XCY. While this fully automated solution is
//! attractive, by placing barrier on the critical path of every read request
//! we would add unacceptable delays and lead to user-visible slowdowns."
//!
//! Setup: posts written in the EU arrive (via notification) at a US-side
//! service; users poll their view a short, random think-time later. Two
//! placements of the same barrier:
//!
//! - **early (developer-placed)**: the barrier runs when the notification
//!   arrives, off the user's read path — by the time the user polls, the
//!   wait has (mostly) already been absorbed;
//! - **read-path (naïve)**: the barrier runs inside the user's read — every
//!   residual replication wait becomes user-visible latency.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use antipode::Antipode;
use antipode_lineage::{Lineage, LineageId};
use antipode_sim::net::regions::{EU, US};
use antipode_sim::net::Network;
use antipode_sim::{Samples, Sim};
use antipode_store::shim::KvShim;
use antipode_store::MySql;
use bytes::Bytes;
use serde::Serialize;

/// Latency stats for one placement (seconds).
#[derive(Clone, Debug, Serialize)]
pub struct PlacementRow {
    /// Placement name.
    pub placement: String,
    /// Mean user-visible read latency.
    pub mean_s: f64,
    /// Median.
    pub p50_s: f64,
    /// 99th percentile.
    pub p99_s: f64,
    /// Maximum.
    pub max_s: f64,
}

/// The ablation result.
#[derive(Clone, Debug, Serialize)]
pub struct AblationBarrier {
    /// Requests per placement.
    pub requests: usize,
    /// Both rows.
    pub rows: Vec<PlacementRow>,
}

fn measure(early: bool, requests: usize) -> Samples {
    let sim = Sim::new(0xBA44);
    let net = Rc::new(Network::global_triangle());
    let posts = MySql::new(&sim, net, "posts", &[EU, US]);
    let shim = KvShim::new(posts.store().clone());
    let mut ap = Antipode::new(sim.clone());
    ap.register(Rc::new(shim.clone()));

    let latencies = Rc::new(RefCell::new(Samples::new()));
    for i in 0..requests {
        let sim2 = sim.clone();
        let shim = shim.clone();
        let ap = ap.clone();
        let latencies = latencies.clone();
        sim.spawn(async move {
            use rand::Rng;
            let mut rng = sim2.rng(&format!("req-{i}"));
            sim2.sleep(Duration::from_millis(100 * i as u64)).await;
            // Writer (EU).
            let key = format!("post-{i}");
            let mut lineage = Lineage::new(LineageId(i as u64));
            shim.write(EU, &key, Bytes::from_static(b"body"), &mut lineage)
                .await
                .expect("EU configured");
            // The notification reaches the US-side service ~150 ms later.
            sim2.sleep(Duration::from_millis(150)).await;
            if early {
                // Developer placement: absorb the wait on arrival.
                ap.barrier(&lineage, US).await.expect("registered");
            }
            // The user polls after a short think time…
            let think = Duration::from_secs_f64(rng.random::<f64>() * 1.0);
            sim2.sleep(think).await;
            // …and the user-visible read begins here.
            let start = sim2.now();
            if !early {
                // Naïve placement: barrier inside the read path.
                ap.barrier(&lineage, US).await.expect("registered");
            }
            let got = shim.read(US, &key).await.expect("US configured");
            assert!(got.is_some(), "after a barrier the read must succeed");
            latencies
                .borrow_mut()
                .record_duration(sim2.now().since(start));
        });
    }
    sim.run();
    let out = latencies.borrow().clone();
    out
}

/// Runs the ablation.
pub fn run_experiment(quick: bool) -> AblationBarrier {
    let requests = if quick { 300 } else { 1000 };
    crate::header(&format!(
        "Ablation §6.3 — barrier placement ({requests} requests, MySQL)"
    ));
    let mut rows = Vec::new();
    println!(
        "{:>28} {:>10} {:>10} {:>10} {:>10}",
        "placement", "mean(s)", "p50(s)", "p99(s)", "max(s)"
    );
    for (early, name) in [
        (true, "early (off the read path)"),
        (false, "naïve (inside every read)"),
    ] {
        let s = measure(early, requests)
            .summary()
            .expect("samples recorded");
        let row = PlacementRow {
            placement: name.into(),
            mean_s: s.mean,
            p50_s: s.p50,
            p99_s: s.p99,
            max_s: s.max,
        };
        println!(
            "{:>28} {:>10.4} {:>10.4} {:>10.4} {:>10.4}",
            row.placement, row.mean_s, row.p50_s, row.p99_s, row.max_s
        );
        rows.push(row);
    }
    println!("takeaway: the same dependencies are enforced either way, but naïve read-path");
    println!("  placement turns residual replication lag into user-visible latency (§6.3).");
    let out = AblationBarrier { requests, rows };
    crate::write_artifact("ablation_barrier_placement", &out);
    out
}

//! §7.4 metadata-size analysis: lineage sizes observed in DeathStarBench
//! (< 200 B) and the worst-case projection over the Alibaba-like trace
//! (average ≈ 200 B, p99 < 1 KB).

use std::time::Duration;

use antipode_app::social::{run as run_social, SocialConfig};
use antipode_sim::net::regions::EU;
use antipode_trace::{analyze, generate_many};
use serde::Serialize;

/// The metadata analysis result.
#[derive(Clone, Debug, Serialize)]
pub struct MetadataSizes {
    /// Largest lineage observed in the DeathStarBench run (bytes).
    pub dsb_max_bytes: usize,
    /// Trace corpus size.
    pub trace_requests: usize,
    /// Worst-case mean over the trace (bytes).
    pub trace_mean_bytes: f64,
    /// Worst-case p99 over the trace (bytes).
    pub trace_p99_bytes: f64,
    /// Worst-case max over the trace (bytes).
    pub trace_max_bytes: f64,
}

/// Runs the analysis.
pub fn run_experiment(quick: bool) -> MetadataSizes {
    crate::header("§7.4 — lineage metadata sizes");
    // DeathStarBench observation.
    let social = run_social(
        &SocialConfig::new(EU, 50.0)
            .with_duration(Duration::from_secs(if quick { 30 } else { 120 }))
            .with_antipode(),
    );
    println!(
        "DeathStarBench: max lineage {} B (paper: below 200 B)",
        social.max_lineage_bytes
    );

    // Alibaba worst case.
    let n = if quick { 10_000 } else { 100_000 };
    let graphs = generate_many(0x4E7A, n);
    let report = analyze(&graphs);
    println!(
        "Alibaba-like worst case over {} requests: mean {:.0} B (paper ≈200 B), p99 {:.0} B (paper <1 KB), max {:.0} B",
        report.requests, report.mean_bytes, report.p99_bytes, report.max_bytes
    );
    let out = MetadataSizes {
        dsb_max_bytes: social.max_lineage_bytes,
        trace_requests: report.requests,
        trace_mean_bytes: report.mean_bytes,
        trace_p99_bytes: report.p99_bytes,
        trace_max_bytes: report.max_bytes,
    };
    crate::write_artifact("metadata_sizes", &out);
    out
}

//! Fig 7: consistency window in Post-Notification for the original
//! application vs the Antipode-enabled version, per post-storage datastore
//! (notifier = SNS). In the original, reads proceed immediately (and often
//! return inconsistent results); with Antipode the window is the
//! time-to-consistency enforced by the barrier.

use antipode_app::post_notification::{run, NotifierKind, PostNotifConfig, PostStoreKind};
use serde::Serialize;

/// Window summary for one store/variant.
#[derive(Clone, Debug, Serialize)]
pub struct WindowRow {
    /// Post-storage datastore.
    pub post_store: String,
    /// Variant ("original" or "antipode").
    pub variant: String,
    /// Mean window (seconds).
    pub mean_s: f64,
    /// Median window.
    pub p50_s: f64,
    /// 95th percentile.
    pub p95_s: f64,
    /// Maximum.
    pub max_s: f64,
    /// Violations observed (original only; 0 with Antipode).
    pub violations_pct: f64,
}

/// The Fig 7 result.
#[derive(Clone, Debug, Serialize)]
pub struct Fig7 {
    /// Requests per row.
    pub requests: usize,
    /// All rows.
    pub rows: Vec<WindowRow>,
}

/// Runs the experiment.
pub fn run_experiment(quick: bool) -> Fig7 {
    let requests = if quick { 200 } else { 1000 };
    crate::header(&format!(
        "Fig 7 — consistency window (notifier = SNS, {requests} requests)"
    ));
    println!(
        "{:>10} {:>10} {:>10} {:>10} {:>10} {:>10} {:>12}",
        "store", "variant", "mean(s)", "p50(s)", "p95(s)", "max(s)", "violations"
    );
    let mut rows = Vec::new();
    for p in PostStoreKind::ALL {
        for antipode in [false, true] {
            let mut cfg = PostNotifConfig::new(p, NotifierKind::Sns).with_requests(requests);
            if antipode {
                cfg = cfg.with_antipode();
            }
            let r = run(&cfg);
            let s = r.consistency_window.summary().expect("windows recorded");
            let row = WindowRow {
                post_store: p.name().into(),
                variant: if antipode { "antipode" } else { "original" }.into(),
                mean_s: s.mean,
                p50_s: s.p50,
                p95_s: s.p95,
                max_s: s.max,
                violations_pct: r.violations.percent(),
            };
            println!(
                "{:>10} {:>10} {:>10.3} {:>10.3} {:>10.3} {:>10.3} {:>11.1}%",
                row.post_store,
                row.variant,
                row.mean_s,
                row.p50_s,
                row.p95_s,
                row.max_s,
                row.violations_pct
            );
            rows.push(row);
        }
    }
    println!("paper anchors: with Antipode the window tracks each store's replication delay —");
    println!("  S3 waits many seconds (paper ≈18 s mean) while MySQL converges within ≈1 s.");
    let out = Fig7 { requests, rows };
    crate::write_artifact("fig7_consistency_window", &out);
    out
}

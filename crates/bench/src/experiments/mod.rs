//! One module per reproduced table/figure; each exposes a `run`/
//! `run_experiment(quick)` returning the serialized result.

pub mod ablation_barrier;
pub mod ablation_metadata;
pub mod ablation_strawman;
pub mod fig1;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod metadata;
pub mod table1;
pub mod table3;

/// Parses the common `--quick` flag from the process args.
pub fn quick_flag() -> bool {
    std::env::args().any(|a| a == "--quick" || a == "-q")
}

//! Fig 1: CDFs of (left) calls to stateful services per request and (right)
//! unique stateful services per request, over the Alibaba-like trace.

use antipode_trace::{generate_many, stats};
use serde::Serialize;

/// One CDF as (x, P[X ≤ x]) points.
#[derive(Clone, Debug, Serialize)]
pub struct Cdf {
    /// What the CDF is over.
    pub label: String,
    /// The curve.
    pub points: Vec<(f64, f64)>,
}

/// The Fig 1 result.
#[derive(Clone, Debug, Serialize)]
pub struct Fig1 {
    /// Number of synthetic requests analyzed.
    pub requests: usize,
    /// CDF of stateful calls per request (Fig 1 left).
    pub stateful_calls: Cdf,
    /// CDF of unique stateful services per request (Fig 1 right).
    pub unique_stateful: Cdf,
}

/// Runs the experiment. `quick` shrinks the corpus.
pub fn run(quick: bool) -> Fig1 {
    let n = if quick { 10_000 } else { 100_000 };
    crate::header(&format!("Fig 1 — Alibaba-like trace CDFs ({n} requests)"));
    let graphs = generate_many(0xF1, n);

    let calls: Vec<f64> = graphs.iter().map(|g| g.stateful_calls() as f64).collect();
    let unique: Vec<f64> = graphs
        .iter()
        .map(|g| g.unique_stateful_services() as f64)
        .collect();
    let xs: Vec<f64> = [1, 2, 3, 5, 8, 10, 15, 20, 30, 50, 80, 120, 200]
        .iter()
        .map(|&v| v as f64)
        .collect();

    let left = stats::cdf_points(&calls, &xs);
    let right = stats::cdf_points(&unique, &xs);

    println!(
        "{:>8} {:>24} {:>28}",
        "x", "P[stateful calls <= x]", "P[unique stateful <= x]"
    );
    for ((x, cl), (_, cr)) in left.iter().zip(&right) {
        println!("{x:>8.0} {cl:>24.3} {cr:>28.3}");
    }
    let frac = |data: &[f64], pred: &dyn Fn(f64) -> bool| {
        data.iter().filter(|&&v| pred(v)).count() as f64 / data.len() as f64 * 100.0
    };
    println!(
        "paper anchors: >20% of requests make >=20 stateful calls (ours: {:.0}%),",
        frac(&calls, &|v| v >= 20.0)
    );
    println!(
        "  >50% touch >=5 unique stateful services (ours: {:.0}%), ~10% more than 20 (ours: {:.0}%)",
        frac(&unique, &|v| v >= 5.0),
        frac(&unique, &|v| v > 20.0)
    );

    let out = Fig1 {
        requests: n,
        stateful_calls: Cdf {
            label: "stateful calls per request".into(),
            points: left,
        },
        unique_stateful: Cdf {
            label: "unique stateful services per request".into(),
            points: right,
        },
    };
    crate::write_artifact("fig1_alibaba_cdf", &out);
    out
}

//! Ablation: the synchronous-replication strawman (paper §3.3).
//!
//! §3.3 considers "strengthening the guarantees of post-storage to make its
//! replication synchronous, but this introduces undesirable delays that are
//! discouraged in practice". This experiment quantifies the trade-off on the
//! Post-Notification workload, per store:
//!
//! - **baseline** — asynchronous writes, violations happen;
//! - **sync-replication** — the writer blocks until all replicas applied
//!   the post (no violations, writer pays the full replication delay);
//! - **Antipode** — asynchronous writes plus a reader-side barrier (no
//!   violations, the writer pays nothing; the wait moves off the
//!   user-facing write path).

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use antipode::Antipode;
use antipode_lineage::{Lineage, LineageId};
use antipode_sim::net::regions::{EU, US};
use antipode_sim::net::Network;
use antipode_sim::{RateCounter, Samples, Sim};
use antipode_store::shim::{KvShim, QueueShim};
use antipode_store::{DynamoDb, MySql, Redis, Sns, S3};
use serde::Serialize;

/// One (store, variant) measurement.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Post-storage name.
    pub store: String,
    /// Variant name.
    pub variant: String,
    /// Mean writer-visible latency of the post write (seconds).
    pub write_latency_s: f64,
    /// p95 writer latency.
    pub write_latency_p95_s: f64,
    /// Violations at the reader (%).
    pub violations_pct: f64,
}

/// The ablation result.
#[derive(Clone, Debug, Serialize)]
pub struct AblationStrawman {
    /// Requests per row.
    pub requests: usize,
    /// All rows.
    pub rows: Vec<Row>,
}

#[derive(Clone, Copy, PartialEq)]
enum Variant {
    Baseline,
    SyncReplication,
    Antipode,
}

impl Variant {
    fn name(self) -> &'static str {
        match self {
            Variant::Baseline => "baseline",
            Variant::SyncReplication => "sync-replication",
            Variant::Antipode => "antipode",
        }
    }
}

fn measure(store_name: &str, variant: Variant, requests: usize) -> Row {
    let sim = Sim::new(0x57AA);
    let net = Rc::new(Network::global_triangle());
    let kv = match store_name {
        "MySQL" => MySql::new(&sim, net.clone(), "posts", &[EU, US])
            .store()
            .clone(),
        "DynamoDB" => DynamoDb::new(&sim, net.clone(), "posts", &[EU, US])
            .store()
            .clone(),
        "Redis" => Redis::new(&sim, net.clone(), "posts", &[EU, US])
            .store()
            .clone(),
        "S3" => S3::new(&sim, net.clone(), "posts", &[EU, US])
            .store()
            .clone(),
        other => unreachable!("unknown store {other}"),
    };
    let notifier = Sns::new(&sim, net, "notifier", &[EU, US]);
    let shim = KvShim::new(kv.clone());
    let notif_shim = QueueShim::new(notifier.queue().clone());
    let mut ap = Antipode::new(sim.clone());
    ap.register(Rc::new(shim.clone()));
    ap.register(Rc::new(notif_shim.clone()));

    let latencies = Rc::new(RefCell::new(Samples::new()));
    let violations = Rc::new(RefCell::new(RateCounter::new()));

    // Reader: per-notification handler.
    {
        let sim2 = sim.clone();
        let notif_shim = notif_shim.clone();
        let shim = shim.clone();
        let ap = ap.clone();
        let violations = violations.clone();
        sim.spawn(async move {
            let mut sub = notif_shim.subscribe(US).expect("US configured");
            for _ in 0..requests {
                let Ok(Some(msg)) = sub.recv().await else {
                    break;
                };
                let shim = shim.clone();
                let ap = ap.clone();
                let violations = violations.clone();
                sim2.spawn(async move {
                    let key = String::from_utf8(msg.payload.to_vec()).expect("key");
                    let found = if variant == Variant::Antipode {
                        if let Some(lin) = &msg.lineage {
                            ap.barrier(lin, US).await.expect("registered");
                        }
                        shim.read(US, &key).await.expect("US configured").is_some()
                    } else {
                        // Baseline and sync variants bypass the shim, so the
                        // stored bytes are raw values — read them raw too.
                        shim.store()
                            .get(US, &key)
                            .await
                            .expect("US configured")
                            .is_some()
                    };
                    violations.borrow_mut().record(!found);
                });
            }
        });
    }

    // Writers.
    for i in 0..requests {
        let sim2 = sim.clone();
        let kv = kv.clone();
        let shim = shim.clone();
        let notif_shim = notif_shim.clone();
        let latencies = latencies.clone();
        sim.spawn(async move {
            sim2.sleep(Duration::from_millis(250 * i as u64)).await;
            let key = format!("post-{i}");
            let body = bytes::Bytes::from(vec![0u8; 512]);
            let start = sim2.now();
            let mut lineage = Lineage::new(LineageId(i as u64));
            match variant {
                Variant::Baseline => {
                    kv.put(EU, &key, body).await.expect("EU");
                }
                Variant::SyncReplication => {
                    kv.put_sync(EU, &key, body).await.expect("EU");
                }
                Variant::Antipode => {
                    shim.write(EU, &key, body, &mut lineage).await.expect("EU");
                }
            }
            latencies
                .borrow_mut()
                .record_duration(sim2.now().since(start));
            notif_shim
                .publish(EU, bytes::Bytes::from(key), &mut lineage)
                .await
                .expect("EU");
        });
    }
    sim.run();

    let lat = latencies.borrow().summary().expect("latencies recorded");
    let row = Row {
        store: store_name.into(),
        variant: variant.name().into(),
        write_latency_s: lat.mean,
        write_latency_p95_s: lat.p95,
        violations_pct: violations.borrow().percent(),
    };
    row
}

/// Runs the ablation.
pub fn run_experiment(quick: bool) -> AblationStrawman {
    let requests = if quick { 100 } else { 400 };
    crate::header(&format!(
        "Ablation §3.3 — synchronous-replication strawman ({requests} req)"
    ));
    println!(
        "{:>10} {:>18} {:>14} {:>14} {:>12}",
        "store", "variant", "write-mean(s)", "write-p95(s)", "violations"
    );
    let mut rows = Vec::new();
    for store in ["MySQL", "Redis", "S3"] {
        for variant in [
            Variant::Baseline,
            Variant::SyncReplication,
            Variant::Antipode,
        ] {
            let row = measure(store, variant, requests);
            println!(
                "{:>10} {:>18} {:>14.4} {:>14.4} {:>11.1}%",
                row.store,
                row.variant,
                row.write_latency_s,
                row.write_latency_p95_s,
                row.violations_pct
            );
            rows.push(row);
        }
    }
    println!("takeaway: synchronous replication also fixes the violations, but the writer");
    println!("  eats the full replication delay (catastrophic for S3); Antipode keeps writes");
    println!("  fast and moves the wait to the reader-side barrier, off the write path (§3.3).");
    let out = AblationStrawman { requests, rows };
    crate::write_artifact("ablation_strawman", &out);
    out
}

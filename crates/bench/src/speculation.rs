//! Speculation-plane baseline: blocking vs speculative barrier latency on
//! the S3×SNS Post-Notification cell, behind `speculation_baseline` (which
//! writes `BENCH_speculation.json`).
//!
//! Three cells, all fixed-seed:
//!
//! - **blocking** — kill switch thrown, every Reader sits behind S3's
//!   heavy-tail replication before rendering;
//! - **speculative** — the Reader proceeds after the speculation budget
//!   with effects confined, committing on confirmation;
//! - **speculative + chaos** — same, with the reader-side S3 replica
//!   crashed for 80 s, exercising the violate → rollback → redeliver path.
//!
//! Latencies are *virtual-time* measurements: deterministic for a given
//! seed on a given build, but derived from floating-point latency
//! distributions — so the artifact is committed for inspection, not
//! compared bit-for-bit across machines in CI.

use antipode_app::speculation_cell::{run_speculation, SpecCellConfig, SpecCellResult};
use antipode_sim::Samples;
use serde::Serialize;

/// Latency summary in seconds.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct LatencySummary {
    /// Sample count.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median.
    pub p50: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
}

impl LatencySummary {
    fn of(samples: &Samples) -> LatencySummary {
        let s = samples.summary().unwrap_or(antipode_sim::Summary {
            count: 0,
            mean: 0.0,
            min: 0.0,
            max: 0.0,
            p50: 0.0,
            p90: 0.0,
            p95: 0.0,
            p99: 0.0,
        });
        LatencySummary {
            count: s.count,
            mean: s.mean,
            p50: s.p50,
            p99: s.p99,
            max: s.max,
        }
    }
}

/// One cell's measurements.
#[derive(Clone, Debug, Serialize)]
pub struct CellMetrics {
    /// End-to-end handler latency (notification receipt → handler value).
    pub handler_latency: LatencySummary,
    /// Requests that opened a speculation frontier.
    pub speculated: u64,
    /// Speculations confirmed.
    pub confirmed: u64,
    /// Speculations violated (rolled back + redelivered).
    pub violated: u64,
    /// Violations as a fraction of speculations.
    pub rollback_rate: f64,
    /// Confined writes discarded by rollbacks.
    pub rolled_back_writes: u64,
    /// Largest confinement buffer any execution held.
    pub buffer_high_water: usize,
    /// Non-speculative unsatisfied checkpoints — must be 0.
    pub observed_violations: usize,
    /// Discarded confined writes that reached a store — must be 0.
    pub leaked_writes: usize,
}

impl CellMetrics {
    fn of(r: &SpecCellResult) -> CellMetrics {
        CellMetrics {
            handler_latency: LatencySummary::of(&r.handler_latency),
            speculated: r.stats.speculated,
            confirmed: r.stats.confirmed,
            violated: r.stats.violated,
            rollback_rate: if r.stats.speculated == 0 {
                0.0
            } else {
                r.stats.violated as f64 / r.stats.speculated as f64
            },
            rolled_back_writes: r.stats.rolled_back_writes,
            buffer_high_water: r.stats.buffer_high_water,
            observed_violations: r.observed_violations,
            leaked_writes: r.leaked_writes,
        }
    }
}

/// The full baseline document written to `BENCH_speculation.json`.
#[derive(Clone, Debug, Serialize)]
pub struct SpeculationBaseline {
    /// Artifact name.
    pub bench: String,
    /// Workload seed.
    pub seed: u64,
    /// Requests per cell.
    pub requests: usize,
    /// Kill switch thrown: blocking barriers.
    pub blocking: CellMetrics,
    /// Speculative barriers, fault-free.
    pub speculative: CellMetrics,
    /// Speculative barriers under an 80 s reader-side S3 replica crash.
    pub speculative_chaos: CellMetrics,
    /// Blocking p99 over speculative p99 (fault-free cells).
    pub p99_speedup: f64,
}

/// Requests per cell (small enough for the CI smoke run, large enough for
/// a stable p99).
pub const DEFAULT_REQUESTS: usize = 48;

/// Runs the three cells and assembles the baseline.
pub fn run(seed: u64) -> SpeculationBaseline {
    let requests = DEFAULT_REQUESTS;
    let blocking = run_speculation(
        &SpecCellConfig::blocking()
            .with_seed(seed)
            .with_requests(requests),
    );
    let speculative = run_speculation(
        &SpecCellConfig::speculative()
            .with_seed(seed)
            .with_requests(requests),
    );
    let chaos = run_speculation(
        &SpecCellConfig::speculative()
            .with_seed(seed)
            .with_requests(requests)
            .with_chaos(),
    );
    let b = CellMetrics::of(&blocking);
    let s = CellMetrics::of(&speculative);
    let p99_speedup = if s.handler_latency.p99 > 0.0 {
        b.handler_latency.p99 / s.handler_latency.p99
    } else {
        0.0
    };
    SpeculationBaseline {
        bench: "speculation_plane".to_string(),
        seed,
        requests,
        blocking: b,
        speculative: s,
        speculative_chaos: CellMetrics::of(&chaos),
        p99_speedup,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn baseline_shows_the_speedup_and_holds_the_invariants() {
        let base = run(7);
        assert!(
            base.p99_speedup > 5.0,
            "speculation must cut p99 ≥ 5×, got {}",
            base.p99_speedup
        );
        for cell in [&base.blocking, &base.speculative, &base.speculative_chaos] {
            assert_eq!(cell.observed_violations, 0);
            assert_eq!(cell.leaked_writes, 0);
        }
        assert_eq!(base.blocking.speculated, 0);
        assert!(
            base.speculative_chaos.violated > 0,
            "chaos must force rollbacks"
        );
        assert!(base.speculative_chaos.rollback_rate > 0.0);
        assert!(base.speculative_chaos.buffer_high_water >= 2);
    }
}

//! Property-based tests for the virtual-time executor and its primitives.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use antipode_sim::dist::Dist;
use antipode_sim::rng::rng_from_seed;
use antipode_sim::sync::{channel, Semaphore};
use antipode_sim::{timeout, Sim, SimTime};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sleeps_fire_in_deadline_order(delays in proptest::collection::vec(0u64..10_000, 1..40)) {
        let sim = Sim::new(0);
        let log: Rc<RefCell<Vec<(u64, SimTime)>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, &ms) in delays.iter().enumerate() {
            let sim2 = sim.clone();
            let log = log.clone();
            sim.spawn(async move {
                sim2.sleep(Duration::from_millis(ms)).await;
                log.borrow_mut().push((i as u64, sim2.now()));
            });
        }
        sim.run();
        let log = log.borrow();
        prop_assert_eq!(log.len(), delays.len());
        // Wake times are exactly the requested deadlines…
        for &(i, at) in log.iter() {
            prop_assert_eq!(at, SimTime::from_millis(delays[i as usize]));
        }
        // …and the log is sorted by time (clock monotonicity).
        for w in log.windows(2) {
            prop_assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn clock_never_runs_backwards(delays in proptest::collection::vec(0u64..5_000, 1..30)) {
        let sim = Sim::new(1);
        let max_seen: Rc<RefCell<SimTime>> = Rc::new(RefCell::new(SimTime::ZERO));
        for &ms in &delays {
            let sim2 = sim.clone();
            let max_seen = max_seen.clone();
            sim.spawn(async move {
                sim2.sleep(Duration::from_millis(ms)).await;
                let mut m = max_seen.borrow_mut();
                prop_assert!(sim2.now() >= *m, "clock went backwards");
                *m = sim2.now();
                Ok(())
            });
        }
        sim.run();
    }

    #[test]
    fn semaphore_never_exceeds_permits(
        permits in 1usize..6,
        tasks in proptest::collection::vec((0u64..40, 1u64..30), 1..40),
    ) {
        let sim = Sim::new(2);
        let sem = Semaphore::new(permits);
        let active = Rc::new(RefCell::new((0usize, 0usize))); // (current, peak)
        let done = Rc::new(RefCell::new(0usize));
        for &(arrival, hold) in &tasks {
            let sim2 = sim.clone();
            let sem = sem.clone();
            let active = active.clone();
            let done = done.clone();
            sim.spawn(async move {
                sim2.sleep(Duration::from_millis(arrival)).await;
                let _p = sem.acquire().await;
                {
                    let mut a = active.borrow_mut();
                    a.0 += 1;
                    a.1 = a.1.max(a.0);
                }
                sim2.sleep(Duration::from_millis(hold)).await;
                active.borrow_mut().0 -= 1;
                *done.borrow_mut() += 1;
            });
        }
        sim.run();
        prop_assert_eq!(*done.borrow(), tasks.len(), "every task completes");
        prop_assert!(active.borrow().1 <= permits, "peak exceeded permits");
        prop_assert_eq!(sem.available(), permits, "all permits returned");
    }

    #[test]
    fn channel_preserves_send_order(values in proptest::collection::vec(any::<u32>(), 0..64)) {
        let sim = Sim::new(3);
        let values2 = values.clone();
        let got = sim.block_on(async move {
            let (tx, mut rx) = channel();
            for v in &values2 {
                tx.send(*v).unwrap();
            }
            drop(tx);
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            got
        });
        prop_assert_eq!(got, values);
    }

    #[test]
    fn timeout_outcome_matches_durations(work_ms in 0u64..100, limit_ms in 1u64..100) {
        let sim = Sim::new(4);
        let s = sim.clone();
        let out = sim.block_on(async move {
            let s2 = s.clone();
            timeout(&s, Duration::from_millis(limit_ms), async move {
                s2.sleep(Duration::from_millis(work_ms)).await;
            })
            .await
        });
        if work_ms < limit_ms {
            prop_assert!(out.is_ok());
        } else if work_ms > limit_ms {
            prop_assert!(out.is_err());
        }
        // Equal durations may resolve either way (same-instant race).
    }

    #[test]
    fn dist_samples_are_deterministic_and_nonnegative(
        seed in any::<u64>(),
        median in 0.001f64..10.0,
        sigma in 0.01f64..2.0,
    ) {
        let d = Dist::LogNormal { median, sigma };
        let mut a = rng_from_seed(seed);
        let mut b = rng_from_seed(seed);
        for _ in 0..32 {
            let x = d.sample_duration(&mut a);
            let y = d.sample_duration(&mut b);
            prop_assert_eq!(x, y);
        }
    }

    #[test]
    fn run_until_lands_exactly_on_deadline(deadline_ms in 0u64..10_000) {
        let sim = Sim::new(5);
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(Duration::from_secs(3600)).await; // far future
        });
        sim.run_until(SimTime::from_millis(deadline_ms));
        prop_assert_eq!(sim.now(), SimTime::from_millis(deadline_ms));
    }
}

//! Regions and the inter-region network model.
//!
//! A [`Network`] maps ordered region pairs to one-way latency distributions.
//! Datastore replication streams and RPC transports sample from it; the
//! presets below are calibrated to public-cloud round-trip measurements
//! (US↔EU ≈ 90 ms RTT, US↔SG ≈ 220 ms RTT).

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

use rand::Rng;

use crate::dist::Dist;

/// A deployment region, identified by name.
///
/// Ordered by name so regions can key `BTreeMap`s and be iterated in a
/// deterministic order everywhere in the simulator.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Region(pub &'static str);

impl Region {
    /// The region name.
    pub fn name(&self) -> &'static str {
        self.0
    }
}

impl fmt::Debug for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl fmt::Display for Region {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

/// Regions used throughout the evaluation, mirroring the paper's deployment
/// (§7.2: EU writer / US reader for Post-Notification; US→EU and US→SG pairs
/// for DeathStarBench).
pub mod regions {
    use super::Region;
    /// Central US (the paper's reader region for Post-Notification).
    pub const US: Region = Region("us-central");
    /// Frankfurt (the paper's writer region).
    pub const EU: Region = Region("eu-frankfurt");
    /// Singapore.
    pub const SG: Region = Region("ap-singapore");
}

/// One-way network latency model between regions.
#[derive(Clone, Debug)]
pub struct Network {
    links: BTreeMap<(Region, Region), Dist>,
    intra: Dist,
    default_inter: Dist,
}

impl Network {
    /// Creates a network where intra-region hops follow `intra` and
    /// unspecified inter-region links follow `default_inter`.
    pub fn new(intra: Dist, default_inter: Dist) -> Self {
        Network {
            links: BTreeMap::new(),
            intra,
            default_inter,
        }
    }

    /// Sets the one-way latency for a directed region pair. Call twice (or
    /// use [`Network::link_sym`]) for symmetric links.
    pub fn link(&mut self, from: Region, to: Region, dist: Dist) -> &mut Self {
        self.links.insert((from, to), dist);
        self
    }

    /// Sets the same one-way latency distribution in both directions.
    pub fn link_sym(&mut self, a: Region, b: Region, dist: Dist) -> &mut Self {
        self.links.insert((a, b), dist.clone());
        self.links.insert((b, a), dist);
        self
    }

    /// The latency distribution for a hop.
    pub fn latency_dist(&self, from: Region, to: Region) -> &Dist {
        if from == to {
            return &self.intra;
        }
        self.links.get(&(from, to)).unwrap_or(&self.default_inter)
    }

    /// Samples a one-way delay for a message from `from` to `to`.
    pub fn delay<R: Rng + ?Sized>(&self, rng: &mut R, from: Region, to: Region) -> Duration {
        self.latency_dist(from, to).sample_duration(rng)
    }

    /// Samples a one-way delay consulting the fault plan: any active
    /// [`crate::fault::FaultKind::LinkDegraded`] window on the link adds an
    /// extra sampled delay (congestion, loss-with-retransmission). When no
    /// degradation is active this draws exactly as [`Network::delay`].
    pub fn delay_faulted<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        from: Region,
        to: Region,
        faults: &crate::fault::FaultPlan,
        at: crate::time::SimTime,
    ) -> Duration {
        let base = self.latency_dist(from, to).sample_duration(rng);
        match faults.link_extra_delay(at, from, to) {
            Some(extra) => base + extra.sample_duration(rng),
            None => base,
        }
    }

    /// The evaluation's default topology: US, EU, SG with public-cloud-like
    /// one-way latencies and small jitter.
    pub fn global_triangle() -> Network {
        use regions::*;
        let mut net = Network::new(
            // Intra-region / intra-datacenter hop.
            Dist::LogNormal {
                median: 0.000_25,
                sigma: 0.3,
            },
            Dist::LogNormal {
                median: 0.080,
                sigma: 0.15,
            },
        );
        net.link_sym(
            US,
            EU,
            Dist::LogNormal {
                median: 0.045,
                sigma: 0.10,
            },
        );
        net.link_sym(
            US,
            SG,
            Dist::LogNormal {
                median: 0.110,
                sigma: 0.18,
            },
        );
        net.link_sym(
            EU,
            SG,
            Dist::LogNormal {
                median: 0.085,
                sigma: 0.15,
            },
        );
        net
    }
}

impl Default for Network {
    fn default() -> Self {
        Network::global_triangle()
    }
}

#[cfg(test)]
mod tests {
    use super::regions::*;
    use super::*;
    use crate::rng::rng_from_seed;

    #[test]
    fn intra_region_is_fast() {
        let net = Network::global_triangle();
        let mut rng = rng_from_seed(1);
        for _ in 0..100 {
            let d = net.delay(&mut rng, US, US);
            assert!(d < Duration::from_millis(5), "intra delay {d:?}");
        }
    }

    #[test]
    fn us_sg_is_slower_than_us_eu() {
        let net = Network::global_triangle();
        let mut rng = rng_from_seed(2);
        let avg = |from, to, rng: &mut crate::rng::SimRng| -> f64 {
            (0..500)
                .map(|_| net.delay(rng, from, to).as_secs_f64())
                .sum::<f64>()
                / 500.0
        };
        let eu = avg(US, EU, &mut rng);
        let sg = avg(US, SG, &mut rng);
        assert!(sg > 1.5 * eu, "US→SG {sg} should be well above US→EU {eu}");
    }

    #[test]
    fn custom_link_overrides_default() {
        let mut net = Network::new(Dist::ZERO, Dist::Constant(1.0));
        net.link(US, EU, Dist::Constant(0.5));
        let mut rng = rng_from_seed(3);
        assert_eq!(net.delay(&mut rng, US, EU), Duration::from_millis(500));
        // Reverse direction not set: falls back to default.
        assert_eq!(net.delay(&mut rng, EU, US), Duration::from_secs(1));
    }

    #[test]
    fn region_equality_is_by_name() {
        assert_eq!(Region("x"), Region("x"));
        assert_ne!(US, EU);
    }
}

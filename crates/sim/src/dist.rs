//! Latency distributions.
//!
//! Replication lags, network jitter, and service times in the simulation are
//! sampled from these distributions. Parameters are expressed in seconds;
//! [`Dist::sample_duration`] clamps negative samples to zero.

use std::time::Duration;

use rand::Rng;

/// A non-negative latency distribution with parameters in seconds.
#[derive(Clone, Debug, PartialEq)]
pub enum Dist {
    /// Always the same value.
    Constant(f64),
    /// Uniform on `[lo, hi)`.
    Uniform(f64, f64),
    /// Normal with the given mean and standard deviation, truncated below at
    /// `min`.
    Normal {
        /// Mean of the (untruncated) normal.
        mean: f64,
        /// Standard deviation.
        std: f64,
        /// Lower truncation bound.
        min: f64,
    },
    /// Log-normal parameterized by its median (`exp(mu)`) and the shape
    /// `sigma`. Heavy-tailed for larger `sigma`; the workhorse for
    /// replication-lag models.
    LogNormal {
        /// The distribution median, `exp(mu)`.
        median: f64,
        /// Shape parameter; larger values give heavier tails.
        sigma: f64,
    },
    /// Shifted exponential: `shift + Exp(mean)`.
    Exp {
        /// Mean of the exponential component.
        mean: f64,
        /// Constant shift added to every sample.
        shift: f64,
    },
    /// A weighted mixture of distributions; weights need not sum to one.
    Mix(Vec<(f64, Dist)>),
}

impl Dist {
    /// A convenience constant-zero distribution.
    pub const ZERO: Dist = Dist::Constant(0.0);

    /// Constant distribution from milliseconds.
    pub fn constant_ms(ms: f64) -> Dist {
        Dist::Constant(ms / 1e3)
    }

    /// Log-normal distribution from a median in milliseconds.
    pub fn lognormal_ms(median_ms: f64, sigma: f64) -> Dist {
        Dist::LogNormal {
            median: median_ms / 1e3,
            sigma,
        }
    }

    /// Draws one standard-normal variate via Box–Muller.
    fn std_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
        // Avoid ln(0): map u1 into (0, 1].
        let u1: f64 = 1.0 - rng.random::<f64>();
        let u2: f64 = rng.random::<f64>();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    }

    /// Samples a value in seconds. May be negative only for `Normal` with a
    /// negative `min`; use [`Dist::sample_duration`] for latencies.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        match self {
            Dist::Constant(v) => *v,
            Dist::Uniform(lo, hi) => {
                if hi <= lo {
                    *lo
                } else {
                    lo + rng.random::<f64>() * (hi - lo)
                }
            }
            Dist::Normal { mean, std, min } => {
                let v = mean + std * Self::std_normal(rng);
                v.max(*min)
            }
            Dist::LogNormal { median, sigma } => {
                let z = Self::std_normal(rng);
                median * (sigma * z).exp()
            }
            Dist::Exp { mean, shift } => {
                let u: f64 = 1.0 - rng.random::<f64>();
                shift + mean * (-u.ln())
            }
            Dist::Mix(parts) => {
                let total: f64 = parts.iter().map(|(w, _)| *w).sum();
                if total <= 0.0 || parts.is_empty() {
                    return 0.0;
                }
                let mut pick = rng.random::<f64>() * total;
                for (w, d) in parts {
                    pick -= w;
                    if pick <= 0.0 {
                        return d.sample(rng);
                    }
                }
                parts[parts.len() - 1].1.sample(rng)
            }
        }
    }

    /// Samples a non-negative latency.
    pub fn sample_duration<R: Rng + ?Sized>(&self, rng: &mut R) -> Duration {
        Duration::from_secs_f64(self.sample(rng).max(0.0))
    }

    /// The distribution's mean, where it has a closed form. `Mix` means are
    /// weight-averaged; truncation of `Normal` is ignored.
    pub fn mean(&self) -> f64 {
        match self {
            Dist::Constant(v) => *v,
            Dist::Uniform(lo, hi) => (lo + hi) / 2.0,
            Dist::Normal { mean, .. } => *mean,
            Dist::LogNormal { median, sigma } => median * (sigma * sigma / 2.0).exp(),
            Dist::Exp { mean, shift } => shift + mean,
            Dist::Mix(parts) => {
                let total: f64 = parts.iter().map(|(w, _)| *w).sum();
                if total <= 0.0 {
                    return 0.0;
                }
                parts.iter().map(|(w, d)| w * d.mean()).sum::<f64>() / total
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::rng_from_seed;

    fn mean_of(d: &Dist, n: usize) -> f64 {
        let mut rng = rng_from_seed(99);
        (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64
    }

    #[test]
    fn constant_is_constant() {
        let mut rng = rng_from_seed(1);
        let d = Dist::Constant(0.25);
        for _ in 0..10 {
            assert_eq!(d.sample(&mut rng), 0.25);
        }
    }

    #[test]
    fn uniform_stays_in_range() {
        let mut rng = rng_from_seed(2);
        let d = Dist::Uniform(1.0, 2.0);
        for _ in 0..1000 {
            let v = d.sample(&mut rng);
            assert!((1.0..2.0).contains(&v));
        }
    }

    #[test]
    fn uniform_degenerate_range() {
        let mut rng = rng_from_seed(2);
        assert_eq!(Dist::Uniform(3.0, 3.0).sample(&mut rng), 3.0);
    }

    #[test]
    fn normal_truncates_at_min() {
        let mut rng = rng_from_seed(3);
        let d = Dist::Normal {
            mean: 0.0,
            std: 1.0,
            min: 0.0,
        };
        for _ in 0..1000 {
            assert!(d.sample(&mut rng) >= 0.0);
        }
    }

    #[test]
    fn lognormal_median_is_close() {
        let d = Dist::LogNormal {
            median: 2.0,
            sigma: 0.5,
        };
        let mut rng = rng_from_seed(4);
        let mut samples: Vec<f64> = (0..20_000).map(|_| d.sample(&mut rng)).collect();
        samples.sort_by(f64::total_cmp);
        let median = samples[samples.len() / 2];
        assert!((median - 2.0).abs() < 0.1, "median {median}");
    }

    #[test]
    fn empirical_means_match_closed_form() {
        for d in [
            Dist::Uniform(0.0, 2.0),
            Dist::Exp {
                mean: 0.5,
                shift: 0.1,
            },
            Dist::LogNormal {
                median: 1.0,
                sigma: 0.5,
            },
        ] {
            let emp = mean_of(&d, 50_000);
            let expect = d.mean();
            assert!(
                (emp - expect).abs() / expect < 0.05,
                "{d:?}: empirical {emp} vs {expect}"
            );
        }
    }

    #[test]
    fn mix_samples_from_components() {
        let d = Dist::Mix(vec![(0.5, Dist::Constant(1.0)), (0.5, Dist::Constant(3.0))]);
        let mut rng = rng_from_seed(5);
        let mut saw_one = false;
        let mut saw_three = false;
        for _ in 0..100 {
            let v = d.sample(&mut rng);
            if v == 1.0 {
                saw_one = true;
            } else if v == 3.0 {
                saw_three = true;
            } else {
                panic!("unexpected sample {v}");
            }
        }
        assert!(saw_one && saw_three);
        assert!((d.mean() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn sample_duration_is_nonnegative() {
        let d = Dist::Normal {
            mean: -1.0,
            std: 0.1,
            min: -10.0,
        };
        let mut rng = rng_from_seed(6);
        for _ in 0..100 {
            let _ = d.sample_duration(&mut rng); // must not panic
        }
    }

    #[test]
    fn s3_like_tail_probability() {
        // Fig 6 calibration check: LogNormal(median 18s, sigma 1.25) should
        // have roughly a 20% chance of exceeding 50 seconds.
        let d = Dist::LogNormal {
            median: 18.0,
            sigma: 1.25,
        };
        let mut rng = rng_from_seed(7);
        let n = 50_000;
        let over = (0..n).filter(|_| d.sample(&mut rng) > 50.0).count();
        let frac = over as f64 / n as f64;
        assert!((0.15..0.27).contains(&frac), "tail fraction {frac}");
    }
}

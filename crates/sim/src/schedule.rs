//! Schedule choice points for systematic concurrency exploration.
//!
//! By default the [`Sim`](crate::Sim) executor pops its ready queue FIFO,
//! which — combined with seeded RNG streams — makes every run bit-for-bit
//! reproducible from its seed. That determinism is also a blind spot: a
//! property that holds under the FIFO interleaving may break under another
//! legal ordering of the same events. This module turns the executor's
//! "which runnable task polls next?" decision into an explicit **choice
//! point** owned by a pluggable [`Schedule`] strategy, the way loom, shuttle
//! and CHESS instrument their runtimes.
//!
//! Three strategies ship with the simulator:
//! - [`FifoSchedule`] — always index 0; byte-identical to the uncontrolled
//!   executor's FIFO order (used by tests that pin golden traces);
//! - [`ReplaySchedule`] — follows a recorded list of choice indices, then
//!   falls back to FIFO; this is how a model-checker counterexample replays;
//! - [`RandomSchedule`] — seeded random choices, for schedule *sampling*
//!   (the probabilistic cousin of exhaustive exploration).
//!
//! The systematic DFS explorer itself lives in the `antipode-mc` crate; this
//! module only provides the mechanism (choice points, per-step access
//! footprints, blocked-on notes) so the sim crate stays dependency-free.
//!
//! # Access footprints
//!
//! While a schedule is installed, the executor records the set of shared
//! resources each poll touches ([`StepRecord::accesses`]). Sync primitives
//! ([`crate::sync`]) and the datastore engine report touches via
//! [`note_access`]; two steps with disjoint footprints commute, which is the
//! independence relation the explorer's sleep-set reduction is keyed on.
//! Recording is thread-local and only active inside a controlled poll, so
//! the uncontrolled hot path pays a single `Cell` read per note.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;

use crate::time::SimTime;

/// Wake-source sentinel: the wake came from outside any task (driver code,
/// `block_on` setup, tests poking state directly).
pub(crate) const WAKE_EXTERNAL: u32 = u32::MAX;
/// Wake-source sentinel: the wake came from a fired timer.
pub(crate) const WAKE_TIMER: u32 = u32::MAX - 1;

thread_local! {
    /// Slot of the task currently being polled (wake-source attribution).
    static CURRENT_SLOT: Cell<u32> = const { Cell::new(WAKE_EXTERNAL) };
    /// Whether access notes are being collected (controlled poll in flight).
    static RECORDING: Cell<bool> = const { Cell::new(false) };
    /// Access notes collected during the current controlled poll.
    static ACCESSES: RefCell<Vec<u64>> = const { RefCell::new(Vec::new()) };
    /// What the current poll blocked on, if it returned `Pending`.
    static BLOCK_NOTE: Cell<Option<BlockedOn>> = const { Cell::new(None) };
    /// Monotonic resource-id allocator for sync primitives. Reset by
    /// `Sim::new` so back-to-back executions of the same program assign
    /// identical ids (the explorer compares footprints across executions
    /// that share a choice prefix).
    static NEXT_RESOURCE: Cell<u64> = const { Cell::new(1) };
}

/// Allocates a fresh resource id for a shared object (channel, semaphore,
/// notify, …). Ids are deterministic given a deterministic creation order,
/// which [`crate::Sim::new`]'s thread-state reset guarantees across
/// back-to-back executions.
pub fn next_resource_id() -> u64 {
    NEXT_RESOURCE.with(|c| {
        let id = c.get();
        c.set(id + 1);
        id
    })
}

/// Stable id for a *named* shared resource (datastore key, queue message),
/// FNV-1a over the parts with a separator so `("a", "bc")` and `("ab", "c")`
/// differ. The high bit is set to keep the space disjoint from
/// [`next_resource_id`] counters.
pub fn resource_id(parts: &[&str]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for p in parts {
        for &b in p.as_bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
        }
        h ^= 0x1f;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h | (1 << 63)
}

/// Whether a controlled poll is currently collecting access notes. Callers
/// with an expensive resource-id computation can guard on this.
pub fn is_recording() -> bool {
    RECORDING.with(Cell::get)
}

/// Reports that the currently-polled task touched `resource`. No-op unless
/// a controlled poll is in flight ([`is_recording`]).
pub fn note_access(resource: u64) {
    RECORDING.with(|r| {
        if r.get() {
            ACCESSES.with(|a| a.borrow_mut().push(resource));
        }
    });
}

/// Records what the currently-polled task is about to block on. The
/// executor attaches the note to the task when the poll returns `Pending`;
/// it feeds the deadlock stall report. Cheap enough to call unconditionally.
pub fn note_blocked(on: BlockedOn) {
    BLOCK_NOTE.with(|b| b.set(Some(on)));
}

pub(crate) fn current_slot() -> u32 {
    CURRENT_SLOT.with(Cell::get)
}

pub(crate) fn set_current_slot(slot: u32) -> u32 {
    CURRENT_SLOT.with(|c| c.replace(slot))
}

pub(crate) fn set_recording(on: bool) {
    RECORDING.with(|r| r.set(on));
    if on {
        ACCESSES.with(|a| a.borrow_mut().clear());
    }
}

/// Drains the collected access notes, sorted and deduplicated.
pub(crate) fn take_accesses() -> Vec<u64> {
    let mut v = ACCESSES.with(|a| std::mem::take(&mut *a.borrow_mut()));
    v.sort_unstable();
    v.dedup();
    v
}

pub(crate) fn take_block_note() -> Option<BlockedOn> {
    BLOCK_NOTE.with(Cell::take)
}

/// Resets all thread-local scheduling state. Called by `Sim::new` so each
/// simulation starts from the same resource-id origin regardless of what ran
/// before it on this thread.
pub(crate) fn reset_thread_state() {
    CURRENT_SLOT.with(|c| c.set(WAKE_EXTERNAL));
    RECORDING.with(|r| r.set(false));
    ACCESSES.with(|a| a.borrow_mut().clear());
    BLOCK_NOTE.with(Cell::take);
    NEXT_RESOURCE.with(|c| c.set(1));
}

/// What a pending task is blocked on, as reported by the primitive that
/// parked it. Diagnostic: rendered in the deadlock stall report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockedOn {
    /// Awaiting a oneshot receiver (includes `JoinHandle`s).
    Oneshot(u64),
    /// Awaiting an mpsc channel receive.
    Channel(u64),
    /// Queued on a semaphore.
    Semaphore(u64),
    /// Awaiting a [`crate::sync::Notify`] notification.
    Notify(u64),
    /// Sleeping until a virtual-time deadline (always wakeable).
    Timer(SimTime),
    /// Awaiting a datastore visibility waiter (barrier/`wait_visible`).
    StoreWaiter(u64),
}

impl fmt::Display for BlockedOn {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlockedOn::Oneshot(id) => write!(f, "oneshot#{id}"),
            BlockedOn::Channel(id) => write!(f, "channel#{id}"),
            BlockedOn::Semaphore(id) => write!(f, "semaphore#{id}"),
            BlockedOn::Notify(id) => write!(f, "notify#{id}"),
            BlockedOn::Timer(at) => write!(f, "timer@{}ns", at.as_nanos()),
            BlockedOn::StoreWaiter(id) => write!(f, "store-waiter#{id:x}"),
        }
    }
}

/// Where a task's most recent wake came from. Diagnostic: rendered in the
/// deadlock stall report.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WakeSource {
    /// Woken by the task in the given slot.
    Task(u32),
    /// Woken by a fired timer.
    Timer,
    /// Woken from outside any task (spawn, driver code).
    External,
}

impl WakeSource {
    pub(crate) fn from_raw(raw: u32) -> WakeSource {
        match raw {
            WAKE_EXTERNAL => WakeSource::External,
            WAKE_TIMER => WakeSource::Timer,
            slot => WakeSource::Task(slot),
        }
    }
}

impl fmt::Display for WakeSource {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WakeSource::Task(slot) => write!(f, "task {slot}"),
            WakeSource::Timer => write!(f, "timer"),
            WakeSource::External => write!(f, "external"),
        }
    }
}

/// A runnable task as presented to [`Schedule::choose`].
#[derive(Clone, Debug)]
pub struct TaskRef {
    pub(crate) id: u64,
    pub(crate) slot: u32,
    pub(crate) name: Option<Rc<str>>,
}

impl TaskRef {
    /// Opaque task identity, stable for the task's lifetime. Two executions
    /// sharing a choice prefix assign identical ids to the same logical
    /// tasks (slot allocation is deterministic).
    pub fn id(&self) -> u64 {
        self.id
    }

    /// Slab slot of the task (low half of [`TaskRef::id`]). Diagnostic.
    pub fn slot(&self) -> u32 {
        self.slot
    }

    /// The task's debug name, if it was spawned with
    /// [`crate::Sim::spawn_named`].
    pub fn name(&self) -> Option<&str> {
        self.name.as_deref()
    }
}

/// What one controlled scheduling step did: which task ran, what it
/// touched, and whom it woke. Fed to [`Schedule::observe`] after every
/// controlled poll so explorers can maintain sleep sets and happens-before
/// state online.
#[derive(Clone, Debug)]
pub struct StepRecord {
    /// Id of the task that was polled.
    pub task: u64,
    /// Slab slot of the task.
    pub slot: u32,
    /// Debug name, if any.
    pub name: Option<Rc<str>>,
    /// Virtual instant of the poll.
    pub at: SimTime,
    /// Sorted, deduplicated resource footprint of the poll. Two steps with
    /// disjoint footprints are independent (they commute).
    pub accesses: Vec<u64>,
    /// Tasks woken (or spawned) by the poll, in wake order.
    pub woke: Vec<u64>,
    /// Whether the task completed during this poll.
    pub completed: bool,
}

impl StepRecord {
    /// Whether this step's footprint intersects `other` (sorted slices).
    pub fn conflicts_with(&self, other: &[u64]) -> bool {
        footprints_conflict(&self.accesses, other)
    }
}

/// Whether two sorted resource footprints intersect. Steps of *different*
/// tasks with intersecting footprints are dependent: reordering them can
/// change the outcome.
pub fn footprints_conflict(a: &[u64], b: &[u64]) -> bool {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => return true,
        }
    }
    false
}

/// A scheduling strategy: decides which runnable task the executor polls at
/// each step. Installed with [`crate::Sim::set_schedule`]; while installed
/// the executor runs in *controlled* mode (see the module docs).
pub trait Schedule {
    /// Picks the next task to poll from `runnable` (never empty; order is
    /// FIFO wake order, so index 0 reproduces the default schedule).
    /// Called for every controlled step, including forced ones
    /// (`runnable.len() == 1`). Out-of-range returns are clamped.
    fn choose(&mut self, runnable: &[TaskRef], now: SimTime) -> usize;

    /// Observes the step that was just executed (the task chosen by the
    /// preceding [`Schedule::choose`] call), including its access footprint
    /// and wake-ups.
    fn observe(&mut self, _step: &StepRecord) {}

    /// When `true`, the executor stops stepping (the current execution is
    /// abandoned). Explorers use this to cut off redundant interleavings.
    fn aborted(&self) -> bool {
        false
    }
}

/// Always picks index 0: the FIFO wake order of the default executor. A
/// controlled run under `FifoSchedule` produces the same schedule as an
/// uncontrolled run (modulo duplicate-wake coalescing; see
/// `Sim::step_controlled`).
#[derive(Default)]
pub struct FifoSchedule;

impl Schedule for FifoSchedule {
    fn choose(&mut self, _runnable: &[TaskRef], _now: SimTime) -> usize {
        0
    }
}

/// Replays a recorded list of choice indices (one per choice point with two
/// or more runnable tasks), then falls back to FIFO. This is the consumer
/// side of a model-checker counterexample: the recorded prefix steers the
/// run back into the violating interleaving, and the FIFO tail finishes it
/// deterministically.
pub struct ReplaySchedule {
    choices: Vec<usize>,
    pos: usize,
}

impl ReplaySchedule {
    /// Creates a replay of `choices`.
    pub fn new(choices: Vec<usize>) -> Self {
        ReplaySchedule { choices, pos: 0 }
    }

    /// How many recorded choices have been consumed so far.
    pub fn consumed(&self) -> usize {
        self.pos
    }
}

impl Schedule for ReplaySchedule {
    fn choose(&mut self, runnable: &[TaskRef], _now: SimTime) -> usize {
        if runnable.len() == 1 {
            // Forced step: consumes no recorded choice.
            return 0;
        }
        let c = match self.choices.get(self.pos) {
            Some(&c) => c,
            None => 0, // FIFO tail
        };
        self.pos += 1;
        c.min(runnable.len() - 1)
    }
}

/// Seeded random schedule, for sampling the schedule space. Records the
/// choices it makes so a violating sample can be replayed with
/// [`ReplaySchedule`].
pub struct RandomSchedule {
    rng: crate::rng::SimRng,
    taken: Rc<RefCell<Vec<usize>>>,
}

impl RandomSchedule {
    /// Creates a random schedule derived from `seed`.
    pub fn new(seed: u64) -> Self {
        RandomSchedule {
            rng: crate::rng::derived_rng(seed, "schedule.random"),
            taken: Rc::new(RefCell::new(Vec::new())),
        }
    }

    /// Shared handle to the list of choices taken so far (one entry per
    /// choice point with ≥ 2 runnable tasks). Clone it before installing
    /// the schedule; after the run it holds the full schedule, suitable for
    /// [`ReplaySchedule::new`].
    pub fn taken(&self) -> Rc<RefCell<Vec<usize>>> {
        self.taken.clone()
    }
}

impl Schedule for RandomSchedule {
    fn choose(&mut self, runnable: &[TaskRef], _now: SimTime) -> usize {
        if runnable.len() == 1 {
            return 0;
        }
        use rand::Rng;
        let c = self.rng.random_range(0..runnable.len());
        self.taken.borrow_mut().push(c);
        c
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resource_ids_are_deterministic_and_disjoint() {
        assert_eq!(
            resource_id(&["kv", "eu", "k1"]),
            resource_id(&["kv", "eu", "k1"])
        );
        assert_ne!(resource_id(&["a", "bc"]), resource_id(&["ab", "c"]));
        // Named-resource space never collides with the counter space.
        assert_ne!(resource_id(&["x"]) & (1 << 63), 0);
    }

    #[test]
    fn footprint_conflict_is_set_intersection() {
        assert!(footprints_conflict(&[1, 5, 9], &[2, 5]));
        assert!(!footprints_conflict(&[1, 3], &[2, 4]));
        assert!(!footprints_conflict(&[], &[1]));
    }

    #[test]
    fn replay_consumes_choices_only_at_branching_points() {
        let mut r = ReplaySchedule::new(vec![1, 0]);
        let t = |slot: u32| TaskRef {
            id: u64::from(slot),
            slot,
            name: None,
        };
        // Forced step: no choice consumed.
        assert_eq!(r.choose(&[t(0)], SimTime::ZERO), 0);
        assert_eq!(r.consumed(), 0);
        // Branching: recorded choices, clamped, then FIFO tail.
        assert_eq!(r.choose(&[t(0), t(1)], SimTime::ZERO), 1);
        assert_eq!(r.choose(&[t(0), t(1), t(2)], SimTime::ZERO), 0);
        assert_eq!(r.choose(&[t(0), t(1)], SimTime::ZERO), 0);
        assert_eq!(r.consumed(), 3);
    }

    #[test]
    fn random_schedule_records_taken_choices() {
        let mut r = RandomSchedule::new(7);
        let taken = r.taken();
        let t = |slot: u32| TaskRef {
            id: u64::from(slot),
            slot,
            name: None,
        };
        let c = r.choose(&[t(0), t(1), t(2)], SimTime::ZERO);
        assert!(c < 3);
        assert_eq!(*taken.borrow(), vec![c]);
    }
}

//! # antipode-sim
//!
//! A deterministic, virtual-time discrete-event simulation substrate.
//!
//! The Antipode paper evaluates against multi-region public-cloud
//! deployments; this crate replaces that testbed with a single-threaded
//! async executor whose clock is *virtual*: awaiting [`Sim::sleep`] costs no
//! wall time — the run loop jumps the clock to the next pending timer when no
//! task is runnable. Combined with named, seeded RNG streams ([`Sim::rng`]),
//! an entire experiment is reproducible bit-for-bit from its seed.
//!
//! Components:
//! - [`executor`]: the [`Sim`] executor, tasks, sleeping, timeouts;
//! - [`sync`]: oneshot/mpsc channels, a fair [`sync::Semaphore`], [`sync::Notify`];
//! - [`schedule`]: pluggable [`Schedule`] strategies turning "which task
//!   runs next?" into explicit choice points (the hook `antipode-mc`'s
//!   systematic explorer drives);
//! - [`net`]: [`net::Region`]s and inter-region latency models;
//! - [`fault`]: the [`FaultPlan`] chaos schedule (outages, partitions,
//!   drop/stall episodes) consulted by every layer;
//! - [`dist`]: latency distributions (log-normal, mixtures, …);
//! - [`metrics`]: sample sets, histograms, rate counters;
//! - [`rng`]: deterministic ChaCha streams;
//! - [`time`]: the [`SimTime`] virtual clock.
//!
//! ```
//! use antipode_sim::{Sim, SimTime};
//! use std::time::Duration;
//!
//! let sim = Sim::new(42);
//! let s = sim.clone();
//! let end = sim.block_on(async move {
//!     s.sleep(Duration::from_secs(900)).await; // 15 virtual minutes, instant
//!     s.now()
//! });
//! assert_eq!(end, SimTime::from_secs(900));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod dist;
pub mod executor;
pub mod fault;
pub mod metrics;
pub mod net;
pub mod rng;
pub mod schedule;
pub mod sync;
pub mod time;

pub use dist::Dist;
pub use executor::{join_all, timeout, Elapsed, Interval, JoinHandle, Sim, Sleep, StuckTask};
pub use fault::{DiskFaultKind, FaultKind, FaultPlan, FaultWindow};
pub use metrics::{Histogram, RateCounter, Samples, Summary};
pub use net::{Network, Region};
pub use rng::SimRng;
pub use schedule::{
    footprints_conflict, FifoSchedule, RandomSchedule, ReplaySchedule, Schedule, StepRecord,
    TaskRef,
};
pub use time::SimTime;

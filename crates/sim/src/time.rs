//! Virtual time for the simulator.
//!
//! [`SimTime`] is an absolute instant on the simulation clock, measured in
//! nanoseconds since the start of the run. Durations are plain
//! [`std::time::Duration`] values, so application code reads naturally.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};
use std::time::Duration;

/// An absolute instant on the virtual clock, in nanoseconds since simulation
/// start. The clock only moves forward, driven by the executor.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime {
    nanos: u64,
}

impl SimTime {
    /// The start of the simulation.
    pub const ZERO: SimTime = SimTime { nanos: 0 };

    /// The largest representable instant.
    pub const MAX: SimTime = SimTime { nanos: u64::MAX };

    /// Creates an instant from nanoseconds since simulation start.
    pub const fn from_nanos(nanos: u64) -> Self {
        SimTime { nanos }
    }

    /// Creates an instant from whole seconds since simulation start.
    pub const fn from_secs(secs: u64) -> Self {
        SimTime {
            nanos: secs * 1_000_000_000,
        }
    }

    /// Creates an instant from whole milliseconds since simulation start.
    pub const fn from_millis(millis: u64) -> Self {
        SimTime {
            nanos: millis * 1_000_000,
        }
    }

    /// Creates an instant from fractional seconds. Negative values clamp to
    /// zero.
    pub fn from_secs_f64(secs: f64) -> Self {
        if secs <= 0.0 {
            return SimTime::ZERO;
        }
        SimTime {
            nanos: (secs * 1e9).round() as u64,
        }
    }

    /// Nanoseconds since simulation start.
    pub const fn as_nanos(self) -> u64 {
        self.nanos
    }

    /// Fractional seconds since simulation start.
    pub fn as_secs_f64(self) -> f64 {
        self.nanos as f64 / 1e9
    }

    /// Duration elapsed since `earlier`. Saturates to zero if `earlier` is in
    /// the future.
    pub fn since(self, earlier: SimTime) -> Duration {
        Duration::from_nanos(self.nanos.saturating_sub(earlier.nanos))
    }

    /// Adds a duration, saturating at [`SimTime::MAX`].
    pub fn saturating_add(self, d: Duration) -> SimTime {
        let extra = u64::try_from(d.as_nanos()).unwrap_or(u64::MAX);
        SimTime {
            nanos: self.nanos.saturating_add(extra),
        }
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    fn add(self, rhs: Duration) -> SimTime {
        self.saturating_add(rhs)
    }
}

impl AddAssign<Duration> for SimTime {
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub<SimTime> for SimTime {
    type Output = Duration;
    fn sub(self, rhs: SimTime) -> Duration {
        self.since(rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.as_secs_f64())
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.as_secs_f64())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
        assert_eq!(SimTime::ZERO.as_nanos(), 0);
    }

    #[test]
    fn add_duration() {
        let t = SimTime::from_millis(250) + Duration::from_millis(750);
        assert_eq!(t, SimTime::from_secs(1));
    }

    #[test]
    fn since_saturates() {
        let a = SimTime::from_secs(1);
        let b = SimTime::from_secs(2);
        assert_eq!(b.since(a), Duration::from_secs(1));
        assert_eq!(a.since(b), Duration::ZERO);
    }

    #[test]
    fn from_secs_f64_clamps_negative() {
        assert_eq!(SimTime::from_secs_f64(-1.0), SimTime::ZERO);
        assert_eq!(SimTime::from_secs_f64(0.5), SimTime::from_millis(500));
    }

    #[test]
    fn saturating_add_caps_at_max() {
        let t = SimTime::MAX.saturating_add(Duration::from_secs(1));
        assert_eq!(t, SimTime::MAX);
    }

    #[test]
    fn ordering_is_chronological() {
        assert!(SimTime::from_millis(1) < SimTime::from_millis(2));
        assert!(SimTime::from_secs(1) > SimTime::from_millis(999));
    }

    #[test]
    fn display_formats_seconds() {
        assert_eq!(format!("{}", SimTime::from_millis(1500)), "1.500s");
    }
}

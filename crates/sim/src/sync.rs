//! Task-local synchronization primitives.
//!
//! These are single-threaded (`!Send`) counterparts of the usual async
//! toolbox: a oneshot channel, an unbounded MPSC channel, a fair async
//! semaphore, and an event [`Notify`]. They exist so simulated services can
//! coordinate without pulling in a real async runtime.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::fmt;
use std::future::Future;
use std::pin::Pin;
use std::rc::{Rc, Weak};
use std::task::{Context, Poll, Waker};

use crate::schedule::{next_resource_id, note_access, note_blocked, BlockedOn};

// ---------------------------------------------------------------------------
// oneshot
// ---------------------------------------------------------------------------

struct OneInner<T> {
    /// Resource id for schedule-exploration footprints (see
    /// [`crate::schedule`]); deterministic given creation order.
    id: u64,
    value: Option<T>,
    waker: Option<Waker>,
    sender_alive: bool,
    receiver_alive: bool,
}

/// Sending half of a oneshot channel.
pub struct OneSender<T> {
    inner: Rc<RefCell<OneInner<T>>>,
}

/// Receiving half of a oneshot channel; a future yielding the sent value.
pub struct OneReceiver<T> {
    inner: Rc<RefCell<OneInner<T>>>,
}

/// Error returned when awaiting a oneshot whose sender was dropped.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvError;

impl fmt::Display for RecvError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "oneshot sender dropped without sending")
    }
}
impl std::error::Error for RecvError {}

/// Creates a oneshot channel.
pub fn oneshot<T>() -> (OneSender<T>, OneReceiver<T>) {
    let inner = Rc::new(RefCell::new(OneInner {
        id: next_resource_id(),
        value: None,
        waker: None,
        sender_alive: true,
        receiver_alive: true,
    }));
    (
        OneSender {
            inner: inner.clone(),
        },
        OneReceiver { inner },
    )
}

impl<T> OneSender<T> {
    /// Sends the value, failing (returning it back) if the receiver is gone.
    pub fn send(self, value: T) -> Result<(), T> {
        let mut inner = self.inner.borrow_mut();
        note_access(inner.id);
        if !inner.receiver_alive {
            return Err(value);
        }
        inner.value = Some(value);
        if let Some(w) = inner.waker.take() {
            w.wake();
        }
        Ok(())
    }

    /// Whether the receiving half is still alive.
    pub fn is_connected(&self) -> bool {
        self.inner.borrow().receiver_alive
    }
}

impl<T> Drop for OneSender<T> {
    fn drop(&mut self) {
        let mut inner = self.inner.borrow_mut();
        note_access(inner.id);
        inner.sender_alive = false;
        if let Some(w) = inner.waker.take() {
            w.wake();
        }
    }
}

impl<T> Drop for OneReceiver<T> {
    fn drop(&mut self) {
        let mut inner = self.inner.borrow_mut();
        note_access(inner.id);
        inner.receiver_alive = false;
    }
}

impl<T> Future for OneReceiver<T> {
    type Output = Result<T, RecvError>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut inner = self.inner.borrow_mut();
        note_access(inner.id);
        if let Some(v) = inner.value.take() {
            return Poll::Ready(Ok(v));
        }
        if !inner.sender_alive {
            return Poll::Ready(Err(RecvError));
        }
        inner.waker = Some(cx.waker().clone());
        note_blocked(BlockedOn::Oneshot(inner.id));
        Poll::Pending
    }
}

// ---------------------------------------------------------------------------
// unbounded mpsc (single consumer)
// ---------------------------------------------------------------------------

struct ChanInner<T> {
    /// Resource id for schedule-exploration footprints.
    id: u64,
    queue: VecDeque<T>,
    waker: Option<Waker>,
    senders: usize,
    receiver_alive: bool,
}

/// Sending half of an unbounded channel. Clone freely.
pub struct Sender<T> {
    inner: Rc<RefCell<ChanInner<T>>>,
}

/// Receiving half of an unbounded channel (single consumer).
pub struct Receiver<T> {
    inner: Rc<RefCell<ChanInner<T>>>,
}

/// Error returned by [`Sender::send`] when the receiver is gone.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SendError<T>(pub T);

/// Creates an unbounded MPSC channel.
pub fn channel<T>() -> (Sender<T>, Receiver<T>) {
    let inner = Rc::new(RefCell::new(ChanInner {
        id: next_resource_id(),
        queue: VecDeque::new(),
        waker: None,
        senders: 1,
        receiver_alive: true,
    }));
    (
        Sender {
            inner: inner.clone(),
        },
        Receiver { inner },
    )
}

impl<T> Clone for Sender<T> {
    fn clone(&self) -> Self {
        self.inner.borrow_mut().senders += 1;
        Sender {
            inner: self.inner.clone(),
        }
    }
}

impl<T> Sender<T> {
    /// Enqueues a message, failing if the receiver was dropped.
    pub fn send(&self, value: T) -> Result<(), SendError<T>> {
        let mut inner = self.inner.borrow_mut();
        note_access(inner.id);
        if !inner.receiver_alive {
            return Err(SendError(value));
        }
        inner.queue.push_back(value);
        if let Some(w) = inner.waker.take() {
            w.wake();
        }
        Ok(())
    }

    /// Number of queued, undelivered messages.
    pub fn queued(&self) -> usize {
        self.inner.borrow().queue.len()
    }
}

impl<T> Drop for Sender<T> {
    fn drop(&mut self) {
        let mut inner = self.inner.borrow_mut();
        inner.senders -= 1;
        if inner.senders == 0 {
            note_access(inner.id);
            if let Some(w) = inner.waker.take() {
                w.wake();
            }
        }
    }
}

impl<T> Drop for Receiver<T> {
    fn drop(&mut self) {
        let mut inner = self.inner.borrow_mut();
        note_access(inner.id);
        inner.receiver_alive = false;
    }
}

impl<T> Receiver<T> {
    /// Receives the next message; `None` once all senders are dropped and
    /// the queue is drained.
    pub fn recv(&mut self) -> Recv<'_, T> {
        Recv { chan: self }
    }

    /// Non-blocking receive.
    pub fn try_recv(&mut self) -> Option<T> {
        let mut inner = self.inner.borrow_mut();
        note_access(inner.id);
        inner.queue.pop_front()
    }

    /// Number of queued messages.
    pub fn len(&self) -> usize {
        self.inner.borrow().queue.len()
    }

    /// Whether the queue is currently empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Future returned by [`Receiver::recv`].
pub struct Recv<'a, T> {
    chan: &'a mut Receiver<T>,
}

impl<T> Future for Recv<'_, T> {
    type Output = Option<T>;
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<Self::Output> {
        let mut inner = self.chan.inner.borrow_mut();
        note_access(inner.id);
        if let Some(v) = inner.queue.pop_front() {
            return Poll::Ready(Some(v));
        }
        if inner.senders == 0 {
            return Poll::Ready(None);
        }
        inner.waker = Some(cx.waker().clone());
        note_blocked(BlockedOn::Channel(inner.id));
        Poll::Pending
    }
}

// ---------------------------------------------------------------------------
// semaphore
// ---------------------------------------------------------------------------

struct SemInner {
    /// Resource id for schedule-exploration footprints.
    id: u64,
    permits: usize,
    waiters: VecDeque<OneSender<()>>,
}

/// A fair async semaphore: waiters are granted permits in FIFO order. Used to
/// model bounded service concurrency (worker pools).
#[derive(Clone)]
pub struct Semaphore {
    inner: Rc<RefCell<SemInner>>,
}

/// RAII permit from a [`Semaphore`]; the permit returns on drop.
pub struct Permit {
    sem: Weak<RefCell<SemInner>>,
}

impl Semaphore {
    /// Creates a semaphore with `permits` initial permits.
    pub fn new(permits: usize) -> Self {
        Semaphore {
            inner: Rc::new(RefCell::new(SemInner {
                id: next_resource_id(),
                permits,
                waiters: VecDeque::new(),
            })),
        }
    }

    /// Acquires one permit, waiting if none are available.
    pub async fn acquire(&self) -> Permit {
        loop {
            let rx = {
                let mut inner = self.inner.borrow_mut();
                note_access(inner.id);
                if inner.permits > 0 {
                    inner.permits -= 1;
                    return Permit {
                        sem: Rc::downgrade(&self.inner),
                    };
                }
                let (tx, rx) = oneshot();
                inner.waiters.push_back(tx);
                rx
            };
            // A dropped grant (race with release) loops and retries.
            if rx.await.is_ok() {
                return Permit {
                    sem: Rc::downgrade(&self.inner),
                };
            }
        }
    }

    /// Attempts to acquire without waiting.
    pub fn try_acquire(&self) -> Option<Permit> {
        let mut inner = self.inner.borrow_mut();
        note_access(inner.id);
        if inner.permits > 0 {
            inner.permits -= 1;
            Some(Permit {
                sem: Rc::downgrade(&self.inner),
            })
        } else {
            None
        }
    }

    /// Currently available permits.
    pub fn available(&self) -> usize {
        self.inner.borrow().permits
    }

    /// Number of queued waiters.
    pub fn waiting(&self) -> usize {
        self.inner.borrow().waiters.len()
    }

    fn release(inner: &RefCell<SemInner>) {
        let mut inner = inner.borrow_mut();
        note_access(inner.id);
        // Hand the permit to the first waiter whose receiver is still alive.
        // FIFO hand-off is this primitive's *specified fairness contract*
        // (see `semaphore_is_fifo_fair`), not a scheduling decision — the
        // woken waiter still runs only when the executor's Schedule picks it.
        // lint: allow(scheduler-bypass, fair permit hand-off is semaphore semantics, not task ordering)
        while let Some(tx) = inner.waiters.pop_front() {
            if tx.send(()).is_ok() {
                return;
            }
        }
        inner.permits += 1;
    }
}

impl Drop for Permit {
    fn drop(&mut self) {
        if let Some(inner) = self.sem.upgrade() {
            Semaphore::release(&inner);
        }
    }
}

// ---------------------------------------------------------------------------
// notify
// ---------------------------------------------------------------------------

struct NotifyInner {
    /// Resource id for schedule-exploration footprints.
    id: u64,
    epoch: u64,
    waiters: Vec<Waker>,
}

/// A broadcast wake-up: [`Notify::notified`] resolves at the next
/// [`Notify::notify_all`] after the future was created (level set at creation
/// so notifications between creation and first poll are not lost).
#[derive(Clone)]
pub struct Notify {
    inner: Rc<RefCell<NotifyInner>>,
}

impl Default for Notify {
    fn default() -> Self {
        Self::new()
    }
}

impl Notify {
    /// Creates a new notifier.
    pub fn new() -> Self {
        Notify {
            inner: Rc::new(RefCell::new(NotifyInner {
                id: next_resource_id(),
                epoch: 0,
                waiters: Vec::new(),
            })),
        }
    }

    /// Wakes every pending and future `notified()` created before this call.
    pub fn notify_all(&self) {
        let mut inner = self.inner.borrow_mut();
        note_access(inner.id);
        inner.epoch += 1;
        for w in inner.waiters.drain(..) {
            w.wake();
        }
    }

    /// A future resolving at the next `notify_all`.
    pub fn notified(&self) -> Notified {
        let epoch = self.inner.borrow().epoch;
        Notified {
            inner: self.inner.clone(),
            created_at: epoch,
        }
    }
}

/// Future returned by [`Notify::notified`].
pub struct Notified {
    inner: Rc<RefCell<NotifyInner>>,
    created_at: u64,
}

impl Future for Notified {
    type Output = ();
    fn poll(self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        let mut inner = self.inner.borrow_mut();
        note_access(inner.id);
        if inner.epoch > self.created_at {
            return Poll::Ready(());
        }
        inner.waiters.push(cx.waker().clone());
        note_blocked(BlockedOn::Notify(inner.id));
        Poll::Pending
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::executor::Sim;
    use std::cell::Cell;
    use std::time::Duration;

    #[test]
    fn oneshot_delivers_value() {
        let sim = Sim::new(0);
        let v = sim.block_on(async {
            let (tx, rx) = oneshot();
            tx.send(5).unwrap();
            rx.await
        });
        assert_eq!(v, Ok(5));
    }

    #[test]
    fn oneshot_sender_drop_yields_error() {
        let sim = Sim::new(0);
        let v = sim.block_on(async {
            let (tx, rx) = oneshot::<u8>();
            drop(tx);
            rx.await
        });
        assert_eq!(v, Err(RecvError));
    }

    #[test]
    fn oneshot_send_fails_after_receiver_drop() {
        let (tx, rx) = oneshot::<u8>();
        drop(rx);
        assert_eq!(tx.send(1), Err(1));
    }

    #[test]
    fn oneshot_wakes_pending_receiver() {
        let sim = Sim::new(0);
        let s = sim.clone();
        let got = sim.block_on(async move {
            let (tx, rx) = oneshot();
            let s2 = s.clone();
            s.spawn(async move {
                s2.sleep(Duration::from_millis(10)).await;
                tx.send(99).unwrap();
            });
            rx.await.unwrap()
        });
        assert_eq!(got, 99);
    }

    #[test]
    fn channel_fifo_order() {
        let sim = Sim::new(0);
        let out = sim.block_on(async {
            let (tx, mut rx) = channel();
            for i in 0..5 {
                tx.send(i).unwrap();
            }
            drop(tx);
            let mut got = Vec::new();
            while let Some(v) = rx.recv().await {
                got.push(v);
            }
            got
        });
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn channel_recv_waits_for_producer() {
        let sim = Sim::new(0);
        let s = sim.clone();
        let got = sim.block_on(async move {
            let (tx, mut rx) = channel();
            let s2 = s.clone();
            s.spawn(async move {
                s2.sleep(Duration::from_millis(20)).await;
                tx.send("late").unwrap();
            });
            rx.recv().await
        });
        assert_eq!(got, Some("late"));
        assert_eq!(sim.now().as_nanos(), 20_000_000);
    }

    #[test]
    fn channel_send_fails_after_receiver_drop() {
        let (tx, rx) = channel::<u8>();
        drop(rx);
        assert!(tx.send(1).is_err());
    }

    #[test]
    fn channel_close_drains_then_none() {
        let sim = Sim::new(0);
        let out = sim.block_on(async {
            let (tx, mut rx) = channel();
            tx.send(1).unwrap();
            drop(tx);
            (rx.recv().await, rx.recv().await)
        });
        assert_eq!(out, (Some(1), None));
    }

    #[test]
    fn semaphore_limits_concurrency() {
        let sim = Sim::new(0);
        let sem = Semaphore::new(2);
        let peak = Rc::new(Cell::new(0usize));
        let cur = Rc::new(Cell::new(0usize));
        for _ in 0..10 {
            let sem = sem.clone();
            let peak = peak.clone();
            let cur = cur.clone();
            let s = sim.clone();
            sim.spawn(async move {
                let _p = sem.acquire().await;
                cur.set(cur.get() + 1);
                peak.set(peak.get().max(cur.get()));
                s.sleep(Duration::from_millis(10)).await;
                cur.set(cur.get() - 1);
            });
        }
        sim.run();
        assert_eq!(peak.get(), 2);
        assert_eq!(sem.available(), 2);
    }

    #[test]
    fn semaphore_is_fifo_fair() {
        let sim = Sim::new(0);
        let sem = Semaphore::new(1);
        let order: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for i in 0..5u32 {
            let sem = sem.clone();
            let order = order.clone();
            let s = sim.clone();
            sim.spawn(async move {
                // Stagger arrival so queueing order is deterministic.
                s.sleep(Duration::from_millis(u64::from(i))).await;
                let _p = sem.acquire().await;
                order.borrow_mut().push(i);
                s.sleep(Duration::from_millis(50)).await;
            });
        }
        sim.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn semaphore_try_acquire() {
        let sem = Semaphore::new(1);
        let p = sem.try_acquire();
        assert!(p.is_some());
        assert!(sem.try_acquire().is_none());
        drop(p);
        assert!(sem.try_acquire().is_some());
    }

    #[test]
    fn notify_wakes_all_waiters() {
        let sim = Sim::new(0);
        let n = Notify::new();
        let count = Rc::new(Cell::new(0));
        for _ in 0..3 {
            let fut = n.notified();
            let count = count.clone();
            sim.spawn(async move {
                fut.await;
                count.set(count.get() + 1);
            });
        }
        let n2 = n.clone();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(Duration::from_millis(1)).await;
            n2.notify_all();
        });
        sim.run();
        assert_eq!(count.get(), 3);
    }

    #[test]
    fn notified_before_poll_is_not_lost() {
        let sim = Sim::new(0);
        let n = Notify::new();
        let fut = n.notified();
        n.notify_all();
        sim.block_on(fut); // must complete instantly
    }
}

//! Deterministic random-number streams.
//!
//! Every stochastic component of the simulation draws from its own named
//! ChaCha stream derived from the run's master seed. Streams are independent
//! of task scheduling order, so a run is bit-for-bit reproducible from its
//! seed alone — a property the experiment harness relies on.

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// A deterministic RNG stream. Re-exported so downstream crates never name
/// the concrete generator.
pub type SimRng = ChaCha12Rng;

/// FNV-1a 64-bit hash, used to derive per-component seeds from labels.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// Derives a child seed from a master seed and a component label.
///
/// Distinct labels yield (with overwhelming probability) independent streams;
/// the same `(seed, label)` pair always yields the same stream.
pub fn derive_seed(master: u64, label: &str) -> u64 {
    let mut buf = Vec::with_capacity(8 + label.len());
    buf.extend_from_slice(&master.to_le_bytes());
    buf.extend_from_slice(label.as_bytes());
    fnv1a(&buf)
}

/// Creates a deterministic RNG from a 64-bit seed.
pub fn rng_from_seed(seed: u64) -> SimRng {
    let mut key = [0u8; 32];
    key[..8].copy_from_slice(&seed.to_le_bytes());
    // Spread the entropy so nearby seeds do not produce nearby states.
    let h = fnv1a(&seed.to_le_bytes());
    key[8..16].copy_from_slice(&h.to_le_bytes());
    let h2 = fnv1a(&h.to_le_bytes());
    key[16..24].copy_from_slice(&h2.to_le_bytes());
    let h3 = fnv1a(&h2.to_le_bytes());
    key[24..32].copy_from_slice(&h3.to_le_bytes());
    ChaCha12Rng::from_seed(key)
}

/// Creates the RNG stream for a named component under a master seed.
pub fn derived_rng(master: u64, label: &str) -> SimRng {
    rng_from_seed(derive_seed(master, label))
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn same_seed_same_stream() {
        let mut a = rng_from_seed(42);
        let mut b = rng_from_seed(42);
        for _ in 0..16 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = rng_from_seed(1);
        let mut b = rng_from_seed(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn labels_produce_independent_streams() {
        let mut a = derived_rng(7, "mysql");
        let mut b = derived_rng(7, "redis");
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn derive_seed_is_stable() {
        assert_eq!(derive_seed(7, "mysql"), derive_seed(7, "mysql"));
        assert_ne!(derive_seed(7, "mysql"), derive_seed(8, "mysql"));
    }
}

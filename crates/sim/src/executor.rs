//! The virtual-time async executor.
//!
//! A [`Sim`] owns a single-threaded task set and a virtual clock. Tasks are
//! ordinary Rust futures; awaiting [`Sim::sleep`] advances nothing by itself —
//! the run loop pops the earliest pending timer only when no task is runnable,
//! jumps the clock to that instant, and wakes the sleeper. A five-minute
//! simulated experiment therefore completes in milliseconds of wall time, and
//! with seeded RNG streams (see [`crate::rng`]) a run is fully deterministic.

use std::cell::{Cell, RefCell};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::future::Future;
use std::pin::Pin;
use std::rc::Rc;
use std::sync::Arc;
use std::task::{Context, Poll, Wake, Waker};
use std::time::Duration;

use parking_lot::Mutex;

use crate::fault::FaultPlan;
use crate::rng::{derived_rng, SimRng};
use crate::schedule::{
    self, BlockedOn, Schedule, StepRecord, TaskRef, WakeSource, WAKE_EXTERNAL, WAKE_TIMER,
};
use crate::sync::{oneshot, OneReceiver, RecvError};
use crate::time::SimTime;

/// Packed task handle: slot index in the low 32 bits, slot generation in
/// the high 32. The generation guards against stale wakes targeting a
/// recycled slot (ABA).
type TaskId = u64;
type BoxFuture = Pin<Box<dyn Future<Output = ()>>>;

fn pack_task(slot: u32, generation: u32) -> TaskId {
    ((generation as u64) << 32) | slot as u64
}

fn unpack_task(id: TaskId) -> (u32, u32) {
    (id as u32, (id >> 32) as u32)
}

/// One entry of the task slab. The waker is created once at spawn and
/// cloned per poll (an `Arc` bump) instead of re-allocated — task polling
/// is the engine's hottest executor path.
struct TaskSlot {
    generation: u32,
    waker: Option<Waker>,
    state: SlotState,
    /// Debug name from [`Sim::spawn_named`], surfaced in choice points and
    /// the deadlock stall report.
    name: Option<Rc<str>>,
    /// What the task's last `Pending` poll blocked on (diagnostic).
    blocked_on: Option<BlockedOn>,
    /// Raw wake source of the wake that led to the task's last poll
    /// ([`WAKE_EXTERNAL`] until first polled).
    last_wake: u32,
    /// Whether the task has been polled at least once.
    polled: bool,
}

enum SlotState {
    /// No task; the slot is on the free list.
    Vacant,
    /// The task's future is checked out by `poll_task`.
    Polling,
    /// A live task waiting to be polled.
    Occupied(BoxFuture),
}

/// Queue of runnable task ids, shared with wakers (which must be `Send`;
/// the simulator is single-threaded, so the mutex is never contended).
/// Each entry carries the raw wake source (the slot of the task whose poll
/// triggered the wake, or a [`WAKE_TIMER`]/[`WAKE_EXTERNAL`] sentinel) for
/// the deadlock stall report.
///
/// This queue is the *only* source of runnable tasks, and [`Sim::step`] /
/// `Sim::step_controlled` below are the only consumers: every pop flows
/// through the `Schedule` choice-point API so a model checker sees (and can
/// reorder) every scheduling decision.
#[derive(Default)]
struct ReadyQueue {
    queue: Mutex<VecDeque<(TaskId, u32)>>,
}

impl ReadyQueue {
    fn push(&self, id: TaskId) {
        let src = schedule::current_slot();
        self.queue.lock().push_back((id, src));
    }
    fn pop(&self) -> Option<(TaskId, u32)> {
        self.queue.lock().pop_front()
    }
}

struct TaskWaker {
    id: TaskId,
    ready: Arc<ReadyQueue>,
}

impl Wake for TaskWaker {
    fn wake(self: Arc<Self>) {
        self.ready.push(self.id);
    }
    fn wake_by_ref(self: &Arc<Self>) {
        self.ready.push(self.id);
    }
}

/// A pending timer: wake `waker` once the clock reaches `at`. Entries with a
/// set `cancelled` flag are skipped without advancing the clock.
struct TimerEntry {
    at: SimTime,
    seq: u64,
    waker: Waker,
    cancelled: Rc<Cell<bool>>,
}

impl PartialEq for TimerEntry {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl Eq for TimerEntry {}
impl PartialOrd for TimerEntry {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for TimerEntry {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

struct Inner {
    now: Cell<SimTime>,
    next_seq: Cell<u64>,
    tasks: RefCell<Vec<TaskSlot>>,
    free: RefCell<Vec<u32>>,
    live: Cell<usize>,
    ready: Arc<ReadyQueue>,
    timers: RefCell<BinaryHeap<Reverse<TimerEntry>>>,
    /// Recycled timer cancellation flags (a flag re-enters the pool only
    /// once no heap entry or `Sleep` holds it) — sleeping is the hottest
    /// allocation site in a replication-heavy run.
    flag_pool: RefCell<Vec<Rc<Cell<bool>>>>,
    seed: u64,
    faults: FaultPlan,
    /// Installed scheduling strategy; `None` means the default FIFO fast
    /// path (uncontrolled mode).
    sched: RefCell<Option<Box<dyn Schedule>>>,
    /// Whether a schedule is installed (cheap flag so the hot path pays a
    /// single `Cell` read, not a `RefCell` borrow).
    controlled: Cell<bool>,
    /// Controlled-mode staging area: runnable tasks drained from `ready`
    /// awaiting a schedule decision. Always empty in uncontrolled mode.
    staged: RefCell<VecDeque<(TaskId, u32)>>,
    /// Choice points seen so far (controlled steps with ≥ 2 runnable
    /// tasks). Diagnostic.
    choice_points: Cell<u64>,
}

/// Handle to the simulation. Cheap to clone; every service, datastore and
/// client in a run shares one.
#[derive(Clone)]
pub struct Sim {
    inner: Rc<Inner>,
}

impl Default for Sim {
    fn default() -> Self {
        Sim::new(0)
    }
}

impl Sim {
    /// Creates a simulation with the given master seed. All randomness in the
    /// run derives from this seed via named streams ([`Sim::rng`]).
    pub fn new(seed: u64) -> Self {
        // Start every simulation from the same thread-local origin (resource
        // ids, recording state) so back-to-back executions are comparable —
        // the model checker relies on this when it diffs footprints across
        // executions sharing a choice prefix.
        schedule::reset_thread_state();
        Sim {
            inner: Rc::new(Inner {
                now: Cell::new(SimTime::ZERO),
                next_seq: Cell::new(0),
                tasks: RefCell::new(Vec::new()),
                free: RefCell::new(Vec::new()),
                live: Cell::new(0),
                ready: Arc::new(ReadyQueue::default()),
                timers: RefCell::new(BinaryHeap::new()),
                flag_pool: RefCell::new(Vec::new()),
                seed,
                faults: FaultPlan::new(),
                sched: RefCell::new(None),
                controlled: Cell::new(false),
                staged: RefCell::new(VecDeque::new()),
                choice_points: Cell::new(0),
            }),
        }
    }

    /// Installs a [`Schedule`] strategy, switching the executor into
    /// *controlled* mode: every "which runnable task polls next?" decision
    /// becomes an explicit choice point routed through the strategy, and
    /// per-step access footprints are recorded (see [`crate::schedule`]).
    ///
    /// Two semantic differences from the default mode, both confined to
    /// controlled runs: duplicate wakes of the same task coalesce into one
    /// runnable entry, and *all* timers due at the earliest pending instant
    /// fire together (so same-instant concurrency surfaces as a single
    /// choice point instead of an arbitrary FIFO interleaving).
    pub fn set_schedule(&self, s: Box<dyn Schedule>) {
        *self.inner.sched.borrow_mut() = Some(s);
        self.inner.controlled.set(true);
    }

    /// Whether a schedule is installed ([`Sim::set_schedule`]).
    pub fn is_controlled(&self) -> bool {
        self.inner.controlled.get()
    }

    /// Number of choice points encountered so far (controlled steps with
    /// two or more runnable tasks).
    pub fn choice_points(&self) -> u64 {
        self.inner.choice_points.get()
    }

    /// The current virtual time.
    pub fn now(&self) -> SimTime {
        self.inner.now.get()
    }

    /// The master seed of this run.
    pub fn seed(&self) -> u64 {
        self.inner.seed
    }

    /// The simulation's [`FaultPlan`] — the single chaos schedule every
    /// layer (network, stores, services) consults. Cheap to clone.
    pub fn faults(&self) -> FaultPlan {
        self.inner.faults.clone()
    }

    /// A deterministic RNG stream for the named component, independent of
    /// task scheduling order.
    pub fn rng(&self, label: &str) -> SimRng {
        derived_rng(self.inner.seed, label)
    }

    fn next_seq(&self) -> u64 {
        let s = self.inner.next_seq.get();
        self.inner.next_seq.set(s + 1);
        s
    }

    /// Spawns a task. The returned [`JoinHandle`] resolves with the task's
    /// output; dropping it detaches the task.
    pub fn spawn<T: 'static>(&self, fut: impl Future<Output = T> + 'static) -> JoinHandle<T> {
        let (tx, rx) = oneshot();
        let wrapped: BoxFuture = Box::pin(async move {
            let out = fut.await;
            // The receiver may have been dropped (detached task): ignore.
            let _ = tx.send(out);
        });
        self.insert_task(wrapped, None);
        JoinHandle { rx }
    }

    /// [`Sim::spawn`] with a debug name. The name shows up in schedule
    /// choice points ([`TaskRef::name`]) and the deadlock stall report; it
    /// has no effect on execution.
    pub fn spawn_named<T: 'static>(
        &self,
        name: &str,
        fut: impl Future<Output = T> + 'static,
    ) -> JoinHandle<T> {
        let (tx, rx) = oneshot();
        let wrapped: BoxFuture = Box::pin(async move {
            let out = fut.await;
            let _ = tx.send(out);
        });
        self.insert_task(wrapped, Some(Rc::from(name)));
        JoinHandle { rx }
    }

    /// Spawns a task nobody will join: skips the [`JoinHandle`] oneshot
    /// allocation of [`Sim::spawn`]. The fire-and-forget path (replication
    /// flusher wakes, per-write client tasks) is hot enough for the
    /// difference to show up in end-to-end throughput.
    pub fn spawn_detached(&self, fut: impl Future<Output = ()> + 'static) {
        self.insert_task(Box::pin(fut), None);
    }

    fn insert_task(&self, fut: BoxFuture, name: Option<Rc<str>>) {
        let mut tasks = self.inner.tasks.borrow_mut();
        let slot = match self.inner.free.borrow_mut().pop() {
            Some(slot) => slot,
            None => {
                tasks.push(TaskSlot {
                    generation: 0,
                    waker: None,
                    state: SlotState::Vacant,
                    name: None,
                    blocked_on: None,
                    last_wake: WAKE_EXTERNAL,
                    polled: false,
                });
                (tasks.len() - 1) as u32
            }
        };
        let entry = &mut tasks[slot as usize];
        let id = pack_task(slot, entry.generation);
        entry.waker = Some(Waker::from(Arc::new(TaskWaker {
            id,
            ready: self.inner.ready.clone(),
        })));
        entry.state = SlotState::Occupied(fut);
        entry.name = name;
        entry.blocked_on = None;
        entry.last_wake = WAKE_EXTERNAL;
        entry.polled = false;
        self.inner.live.set(self.inner.live.get() + 1);
        self.inner.ready.push(id);
    }

    /// Registers a timer waking `waker` at `at`; returns the cancellation
    /// flag.
    pub(crate) fn register_timer(&self, at: SimTime, waker: Waker) -> Rc<Cell<bool>> {
        let cancelled = match self.inner.flag_pool.borrow_mut().pop() {
            Some(flag) => {
                flag.set(false);
                flag
            }
            None => Rc::new(Cell::new(false)),
        };
        self.inner.timers.borrow_mut().push(Reverse(TimerEntry {
            at,
            seq: self.next_seq(),
            waker,
            cancelled: cancelled.clone(),
        }));
        cancelled
    }

    /// Returns a timer flag to the pool once it has no other holder (no
    /// heap entry, no other `Sleep`).
    pub(crate) fn recycle_timer_flag(&self, flag: Rc<Cell<bool>>) {
        if Rc::strong_count(&flag) == 1 {
            self.inner.flag_pool.borrow_mut().push(flag);
        }
    }

    /// A future resolving after `d` of virtual time.
    pub fn sleep(&self, d: Duration) -> Sleep {
        self.sleep_until(self.now() + d)
    }

    /// A future resolving once the clock reaches `deadline`.
    pub fn sleep_until(&self, deadline: SimTime) -> Sleep {
        Sleep {
            sim: self.clone(),
            deadline,
            registration: None,
        }
    }

    /// Yields once, letting other runnable tasks execute at the same instant.
    pub fn yield_now(&self) -> YieldNow {
        YieldNow { polled: false }
    }

    /// Polls the task `id`, returning `true` if the task completed. `src`
    /// is the raw wake source that made the task runnable (stall-report
    /// bookkeeping only).
    fn poll_task(&self, id: TaskId, src: u32) -> bool {
        let (slot, generation) = unpack_task(id);
        // Check the future out of its slot; the task table cannot stay
        // borrowed across the poll (the future may spawn or wake).
        let (mut fut, waker) = {
            let mut tasks = self.inner.tasks.borrow_mut();
            let Some(entry) = tasks.get_mut(slot as usize) else {
                return false;
            };
            if entry.generation != generation {
                return false; // stale wake for a recycled slot
            }
            match std::mem::replace(&mut entry.state, SlotState::Polling) {
                SlotState::Occupied(fut) => {
                    let waker = entry.waker.clone().expect("occupied slots have a waker");
                    entry.last_wake = src;
                    entry.polled = true;
                    (fut, waker)
                }
                // Completed (duplicate wake) — restore and ignore.
                other => {
                    entry.state = other;
                    return false;
                }
            }
        };
        let mut cx = Context::from_waker(&waker);
        // Attribute wakes performed by this poll to the task, and clear any
        // stale blocked-on note before the poll sets a fresh one.
        let prev_slot = schedule::set_current_slot(slot);
        schedule::take_block_note();
        let poll = fut.as_mut().poll(&mut cx);
        schedule::set_current_slot(prev_slot);
        match poll {
            Poll::Ready(()) => {
                let mut tasks = self.inner.tasks.borrow_mut();
                let entry = &mut tasks[slot as usize];
                entry.state = SlotState::Vacant;
                entry.waker = None;
                entry.name = None;
                entry.blocked_on = None;
                entry.generation = entry.generation.wrapping_add(1);
                self.inner.free.borrow_mut().push(slot);
                self.inner.live.set(self.inner.live.get() - 1);
                true
            }
            Poll::Pending => {
                let mut tasks = self.inner.tasks.borrow_mut();
                let entry = &mut tasks[slot as usize];
                entry.state = SlotState::Occupied(fut);
                entry.blocked_on = schedule::take_block_note();
                false
            }
        }
    }

    /// Runs one scheduling step: polls one runnable task, or fires the next
    /// timer (advancing the clock). Returns `false` when the simulation is
    /// quiescent.
    ///
    /// In the default (uncontrolled) mode the runnable task is always the
    /// FIFO head of the ready queue and exactly one timer fires per step —
    /// the byte-identical schedule every golden-trace test pins. With a
    /// [`Schedule`] installed the decision is delegated to the strategy.
    pub fn step(&self) -> bool {
        if self.inner.controlled.get() {
            return self.step_controlled();
        }
        if let Some((id, src)) = self.inner.ready.pop() {
            self.poll_task(id, src);
            return true;
        }
        loop {
            let entry = match self.inner.timers.borrow_mut().pop() {
                Some(Reverse(e)) => e,
                None => return false,
            };
            if entry.cancelled.get() {
                self.recycle_timer_flag(entry.cancelled);
                continue;
            }
            debug_assert!(entry.at >= self.now(), "clock must be monotonic");
            self.inner.now.set(entry.at);
            let prev = schedule::set_current_slot(WAKE_TIMER);
            entry.waker.wake();
            schedule::set_current_slot(prev);
            return true;
        }
    }

    /// Controlled-mode step: drains fresh wakes into the staging list,
    /// presents the normalized runnable set to the installed [`Schedule`],
    /// polls the chosen task with access recording on, and reports the
    /// resulting [`StepRecord`] back to the strategy.
    fn step_controlled(&self) -> bool {
        self.drain_ready(None);
        if let Some(s) = self.inner.sched.borrow().as_deref() {
            if s.aborted() {
                return false;
            }
        }
        let list = self.normalize_staged();
        if list.is_empty() {
            return self.fire_timer_batch();
        }
        let refs: Vec<TaskRef> = {
            let tasks = self.inner.tasks.borrow();
            list.iter()
                .map(|&(id, _)| {
                    let (slot, _) = unpack_task(id);
                    TaskRef {
                        id,
                        slot,
                        name: tasks[slot as usize].name.clone(),
                    }
                })
                .collect()
        };
        if refs.len() > 1 {
            self.inner
                .choice_points
                .set(self.inner.choice_points.get() + 1);
        }
        let idx = {
            let mut sched = self.inner.sched.borrow_mut();
            match sched.as_deref_mut() {
                Some(s) => s.choose(&refs, self.now()).min(refs.len() - 1),
                None => 0,
            }
        };
        let (id, src) = list[idx];
        let (slot, _) = unpack_task(id);
        self.inner
            .staged
            .borrow_mut()
            .retain(|&(other, _)| other != id);
        schedule::set_recording(true);
        let completed = self.poll_task(id, src);
        schedule::set_recording(false);
        let accesses = schedule::take_accesses();
        let mut woke = Vec::new();
        self.drain_ready(Some(&mut woke));
        let record = StepRecord {
            task: id,
            slot,
            name: refs[idx].name.clone(),
            at: self.now(),
            accesses,
            woke,
            completed,
        };
        if let Some(s) = self.inner.sched.borrow_mut().as_deref_mut() {
            s.observe(&record);
        }
        true
    }

    /// Moves every entry of the shared ready queue into the controlled-mode
    /// staging list, optionally collecting the drained task ids.
    fn drain_ready(&self, mut woke: Option<&mut Vec<TaskId>>) {
        let mut q = self.inner.ready.queue.lock();
        let mut staged = self.inner.staged.borrow_mut();
        while let Some((id, src)) = q.pop_front() {
            if let Some(w) = woke.as_deref_mut() {
                w.push(id);
            }
            staged.push_back((id, src));
        }
    }

    /// Prunes stale entries and duplicate wakes from the staging list,
    /// returning the normalized runnable set in FIFO wake order. A task
    /// woken twice before being polled appears once (first position), so a
    /// strategy never sees the same task as two distinct choices.
    fn normalize_staged(&self) -> Vec<(TaskId, u32)> {
        let mut staged = self.inner.staged.borrow_mut();
        let tasks = self.inner.tasks.borrow();
        let mut seen: Vec<TaskId> = Vec::with_capacity(staged.len());
        let mut out: Vec<(TaskId, u32)> = Vec::with_capacity(staged.len());
        for &(id, src) in staged.iter() {
            let (slot, generation) = unpack_task(id);
            let live = tasks.get(slot as usize).is_some_and(|e| {
                e.generation == generation && matches!(e.state, SlotState::Occupied(_))
            });
            if live && !seen.contains(&id) {
                seen.push(id);
                out.push((id, src));
            }
        }
        staged.clear();
        staged.extend(out.iter().copied());
        out
    }

    /// Fires *all* timers due at the earliest pending instant (skipping
    /// cancelled entries), advancing the clock once. Batching the wakes
    /// makes same-instant concurrency visible to the schedule as one choice
    /// point with every woken task runnable, instead of an arbitrary
    /// one-timer-per-step interleaving. Returns `false` if no timer fired
    /// (quiescent).
    fn fire_timer_batch(&self) -> bool {
        let mut fire_at: Option<SimTime> = None;
        loop {
            let entry = {
                let mut timers = self.inner.timers.borrow_mut();
                match timers.peek() {
                    Some(Reverse(e)) if fire_at.is_none_or(|t| e.at == t) || e.cancelled.get() => {
                        let Reverse(e) = timers.pop().expect("peeked entry exists");
                        e
                    }
                    _ => break,
                }
            };
            if entry.cancelled.get() {
                self.recycle_timer_flag(entry.cancelled);
                continue;
            }
            if fire_at.is_none() {
                debug_assert!(entry.at >= self.now(), "clock must be monotonic");
                self.inner.now.set(entry.at);
                fire_at = Some(entry.at);
            }
            let prev = schedule::set_current_slot(WAKE_TIMER);
            entry.waker.wake();
            schedule::set_current_slot(prev);
        }
        fire_at.is_some()
    }

    /// Runs until no tasks are runnable and no timers are pending.
    pub fn run(&self) {
        while self.step() {}
    }

    /// Runs until the clock reaches `deadline` (events at exactly `deadline`
    /// are processed) or the simulation goes quiescent earlier. The clock is
    /// left at `deadline` if it was reached.
    pub fn run_until(&self, deadline: SimTime) {
        loop {
            let no_runnable = self.inner.ready.queue.lock().is_empty()
                && (!self.inner.controlled.get() || self.normalize_staged().is_empty());
            if no_runnable {
                let next_at = self.inner.timers.borrow().peek().map(|Reverse(e)| e.at);
                match next_at {
                    Some(at) if at > deadline => {
                        self.inner.now.set(deadline);
                        return;
                    }
                    None => {
                        if self.now() < deadline {
                            self.inner.now.set(deadline);
                        }
                        return;
                    }
                    _ => {}
                }
            }
            if !self.step() {
                if self.now() < deadline {
                    self.inner.now.set(deadline);
                }
                return;
            }
        }
    }

    /// Runs `d` of virtual time from the current instant.
    pub fn run_for(&self, d: Duration) {
        self.run_until(self.now() + d);
    }

    /// Drives the simulation until `fut` completes, returning its output.
    ///
    /// # Panics
    /// Panics if the simulation goes quiescent before the future completes
    /// (i.e., the future deadlocked waiting for an event that can never
    /// arrive).
    pub fn block_on<T: 'static>(&self, fut: impl Future<Output = T> + 'static) -> T {
        let handle = self.spawn(fut);
        let result: Rc<RefCell<Option<Result<T, RecvError>>>> = Rc::new(RefCell::new(None));
        let slot = result.clone();
        self.spawn(async move {
            *slot.borrow_mut() = Some(handle.await_result().await);
        });
        while result.borrow().is_none() {
            if !self.step() {
                panic!(
                    "simulation went quiescent before block_on future completed (deadlock)\n{}",
                    self.stall_report()
                );
            }
        }
        let r = result.borrow_mut().take().expect("slot was just filled");
        r.expect("block_on task cannot be dropped while the sim is running")
    }

    /// Number of live (spawned, not yet completed) tasks. Diagnostic only.
    pub fn task_count(&self) -> usize {
        self.inner.live.get()
    }

    /// The set of live-but-parked tasks at this instant, with what each is
    /// blocked on and where its last wake came from. Meaningful once the
    /// simulation has gone quiescent with live tasks remaining — that is a
    /// deadlock, and this is its diagnosis.
    pub fn stuck_tasks(&self) -> Vec<StuckTask> {
        let tasks = self.inner.tasks.borrow();
        tasks
            .iter()
            .enumerate()
            .filter(|(_, e)| matches!(e.state, SlotState::Occupied(_)))
            .map(|(slot, e)| StuckTask {
                slot: slot as u32,
                name: e.name.as_deref().map(str::to_owned),
                blocked_on: e.blocked_on,
                last_wake: e.polled.then(|| WakeSource::from_raw(e.last_wake)),
            })
            .collect()
    }

    /// Human-readable deadlock diagnosis: one line per stuck task. Appended
    /// to the [`Sim::block_on`] panic message when the simulation stalls.
    pub fn stall_report(&self) -> String {
        use std::fmt::Write as _;
        let stuck = self.stuck_tasks();
        if stuck.is_empty() {
            return "no live tasks remain".to_owned();
        }
        let mut out = format!(
            "{} stuck task(s) at t={}ns:",
            stuck.len(),
            self.now().as_nanos()
        );
        for t in &stuck {
            write!(out, "\n  {t}").expect("writing to String cannot fail");
        }
        out
    }
}

/// One stuck task in a deadlock diagnosis ([`Sim::stuck_tasks`]).
#[derive(Debug, Clone)]
pub struct StuckTask {
    /// Slab slot of the task.
    pub slot: u32,
    /// Debug name from [`Sim::spawn_named`], if any.
    pub name: Option<String>,
    /// What the task's last poll blocked on, if the parking primitive
    /// reported it (see [`crate::schedule::note_blocked`]).
    pub blocked_on: Option<BlockedOn>,
    /// Source of the wake that led to the task's last poll; `None` if the
    /// task was never polled.
    pub last_wake: Option<WakeSource>,
}

impl std::fmt::Display for StuckTask {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.name {
            Some(n) => write!(f, "task {} ({n})", self.slot)?,
            None => write!(f, "task {}", self.slot)?,
        }
        match &self.blocked_on {
            Some(b) => write!(f, ": blocked on {b}")?,
            None => write!(f, ": blocked (no parking note)")?,
        }
        match &self.last_wake {
            Some(w) => write!(f, ", last woken by {w}"),
            None => write!(f, ", never polled"),
        }
    }
}

/// Future returned by [`Sim::sleep`].
pub struct Sleep {
    sim: Sim,
    deadline: SimTime,
    registration: Option<Rc<Cell<bool>>>,
}

impl Sleep {
    /// The instant this sleep resolves at.
    pub fn deadline(&self) -> SimTime {
        self.deadline
    }
}

impl Future for Sleep {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.sim.now() >= self.deadline {
            if let Some(r) = self.registration.take() {
                r.set(true);
                self.sim.recycle_timer_flag(r);
            }
            return Poll::Ready(());
        }
        // Cancel any previous registration (its waker may be stale) and
        // register afresh with the current waker.
        if let Some(r) = self.registration.take() {
            r.set(true);
            self.sim.recycle_timer_flag(r);
        }
        let reg = self.sim.register_timer(self.deadline, cx.waker().clone());
        self.registration = Some(reg);
        schedule::note_blocked(BlockedOn::Timer(self.deadline));
        Poll::Pending
    }
}

impl Drop for Sleep {
    fn drop(&mut self) {
        if let Some(r) = self.registration.take() {
            r.set(true);
            self.sim.recycle_timer_flag(r);
        }
    }
}

/// Future returned by [`Sim::yield_now`].
pub struct YieldNow {
    polled: bool,
}

impl Future for YieldNow {
    type Output = ();
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<()> {
        if self.polled {
            Poll::Ready(())
        } else {
            self.polled = true;
            cx.waker().wake_by_ref();
            Poll::Pending
        }
    }
}

/// Handle to a spawned task; awaiting it yields the task's output.
pub struct JoinHandle<T> {
    rx: OneReceiver<T>,
}

impl<T> JoinHandle<T> {
    /// Awaits the task, distinguishing a dropped task from completion.
    pub async fn await_result(self) -> Result<T, RecvError> {
        self.rx.await
    }
}

impl<T> Future for JoinHandle<T> {
    type Output = T;
    fn poll(mut self: Pin<&mut Self>, cx: &mut Context<'_>) -> Poll<T> {
        match Pin::new(&mut self.rx).poll(cx) {
            Poll::Ready(Ok(v)) => Poll::Ready(v),
            Poll::Ready(Err(_)) => panic!("joined task was dropped before completing"),
            Poll::Pending => Poll::Pending,
        }
    }
}

/// Error returned by [`timeout`] when the deadline elapses first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Elapsed;

impl std::fmt::Display for Elapsed {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "deadline elapsed")
    }
}
impl std::error::Error for Elapsed {}

/// Awaits every future, returning their outputs in order. Futures run
/// concurrently as spawned tasks.
pub async fn join_all<T: 'static>(
    sim: &Sim,
    futs: impl IntoIterator<Item = impl Future<Output = T> + 'static>,
) -> Vec<T> {
    let handles: Vec<JoinHandle<T>> = futs.into_iter().map(|f| sim.spawn(f)).collect();
    let mut out = Vec::with_capacity(handles.len());
    for h in handles {
        out.push(h.await);
    }
    out
}

/// A repeating virtual-time ticker.
pub struct Interval {
    sim: Sim,
    period: Duration,
    next: SimTime,
}

impl Interval {
    /// Creates a ticker firing every `period`, first at `now + period`.
    pub fn new(sim: &Sim, period: Duration) -> Self {
        let next = sim.now() + period;
        Interval {
            sim: sim.clone(),
            period,
            next,
        }
    }

    /// Waits for the next tick and returns its scheduled instant. Ticks are
    /// anchored to the schedule (no drift from processing time), but a tick
    /// that is already in the past fires immediately and the schedule
    /// re-anchors to now.
    pub async fn tick(&mut self) -> SimTime {
        if self.next > self.sim.now() {
            self.sim.sleep_until(self.next).await;
        } else {
            self.next = self.sim.now();
        }
        let at = self.next;
        self.next = at + self.period;
        at
    }
}

/// Races `fut` against a virtual-time deadline.
pub async fn timeout<T>(
    sim: &Sim,
    d: Duration,
    fut: impl Future<Output = T>,
) -> Result<T, Elapsed> {
    let mut fut = Box::pin(fut);
    let mut sleep = sim.sleep(d);
    std::future::poll_fn(move |cx| {
        if let Poll::Ready(v) = fut.as_mut().poll(cx) {
            return Poll::Ready(Ok(v));
        }
        if Pin::new(&mut sleep).poll(cx).is_ready() {
            return Poll::Ready(Err(Elapsed));
        }
        Poll::Pending
    })
    .await
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell as StdCell;

    #[test]
    fn clock_starts_at_zero() {
        let sim = Sim::new(0);
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn sleep_advances_virtual_time() {
        let sim = Sim::new(0);
        let s = sim.clone();
        let t = sim.block_on(async move {
            s.sleep(Duration::from_secs(3600)).await;
            s.now()
        });
        assert_eq!(t, SimTime::from_secs(3600));
    }

    #[test]
    fn tasks_interleave_by_timer_order() {
        let sim = Sim::new(0);
        let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
        for (i, ms) in [(1u32, 30u64), (2, 10), (3, 20)] {
            let s = sim.clone();
            let log = log.clone();
            sim.spawn(async move {
                s.sleep(Duration::from_millis(ms)).await;
                log.borrow_mut().push(i);
            });
        }
        sim.run();
        assert_eq!(*log.borrow(), vec![2, 3, 1]);
    }

    #[test]
    fn spawn_from_within_task() {
        let sim = Sim::new(0);
        let hit = Rc::new(StdCell::new(false));
        let flag = hit.clone();
        let s = sim.clone();
        sim.spawn(async move {
            let flag2 = flag.clone();
            let s2 = s.clone();
            s.spawn(async move {
                s2.sleep(Duration::from_millis(5)).await;
                flag2.set(true);
            });
        });
        sim.run();
        assert!(hit.get());
    }

    #[test]
    fn join_handle_returns_value() {
        let sim = Sim::new(0);
        let s = sim.clone();
        let v = sim.block_on(async move {
            let h = s.spawn(async { 41 + 1 });
            h.await
        });
        assert_eq!(v, 42);
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let sim = Sim::new(0);
        let fired = Rc::new(StdCell::new(false));
        let f = fired.clone();
        let s = sim.clone();
        sim.spawn(async move {
            s.sleep(Duration::from_secs(10)).await;
            f.set(true);
        });
        sim.run_until(SimTime::from_secs(5));
        assert!(!fired.get());
        assert_eq!(sim.now(), SimTime::from_secs(5));
        sim.run_until(SimTime::from_secs(10));
        assert!(fired.get());
    }

    #[test]
    fn run_until_advances_clock_when_quiescent() {
        let sim = Sim::new(0);
        sim.run_until(SimTime::from_secs(7));
        assert_eq!(sim.now(), SimTime::from_secs(7));
    }

    #[test]
    fn timeout_wins_when_future_stalls() {
        let sim = Sim::new(0);
        let s = sim.clone();
        let out = sim.block_on(async move {
            let never = std::future::pending::<()>();
            timeout(&s, Duration::from_millis(50), never).await
        });
        assert_eq!(out, Err(Elapsed));
    }

    #[test]
    fn timeout_passes_through_fast_future() {
        let sim = Sim::new(0);
        let s = sim.clone();
        let out = sim.block_on(async move {
            let s2 = s.clone();
            timeout(&s, Duration::from_millis(50), async move {
                s2.sleep(Duration::from_millis(10)).await;
                7
            })
            .await
        });
        assert_eq!(out, Ok(7));
        // The dropped sleep must not have dragged the clock to 50ms.
        assert_eq!(sim.now(), SimTime::from_millis(10));
    }

    #[test]
    fn cancelled_sleep_does_not_advance_clock() {
        let sim = Sim::new(0);
        let s = sim.clone();
        sim.block_on(async move {
            let long = s.sleep(Duration::from_secs(100));
            drop(long);
            s.sleep(Duration::from_millis(1)).await;
        });
        sim.run();
        assert_eq!(sim.now(), SimTime::from_millis(1));
    }

    #[test]
    fn yield_now_round_robins_same_instant_tasks() {
        let sim = Sim::new(0);
        let log: Rc<RefCell<Vec<&'static str>>> = Rc::new(RefCell::new(Vec::new()));
        let l1 = log.clone();
        let s1 = sim.clone();
        sim.spawn(async move {
            l1.borrow_mut().push("a1");
            s1.yield_now().await;
            l1.borrow_mut().push("a2");
        });
        let l2 = log.clone();
        sim.spawn(async move {
            l2.borrow_mut().push("b1");
        });
        sim.run();
        assert_eq!(*log.borrow(), vec!["a1", "b1", "a2"]);
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn determinism_same_seed_same_schedule() {
        fn trace(seed: u64) -> Vec<u64> {
            let sim = Sim::new(seed);
            let out: Rc<RefCell<Vec<u64>>> = Rc::new(RefCell::new(Vec::new()));
            for i in 0..10u64 {
                let s = sim.clone();
                let out = out.clone();
                sim.spawn(async move {
                    use rand::Rng;
                    let mut rng = s.rng(&format!("task-{i}"));
                    let ms: u64 = rng.random_range(1..100);
                    s.sleep(Duration::from_millis(ms)).await;
                    out.borrow_mut()
                        .push(i * 1000 + s.now().as_nanos() / 1_000_000);
                });
            }
            sim.run();
            let v = out.borrow().clone();
            v
        }
        assert_eq!(trace(5), trace(5));
        assert_ne!(trace(5), trace(6));
    }

    #[test]
    fn join_all_preserves_order() {
        let sim = Sim::new(0);
        let s = sim.clone();
        let out = sim.block_on(async move {
            let futs = (0..5u64).map(|i| {
                let s = s.clone();
                async move {
                    // Later indices sleep less: completion order is reversed,
                    // output order must not be.
                    s.sleep(Duration::from_millis(50 - i * 10)).await;
                    i
                }
            });
            join_all(&s, futs).await
        });
        assert_eq!(out, vec![0, 1, 2, 3, 4]);
        // Concurrent: total time is the max, not the sum.
        assert_eq!(sim.now(), SimTime::from_millis(50));
    }

    #[test]
    fn interval_ticks_on_schedule() {
        let sim = Sim::new(0);
        let s = sim.clone();
        let ticks = sim.block_on(async move {
            let mut iv = Interval::new(&s, Duration::from_millis(100));
            let mut ticks = Vec::new();
            for _ in 0..3 {
                ticks.push(iv.tick().await);
                // Processing time shorter than the period: no drift.
                s.sleep(Duration::from_millis(10)).await;
            }
            ticks
        });
        assert_eq!(
            ticks,
            vec![
                SimTime::from_millis(100),
                SimTime::from_millis(200),
                SimTime::from_millis(300)
            ]
        );
    }

    #[test]
    fn interval_reanchors_after_falling_behind() {
        let sim = Sim::new(0);
        let s = sim.clone();
        sim.block_on(async move {
            let mut iv = Interval::new(&s, Duration::from_millis(10));
            iv.tick().await;
            // Fall far behind the schedule.
            s.sleep(Duration::from_millis(500)).await;
            let at = iv.tick().await;
            assert_eq!(at, SimTime::from_millis(510), "late tick fires immediately");
            let next = iv.tick().await;
            assert_eq!(next, SimTime::from_millis(520), "schedule re-anchored");
        });
    }

    #[test]
    #[should_panic(expected = "quiescent")]
    fn block_on_detects_deadlock() {
        let sim = Sim::new(0);
        sim.block_on(std::future::pending::<()>());
    }

    #[test]
    #[should_panic(expected = "blocked on channel")]
    fn block_on_deadlock_panic_names_the_blocking_primitive() {
        let sim = Sim::new(0);
        let (_tx, mut rx) = crate::sync::channel::<u8>();
        // The sender is kept alive but never sends: an intentional deadlock.
        sim.block_on(async move {
            rx.recv().await;
        });
    }

    #[test]
    fn stuck_tasks_report_block_reason_and_wake_source() {
        let sim = Sim::new(0);
        let (tx, mut rx) = crate::sync::channel::<u8>();
        let s = sim.clone();
        sim.spawn_named("consumer", async move {
            // Woken once by the producer, then parked forever on the second
            // recv (the producer holds its sender but never sends again).
            rx.recv().await;
            rx.recv().await;
        });
        sim.spawn_named("producer", async move {
            s.sleep(Duration::from_millis(1)).await;
            tx.send(7).unwrap();
            std::future::pending::<()>().await;
        });
        sim.run();
        let stuck = sim.stuck_tasks();
        assert_eq!(stuck.len(), 2, "both tasks deadlock: {stuck:?}");
        let consumer = stuck
            .iter()
            .find(|t| t.name.as_deref() == Some("consumer"))
            .expect("consumer is stuck");
        assert!(
            matches!(consumer.blocked_on, Some(BlockedOn::Channel(_))),
            "consumer parked on the channel: {consumer:?}"
        );
        // The consumer's last poll was triggered by the producer's send.
        let producer = stuck
            .iter()
            .find(|t| t.name.as_deref() == Some("producer"))
            .expect("producer is stuck");
        assert_eq!(consumer.last_wake, Some(WakeSource::Task(producer.slot)));
        // The report renders every stuck task.
        let report = sim.stall_report();
        assert!(
            report.contains("consumer") && report.contains("producer"),
            "{report}"
        );
    }

    #[test]
    fn controlled_fifo_matches_default_schedule() {
        // Distinct timer deadlines: controlled mode batch-fires *same-instant*
        // timers (an intentional semantic difference), but with all instants
        // distinct the FIFO strategy must reproduce the default schedule.
        fn run(controlled: bool) -> Vec<u32> {
            let sim = Sim::new(3);
            if controlled {
                sim.set_schedule(Box::new(crate::schedule::FifoSchedule));
            }
            let log: Rc<RefCell<Vec<u32>>> = Rc::new(RefCell::new(Vec::new()));
            for (i, ms) in [(1u32, 30u64), (2, 10), (3, 15), (4, 20)] {
                let s = sim.clone();
                let log = log.clone();
                sim.spawn(async move {
                    s.sleep(Duration::from_millis(ms)).await;
                    log.borrow_mut().push(i);
                    s.yield_now().await;
                    log.borrow_mut().push(i + 100);
                });
            }
            sim.run();
            let v = log.borrow().clone();
            v
        }
        assert_eq!(run(false), run(true));
    }

    #[test]
    fn replay_schedule_reorders_same_instant_tasks() {
        fn run(choices: Vec<usize>) -> Vec<&'static str> {
            let sim = Sim::new(0);
            sim.set_schedule(Box::new(crate::schedule::ReplaySchedule::new(choices)));
            let log: Rc<RefCell<Vec<&'static str>>> = Rc::new(RefCell::new(Vec::new()));
            for name in ["a", "b", "c"] {
                let log = log.clone();
                sim.spawn(async move {
                    log.borrow_mut().push(name);
                });
            }
            sim.run();
            let v = log.borrow().clone();
            v
        }
        assert_eq!(run(vec![]), vec!["a", "b", "c"], "FIFO tail");
        assert_eq!(run(vec![2, 1]), vec!["c", "b", "a"], "reversed by replay");
    }

    #[test]
    fn controlled_mode_batches_same_instant_timers_into_one_choice_point() {
        let sim = Sim::new(0);
        sim.set_schedule(Box::new(crate::schedule::FifoSchedule));
        for _ in 0..3 {
            let s = sim.clone();
            sim.spawn(async move {
                s.sleep(Duration::from_millis(5)).await;
            });
        }
        // Initial spawns are one 3-way choice point; after the sleeps the
        // batched timer wake is another. (Each polled task immediately
        // re-enters the runnable set shrinking by one: 3,2 then 3,2 again —
        // a choice point is any step with >= 2 runnable.)
        sim.run();
        assert!(
            sim.choice_points() >= 2,
            "same-instant timers must surface as a multi-way choice point; saw {}",
            sim.choice_points()
        );
        assert_eq!(sim.task_count(), 0);
    }

    #[test]
    fn task_count_drops_to_zero() {
        let sim = Sim::new(0);
        let s = sim.clone();
        sim.spawn(async move { s.sleep(Duration::from_millis(1)).await });
        sim.run();
        assert_eq!(sim.task_count(), 0);
    }
}

//! The chaos plane: one deterministic, virtual-time fault schedule for the
//! whole stack.
//!
//! A [`FaultPlan`] is installed on every [`Sim`] (see [`Sim::faults`]) and
//! consulted by every layer — the network model, the replicated KV and queue
//! store frameworks, and the service runtime — instead of each layer keeping
//! its own ad-hoc failure knobs. A plan combines:
//!
//! - **Scheduled windows** ([`FaultWindow`]): fault episodes active over a
//!   virtual-time interval `[from, until)` — region outages, inter-region
//!   partitions, link degradation, replication drop/stall episodes, queue
//!   broker outages, delivery-drop episodes, and service crashes. Windows
//!   are declared up front (or mid-run) and evaluated purely from the
//!   current [`SimTime`], so the same seed and plan always replay the same
//!   execution.
//! - **Imperative overrides**: the legacy per-store knobs
//!   (`set_drop_probability`, `pause_replication`, …) forward here, so
//!   existing failure-injection code keeps working while sharing the single
//!   source of truth.
//!
//! Blocked layers park on [`FaultPlan::until_clear`], which wakes
//! deterministically at the next scheduled transition (or on an imperative
//! change) — no polling loops, no nondeterministic spinning.

use std::cell::{Cell, RefCell};
use std::collections::{BTreeMap, BTreeSet};
use std::rc::Rc;
use std::time::Duration;

use crate::dist::Dist;
use crate::executor::{timeout, Sim};
use crate::net::Region;
use crate::sync::Notify;
use crate::time::SimTime;

/// One kind of fault a [`FaultWindow`] can schedule.
#[derive(Clone, Debug)]
pub enum FaultKind {
    /// Every replica, broker and link touching `region` is unreachable.
    RegionOutage {
        /// The region that is down.
        region: Region,
    },
    /// The (symmetric) network path between two regions is severed.
    Partition {
        /// One side of the partition.
        a: Region,
        /// The other side.
        b: Region,
    },
    /// The link between two regions (either direction) stays up but each
    /// message pays an extra sampled delay — congestion, packet loss with
    /// retransmission, a saturated backbone.
    LinkDegraded {
        /// One endpoint of the degraded link.
        a: Region,
        /// The other endpoint.
        b: Region,
        /// Extra one-way delay distribution while the window is active.
        extra: Dist,
    },
    /// Each replication send of the named KV store is dropped with this
    /// probability (dropped sends retry per the store's profile).
    ReplicationDrop {
        /// The store whose replication stream is lossy.
        store: String,
        /// Per-attempt drop probability in `[0, 1]`.
        probability: f64,
    },
    /// Replication applies of the named KV store stall at `region`.
    ReplicationStall {
        /// The store whose applies stall.
        store: String,
        /// The destination region that stops applying.
        region: Region,
    },
    /// The named queue broker is entirely down: publishes block and no
    /// deliveries land anywhere.
    QueueOutage {
        /// The broker (queue-store name) that is down.
        broker: String,
    },
    /// Each delivery attempt of the named broker is dropped with this
    /// probability (dropped deliveries are redelivered after the broker's
    /// redelivery interval).
    DeliveryDrop {
        /// The broker whose deliveries are lossy.
        broker: String,
        /// Per-attempt drop probability in `[0, 1]`.
        probability: f64,
    },
    /// The named service crashes: its handlers stop making progress until
    /// the window closes (callers observe timeouts and retry).
    ServiceCrash {
        /// The service name (matches `ServiceSpec::name`).
        service: String,
    },
    /// One replica of the named KV store crash-restarts: while the window is
    /// active the replica is unreachable and its **volatile** state is lost
    /// (in-flight replication sends originated there die with the process).
    /// At the window's heal edge the replica restarts and replays its
    /// write-ahead log; anything the WAL did not capture is back-filled by
    /// hinted handoff and anti-entropy repair.
    ReplicaCrash {
        /// The store whose replica crashes.
        store: String,
        /// The region whose replica crashes.
        region: Region,
    },
    /// The storage under one replica lies: its write-ahead log is damaged
    /// ([`DiskFaultKind::TornWrite`], [`DiskFaultKind::BitFlip`]) at the
    /// window's start edge, or acked appends silently vanish
    /// ([`DiskFaultKind::LostAppend`]) while the window is active. The
    /// replica itself stays up — the whole point is that the damage is
    /// invisible until the integrity plane (checksummed WAL frames, scrub
    /// sweeps) looks.
    DiskFault {
        /// The store whose replica's storage misbehaves.
        store: String,
        /// The region whose replica's storage misbehaves.
        region: Region,
        /// How the storage lies.
        fault: DiskFaultKind,
    },
}

/// The ways a [`FaultKind::DiskFault`] window damages a replica's WAL. All
/// three are deterministic given the plan and the store's RNG streams, so
/// chaos seeds stay replayable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DiskFaultKind {
    /// The tail record of the WAL is torn mid-write: its frame is cut short,
    /// as if the process lost power with the final `write(2)` half-applied.
    /// Recovery truncates the torn tail and proceeds — a clean, bounded loss.
    TornWrite,
    /// Bit rot: bytes sampled deterministically from `offset_seed` flip in
    /// place somewhere inside the log, leaving earlier *and later* records
    /// intact-looking. Only per-record checksums can localize this.
    BitFlip {
        /// Seed mixed with the log length to pick the flipped offsets, so a
        /// given window always damages the same bytes.
        offset_seed: u64,
    },
    /// An acked append is silently dropped: while the window is active the
    /// store acknowledges writes whose WAL frames never persist.
    LostAppend,
}

/// A fault active over the virtual-time interval `[from, until)`.
#[derive(Clone, Debug)]
pub struct FaultWindow {
    /// When the fault begins (inclusive).
    pub from: SimTime,
    /// When the fault heals (exclusive).
    pub until: SimTime,
    /// What is broken while the window is active.
    pub kind: FaultKind,
}

impl FaultWindow {
    fn active(&self, at: SimTime) -> bool {
        self.from <= at && at < self.until
    }
}

#[derive(Default)]
struct FaultInner {
    windows: RefCell<Vec<FaultWindow>>,
    // Imperative overrides, fed by the legacy per-store knobs.
    repl_drop: RefCell<BTreeMap<String, f64>>,
    repl_stalled: RefCell<BTreeMap<String, BTreeSet<Region>>>,
    repl_lag: RefCell<BTreeMap<String, Dist>>,
    delivery_drop: RefCell<BTreeMap<String, f64>>,
    delivery_paused: RefCell<BTreeMap<String, BTreeSet<Region>>>,
    changed: Notify,
    /// Fast-path flag: `false` while the plan schedules no windows and sets
    /// no imperative override, letting the hot-path queries (a replicated
    /// write consults the plan a dozen times) return without touching the
    /// tables. Maintained by every mutator; purely a cache, never observable
    /// beyond query cost.
    noisy: Cell<bool>,
}

/// The deterministic fault schedule shared by every layer of a simulation.
/// Cheap to clone; obtain the simulation's plan via [`Sim::faults`].
#[derive(Clone, Default)]
pub struct FaultPlan {
    inner: Rc<FaultInner>,
}

impl FaultPlan {
    /// Creates an empty plan (no faults).
    pub fn new() -> Self {
        FaultPlan::default()
    }

    /// Re-derives the fast-path flag from the tables. Called by every
    /// mutator; an override map holding an empty set still counts as noisy
    /// (conservative — correctness never depends on the flag being tight).
    fn recompute_noisy(&self) {
        let i = &self.inner;
        let noisy = !i.windows.borrow().is_empty()
            || !i.repl_drop.borrow().is_empty()
            || !i.repl_stalled.borrow().is_empty()
            || !i.repl_lag.borrow().is_empty()
            || !i.delivery_drop.borrow().is_empty()
            || !i.delivery_paused.borrow().is_empty();
        i.noisy.set(noisy);
    }

    /// Whether the plan currently schedules nothing and overrides nothing.
    fn quiet(&self) -> bool {
        !self.inner.noisy.get()
    }

    // ------------------------------------------------------------------
    // Scheduling
    // ------------------------------------------------------------------

    /// Schedules `kind` over `[from, until)`. Empty windows are ignored.
    pub fn schedule(&self, from: SimTime, until: SimTime, kind: FaultKind) {
        if until <= from {
            return;
        }
        self.inner
            .windows
            .borrow_mut()
            .push(FaultWindow { from, until, kind });
        self.recompute_noisy();
        self.inner.changed.notify_all();
    }

    /// Schedules `kind` starting at `from` and lasting `duration`.
    pub fn schedule_for(&self, from: SimTime, duration: Duration, kind: FaultKind) {
        self.schedule(from, from + duration, kind);
    }

    /// Removes every scheduled window (imperative overrides are untouched).
    pub fn clear_windows(&self) {
        self.inner.windows.borrow_mut().clear();
        self.recompute_noisy();
        self.inner.changed.notify_all();
    }

    /// Number of scheduled windows (diagnostics).
    pub fn window_count(&self) -> usize {
        self.inner.windows.borrow().len()
    }

    // ------------------------------------------------------------------
    // Imperative overrides (the legacy knobs forward here)
    // ------------------------------------------------------------------

    /// Sets the imperative replication-drop probability for a KV store
    /// (combined with any active [`FaultKind::ReplicationDrop`] windows by
    /// taking the maximum). `0.0` clears the override.
    pub fn set_replication_drop(&self, store: &str, p: f64) {
        let p = p.clamp(0.0, 1.0);
        if p == 0.0 {
            self.inner.repl_drop.borrow_mut().remove(store);
        } else {
            self.inner.repl_drop.borrow_mut().insert(store.into(), p);
        }
        self.recompute_noisy();
        self.inner.changed.notify_all();
    }

    /// Stalls replication applies of `store` at `region` until
    /// [`FaultPlan::unstall_replication`].
    pub fn stall_replication(&self, store: &str, region: Region) {
        self.inner
            .repl_stalled
            .borrow_mut()
            .entry(store.into())
            .or_default()
            .insert(region);
        self.recompute_noisy();
        self.inner.changed.notify_all();
    }

    /// Ends an imperative replication stall.
    pub fn unstall_replication(&self, store: &str, region: Region) {
        if let Some(set) = self.inner.repl_stalled.borrow_mut().get_mut(store) {
            set.remove(&region);
        }
        self.recompute_noisy();
        self.inner.changed.notify_all();
    }

    /// Adds `lag` to every replication send of `store` while set (pass
    /// `None` to clear) — time-correlated congestion episodes.
    pub fn set_replication_lag(&self, store: &str, lag: Option<Dist>) {
        match lag {
            Some(d) => {
                self.inner.repl_lag.borrow_mut().insert(store.into(), d);
            }
            None => {
                self.inner.repl_lag.borrow_mut().remove(store);
            }
        }
        self.recompute_noisy();
        self.inner.changed.notify_all();
    }

    /// Sets the imperative delivery-drop probability for a queue broker
    /// (combined with [`FaultKind::DeliveryDrop`] windows by maximum).
    /// `0.0` clears the override.
    pub fn set_delivery_drop(&self, broker: &str, p: f64) {
        let p = p.clamp(0.0, 1.0);
        if p == 0.0 {
            self.inner.delivery_drop.borrow_mut().remove(broker);
        } else {
            self.inner
                .delivery_drop
                .borrow_mut()
                .insert(broker.into(), p);
        }
        self.recompute_noisy();
        self.inner.changed.notify_all();
    }

    /// Holds deliveries of `broker` destined for `region` until
    /// [`FaultPlan::resume_queue_delivery`].
    pub fn pause_queue_delivery(&self, broker: &str, region: Region) {
        self.inner
            .delivery_paused
            .borrow_mut()
            .entry(broker.into())
            .or_default()
            .insert(region);
        self.recompute_noisy();
        self.inner.changed.notify_all();
    }

    /// Ends an imperative delivery pause.
    pub fn resume_queue_delivery(&self, broker: &str, region: Region) {
        if let Some(set) = self.inner.delivery_paused.borrow_mut().get_mut(broker) {
            set.remove(&region);
        }
        self.recompute_noisy();
        self.inner.changed.notify_all();
    }

    // ------------------------------------------------------------------
    // Queries (each takes the explicit instant to evaluate at)
    // ------------------------------------------------------------------

    fn any_window(&self, at: SimTime, pred: impl Fn(&FaultKind) -> bool) -> bool {
        !self.quiet()
            && self
                .inner
                .windows
                .borrow()
                .iter()
                .any(|w| w.active(at) && pred(&w.kind))
    }

    /// Whether `region` is inside a [`FaultKind::RegionOutage`] window.
    pub fn region_down(&self, at: SimTime, region: Region) -> bool {
        self.any_window(
            at,
            |k| matches!(k, FaultKind::RegionOutage { region: r } if *r == region),
        )
    }

    /// Whether a (symmetric) partition separates `a` and `b`.
    pub fn partitioned(&self, at: SimTime, a: Region, b: Region) -> bool {
        self.any_window(at, |k| {
            matches!(k, FaultKind::Partition { a: x, b: y }
                if (*x == a && *y == b) || (*x == b && *y == a))
        })
    }

    /// Whether a message from `from` to `to` cannot transit right now:
    /// the pair is partitioned, or either endpoint region is down.
    pub fn link_blocked(&self, at: SimTime, from: Region, to: Region) -> bool {
        self.partitioned(at, from, to) || self.region_down(at, from) || self.region_down(at, to)
    }

    /// Extra one-way delay on the `from`↔`to` link from any active
    /// [`FaultKind::LinkDegraded`] window (first match wins).
    pub fn link_extra_delay(&self, at: SimTime, from: Region, to: Region) -> Option<Dist> {
        if self.quiet() {
            return None;
        }
        self.inner
            .windows
            .borrow()
            .iter()
            .find_map(|w| match &w.kind {
                FaultKind::LinkDegraded { a, b, extra }
                    if w.active(at) && ((*a == from && *b == to) || (*a == to && *b == from)) =>
                {
                    Some(extra.clone())
                }
                _ => None,
            })
    }

    /// Per-attempt replication-drop probability for `store`: the maximum of
    /// active [`FaultKind::ReplicationDrop`] windows and the imperative
    /// override.
    pub fn replication_drop(&self, at: SimTime, store: &str) -> f64 {
        if self.quiet() {
            return 0.0;
        }
        let windows = self
            .inner
            .windows
            .borrow()
            .iter()
            .filter_map(|w| match &w.kind {
                FaultKind::ReplicationDrop {
                    store: s,
                    probability,
                } if w.active(at) && s == store => Some(*probability),
                _ => None,
            })
            .fold(0.0f64, f64::max);
        let over = self
            .inner
            .repl_drop
            .borrow()
            .get(store)
            .copied()
            .unwrap_or(0.0);
        windows.max(over).clamp(0.0, 1.0)
    }

    /// Whether replication applies of `store` are stalled at `region`.
    pub fn replication_stalled(&self, at: SimTime, store: &str, region: Region) -> bool {
        if self.quiet() {
            return false;
        }
        if self
            .inner
            .repl_stalled
            .borrow()
            .get(store)
            .is_some_and(|set| set.contains(&region))
        {
            return true;
        }
        self.any_window(at, |k| {
            matches!(k, FaultKind::ReplicationStall { store: s, region: r }
                if s == store && *r == region)
        })
    }

    /// Extra replication lag for `store`, if a congestion episode is set.
    pub fn replication_extra_lag(&self, store: &str) -> Option<Dist> {
        if self.quiet() {
            return None;
        }
        self.inner.repl_lag.borrow().get(store).cloned()
    }

    /// Whether the named queue broker is inside an outage window.
    pub fn queue_down(&self, at: SimTime, broker: &str) -> bool {
        self.any_window(
            at,
            |k| matches!(k, FaultKind::QueueOutage { broker: b } if b == broker),
        )
    }

    /// Per-attempt delivery-drop probability for `broker` (maximum of
    /// windows and the imperative override).
    pub fn delivery_drop(&self, at: SimTime, broker: &str) -> f64 {
        if self.quiet() {
            return 0.0;
        }
        let windows = self
            .inner
            .windows
            .borrow()
            .iter()
            .filter_map(|w| match &w.kind {
                FaultKind::DeliveryDrop {
                    broker: b,
                    probability,
                } if w.active(at) && b == broker => Some(*probability),
                _ => None,
            })
            .fold(0.0f64, f64::max);
        let over = self
            .inner
            .delivery_drop
            .borrow()
            .get(broker)
            .copied()
            .unwrap_or(0.0);
        windows.max(over).clamp(0.0, 1.0)
    }

    /// Whether deliveries of `broker` to `region` are held.
    pub fn delivery_paused(&self, _at: SimTime, broker: &str, region: Region) -> bool {
        if self.quiet() {
            return false;
        }
        self.inner
            .delivery_paused
            .borrow()
            .get(broker)
            .is_some_and(|set| set.contains(&region))
    }

    /// Whether the named service is inside a crash window.
    pub fn service_down(&self, at: SimTime, service: &str) -> bool {
        self.any_window(
            at,
            |k| matches!(k, FaultKind::ServiceCrash { service: s } if s == service),
        )
    }

    /// Whether the named KV store's replica in `region` is inside a
    /// [`FaultKind::ReplicaCrash`] window.
    pub fn replica_crashed(&self, at: SimTime, store: &str, region: Region) -> bool {
        self.any_window(at, |k| {
            matches!(k, FaultKind::ReplicaCrash { store: s, region: r }
                if s == store && *r == region)
        })
    }

    /// The disk faults active against `store`'s replica in `region`,
    /// each tagged with its window's stable index (windows are append-only
    /// until [`FaultPlan::clear_windows`]), so a recovery monitor can apply
    /// one-shot damage (torn tail, bit flips) exactly once per window.
    pub fn disk_faults(
        &self,
        at: SimTime,
        store: &str,
        region: Region,
    ) -> Vec<(usize, DiskFaultKind)> {
        if self.quiet() {
            return Vec::new();
        }
        self.inner
            .windows
            .borrow()
            .iter()
            .enumerate()
            .filter_map(|(ix, w)| match &w.kind {
                FaultKind::DiskFault {
                    store: s,
                    region: r,
                    fault,
                } if w.active(at) && s == store && *r == region => Some((ix, fault.clone())),
                _ => None,
            })
            .collect()
    }

    /// Whether a [`DiskFaultKind::LostAppend`] window is active against
    /// `store`'s replica in `region`: WAL appends are acked but not
    /// persisted while this holds.
    pub fn append_lost(&self, at: SimTime, store: &str, region: Region) -> bool {
        self.any_window(at, |k| {
            matches!(k, FaultKind::DiskFault { store: s, region: r, fault: DiskFaultKind::LostAppend }
                if s == store && *r == region)
        })
    }

    /// Whether *any* store replica in `region` is inside a
    /// [`FaultKind::ReplicaCrash`] window — used by observers (the
    /// consistency checker) that know regions but not store names.
    pub fn any_replica_crash(&self, at: SimTime, region: Region) -> bool {
        self.any_window(
            at,
            |k| matches!(k, FaultKind::ReplicaCrash { region: r, .. } if *r == region),
        )
    }

    /// The next scheduled window edge (start or heal) strictly after `at`,
    /// if any — the instant at which some query above may change value.
    pub fn next_transition_after(&self, at: SimTime) -> Option<SimTime> {
        if self.quiet() {
            return None;
        }
        self.inner
            .windows
            .borrow()
            .iter()
            .flat_map(|w| [w.from, w.until])
            .filter(|&t| t > at)
            .min()
    }

    // ------------------------------------------------------------------
    // Waiting
    // ------------------------------------------------------------------

    /// A future resolving at the next imperative change to the plan (or
    /// immediately, if one happened since this call's creation epoch).
    /// Recovery monitors combine this with [`FaultPlan::next_transition_after`]
    /// to wake at every instant a fault query may change value, without
    /// polling: `timeout(sim, edge - now, plan.on_change())`.
    pub fn on_change(&self) -> crate::sync::Notified {
        self.inner.changed.notified()
    }

    /// Parks until `blocked(now)` turns false, waking deterministically at
    /// each scheduled window transition and on every imperative change.
    /// Returns immediately (without yielding) when already clear.
    pub async fn until_clear(&self, sim: &Sim, blocked: impl Fn(SimTime) -> bool) {
        loop {
            let notified = self.inner.changed.notified();
            let now = sim.now();
            if !blocked(now) {
                return;
            }
            match self.next_transition_after(now) {
                Some(t) => {
                    // Wake at the next schedule edge or on an imperative
                    // change, whichever comes first.
                    let _ = timeout(sim, t.since(now), notified).await;
                }
                None => notified.await,
            }
        }
    }
}

impl std::fmt::Debug for FaultPlan {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultPlan")
            .field("windows", &*self.inner.windows.borrow())
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::net::regions::{EU, SG, US};

    fn t(secs: u64) -> SimTime {
        SimTime::from_secs(secs)
    }

    #[test]
    fn windows_are_half_open() {
        let plan = FaultPlan::new();
        plan.schedule(t(10), t(20), FaultKind::RegionOutage { region: US });
        assert!(!plan.region_down(t(9), US));
        assert!(plan.region_down(t(10), US));
        assert!(plan.region_down(t(19), US));
        assert!(!plan.region_down(t(20), US));
        assert!(!plan.region_down(t(15), EU));
    }

    #[test]
    fn partition_is_symmetric() {
        let plan = FaultPlan::new();
        plan.schedule(t(0), t(5), FaultKind::Partition { a: US, b: EU });
        assert!(plan.partitioned(t(1), US, EU));
        assert!(plan.partitioned(t(1), EU, US));
        assert!(!plan.partitioned(t(1), US, SG));
        assert!(plan.link_blocked(t(1), EU, US));
        assert!(!plan.link_blocked(t(6), EU, US));
    }

    #[test]
    fn region_outage_blocks_its_links() {
        let plan = FaultPlan::new();
        plan.schedule(t(0), t(5), FaultKind::RegionOutage { region: SG });
        assert!(plan.link_blocked(t(1), SG, US));
        assert!(plan.link_blocked(t(1), US, SG));
        assert!(!plan.link_blocked(t(1), US, EU));
    }

    #[test]
    fn drop_probability_is_max_of_windows_and_override() {
        let plan = FaultPlan::new();
        plan.schedule(
            t(0),
            t(10),
            FaultKind::ReplicationDrop {
                store: "db".into(),
                probability: 0.3,
            },
        );
        assert_eq!(plan.replication_drop(t(1), "db"), 0.3);
        plan.set_replication_drop("db", 0.8);
        assert_eq!(plan.replication_drop(t(1), "db"), 0.8);
        assert_eq!(plan.replication_drop(t(11), "db"), 0.8);
        plan.set_replication_drop("db", 0.0);
        assert_eq!(plan.replication_drop(t(11), "db"), 0.0);
        assert_eq!(plan.replication_drop(t(1), "other"), 0.0);
    }

    #[test]
    fn next_transition_walks_window_edges() {
        let plan = FaultPlan::new();
        plan.schedule(t(10), t(20), FaultKind::RegionOutage { region: US });
        plan.schedule(t(15), t(30), FaultKind::QueueOutage { broker: "q".into() });
        assert_eq!(plan.next_transition_after(SimTime::ZERO), Some(t(10)));
        assert_eq!(plan.next_transition_after(t(10)), Some(t(15)));
        assert_eq!(plan.next_transition_after(t(15)), Some(t(20)));
        assert_eq!(plan.next_transition_after(t(20)), Some(t(30)));
        assert_eq!(plan.next_transition_after(t(30)), None);
    }

    #[test]
    fn until_clear_wakes_at_window_heal() {
        let sim = Sim::new(0);
        let plan = sim.faults();
        plan.schedule(
            SimTime::ZERO,
            t(7),
            FaultKind::ServiceCrash {
                service: "api".into(),
            },
        );
        let s = sim.clone();
        let end = sim.block_on(async move {
            let plan = s.faults();
            let p = plan.clone();
            plan.until_clear(&s, move |at| p.service_down(at, "api"))
                .await;
            s.now()
        });
        assert_eq!(end, t(7), "parked task wakes exactly at the heal edge");
    }

    #[test]
    fn until_clear_wakes_on_imperative_change() {
        let sim = Sim::new(0);
        let plan = sim.faults();
        plan.stall_replication("db", US);
        let s2 = sim.clone();
        sim.spawn(async move {
            s2.sleep(Duration::from_secs(3)).await;
            s2.faults().unstall_replication("db", US);
        });
        let s = sim.clone();
        let end = sim.block_on(async move {
            let plan = s.faults();
            let p = plan.clone();
            plan.until_clear(&s, move |at| p.replication_stalled(at, "db", US))
                .await;
            s.now()
        });
        assert_eq!(end, t(3));
    }

    #[test]
    fn until_clear_returns_immediately_when_clear() {
        let sim = Sim::new(0);
        let plan = sim.faults();
        sim.block_on({
            let s = sim.clone();
            async move {
                let p = plan.clone();
                plan.until_clear(&s, move |at| p.queue_down(at, "q")).await;
            }
        });
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn empty_and_inverted_windows_are_ignored() {
        let plan = FaultPlan::new();
        plan.schedule(t(5), t(5), FaultKind::RegionOutage { region: US });
        plan.schedule(t(9), t(2), FaultKind::RegionOutage { region: US });
        assert_eq!(plan.window_count(), 0);
        assert_eq!(plan.next_transition_after(SimTime::ZERO), None);
    }

    #[test]
    fn replica_crash_is_per_store_and_per_region() {
        let plan = FaultPlan::new();
        plan.schedule(
            t(2),
            t(6),
            FaultKind::ReplicaCrash {
                store: "db".into(),
                region: US,
            },
        );
        assert!(!plan.replica_crashed(t(1), "db", US));
        assert!(plan.replica_crashed(t(2), "db", US));
        assert!(plan.replica_crashed(t(5), "db", US));
        assert!(!plan.replica_crashed(t(6), "db", US), "heal edge exclusive");
        assert!(!plan.replica_crashed(t(3), "db", EU));
        assert!(!plan.replica_crashed(t(3), "other", US));
        // Region-level view for store-agnostic observers.
        assert!(plan.any_replica_crash(t(3), US));
        assert!(!plan.any_replica_crash(t(3), EU));
        // A crash is a transition source like any other window.
        assert_eq!(plan.next_transition_after(t(2)), Some(t(6)));
    }

    #[test]
    fn disk_faults_are_per_store_per_region_and_window_indexed() {
        let plan = FaultPlan::new();
        plan.schedule(
            t(2),
            t(6),
            FaultKind::DiskFault {
                store: "db".into(),
                region: US,
                fault: DiskFaultKind::TornWrite,
            },
        );
        plan.schedule(
            t(4),
            t(8),
            FaultKind::DiskFault {
                store: "db".into(),
                region: US,
                fault: DiskFaultKind::BitFlip { offset_seed: 7 },
            },
        );
        assert!(plan.disk_faults(t(1), "db", US).is_empty());
        assert_eq!(
            plan.disk_faults(t(2), "db", US),
            vec![(0, DiskFaultKind::TornWrite)]
        );
        assert_eq!(
            plan.disk_faults(t(5), "db", US),
            vec![
                (0, DiskFaultKind::TornWrite),
                (1, DiskFaultKind::BitFlip { offset_seed: 7 }),
            ]
        );
        assert!(plan.disk_faults(t(5), "db", EU).is_empty());
        assert!(plan.disk_faults(t(5), "other", US).is_empty());
        assert!(plan.disk_faults(t(8), "db", US).is_empty(), "heal edge");
        // Disk faults are transition sources like any other window, so the
        // recovery monitor wakes at their edges.
        assert_eq!(plan.next_transition_after(t(2)), Some(t(4)));
        assert_eq!(plan.next_transition_after(t(6)), Some(t(8)));
    }

    #[test]
    fn lost_append_is_active_only_inside_its_window() {
        let plan = FaultPlan::new();
        plan.schedule(
            t(3),
            t(5),
            FaultKind::DiskFault {
                store: "db".into(),
                region: EU,
                fault: DiskFaultKind::LostAppend,
            },
        );
        assert!(!plan.append_lost(t(2), "db", EU));
        assert!(plan.append_lost(t(3), "db", EU));
        assert!(plan.append_lost(t(4), "db", EU));
        assert!(!plan.append_lost(t(5), "db", EU));
        assert!(!plan.append_lost(t(4), "db", US));
        // The other disk faults do not count as lost appends.
        let torn = FaultPlan::new();
        torn.schedule(
            t(0),
            t(9),
            FaultKind::DiskFault {
                store: "db".into(),
                region: EU,
                fault: DiskFaultKind::TornWrite,
            },
        );
        assert!(!torn.append_lost(t(1), "db", EU));
    }

    #[test]
    fn link_degradation_reports_extra_delay() {
        let plan = FaultPlan::new();
        plan.schedule(
            t(0),
            t(10),
            FaultKind::LinkDegraded {
                a: US,
                b: EU,
                extra: Dist::Constant(0.5),
            },
        );
        assert!(plan.link_extra_delay(t(1), US, EU).is_some());
        assert!(plan.link_extra_delay(t(1), EU, US).is_some(), "symmetric");
        assert!(plan.link_extra_delay(t(11), US, EU).is_none());
        assert!(plan.link_extra_delay(t(1), US, SG).is_none());
    }
}

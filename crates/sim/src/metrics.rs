//! Measurement utilities for experiments: exact sample sets, log-bucketed
//! histograms, and summary statistics with percentiles.

use std::fmt;
use std::time::Duration;

/// An exact collection of latency samples (seconds). Percentiles are computed
/// by sorting; suitable for the ≤ millions of samples our experiments record.
#[derive(Clone, Debug, Default)]
pub struct Samples {
    values: Vec<f64>,
}

impl Samples {
    /// Creates an empty sample set.
    pub fn new() -> Self {
        Samples::default()
    }

    /// Records one value (seconds).
    pub fn record(&mut self, v: f64) {
        self.values.push(v);
    }

    /// Records a duration.
    pub fn record_duration(&mut self, d: Duration) {
        self.values.push(d.as_secs_f64());
    }

    /// Number of recorded samples.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether no samples were recorded.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Merges another sample set into this one.
    pub fn merge(&mut self, other: &Samples) {
        self.values.extend_from_slice(&other.values);
    }

    /// Raw access to the recorded values.
    pub fn values(&self) -> &[f64] {
        &self.values
    }

    /// Computes the summary statistics. Returns `None` when empty.
    pub fn summary(&self) -> Option<Summary> {
        if self.values.is_empty() {
            return None;
        }
        let mut sorted = self.values.clone();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let pct = |p: f64| -> f64 {
            let idx = ((p / 100.0) * (n as f64 - 1.0)).round() as usize;
            sorted[idx.min(n - 1)]
        };
        let sum: f64 = sorted.iter().sum();
        Some(Summary {
            count: n,
            mean: sum / n as f64,
            min: sorted[0],
            max: sorted[n - 1],
            p50: pct(50.0),
            p90: pct(90.0),
            p95: pct(95.0),
            p99: pct(99.0),
        })
    }

    /// Empirical CDF evaluated at `x`: the fraction of samples `<= x`.
    pub fn cdf_at(&self, x: f64) -> f64 {
        if self.values.is_empty() {
            return 0.0;
        }
        let c = self.values.iter().filter(|&&v| v <= x).count();
        c as f64 / self.values.len() as f64
    }
}

/// Summary statistics over a sample set (units follow the samples).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Minimum.
    pub min: f64,
    /// Maximum.
    pub max: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 95th percentile.
    pub p95: f64,
    /// 99th percentile.
    pub p99: f64,
}

impl fmt::Display for Summary {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={:.4} p50={:.4} p95={:.4} p99={:.4} max={:.4}",
            self.count, self.mean, self.p50, self.p95, self.p99, self.max
        )
    }
}

/// A log-linear bucketed histogram for unbounded streams where storing every
/// sample would be wasteful. Values are non-negative; relative error per
/// bucket is bounded by `1 / SUBBUCKETS`.
#[derive(Clone, Debug)]
pub struct Histogram {
    /// buckets[p][s]: count of values v with exponent p and sub-bucket s.
    buckets: Vec<[u64; Self::SUBBUCKETS]>,
    count: u64,
    sum: f64,
    max: f64,
    min: f64,
    /// Smallest resolvable value; everything below lands in the first bucket.
    floor: f64,
}

impl Histogram {
    const SUBBUCKETS: usize = 16;

    /// Creates a histogram with `floor` as the smallest resolvable value
    /// (e.g. `1e-6` for microsecond-resolution latencies in seconds).
    pub fn new(floor: f64) -> Self {
        assert!(floor > 0.0, "floor must be positive");
        Histogram {
            buckets: Vec::new(),
            count: 0,
            sum: 0.0,
            max: f64::NEG_INFINITY,
            min: f64::INFINITY,
            floor,
        }
    }

    fn bucket_of(&self, v: f64) -> (usize, usize) {
        if v < self.floor {
            return (0, 0);
        }
        let ratio = v / self.floor;
        let exp = ratio.log2().floor() as usize;
        let base = self.floor * (1u64 << exp.min(63)) as f64;
        let frac = (v / base - 1.0).clamp(0.0, 0.999_999);
        (exp, (frac * Self::SUBBUCKETS as f64) as usize)
    }

    fn bucket_value(&self, exp: usize, sub: usize) -> f64 {
        let base = self.floor * (1u64 << exp.min(63)) as f64;
        base * (1.0 + (sub as f64 + 0.5) / Self::SUBBUCKETS as f64)
    }

    /// Records one non-negative value.
    pub fn record(&mut self, v: f64) {
        let v = v.max(0.0);
        self.count += 1;
        self.sum += v;
        self.max = self.max.max(v);
        self.min = self.min.min(v);
        let (exp, sub) = self.bucket_of(v);
        if exp >= self.buckets.len() {
            self.buckets.resize(exp + 1, [0; Self::SUBBUCKETS]);
        }
        self.buckets[exp][sub] += 1;
    }

    /// Records a duration in seconds.
    pub fn record_duration(&mut self, d: Duration) {
        self.record(d.as_secs_f64());
    }

    /// Number of recorded values.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Mean of recorded values (0 when empty).
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Approximate value at the given percentile (0–100).
    pub fn percentile(&self, p: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let target = ((p / 100.0) * self.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0;
        for (exp, subs) in self.buckets.iter().enumerate() {
            for (sub, &c) in subs.iter().enumerate() {
                seen += c;
                if seen >= target {
                    return self.bucket_value(exp, sub).min(self.max);
                }
            }
        }
        self.max
    }

    /// Summary statistics (approximate percentiles).
    pub fn summary(&self) -> Option<Summary> {
        if self.count == 0 {
            return None;
        }
        Some(Summary {
            count: self.count as usize,
            mean: self.mean(),
            min: self.min,
            max: self.max,
            p50: self.percentile(50.0),
            p90: self.percentile(90.0),
            p95: self.percentile(95.0),
            p99: self.percentile(99.0),
        })
    }
}

/// Counts successes and failures of a repeated check, e.g. XCY violations.
#[derive(Clone, Copy, Debug, Default)]
pub struct RateCounter {
    hits: u64,
    total: u64,
}

impl RateCounter {
    /// Creates an empty counter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one observation.
    pub fn record(&mut self, hit: bool) {
        self.total += 1;
        if hit {
            self.hits += 1;
        }
    }

    /// Number of positive observations.
    pub fn hits(&self) -> u64 {
        self.hits
    }

    /// Total observations.
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Fraction of positive observations (0 when empty).
    pub fn rate(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.hits as f64 / self.total as f64
        }
    }

    /// Rate as a percentage.
    pub fn percent(&self) -> f64 {
        self.rate() * 100.0
    }

    /// Merges another counter into this one.
    pub fn merge(&mut self, other: RateCounter) {
        self.hits += other.hits;
        self.total += other.total;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn samples_summary_basics() {
        let mut s = Samples::new();
        for v in [1.0, 2.0, 3.0, 4.0, 5.0] {
            s.record(v);
        }
        let sum = s.summary().unwrap();
        assert_eq!(sum.count, 5);
        assert_eq!(sum.mean, 3.0);
        assert_eq!(sum.min, 1.0);
        assert_eq!(sum.max, 5.0);
        assert_eq!(sum.p50, 3.0);
    }

    #[test]
    fn samples_empty_summary_is_none() {
        assert!(Samples::new().summary().is_none());
    }

    #[test]
    fn samples_cdf() {
        let mut s = Samples::new();
        for v in [1.0, 2.0, 3.0, 4.0] {
            s.record(v);
        }
        assert_eq!(s.cdf_at(0.5), 0.0);
        assert_eq!(s.cdf_at(2.0), 0.5);
        assert_eq!(s.cdf_at(10.0), 1.0);
    }

    #[test]
    fn samples_merge() {
        let mut a = Samples::new();
        a.record(1.0);
        let mut b = Samples::new();
        b.record(3.0);
        a.merge(&b);
        assert_eq!(a.len(), 2);
        assert_eq!(a.summary().unwrap().mean, 2.0);
    }

    #[test]
    fn histogram_percentiles_are_approximate() {
        let mut h = Histogram::new(1e-6);
        for i in 1..=10_000 {
            h.record(i as f64 / 1000.0); // 1ms .. 10s
        }
        let p50 = h.percentile(50.0);
        assert!((p50 - 5.0).abs() / 5.0 < 0.1, "p50 {p50}");
        let p99 = h.percentile(99.0);
        assert!((p99 - 9.9).abs() / 9.9 < 0.1, "p99 {p99}");
        assert_eq!(h.count(), 10_000);
        assert!((h.mean() - 5.0005).abs() < 0.01);
    }

    #[test]
    fn histogram_handles_tiny_values() {
        let mut h = Histogram::new(1e-6);
        h.record(0.0);
        h.record(1e-9);
        assert_eq!(h.count(), 2);
        assert!(h.percentile(100.0) <= 1e-6 + 1e-9);
    }

    #[test]
    fn histogram_summary_matches_exact_roughly() {
        let mut h = Histogram::new(1e-6);
        let mut s = Samples::new();
        let mut rng = crate::rng::rng_from_seed(11);
        let d = crate::dist::Dist::LogNormal {
            median: 0.1,
            sigma: 0.8,
        };
        for _ in 0..20_000 {
            let v = d.sample(&mut rng);
            h.record(v);
            s.record(v);
        }
        let hs = h.summary().unwrap();
        let ss = s.summary().unwrap();
        assert!((hs.p50 - ss.p50).abs() / ss.p50 < 0.1);
        assert!((hs.p99 - ss.p99).abs() / ss.p99 < 0.1);
    }

    #[test]
    fn rate_counter() {
        let mut r = RateCounter::new();
        for i in 0..10 {
            r.record(i < 3);
        }
        assert_eq!(r.hits(), 3);
        assert_eq!(r.total(), 10);
        assert!((r.percent() - 30.0).abs() < 1e-9);
        let mut r2 = RateCounter::new();
        r2.record(true);
        r.merge(r2);
        assert_eq!(r.hits(), 4);
        assert_eq!(r.total(), 11);
    }

    #[test]
    fn rate_counter_empty() {
        assert_eq!(RateCounter::new().rate(), 0.0);
    }
}

//! The TrainTicket cancel/refund flow (paper §7.1, §7.4, Fig 9).
//!
//! Cancelling a ticket splits into two tasks handled by different services
//! over different datastores: (a) the order service marks the ticket
//! cancelled (MySQL), and (b) the payment service refunds the price — an
//! asynchronous task dispatched over a work queue. The violation the
//! benchmark authors identified ("lack of sequence control in the
//! asynchronous invocations of multiple message delivery microservices") is
//! the customer not seeing the refund right after the cancellation
//! confirmation.
//!
//! Unlike the geo-replicated applications, everything runs in one
//! datacenter; the race is pure task asynchrony. The fix places `barrier`
//! **on the request's critical path**, before returning the cancellation
//! output — the refund queue's shim uses *processed* (acked) wait semantics,
//! so the barrier resolves once the payment service has committed the
//! refund. That is the latency/throughput trade-off Fig 9 quantifies
//! (≈ 15 % throughput, ≈ 17 % latency at peak).

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use antipode::{Antipode, LineageIdGen};
use antipode_lineage::Lineage;
use antipode_runtime::{run_open_loop, LoadMetrics, Runtime, Service, ServiceSpec};
use antipode_sim::dist::Dist;
use antipode_sim::net::regions::US;
use antipode_sim::net::Network;
use antipode_sim::sync::Semaphore;
use antipode_sim::{RateCounter, Samples, Sim};
use antipode_store::replica::KvProfile;
use antipode_store::{MySql, MySqlShim, RabbitMq, RabbitMqShim};
use bytes::Bytes;

/// Experiment configuration.
#[derive(Clone, Debug)]
pub struct TrainTicketConfig {
    /// Whether Antipode is enabled (shims + barrier before responding).
    pub antipode: bool,
    /// Offered load, requests per second (the paper peaks at 360).
    pub rate: f64,
    /// Issue window (paper: 5 minutes).
    pub duration: Duration,
    /// Master seed.
    pub seed: u64,
}

impl TrainTicketConfig {
    /// Default experiment at the given load.
    pub fn new(rate: f64) -> Self {
        TrainTicketConfig {
            antipode: false,
            rate,
            duration: Duration::from_secs(300),
            seed: 0x77,
        }
    }

    /// Enables Antipode.
    pub fn with_antipode(mut self) -> Self {
        self.antipode = true;
        self
    }

    /// Sets the issue window.
    pub fn with_duration(mut self, d: Duration) -> Self {
        self.duration = d;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Experiment output.
#[derive(Clone)]
pub struct TrainTicketResult {
    /// Cancellation throughput and latency (Fig 9 left).
    pub client: LoadMetrics,
    /// Refund-not-visible when the customer checked (§7.3: 0.57 % baseline).
    pub violations: RateCounter,
    /// Consistency window (Fig 9 right): from the order-status write until
    /// both the cancellation and the refund were visible.
    pub consistency_window: Samples,
}

/// A local-datacenter MySQL profile (no geo-replication in TrainTicket).
fn local_mysql_profile() -> KvProfile {
    KvProfile {
        local_write: Dist::lognormal_ms(1.0, 0.3),
        local_read: Dist::lognormal_ms(1.0, 0.3),
        replication: Dist::constant_ms(0.0),
        rtt_hops: 0.0,
        retry_interval: Dist::constant_ms(100.0),
    }
}

/// Runs the experiment and returns its measurements.
pub fn run(cfg: &TrainTicketConfig) -> TrainTicketResult {
    let sim = Sim::new(cfg.seed);
    let net = Rc::new(Network::global_triangle());
    let rt = Runtime::new(&sim, net.clone());

    let orders = MySql::with_profile(
        &sim,
        net.clone(),
        "ts-order-mysql",
        &[US],
        local_mysql_profile(),
    );
    let payments = MySql::with_profile(
        &sim,
        net.clone(),
        "ts-payment-mysql",
        &[US],
        local_mysql_profile(),
    );
    let refund_queue = RabbitMq::new(&sim, net.clone(), "ts-refund-queue", &[US]);
    let orders_shim = MySqlShim::new(&orders);
    let payments_shim = MySqlShim::new(&payments);
    let refund_shim = RabbitMqShim::new_work_queue(&refund_queue);

    let mut ap = Antipode::new(sim.clone());
    ap.register(Rc::new(orders_shim.clone()));
    ap.register(Rc::new(payments_shim.clone()));
    ap.register(Rc::new(refund_shim.clone()));

    // Gateway worker pool is held for the *whole* request (a thread per
    // in-flight HTTP request) — this is what converts added latency into
    // lost throughput at saturation (Fig 9).
    let gateway_pool = Semaphore::new(12);
    let gateway_think = Service::new(
        &sim,
        ServiceSpec::new("gateway", US)
            .workers(12)
            .service_time(Dist::lognormal_ms(1.5, 0.2)),
    );
    let cancel_svc = Service::new(
        &sim,
        ServiceSpec::new("cancel", US)
            .workers(16)
            .service_time(Dist::lognormal_ms(3.0, 0.2)),
    );
    let order_svc = Service::new(
        &sim,
        ServiceSpec::new("order", US)
            .workers(16)
            .service_time(Dist::lognormal_ms(4.0, 0.2)),
    );
    let station_svc = Service::new(
        &sim,
        ServiceSpec::new("station", US)
            .workers(16)
            .service_time(Dist::lognormal_ms(2.0, 0.2)),
    );
    let notify_svc = Service::new(
        &sim,
        ServiceSpec::new("notify", US)
            .workers(16)
            .service_time(Dist::lognormal_ms(2.5, 0.2)),
    );
    // The payment service has a small heavy tail (JVM pauses / lock
    // contention in the original Java benchmark) — the source of the rare
    // baseline violations (§7.3: 0.57 %).
    let payment_svc = Service::new(
        &sim,
        ServiceSpec::new("payment", US)
            .workers(8)
            .service_time(Dist::Mix(vec![
                (0.992, Dist::lognormal_ms(1.2, 0.2)),
                (0.008, Dist::lognormal_ms(15.0, 0.5)),
            ])),
    );

    let violations = Rc::new(RefCell::new(RateCounter::new()));
    let windows = Rc::new(RefCell::new(Samples::new()));
    let refund_done: Rc<RefCell<std::collections::HashMap<String, antipode_sim::SimTime>>> =
        Rc::new(RefCell::new(std::collections::HashMap::new()));

    // --- Payment service: the refund-task consumer. ---
    {
        let sim2 = sim.clone();
        let payment_svc = payment_svc.clone();
        let payments2 = payments.clone();
        let payments_shim2 = payments_shim.clone();
        let refund_shim2 = refund_shim.clone();
        let refund_queue2 = refund_queue.clone();
        let refund_done2 = refund_done.clone();
        let antipode = cfg.antipode;
        sim.spawn(async move {
            if antipode {
                let mut sub = refund_shim2.consume(US).expect("US configured");
                while let Ok(Some(msg)) = sub.recv().await {
                    let order_id = String::from_utf8(msg.payload.to_vec()).expect("order id");
                    let payment_svc = payment_svc.clone();
                    let payments_shim = payments_shim2.clone();
                    let refund_shim = refund_shim2.clone();
                    let refund_done = refund_done2.clone();
                    let sim3 = sim2.clone();
                    sim2.spawn(async move {
                        payment_svc.process().await;
                        let mut lin = msg
                            .lineage
                            .clone()
                            .unwrap_or_else(|| Lineage::new(antipode_lineage::LineageId(0)));
                        payments_shim
                            .insert(
                                US,
                                "refunds",
                                &order_id,
                                Bytes::from_static(b"refunded"),
                                &mut lin,
                            )
                            .await
                            .expect("US configured");
                        refund_done.borrow_mut().insert(order_id, sim3.now());
                        // Ack only after the refund write committed: this is
                        // what the Processed wait semantics key off.
                        refund_shim.ack(US, &msg).expect("US configured");
                    });
                }
            } else {
                let mut sub = refund_queue2.consume(US).expect("US configured");
                while let Some(msg) = sub.recv().await {
                    let order_id = String::from_utf8(msg.payload.to_vec()).expect("order id");
                    let payment_svc = payment_svc.clone();
                    let payments = payments2.clone();
                    let refund_done = refund_done2.clone();
                    let sim3 = sim2.clone();
                    sim2.spawn(async move {
                        payment_svc.process().await;
                        payments
                            .insert(US, "refunds", &order_id, Bytes::from_static(b"refunded"))
                            .await
                            .expect("US configured");
                        refund_done.borrow_mut().insert(order_id, sim3.now());
                    });
                }
            }
        });
    }

    // --- Client + gateway: the cancel request. ---
    let gen = Rc::new(LineageIdGen::new(3));
    let client = {
        let cfg2 = cfg.clone();
        let sim2 = sim.clone();
        let violations = violations.clone();
        let windows = windows.clone();
        run_open_loop(
            &sim.clone(),
            &rt,
            cfg.rate,
            cfg.duration,
            move |i, metrics| {
                let cfg3 = cfg2.clone();
                let sim3 = sim2.clone();
                let gateway_pool = gateway_pool.clone();
                let gateway_think = gateway_think.clone();
                let cancel_svc = cancel_svc.clone();
                let order_svc = order_svc.clone();
                let station_svc = station_svc.clone();
                let notify_svc = notify_svc.clone();
                let orders = orders.clone();
                let orders_shim = orders_shim.clone();
                let refund_queue = refund_queue.clone();
                let refund_shim = refund_shim.clone();
                let payments = payments.clone();
                let payments_shim = payments_shim.clone();
                let violations = violations.clone();
                let windows = windows.clone();
                let refund_done = refund_done.clone();
                let ap = ap.clone();
                let gen = gen.clone();
                sim2.spawn(async move {
                    let start = sim3.now();
                    let order_id = format!("order-{i}");
                    // The gateway holds a worker slot for the entire request.
                    let _slot = gateway_pool.acquire().await;
                    gateway_think.process().await;
                    cancel_svc.process().await;
                    station_svc.process().await;
                    order_svc.process().await;
                    // Look up the order before mutating it, then notify the
                    // user-facing channels — the surrounding steps of the real
                    // cancel flow.
                    let _ = orders.select(US, "orders", &order_id).await;
                    notify_svc.process().await;
                    let order_written_at;
                    if cfg3.antipode {
                        let mut lineage = Lineage::new(gen.next_id());
                        orders_shim
                            .insert(
                                US,
                                "orders",
                                &order_id,
                                Bytes::from_static(b"cancelled"),
                                &mut lineage,
                            )
                            .await
                            .expect("US configured");
                        order_written_at = sim3.now();
                        refund_shim
                            .publish(US, Bytes::from(order_id.clone()), &mut lineage)
                            .await
                            .expect("US configured");
                        // barrier before returning the cancellation output
                        // (§7.1): on the critical path, by necessity.
                        ap.barrier(&lineage, US).await.expect("shims registered");
                    } else {
                        orders
                            .insert(US, "orders", &order_id, Bytes::from_static(b"cancelled"))
                            .await
                            .expect("US configured");
                        order_written_at = sim3.now();
                        refund_queue
                            .publish(US, Bytes::from(order_id.clone()))
                            .await
                            .expect("US configured");
                    }
                    let responded_at = sim3.now();
                    metrics.record_at(responded_at.since(start), responded_at);
                    drop(_slot);

                    // The customer's UI refreshes shortly after the confirmation
                    // and fetches the refund record.
                    sim3.sleep(Duration::from_millis(8)).await;
                    let refund_visible = if cfg3.antipode {
                        payments_shim
                            .select(US, "refunds", &order_id)
                            .await
                            .expect("US configured")
                            .is_some()
                    } else {
                        payments
                            .select(US, "refunds", &order_id)
                            .await
                            .expect("US configured")
                            .is_some()
                    };
                    violations.borrow_mut().record(!refund_visible);
                    // Consistency window: order write → both effects visible.
                    if let Some(done) = refund_done.borrow().get(&order_id) {
                        windows
                            .borrow_mut()
                            .record_duration(done.max(&order_written_at).since(order_written_at));
                    }
                });
            },
        )
    };
    sim.run();

    let out_violations = *violations.borrow();
    let out_windows = windows.borrow().clone();
    TrainTicketResult {
        client,
        violations: out_violations,
        consistency_window: out_windows,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(rate: f64) -> TrainTicketConfig {
        TrainTicketConfig::new(rate).with_duration(Duration::from_secs(60))
    }

    #[test]
    fn baseline_has_rare_violations() {
        // §7.3: 0.57 % in normal behaviour — low because everything is in
        // one datacenter.
        let r = run(&quick(200.0));
        let pct = r.violations.percent();
        assert!((0.01..8.0).contains(&pct), "baseline violations {pct}%");
    }

    #[test]
    fn antipode_eliminates_violations() {
        let r = run(&quick(200.0).with_antipode());
        assert_eq!(r.violations.hits(), 0);
        assert!(r.violations.total() > 5000);
    }

    #[test]
    fn barrier_on_critical_path_costs_latency() {
        // Fig 9: ≈ 17 % latency overhead at peak (we accept 5–70 %: the
        // knee of our simulated gateway pool is sharper than the paper's
        // testbed, so the exact percentage depends on where "peak" sits).
        let base = run(&quick(300.0));
        let anti = run(&quick(300.0).with_antipode());
        let lb = base.client.latency().unwrap().mean;
        let la = anti.client.latency().unwrap().mean;
        let overhead = (la - lb) / lb;
        assert!(
            (0.05..0.70).contains(&overhead),
            "latency overhead {overhead:.2} ({lb} → {la})"
        );
    }

    #[test]
    fn throughput_dips_at_peak() {
        // Fig 9: ≈ 15 % throughput penalty at peak load.
        let base = run(&quick(640.0));
        let anti = run(&quick(640.0).with_antipode());
        let tb = base.client.throughput();
        let ta = anti.client.throughput();
        assert!(ta < tb, "antipode throughput {ta} must trail baseline {tb}");
        assert!(ta > tb * 0.5, "penalty should be moderate: {ta} vs {tb}");
    }

    #[test]
    fn consistency_window_similar_between_variants() {
        // The barrier does not change *when* the refund lands — only whether
        // the user waits for it.
        let base = run(&quick(150.0));
        let anti = run(&quick(150.0).with_antipode());
        let wb = base.consistency_window.summary().unwrap().mean;
        let wa = anti.consistency_window.summary().unwrap().mean;
        assert!((wa / wb) < 3.0 && (wb / wa) < 3.0, "windows {wb} vs {wa}");
    }

    #[test]
    fn deterministic() {
        let a = run(&quick(100.0));
        let b = run(&quick(100.0));
        assert_eq!(a.violations.hits(), b.violations.hits());
        assert_eq!(a.client.completed(), b.client.completed());
    }
}

//! Speculative vs blocking barriers on the S3×SNS Post-Notification cell.
//!
//! The Table 1 worst case — S3 post storage (cross-region replication with
//! a ≈ 15 s median, heavy LogNormal tail) raced by SNS notifications — is
//! exactly where blocking barriers hurt: the Reader sits behind the store's
//! tail for tens of seconds per request (§7.4 measures ≈ 18 s mean barrier
//! waits). This cell runs the same topology through the speculation plane:
//! the Reader proceeds as soon as the speculation budget elapses, renders
//! the feed entry and fans out with every side effect parked in a
//! [`ConfinementBuffer`],
//! and lets the [`Speculator`] commit on confirmation or roll back and
//! redeliver on violation.
//!
//! The invariant under test is the relaxed one: zero **observed** XCY
//! violations — speculative evaluations may see unmet dependencies (their
//! effects are confined), but nothing externally visible may ever expose
//! one, and no confined write may leak after a rollback.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use antipode::{Antipode, ConsistencyChecker, LineageIdGen, SpeculationConfig, UnknownStorePolicy};
use antipode_lineage::Lineage;
use antipode_runtime::{SpecOutcome, SpecStats, SpeculationPolicy, Speculator};
use antipode_sim::net::regions::{EU, US};
use antipode_sim::net::Network;
use antipode_sim::{FaultKind, RateCounter, Samples, Sim, SimTime};
use antipode_store::shim::{KvShim, QueueShim};
use antipode_store::speculation::ConfinementBuffer;
use antipode_store::{KvStore, RabbitMq, Redis, Sns, S3};
use bytes::Bytes;

/// Configuration of one speculative-cell run.
#[derive(Clone, Debug)]
pub struct SpecCellConfig {
    /// Number of post-creation requests.
    pub requests: usize,
    /// Master seed.
    pub seed: u64,
    /// `true` runs speculative barriers; `false` throws the kill switch so
    /// every request degrades to a blocking barrier (the ablation baseline
    /// measured through the *same* code path).
    pub speculate: bool,
    /// Speculation budget: how long the barrier blocks before proceeding
    /// speculatively.
    pub budget: Duration,
    /// Confirmation budget: how long an open frontier may wait for its
    /// dependencies before the speculation is declared violated.
    pub confirm_budget: Duration,
    /// Per-endpoint cap on concurrently open frontiers.
    pub max_open: usize,
    /// Whether to crash the reader-side S3 replica for [`Self::chaos_window`].
    pub chaos: bool,
    /// The crash window (virtual time) when [`Self::chaos`] is on.
    pub chaos_window: (Duration, Duration),
    /// Gap between request arrivals.
    pub inter_arrival: Duration,
}

impl SpecCellConfig {
    /// The speculative variant: 36 requests, 500 ms budget, 45 s
    /// confirmation budget, no chaos.
    pub fn speculative() -> Self {
        SpecCellConfig {
            requests: 36,
            seed: 0xA57C,
            speculate: true,
            budget: Duration::from_millis(500),
            confirm_budget: Duration::from_secs(45),
            max_open: 64,
            chaos: false,
            chaos_window: (Duration::from_secs(10), Duration::from_secs(90)),
            inter_arrival: Duration::from_secs(2),
        }
    }

    /// The blocking ablation: identical topology and load, kill switch
    /// thrown.
    pub fn blocking() -> Self {
        SpecCellConfig {
            speculate: false,
            ..SpecCellConfig::speculative()
        }
    }

    /// Enables the reader-side S3 replica crash window.
    pub fn with_chaos(mut self) -> Self {
        self.chaos = true;
        self
    }

    /// Sets the request count.
    pub fn with_requests(mut self, n: usize) -> Self {
        self.requests = n;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Measurements from one speculative-cell run.
#[derive(Clone, Debug, Default)]
pub struct SpecCellResult {
    /// End-to-end handler latency (seconds): notification receipt until the
    /// Reader's first execution produced its value. This is the user-facing
    /// response time — blocking barriers put the store's replication tail
    /// in front of it, speculative barriers only the budget.
    pub handler_latency: Samples,
    /// Notification receipt until the request's effects were durably
    /// committed (seconds). Speculation does not shorten this — effects
    /// stay confined until confirmation — it shortens [`Self::handler_latency`].
    pub commit_latency: Samples,
    /// `post not found` on the definitive post-commit read. Must be zero:
    /// every outcome path re-establishes XCY before effects go visible.
    pub violations: RateCounter,
    /// Non-speculative unsatisfied checkpoints reported by the
    /// [`ConsistencyChecker`]. The speculation-plane invariant: zero.
    pub observed_violations: usize,
    /// Feed-store writes beyond one per request — a discarded confined
    /// write that reached the store anyway. The feed store is single-region,
    /// so its WAL length counts every put that ever hit it. Must be zero.
    pub leaked_writes: usize,
    /// Speculator counters (speculated / confirmed / violated / …).
    pub stats: SpecStats,
    /// Deterministic event trace: (outcome, post index, virtual nanos).
    pub trace: Vec<(String, u64, u64)>,
}

/// Runs the S3×SNS Post-Notification cell through the speculation plane.
pub fn run_speculation(cfg: &SpecCellConfig) -> SpecCellResult {
    let sim = Sim::new(cfg.seed);
    let net = Rc::new(Network::global_triangle());
    let regions = [EU, US];
    let post = S3::new(&sim, net.clone(), "post-storage-s3", &regions);
    let notif = Sns::new(&sim, net.clone(), "notifier-sns", &regions);
    let feed = Redis::new(&sim, net.clone(), "feed-redis", &[US]);
    let fanout = RabbitMq::new(&sim, net, "feed-fanout", &[US]);
    let post_kv: KvStore = post.store().clone();
    let feed_kv: KvStore = feed.store().clone();
    let post_shim = KvShim::new(post_kv.clone());
    let notif_shim = QueueShim::new(notif.queue().clone());
    let feed_shim = KvShim::new(feed_kv.clone());
    let fanout_shim = QueueShim::new(fanout.queue().clone());

    let mut ap = Antipode::new(sim.clone()).with_policy(UnknownStorePolicy::Fail);
    ap.register(Rc::new(post_shim.clone()));
    ap.register(Rc::new(notif_shim.clone()));
    ap.register(Rc::new(feed_shim.clone()));
    ap.register(Rc::new(fanout_shim.clone()));
    let checker = ConsistencyChecker::new(ap.clone());
    let speculator = Speculator::new(
        ap,
        SpeculationPolicy {
            enabled: cfg.speculate,
            max_open: cfg.max_open,
            barrier: SpeculationConfig {
                budget: cfg.budget,
                confirm_budget: cfg.confirm_budget,
            },
        },
    );

    if cfg.chaos {
        let (from, until) = cfg.chaos_window;
        sim.faults().schedule(
            SimTime::ZERO.saturating_add(from),
            SimTime::ZERO.saturating_add(until),
            FaultKind::ReplicaCrash {
                store: "post-storage-s3".into(),
                region: US,
            },
        );
    }

    let result: Rc<RefCell<SpecCellResult>> = Rc::new(RefCell::new(SpecCellResult::default()));

    // --- Reader: one handler per notification, all through the speculator.
    {
        let cfg2 = cfg.clone();
        let sim2 = sim.clone();
        let result = result.clone();
        let notif_shim = notif_shim.clone();
        let post_shim = post_shim.clone();
        let feed_shim = feed_shim.clone();
        let fanout_shim = fanout_shim.clone();
        let checker = checker.clone();
        let speculator = speculator.clone();
        let gen = Rc::new(LineageIdGen::new(1));
        sim.spawn(async move {
            let mut sub = notif_shim.subscribe(US).expect("reader region configured");
            for _ in 0..cfg2.requests {
                let Some(msg) = sub.recv().await.transpose() else {
                    break;
                };
                let msg = msg.expect("writer publishes only valid envelopes");
                let sim3 = sim2.clone();
                let result = result.clone();
                let post_shim = post_shim.clone();
                let feed_shim = feed_shim.clone();
                let fanout_shim = fanout_shim.clone();
                let checker = checker.clone();
                let speculator = speculator.clone();
                let gen = gen.clone();
                sim2.spawn(async move {
                    let recv_at = sim3.now();
                    let post_id =
                        String::from_utf8(msg.payload.to_vec()).expect("payload is a post id");
                    let idx: u64 = post_id
                        .strip_prefix("post-")
                        .and_then(|s| s.parse().ok())
                        .expect("writer-formatted post id");
                    let mut lineage = msg.lineage.unwrap_or_else(|| Lineage::new(gen.next_id()));
                    let snapshot = lineage.clone();
                    let out = speculator
                        .run(&mut lineage, US, |attempt| {
                            let feed_shim = feed_shim.clone();
                            let fanout_shim = fanout_shim.clone();
                            let checker = checker.clone();
                            let lineage = snapshot.clone();
                            let post_id = post_id.clone();
                            let result = result.clone();
                            let sim4 = sim3.clone();
                            async move {
                                // The evaluation may run ahead of its
                                // dependencies; its unmet checkpoints are
                                // speculative, not observed — every effect
                                // below is confined.
                                checker.checkpoint_speculative("reader:feed-render", &lineage, US);
                                if attempt == 0 {
                                    result
                                        .borrow_mut()
                                        .handler_latency
                                        .record_duration(sim4.now().since(recv_at));
                                }
                                let mut buf = ConfinementBuffer::new();
                                buf.confine_write(
                                    &feed_shim,
                                    US,
                                    format!("feed-{post_id}"),
                                    Bytes::from(post_id.clone()),
                                );
                                buf.confine_publish(&fanout_shim, US, Bytes::from(post_id.clone()));
                                ((), buf)
                            }
                        })
                        .await
                        .expect("all shims registered and faults heal");
                    let event = match &out {
                        SpecOutcome::Blocking { .. } => "blocking",
                        SpecOutcome::Confirmed { .. } => "confirmed",
                        SpecOutcome::RolledBack { .. } => "rolled-back",
                    };
                    // Post-commit, the checkpoint is definitive: the
                    // *incoming* dependencies must be visible (the handler's
                    // own just-committed writes are still propagating, which
                    // is ordinary replication lag, not an XCY violation).
                    let dry = checker.checkpoint("reader:post-commit", &snapshot, US);
                    let found = post_shim
                        .read(US, &post_id)
                        .await
                        .expect("reader region configured")
                        .is_some();
                    let mut r = result.borrow_mut();
                    r.violations.record(!found || !dry.is_satisfied());
                    r.commit_latency.record_duration(sim3.now().since(recv_at));
                    r.trace
                        .push((event.to_string(), idx, sim3.now().as_nanos()));
                });
            }
        });
    }

    // --- Writers: one post + notification per request.
    let gen_w = Rc::new(LineageIdGen::new(2));
    for i in 0..cfg.requests {
        let cfg2 = cfg.clone();
        let sim2 = sim.clone();
        let post_shim = post_shim.clone();
        let notif_shim = notif_shim.clone();
        let gen_w = gen_w.clone();
        sim.spawn(async move {
            sim2.sleep(cfg2.inter_arrival * i as u32).await;
            let post_id = format!("post-{i}");
            let mut lineage = Lineage::new(gen_w.next_id());
            post_shim
                .write(EU, &post_id, Bytes::from(vec![0u8; 4096]), &mut lineage)
                .await
                .expect("writer region configured");
            notif_shim
                .publish(EU, Bytes::from(post_id), &mut lineage)
                .await
                .expect("writer region configured");
        });
    }

    sim.run();

    let mut out = result.borrow().clone();
    out.stats = speculator.stats();
    out.observed_violations = checker.observed_violations();
    let present = (0..cfg.requests)
        .filter(|i| feed_kv.get_sync(US, &format!("feed-post-{i}")).is_some())
        .count();
    debug_assert_eq!(
        present, cfg.requests,
        "every request committed its feed entry"
    );
    // Exactly one feed put per request: anything beyond that is a discarded
    // confined write that leaked into the store.
    out.leaked_writes = feed_kv.wal_len(US).saturating_sub(present);
    debug_assert_eq!(
        out.violations.total() as usize,
        cfg.requests,
        "every request measured"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn small(cfg: SpecCellConfig) -> SpecCellConfig {
        cfg.with_requests(24)
    }

    #[test]
    fn speculation_cuts_handler_latency_by_an_order_of_magnitude() {
        let spec = run_speculation(&small(SpecCellConfig::speculative()));
        let blocking = run_speculation(&small(SpecCellConfig::blocking()));
        let sp = spec.handler_latency.summary().unwrap();
        let bp = blocking.handler_latency.summary().unwrap();
        // Blocking handlers sit behind S3's ≈ 15 s-median replication tail;
        // speculative handlers proceed after the 500 ms budget.
        assert!(
            bp.p99 > 5.0 * sp.p99,
            "blocking p99 {} vs speculative p99 {}",
            bp.p99,
            sp.p99
        );
        assert!(
            sp.p99 < 2.0,
            "speculative p99 {} should be ≈ budget",
            sp.p99
        );
        for r in [&spec, &blocking] {
            assert_eq!(r.violations.hits(), 0);
            assert_eq!(r.observed_violations, 0);
            assert_eq!(r.leaked_writes, 0);
        }
        assert!(
            spec.stats.speculated > 0,
            "S3 tail must trigger speculation"
        );
        assert_eq!(blocking.stats.speculated, 0, "kill switch must hold");
        assert_eq!(blocking.stats.fell_back as usize, blocking.trace.len());
    }

    #[test]
    fn chaos_rollbacks_stay_confined_and_unobserved() {
        let r = run_speculation(&small(SpecCellConfig::speculative()).with_chaos());
        assert!(
            r.stats.violated > 0,
            "an 80 s replica crash against a 45 s confirmation budget must violate"
        );
        assert_eq!(r.stats.redelivered, r.stats.violated);
        assert!(r.stats.rolled_back_writes > 0);
        // The whole point: rollbacks leave nothing behind and nobody
        // observed an XCY violation.
        assert_eq!(r.leaked_writes, 0, "discarded confined writes leaked");
        assert_eq!(r.observed_violations, 0);
        assert_eq!(r.violations.hits(), 0);
    }

    #[test]
    fn same_seed_same_trace() {
        let cfg = small(SpecCellConfig::speculative()).with_chaos();
        let a = run_speculation(&cfg);
        let b = run_speculation(&cfg);
        assert_eq!(a.trace, b.trace);
        assert_eq!(a.handler_latency.values(), b.handler_latency.values());
        assert_eq!(a.stats, b.stats);
    }
}

//! The DeathStarBench-style social network (paper §7.1, Fig 8).
//!
//! The evaluated interaction is *compose post*: the writer-side request
//! traverses nginx → compose-post → {unique-id, user, text (→ url-shorten,
//! user-mention), media} → post-storage (MongoDB write) and places an
//! asynchronous task on the write-home-timeline queue (RabbitMQ). In the
//! remote region a consumer dequeues the task, fetches the post from the
//! region-local MongoDB replica, and updates follower home timelines
//! (Redis). The XCY violation is a `post not found` at that fetch; Antipode
//! fixes it with a `barrier` right after the dequeue — off the writer's
//! critical path, so the writer-side penalty is only lineage propagation and
//! the shim (§7.4: ≤ 2 %).
//!
//! The US→SG deployment additionally suffers time-correlated MongoDB
//! replication backlog episodes (§7.3 reports 34 % violations with a 42 %
//! standard deviation and points at MongoDB's replication under network
//! latency); [`SocialConfig::congestion`] enables that model.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::Duration;

use antipode::{Antipode, LineageIdGen};
use antipode_lineage::Lineage;
use antipode_runtime::{run_open_loop, LoadMetrics, Runtime, Service, ServiceSpec};
use antipode_sim::dist::Dist;
use antipode_sim::net::regions::{SG, US};
use antipode_sim::net::Network;
use antipode_sim::{RateCounter, Region, Samples, Sim, SimTime};
use antipode_store::shim::{KvShim, QueueShim};
use antipode_store::{MongoDb, RabbitMq, Redis};
use bytes::Bytes;

/// Experiment configuration.
#[derive(Clone, Debug)]
pub struct SocialConfig {
    /// The replication destination (the paper's EU or SG).
    pub remote: Region,
    /// Whether Antipode is enabled.
    pub antipode: bool,
    /// Offered load, requests per second (paper: 50–150).
    pub rate: f64,
    /// Issue window (paper: 5 minutes).
    pub duration: Duration,
    /// Model MongoDB WAN-congestion episodes (defaults on for SG).
    pub congestion: bool,
    /// Master seed.
    pub seed: u64,
}

impl SocialConfig {
    /// Default experiment at the given load toward `remote`.
    pub fn new(remote: Region, rate: f64) -> Self {
        SocialConfig {
            remote,
            antipode: false,
            rate,
            duration: Duration::from_secs(300),
            congestion: remote == SG,
            seed: 0xD5B,
        }
    }

    /// Enables Antipode.
    pub fn with_antipode(mut self) -> Self {
        self.antipode = true;
        self
    }

    /// Sets the issue window.
    pub fn with_duration(mut self, d: Duration) -> Self {
        self.duration = d;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Experiment output.
#[derive(Clone)]
pub struct SocialResult {
    /// Writer-side throughput and latency (Fig 8 left).
    pub writer: LoadMetrics,
    /// `post not found` at the remote consumer (§7.3).
    pub violations: RateCounter,
    /// Consistency window per post (Fig 8 right): from the MongoDB write
    /// until the consumer('s barrier) allowed the post fetch.
    pub consistency_window: Samples,
    /// Largest serialized lineage observed (bytes; §7.4 reports < 200 B).
    pub max_lineage_bytes: usize,
}

struct Services {
    nginx: Service,
    compose: Service,
    unique_id: Service,
    user: Service,
    text: Service,
    url_shorten: Service,
    user_mention: Service,
    media: Service,
    post_storage_svc: Service,
    write_home_timeline: Service,
}

fn start_services(sim: &Sim, remote: Region) -> Services {
    let ms = Dist::lognormal_ms;
    Services {
        nginx: Service::new(
            sim,
            ServiceSpec::new("nginx", US)
                .workers(64)
                .service_time(ms(0.5, 0.2)),
        ),
        compose: Service::new(
            sim,
            ServiceSpec::new("compose-post", US)
                .workers(32)
                .service_time(ms(2.0, 0.2)),
        ),
        unique_id: Service::new(
            sim,
            ServiceSpec::new("unique-id", US)
                .workers(16)
                .service_time(ms(0.3, 0.2)),
        ),
        user: Service::new(
            sim,
            ServiceSpec::new("user", US)
                .workers(16)
                .service_time(ms(1.0, 0.2)),
        ),
        text: Service::new(
            sim,
            ServiceSpec::new("text", US)
                .workers(6)
                .service_time(ms(35.0, 0.15)),
        ),
        url_shorten: Service::new(
            sim,
            ServiceSpec::new("url-shorten", US)
                .workers(16)
                .service_time(ms(2.0, 0.2)),
        ),
        user_mention: Service::new(
            sim,
            ServiceSpec::new("user-mention", US)
                .workers(16)
                .service_time(ms(2.0, 0.2)),
        ),
        media: Service::new(
            sim,
            ServiceSpec::new("media", US)
                .workers(16)
                .service_time(ms(3.0, 0.2)),
        ),
        post_storage_svc: Service::new(
            sim,
            ServiceSpec::new("post-storage", US)
                .workers(16)
                .service_time(ms(2.0, 0.2)),
        ),
        write_home_timeline: Service::new(
            sim,
            ServiceSpec::new("write-home-timeline", remote)
                .workers(16)
                .service_time(ms(3.0, 0.2)),
        ),
    }
}

/// Per-shim-call CPU cost of lineage (de)serialization in the Antipode
/// variant — the source of the small writer-side overhead.
const SHIM_CPU: Duration = Duration::from_micros(150);

/// Every fourth post carries a media attachment (stored in the media
/// service's own MongoDB).
fn has_media(post_id: &str) -> bool {
    post_id
        .strip_prefix('p')
        .and_then(|n| n.parse::<u64>().ok())
        .map(|n| n % 4 == 0)
        .unwrap_or(false)
}

/// Runs the experiment and returns its measurements.
pub fn run(cfg: &SocialConfig) -> SocialResult {
    let sim = Sim::new(cfg.seed);
    let net = Rc::new(Network::global_triangle());
    let rt = Runtime::new(&sim, net.clone());
    let regions = [US, cfg.remote];

    let mongo = MongoDb::new(&sim, net.clone(), "post-storage-mongodb", &regions);
    let rabbit = RabbitMq::new(&sim, net.clone(), "wht-rabbitmq", &regions);
    let timeline = Redis::new(&sim, net.clone(), "home-timeline-redis", &[cfg.remote]);
    // The media service stores blobs in its own MongoDB — the paper's
    // footnote notes it "had a similar violation"; here it shares the post's
    // lineage, so one barrier covers both stores.
    let media_store = MongoDb::new(&sim, net.clone(), "media-mongodb", &regions);
    let mongo_shim = KvShim::new(mongo.store().clone());
    let media_shim = KvShim::new(media_store.store().clone());
    let rabbit_shim = QueueShim::new(rabbit.queue().clone());

    let svcs = Rc::new(start_services(&sim, cfg.remote));

    let mut ap = Antipode::new(sim.clone());
    ap.register(Rc::new(mongo_shim.clone()));
    ap.register(Rc::new(media_shim.clone()));
    ap.register(Rc::new(rabbit_shim.clone()));

    // MongoDB WAN congestion episodes (US→SG): alternate clear/congested.
    if cfg.congestion {
        let store = mongo.store().clone();
        let sim2 = sim.clone();
        let mut rng = sim.rng("congestion-driver");
        let horizon = cfg.duration + Duration::from_secs(60);
        sim.spawn(async move {
            use rand::Rng;
            let end = sim2.now() + horizon;
            while sim2.now() < end {
                let clear = Duration::from_secs_f64(20.0 + 50.0 * rng.random::<f64>());
                sim2.sleep(clear).await;
                store.set_extra_replication_lag(Some(Dist::LogNormal {
                    median: 0.2,
                    sigma: 0.8,
                }));
                let busy = Duration::from_secs_f64(12.0 + 16.0 * rng.random::<f64>());
                sim2.sleep(busy).await;
                store.set_extra_replication_lag(None);
            }
        });
    }

    let violations = Rc::new(RefCell::new(RateCounter::new()));
    let windows = Rc::new(RefCell::new(Samples::new()));
    let max_lineage = Rc::new(RefCell::new(0usize));
    let write_times: Rc<RefCell<HashMap<String, SimTime>>> = Rc::new(RefCell::new(HashMap::new()));

    // --- Remote consumer: dispatcher spawns a handler per dequeued task. ---
    {
        let cfg2 = cfg.clone();
        let sim2 = sim.clone();
        let svcs = svcs.clone();
        let violations = violations.clone();
        let windows = windows.clone();
        let max_lineage = max_lineage.clone();
        let write_times = write_times.clone();
        let mongo = mongo.clone();
        let mongo_shim = mongo_shim.clone();
        let media_store2 = media_store.clone();
        let media_shim2 = media_shim.clone();
        let timeline = timeline.clone();
        let ap = ap.clone();
        let rabbit_shim2 = rabbit_shim.clone();
        let rabbit2 = rabbit.clone();
        sim.spawn(async move {
            if cfg2.antipode {
                let mut sub = rabbit_shim2
                    .subscribe(cfg2.remote)
                    .expect("remote configured");
                while let Ok(Some(msg)) = sub.recv().await {
                    let post_id = String::from_utf8(msg.payload.to_vec()).expect("post id");
                    let lineage = msg.lineage.clone();
                    let svcs = svcs.clone();
                    let violations = violations.clone();
                    let windows = windows.clone();
                    let max_lineage = max_lineage.clone();
                    let write_times = write_times.clone();
                    let mongo_shim = mongo_shim.clone();
                    let media_shim = media_shim2.clone();
                    let timeline = timeline.clone();
                    let ap = ap.clone();
                    let sim3 = sim2.clone();
                    let remote = cfg2.remote;
                    sim2.spawn(async move {
                        svcs.write_home_timeline.process().await;
                        if let Some(lin) = &lineage {
                            {
                                let mut ml = max_lineage.borrow_mut();
                                *ml = (*ml).max(lin.wire_size());
                            }
                            // barrier right after dequeuing the task (§7.1).
                            ap.barrier(lin, remote).await.expect("shims registered");
                        }
                        let window = write_times
                            .borrow()
                            .get(&post_id)
                            .map(|t| sim3.now().since(*t));
                        let mut found = mongo_shim
                            .read(remote, &format!("posts/{post_id}"))
                            .await
                            .expect("remote configured")
                            .is_some();
                        if found && has_media(&post_id) {
                            found = media_shim
                                .read(remote, &format!("media/{post_id}"))
                                .await
                                .expect("remote configured")
                                .is_some();
                        }
                        violations.borrow_mut().record(!found);
                        if let Some(w) = window {
                            windows.borrow_mut().record_duration(w);
                        }
                        if found {
                            let _ = timeline
                                .set(remote, &format!("timeline/{post_id}"), Bytes::new())
                                .await;
                        }
                    });
                }
            } else {
                let mut sub = rabbit2.consume(cfg2.remote).expect("remote configured");
                while let Some(msg) = sub.recv().await {
                    let post_id = String::from_utf8(msg.payload.to_vec()).expect("post id");
                    let svcs = svcs.clone();
                    let violations = violations.clone();
                    let windows = windows.clone();
                    let write_times = write_times.clone();
                    let mongo = mongo.clone();
                    let media_store = media_store2.clone();
                    let timeline = timeline.clone();
                    let sim3 = sim2.clone();
                    let remote = cfg2.remote;
                    sim2.spawn(async move {
                        svcs.write_home_timeline.process().await;
                        let window = write_times
                            .borrow()
                            .get(&post_id)
                            .map(|t| sim3.now().since(*t));
                        let mut found = mongo
                            .find_one(remote, "posts", &post_id)
                            .await
                            .expect("remote configured")
                            .is_some();
                        if found && has_media(&post_id) {
                            found = media_store
                                .find_one(remote, "media", &post_id)
                                .await
                                .expect("remote configured")
                                .is_some();
                        }
                        violations.borrow_mut().record(!found);
                        if let Some(w) = window {
                            windows.borrow_mut().record_duration(w);
                        }
                        if found {
                            let _ = timeline
                                .set(remote, &format!("timeline/{post_id}"), Bytes::new())
                                .await;
                        }
                    });
                }
            }
        });
    }

    // --- Writer: the compose-post request, driven open-loop. ---
    let gen = Rc::new(LineageIdGen::new(7));
    let writer = {
        let cfg2 = cfg.clone();
        let sim2 = sim.clone();
        let rt2 = rt.clone();
        let svcs2 = svcs.clone();
        let write_times2 = write_times.clone();
        let mongo2 = mongo.clone();
        let mongo_shim2 = mongo_shim.clone();
        let media_store2 = media_store.clone();
        let media_shim2 = media_shim.clone();
        let rabbit2 = rabbit.clone();
        let rabbit_shim2 = rabbit_shim.clone();
        run_open_loop(
            &sim.clone(),
            &rt,
            cfg.rate,
            cfg.duration,
            move |i, metrics| {
                let cfg3 = cfg2.clone();
                let sim3 = sim2.clone();
                let rt3 = rt2.clone();
                let svcs3 = svcs2.clone();
                let write_times3 = write_times2.clone();
                let mongo3 = mongo2.clone();
                let mongo_shim3 = mongo_shim2.clone();
                let media_store3 = media_store2.clone();
                let media_shim3 = media_shim2.clone();
                let rabbit3 = rabbit2.clone();
                let rabbit_shim3 = rabbit_shim2.clone();
                let gen3 = gen.clone();
                sim2.spawn(async move {
                    let start = sim3.now();
                    let post_id = format!("p{i}");
                    rt3.hop(US, US).await;
                    svcs3.nginx.process().await;
                    rt3.hop(US, US).await;
                    svcs3.compose.process().await;
                    // Parallel fanout to the leaf services.
                    let s = svcs3.clone();
                    let rt4 = rt3.clone();
                    let h_text = sim3.spawn(async move {
                        rt4.hop(US, US).await;
                        s.text.process().await;
                        rt4.hop(US, US).await;
                        s.url_shorten.process().await;
                        rt4.hop(US, US).await;
                        s.user_mention.process().await;
                    });
                    let s = svcs3.clone();
                    let rt4 = rt3.clone();
                    let h_media = sim3.spawn(async move {
                        rt4.hop(US, US).await;
                        s.media.process().await;
                    });
                    let s = svcs3.clone();
                    let rt4 = rt3.clone();
                    let h_meta = sim3.spawn(async move {
                        rt4.hop(US, US).await;
                        s.unique_id.process().await;
                        rt4.hop(US, US).await;
                        s.user.process().await;
                    });
                    h_text.await;
                    h_media.await;
                    h_meta.await;
                    // Store the post and enqueue the home-timeline fanout.
                    rt3.hop(US, US).await;
                    svcs3.post_storage_svc.process().await;
                    if cfg3.antipode {
                        let mut lineage = Lineage::new(gen3.next_id());
                        sim3.sleep(SHIM_CPU).await;
                        mongo_shim3
                            .write(
                                US,
                                &format!("posts/{post_id}"),
                                Bytes::from(vec![0u8; 512]),
                                &mut lineage,
                            )
                            .await
                            .expect("US configured");
                        write_times3
                            .borrow_mut()
                            .insert(post_id.clone(), sim3.now());
                        if has_media(&post_id) {
                            sim3.sleep(SHIM_CPU).await;
                            media_shim3
                                .write(
                                    US,
                                    &format!("media/{post_id}"),
                                    Bytes::from(vec![0u8; 2048]),
                                    &mut lineage,
                                )
                                .await
                                .expect("US configured");
                        }
                        sim3.sleep(SHIM_CPU).await;
                        rabbit_shim3
                            .publish(US, Bytes::from(post_id), &mut lineage)
                            .await
                            .expect("US configured");
                    } else {
                        mongo3
                            .insert_one(US, "posts", &post_id, Bytes::from(vec![0u8; 512]))
                            .await
                            .expect("US configured");
                        write_times3
                            .borrow_mut()
                            .insert(post_id.clone(), sim3.now());
                        if has_media(&post_id) {
                            media_store3
                                .insert_one(US, "media", &post_id, Bytes::from(vec![0u8; 2048]))
                                .await
                                .expect("US configured");
                        }
                        rabbit3
                            .publish(US, Bytes::from(post_id))
                            .await
                            .expect("US configured");
                    }
                    metrics.record(sim3.now().since(start));
                });
            },
        )
    };

    let out_violations = *violations.borrow();
    let out_windows = windows.borrow().clone();
    let out_max_lineage = *max_lineage.borrow();
    SocialResult {
        writer,
        violations: out_violations,
        consistency_window: out_windows,
        max_lineage_bytes: out_max_lineage,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antipode_sim::net::regions::EU;

    fn quick(remote: Region, rate: f64) -> SocialConfig {
        SocialConfig::new(remote, rate).with_duration(Duration::from_secs(60))
    }

    #[test]
    fn us_eu_violations_are_rare() {
        // §7.3: ≈ 0.1 % for US→EU.
        let r = run(&quick(EU, 50.0));
        assert!(
            r.violations.percent() < 2.0,
            "US→EU violations {}%",
            r.violations.percent()
        );
        assert!(r.violations.total() > 2000);
    }

    #[test]
    fn us_sg_violations_are_common_and_vary() {
        // §7.3: ≈ 34 % for US→SG (std 42 % across runs).
        let mut rates = Vec::new();
        for seed in [1u64, 2, 3] {
            let r = run(&quick(SG, 50.0).with_seed(seed));
            rates.push(r.violations.percent());
        }
        let mean = rates.iter().sum::<f64>() / rates.len() as f64;
        assert!(
            (5.0..70.0).contains(&mean),
            "US→SG mean violations {mean}% ({rates:?})"
        );
    }

    #[test]
    fn antipode_fixes_both_pairs() {
        for remote in [EU, SG] {
            let r = run(&quick(remote, 50.0).with_antipode());
            assert_eq!(r.violations.hits(), 0, "{remote} violated with Antipode");
            assert!(r.violations.total() > 2000);
        }
    }

    #[test]
    fn writer_overhead_is_small() {
        // §7.4: ≤ 2 % throughput penalty; the barrier is off the writer's
        // critical path, so writer latency barely moves.
        let base = run(&quick(EU, 100.0));
        let anti = run(&quick(EU, 100.0).with_antipode());
        let lb = base.writer.latency().unwrap().mean;
        let la = anti.writer.latency().unwrap().mean;
        assert!(la < lb * 1.10, "antipode latency {la} vs baseline {lb}");
        let tb = base.writer.throughput();
        let ta = anti.writer.throughput();
        assert!(ta > tb * 0.95, "antipode throughput {ta} vs baseline {tb}");
    }

    #[test]
    fn latency_rises_with_load() {
        // Fig 8 left: the throughput-latency curve bends upward by 150 rps.
        let lo = run(&quick(EU, 50.0));
        let hi = run(&quick(EU, 150.0));
        let l_lo = lo.writer.latency().unwrap().mean;
        let l_hi = hi.writer.latency().unwrap().mean;
        assert!(
            l_hi > l_lo * 1.3,
            "latency {l_lo} → {l_hi} should rise with load"
        );
    }

    #[test]
    fn consistency_window_grows_toward_sg() {
        // Fig 8 right: the US→SG window exceeds US→EU.
        let eu = run(&quick(EU, 50.0).with_antipode());
        let sg = run(&quick(SG, 50.0).with_antipode());
        let weu = eu.consistency_window.summary().unwrap().mean;
        let wsg = sg.consistency_window.summary().unwrap().mean;
        assert!(wsg > weu, "SG window {wsg} vs EU {weu}");
    }

    #[test]
    fn lineage_stays_under_200_bytes() {
        let r = run(&quick(EU, 50.0).with_antipode());
        assert!(r.max_lineage_bytes > 0);
        assert!(
            r.max_lineage_bytes < 200,
            "max lineage {} B",
            r.max_lineage_bytes
        );
    }
}

//! # antipode-app
//!
//! The benchmark applications of the paper's evaluation (§7.1), built on the
//! simulated runtime and datastores:
//!
//! - [`post_notification`]: the serverless Post-Notification microbenchmark
//!   (Table 1, Fig 6, Fig 7);
//! - [`social`]: the DeathStarBench-style social network compose-post flow
//!   (Fig 8);
//! - [`train_ticket`]: the TrainTicket cancel/refund flow (Fig 9);
//! - [`acl`]: the §5.1 ACL `transfer` scenario (Alice blocks Bob);
//! - [`hotel`]: the hotel-reservation negative control (no cross-datastore
//!   references, hence no XCY violations — §7.1 footnote);
//! - [`speculation_cell`]: the S3×SNS Post-Notification cell rerun through
//!   the speculation plane, measuring speculative vs blocking barrier
//!   latency under chaos.
//!
//! Every application runs in a *baseline* variant (reproducing the paper's
//! observed XCY violations) and an *Antipode* variant (shims + barriers)
//! that eliminates them.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod acl;
pub mod hotel;
pub mod post_notification;
pub mod social;
pub mod speculation_cell;
pub mod train_ticket;

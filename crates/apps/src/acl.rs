//! The access-control-list scenario motivating `transfer` (paper §5.1).
//!
//! Before writing a new post, Alice blocks her follower Bob by writing to an
//! ACL held in geo-replicated storage. Two lineages result: ℒblock (the
//! block request) and ℒpost (the post request). Antipode truncates
//! dependency sets at lineage boundaries by default, so even with barriers
//! in place, Bob's region can deliver the post notification while the ACL
//! update is still replicating — Bob gets notified despite the block. The
//! fix is `transfer(ℒblock, ℒpost)`: the developer explicitly carries the
//! ACL write into the post lineage, and the reader-side barrier then waits
//! for it.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use antipode::{Antipode, LineageIdGen};
use antipode_lineage::Lineage;
use antipode_sim::dist::Dist;
use antipode_sim::net::regions::{EU, US};
use antipode_sim::net::Network;
use antipode_sim::{RateCounter, Sim};
use antipode_store::replica::KvProfile;
use antipode_store::shim::{KvShim, QueueShim};
use antipode_store::{MySql, Redis, Sns};
use bytes::Bytes;

/// Experiment configuration.
#[derive(Clone, Debug)]
pub struct AclConfig {
    /// Whether the developer calls `transfer(ℒblock, ℒpost)`.
    pub transfer: bool,
    /// Number of block-then-post request pairs.
    pub requests: usize,
    /// Gap between Alice's block and her post.
    pub think_time: Duration,
    /// Master seed.
    pub seed: u64,
}

impl AclConfig {
    /// Default: 200 request pairs, 50 ms think time, no transfer.
    pub fn new() -> Self {
        AclConfig {
            transfer: false,
            requests: 200,
            think_time: Duration::from_millis(50),
            seed: 0xAC1,
        }
    }

    /// Enables the `transfer` call.
    pub fn with_transfer(mut self) -> Self {
        self.transfer = true;
        self
    }

    /// Sets the request count.
    pub fn with_requests(mut self, n: usize) -> Self {
        self.requests = n;
        self
    }
}

impl Default for AclConfig {
    fn default() -> Self {
        AclConfig::new()
    }
}

/// Experiment output.
#[derive(Clone, Debug, Default)]
pub struct AclResult {
    /// Bob notified although Alice had blocked him first — the §5.1 XCY
    /// violation.
    pub wrong_notifications: RateCounter,
}

/// An ACL store that replicates noticeably slower than the post path — the
/// §5.1 race (`acl-storage` replication slower than `post-storage`).
fn slow_acl_profile() -> KvProfile {
    KvProfile {
        local_write: Dist::lognormal_ms(0.5, 0.2),
        local_read: Dist::lognormal_ms(0.3, 0.2),
        replication: Dist::LogNormal {
            median: 3.0,
            sigma: 0.4,
        },
        rtt_hops: 1.0,
        retry_interval: Dist::constant_ms(100.0),
    }
}

/// Runs the scenario. Barriers are always placed (this is about *tracking*,
/// not enforcement placement): without `transfer` they simply cannot know
/// about the ACL write.
pub fn run(cfg: &AclConfig) -> AclResult {
    let sim = Sim::new(cfg.seed);
    let net = Rc::new(Network::global_triangle());
    let acl = Redis::with_profile(
        &sim,
        net.clone(),
        "acl-redis",
        &[EU, US],
        slow_acl_profile(),
    );
    let posts = MySql::new(&sim, net.clone(), "post-mysql", &[EU, US]);
    let notifier = Sns::new(&sim, net.clone(), "notif-sns", &[EU, US]);
    let acl_shim = KvShim::new(acl.store().clone());
    let post_shim = KvShim::new(posts.store().clone());
    let notif_shim = QueueShim::new(notifier.queue().clone());

    let mut ap = Antipode::new(sim.clone());
    ap.register(Rc::new(acl_shim.clone()));
    ap.register(Rc::new(post_shim.clone()));
    ap.register(Rc::new(notif_shim.clone()));

    let wrong = Rc::new(RefCell::new(RateCounter::new()));

    // --- Region B: follower-notify. ---
    {
        let wrong = wrong.clone();
        let acl_shim2 = acl_shim.clone();
        let notif_shim2 = notif_shim.clone();
        let ap = ap.clone();
        let requests = cfg.requests;
        sim.spawn(async move {
            let mut sub = notif_shim2.subscribe(US).expect("US configured");
            for _ in 0..requests {
                let Ok(Some(msg)) = sub.recv().await else {
                    break;
                };
                let pair = String::from_utf8(msg.payload.to_vec()).expect("pair id");
                if let Some(lin) = &msg.lineage {
                    ap.barrier(lin, US).await.expect("shims registered");
                }
                // Deliver to Bob only if the ACL does not block him.
                let blocked = acl_shim2
                    .read(US, &format!("block/{pair}"))
                    .await
                    .expect("US configured")
                    .is_some();
                // Alice blocked Bob *before* posting, so notifying him is a
                // violation.
                wrong.borrow_mut().record(!blocked);
            }
        });
    }

    // --- Region A: Alice blocks Bob, then posts. ---
    let gen = Rc::new(LineageIdGen::new(9));
    for i in 0..cfg.requests {
        let sim2 = sim.clone();
        let acl_shim = acl_shim.clone();
        let post_shim = post_shim.clone();
        let notif_shim = notif_shim.clone();
        let gen = gen.clone();
        let transfer = cfg.transfer;
        let think = cfg.think_time;
        sim.spawn(async move {
            sim2.sleep(Duration::from_millis(100 * i as u64)).await;
            // ℒblock: block Bob.
            let mut l_block = Lineage::new(gen.next_id());
            acl_shim
                .write(
                    EU,
                    &format!("block/{i}"),
                    Bytes::from_static(b"blocked"),
                    &mut l_block,
                )
                .await
                .expect("EU configured");
            // Execution of the block request ends here (stop): by default its
            // dependency set is dropped.
            sim2.sleep(think).await;
            // ℒpost: create the post.
            let mut l_post = Lineage::new(gen.next_id());
            if transfer {
                // transfer(ℒblock, ℒpost): carry the ACL write forward.
                l_post.transfer_from(&l_block);
            }
            post_shim
                .write(
                    EU,
                    &format!("post/{i}"),
                    Bytes::from(vec![0u8; 256]),
                    &mut l_post,
                )
                .await
                .expect("EU configured");
            notif_shim
                .publish(EU, Bytes::from(format!("{i}")), &mut l_post)
                .await
                .expect("EU configured");
        });
    }

    sim.run();
    let out = *wrong.borrow();
    AclResult {
        wrong_notifications: out,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn without_transfer_bob_gets_notified() {
        // The ACL replicates in seconds; the notification arrives in
        // hundreds of milliseconds; the barrier knows nothing about ℒblock.
        let r = run(&AclConfig::new().with_requests(100));
        let pct = r.wrong_notifications.percent();
        assert!(pct > 50.0, "wrong notifications {pct}%");
    }

    #[test]
    fn transfer_fixes_the_violation() {
        let r = run(&AclConfig::new().with_requests(100).with_transfer());
        assert_eq!(r.wrong_notifications.hits(), 0);
        assert_eq!(r.wrong_notifications.total(), 100);
    }
}

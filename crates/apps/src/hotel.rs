//! The DeathStarBench *hotel reservation* application — the paper's negative
//! control (§7.1, footnote 1): "hotel reservation has a very simple
//! architecture with no cross-datastore references, resulting in no XCY
//! violations being found".
//!
//! The booking flow touches a single datastore: the frontend calls search,
//! then the reservation service writes the booking to MySQL and the
//! confirmation page reads it back from the same store in the same region.
//! No second datastore ever refers to the first, so there is no cross-
//! service race to lose — the dry-run checker confirms that no barrier
//! placement is needed.

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use antipode::{Antipode, ConsistencyChecker, LineageIdGen};
use antipode_lineage::Lineage;
use antipode_runtime::{Service, ServiceSpec};
use antipode_sim::net::regions::{EU, US};
use antipode_sim::net::Network;
use antipode_sim::{RateCounter, Sim};
use antipode_store::{MySql, MySqlShim};
use bytes::Bytes;

/// Experiment configuration.
#[derive(Clone, Debug)]
pub struct HotelConfig {
    /// Number of booking requests.
    pub requests: usize,
    /// Master seed.
    pub seed: u64,
}

impl HotelConfig {
    /// Default: 300 bookings.
    pub fn new() -> Self {
        HotelConfig {
            requests: 300,
            seed: 0x807E1,
        }
    }

    /// Sets the request count.
    pub fn with_requests(mut self, n: usize) -> Self {
        self.requests = n;
        self
    }
}

impl Default for HotelConfig {
    fn default() -> Self {
        HotelConfig::new()
    }
}

/// Experiment output.
#[derive(Clone, Debug)]
pub struct HotelResult {
    /// Bookings whose confirmation read failed (must be zero).
    pub violations: RateCounter,
    /// Dry-run checkpoints that found unmet dependencies (must be zero —
    /// the checker agrees no barrier is needed).
    pub unsatisfied_checkpoints: usize,
    /// Total checkpoints evaluated.
    pub checkpoints: usize,
}

/// Runs the booking workload with the consistency checker instrumented.
pub fn run(cfg: &HotelConfig) -> HotelResult {
    let sim = Sim::new(cfg.seed);
    let net = Rc::new(Network::global_triangle());
    // Geo-replicated for availability, but every flow is single-store,
    // single-region: bookings are written and read in the user's region.
    let reservations = MySql::new(&sim, net, "reservations-mysql", &[US, EU]);
    let shim = MySqlShim::new(&reservations);
    let mut ap = Antipode::new(sim.clone());
    ap.register(Rc::new(shim.clone()));
    let checker = ConsistencyChecker::new(ap);

    let frontend = Service::new(&sim, ServiceSpec::new("frontend", US).workers(16));
    let search = Service::new(&sim, ServiceSpec::new("search", US).workers(16));
    let reservation_svc = Service::new(&sim, ServiceSpec::new("reservation", US).workers(16));

    let violations = Rc::new(RefCell::new(RateCounter::new()));
    let gen = Rc::new(LineageIdGen::new(1));

    for i in 0..cfg.requests {
        let sim2 = sim.clone();
        let frontend = frontend.clone();
        let search = search.clone();
        let reservation_svc = reservation_svc.clone();
        let shim = shim.clone();
        let checker = checker.clone();
        let violations = violations.clone();
        let gen = gen.clone();
        sim.spawn(async move {
            sim2.sleep(Duration::from_millis(30 * i as u64)).await;
            frontend.process().await;
            search.process().await;
            reservation_svc.process().await;
            let mut lineage = Lineage::new(gen.next_id());
            shim.insert(
                US,
                "bookings",
                &format!("{i}"),
                Bytes::from_static(b"room-42"),
                &mut lineage,
            )
            .await
            .expect("US configured");
            // Candidate barrier location: before rendering the confirmation.
            checker.checkpoint("frontend:confirmation", &lineage, US);
            // The confirmation page reads the booking back (same store,
            // same region — read-your-write at the origin replica).
            let found = shim
                .select(US, "bookings", &format!("{i}"))
                .await
                .expect("US")
                .is_some();
            violations.borrow_mut().record(!found);
        });
    }
    sim.run();

    let summary = checker.summary();
    let stats = summary
        .get("frontend:confirmation")
        .cloned()
        .unwrap_or_default();
    let out_violations = *violations.borrow();
    HotelResult {
        violations: out_violations,
        unsatisfied_checkpoints: stats.unsatisfied,
        checkpoints: stats.evaluations,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn no_violations_and_no_barriers_needed() {
        let r = run(&HotelConfig::new().with_requests(150));
        assert_eq!(
            r.violations.hits(),
            0,
            "hotel reservation must be violation-free"
        );
        assert_eq!(r.violations.total(), 150);
        assert_eq!(r.checkpoints, 150);
        assert_eq!(
            r.unsatisfied_checkpoints, 0,
            "the dry-run checker must agree that no barrier is needed"
        );
    }
}

//! The Post-Notification microbenchmark (paper §2.2, §7.1).
//!
//! Two cloud functions: a **Writer** in the writer region stores a post in a
//! configurable post-storage datastore and publishes a
//! ⟨notification-id, post-id⟩ event to a configurable notifier; a **Reader**
//! in the reader region reacts to each notification by fetching the post.
//! An XCY violation is a `post not found` at the Reader. Antipode fixes it
//! with a `barrier` right after the notification is received.
//!
//! This app drives Table 1 (inconsistency matrix), Fig 6 (delay sweep) and
//! Fig 7 (consistency windows).

use std::cell::RefCell;
use std::rc::Rc;
use std::time::Duration;

use antipode::{Antipode, LineageIdGen, UnknownStorePolicy};
use antipode_lineage::Lineage;
use antipode_sim::net::regions::{EU, US};
use antipode_sim::net::Network;
use antipode_sim::{RateCounter, Region, Samples, Sim};
use antipode_store::shim::{KvShim, QueueShim};
use antipode_store::{Amq, DynamoDb, DynamoDbStream, KvStore, MySql, QueueStore, Redis, Sns, S3};
use bytes::Bytes;

/// Which datastore backs post-storage (Table 1 columns).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum PostStoreKind {
    /// MySQL / Aurora global database.
    MySql,
    /// DynamoDB global tables.
    DynamoDb,
    /// Redis / ElastiCache.
    Redis,
    /// S3 with cross-region replication.
    S3,
}

impl PostStoreKind {
    /// All four, in Table 1 column order.
    pub const ALL: [PostStoreKind; 4] = [
        PostStoreKind::MySql,
        PostStoreKind::DynamoDb,
        PostStoreKind::Redis,
        PostStoreKind::S3,
    ];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            PostStoreKind::MySql => "MySQL",
            PostStoreKind::DynamoDb => "DynamoDB",
            PostStoreKind::Redis => "Redis",
            PostStoreKind::S3 => "S3",
        }
    }

    /// The paper's post object size for this store (§7.2: ≈ 1 MB, except
    /// DynamoDB's 400 KB item limit).
    pub fn post_size(self) -> usize {
        match self {
            PostStoreKind::DynamoDb => 400 * 1024,
            _ => 1024 * 1024,
        }
    }
}

/// Which datastore backs the notifier (Table 1 rows).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum NotifierKind {
    /// SNS pub/sub.
    Sns,
    /// Amazon MQ broker.
    Amq,
    /// DynamoDB item + streams poll.
    DynamoDb,
}

impl NotifierKind {
    /// All three, in Table 1 row order.
    pub const ALL: [NotifierKind; 3] =
        [NotifierKind::Sns, NotifierKind::Amq, NotifierKind::DynamoDb];

    /// Display name.
    pub fn name(self) -> &'static str {
        match self {
            NotifierKind::Sns => "SNS",
            NotifierKind::Amq => "AMQ",
            NotifierKind::DynamoDb => "DynamoDB",
        }
    }
}

/// Experiment configuration.
#[derive(Clone, Debug)]
pub struct PostNotifConfig {
    /// Post-storage datastore.
    pub post_store: PostStoreKind,
    /// Notifier datastore.
    pub notifier: NotifierKind,
    /// Whether Antipode is enabled (shims + barrier at the Reader).
    pub antipode: bool,
    /// Number of post-creation requests (the paper submits 1000).
    pub requests: usize,
    /// Artificial delay inserted before publishing the notification (Fig 6).
    pub artificial_delay: Duration,
    /// Region the Writer runs in (paper: Frankfurt).
    pub writer_region: Region,
    /// Region the Reader runs in (paper: Central US).
    pub reader_region: Region,
    /// Master seed.
    pub seed: u64,
}

impl PostNotifConfig {
    /// The paper's default setup for a store pair: 1000 requests, EU writer,
    /// US reader, no artificial delay, Antipode off.
    pub fn new(post_store: PostStoreKind, notifier: NotifierKind) -> Self {
        PostNotifConfig {
            post_store,
            notifier,
            antipode: false,
            requests: 1000,
            artificial_delay: Duration::ZERO,
            writer_region: EU,
            reader_region: US,
            seed: 0xA57,
        }
    }

    /// Enables Antipode.
    pub fn with_antipode(mut self) -> Self {
        self.antipode = true;
        self
    }

    /// Sets the artificial notification delay (Fig 6).
    pub fn with_delay(mut self, d: Duration) -> Self {
        self.artificial_delay = d;
        self
    }

    /// Sets the request count.
    pub fn with_requests(mut self, n: usize) -> Self {
        self.requests = n;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }
}

/// Experiment output.
#[derive(Clone, Debug, Default)]
pub struct PostNotifResult {
    /// `post not found` at the Reader (XCY violations). With Antipode this
    /// must be zero.
    pub violations: RateCounter,
    /// Consistency window per request (seconds): from the post write until
    /// the Reader('s barrier) allowed the read attempt (§7.4).
    pub consistency_window: Samples,
    /// Time each barrier spent blocked (seconds; Antipode runs only).
    pub barrier_blocked: Samples,
    /// Serialized lineage sizes observed at the Reader (bytes; Antipode
    /// runs only).
    pub lineage_bytes: Samples,
}

struct Deployment {
    sim: Sim,
    post_kv: KvStore,
    post_shim: KvShim,
    notif_queue: QueueStore,
    notif_shim: QueueShim,
}

fn deploy(cfg: &PostNotifConfig) -> Deployment {
    let sim = Sim::new(cfg.seed);
    let net = Rc::new(Network::global_triangle());
    let regions = [cfg.writer_region, cfg.reader_region];
    let post_kv = match cfg.post_store {
        PostStoreKind::MySql => MySql::new(&sim, net.clone(), "post-storage-mysql", &regions)
            .store()
            .clone(),
        PostStoreKind::DynamoDb => {
            DynamoDb::new(&sim, net.clone(), "post-storage-dynamodb", &regions)
                .store()
                .clone()
        }
        PostStoreKind::Redis => Redis::new(&sim, net.clone(), "post-storage-redis", &regions)
            .store()
            .clone(),
        PostStoreKind::S3 => S3::new(&sim, net.clone(), "post-storage-s3", &regions)
            .store()
            .clone(),
    };
    let notif_queue = match cfg.notifier {
        NotifierKind::Sns => Sns::new(&sim, net.clone(), "notifier-sns", &regions)
            .queue()
            .clone(),
        NotifierKind::Amq => Amq::new(&sim, net.clone(), "notifier-amq", &regions)
            .queue()
            .clone(),
        NotifierKind::DynamoDb => DynamoDbStream::new(&sim, net, "notifier-dynamodb", &regions)
            .queue()
            .clone(),
    };
    Deployment {
        sim,
        post_shim: KvShim::new(post_kv.clone()),
        post_kv,
        notif_shim: QueueShim::new(notif_queue.clone()),
        notif_queue,
    }
}

/// Runs the experiment and returns its measurements.
pub fn run(cfg: &PostNotifConfig) -> PostNotifResult {
    let dep = deploy(cfg);
    let sim = dep.sim.clone();
    let result: Rc<RefCell<PostNotifResult>> = Rc::new(RefCell::new(PostNotifResult::default()));
    let gen = Rc::new(LineageIdGen::new(1));

    // Antipode client at the Reader, with the post-storage shim registered.
    let mut ap = Antipode::new(sim.clone()).with_policy(UnknownStorePolicy::Fail);
    ap.register(Rc::new(dep.post_shim.clone()));
    ap.register(Rc::new(dep.notif_shim.clone()));

    // Post write times, indexed by post id, for the consistency window.
    let write_times: Rc<RefCell<std::collections::HashMap<String, antipode_sim::SimTime>>> =
        Rc::new(RefCell::new(std::collections::HashMap::new()));

    // --- Reader: handles each notification replication event (§7.1). ---
    {
        let cfg = cfg.clone();
        let sim2 = sim.clone();
        let result = result.clone();
        let write_times = write_times.clone();
        let post_shim = dep.post_shim.clone();
        let post_kv = dep.post_kv.clone();
        let notif_shim = dep.notif_shim.clone();
        let notif_queue = dep.notif_queue.clone();
        let ap = ap.clone();
        // A new Reader function is spawned per replication event (§7.1), so
        // handlers run concurrently — one slow barrier never queues behind
        // another.
        sim.spawn(async move {
            if cfg.antipode {
                let mut sub = notif_shim
                    .subscribe(cfg.reader_region)
                    .expect("reader region is configured");
                for _ in 0..cfg.requests {
                    let Some(msg) = sub.recv().await.transpose() else {
                        break;
                    };
                    let msg = msg.expect("writer publishes only valid envelopes");
                    let sim3 = sim2.clone();
                    let result = result.clone();
                    let write_times = write_times.clone();
                    let post_shim = post_shim.clone();
                    let ap = ap.clone();
                    let gen = gen.clone();
                    let region = cfg.reader_region;
                    sim2.spawn(async move {
                        let post_id =
                            String::from_utf8(msg.payload.to_vec()).expect("payload is a post id");
                        // barrier right after receiving the notification
                        // (§7.1).
                        let lineage = msg.lineage.unwrap_or_else(|| Lineage::new(gen.next_id()));
                        result
                            .borrow_mut()
                            .lineage_bytes
                            .record(lineage.wire_size() as f64);
                        let report = ap
                            .barrier(&lineage, region)
                            .await
                            .expect("all shims registered");
                        result
                            .borrow_mut()
                            .barrier_blocked
                            .record(report.blocked.as_secs_f64());
                        let window = {
                            let wt = write_times.borrow();
                            wt.get(&post_id).map(|t| sim3.now().since(*t))
                        };
                        let found = post_shim
                            .read(region, &post_id)
                            .await
                            .expect("reader region configured")
                            .is_some();
                        let mut r = result.borrow_mut();
                        r.violations.record(!found);
                        if let Some(w) = window {
                            r.consistency_window.record_duration(w);
                        }
                    });
                }
            } else {
                let mut sub = notif_queue
                    .subscribe(cfg.reader_region)
                    .expect("reader region is configured");
                for _ in 0..cfg.requests {
                    let Some(msg) = sub.recv().await else { break };
                    let sim3 = sim2.clone();
                    let result = result.clone();
                    let write_times = write_times.clone();
                    let post_kv = post_kv.clone();
                    let region = cfg.reader_region;
                    sim2.spawn(async move {
                        let post_id =
                            String::from_utf8(msg.payload.to_vec()).expect("payload is a post id");
                        let window = {
                            let wt = write_times.borrow();
                            wt.get(&post_id).map(|t| sim3.now().since(*t))
                        };
                        let found = post_kv
                            .get(region, &post_id)
                            .await
                            .expect("reader region configured")
                            .is_some();
                        let mut r = result.borrow_mut();
                        r.violations.record(!found);
                        if let Some(w) = window {
                            r.consistency_window.record_duration(w);
                        }
                    });
                }
            }
        });
    }

    // --- Writers: one post creation per request. ---
    let gen_w = Rc::new(LineageIdGen::new(2));
    for i in 0..cfg.requests {
        let cfg = cfg.clone();
        let sim2 = sim.clone();
        let write_times = write_times.clone();
        let post_shim = dep.post_shim.clone();
        let post_kv = dep.post_kv.clone();
        let notif_shim = dep.notif_shim.clone();
        let notif_queue = dep.notif_queue.clone();
        let gen_w = gen_w.clone();
        sim.spawn(async move {
            // Stagger request arrivals so requests are independent.
            sim2.sleep(Duration::from_millis(200 * i as u64)).await;
            let post_id = format!("post-{i}");
            let body = Bytes::from(vec![0u8; cfg.post_store.post_size().min(4096)]);
            if cfg.antipode {
                let mut lineage = Lineage::new(gen_w.next_id());
                post_shim
                    .write(cfg.writer_region, &post_id, body, &mut lineage)
                    .await
                    .expect("writer region configured");
                write_times.borrow_mut().insert(post_id.clone(), sim2.now());
                if !cfg.artificial_delay.is_zero() {
                    sim2.sleep(cfg.artificial_delay).await;
                }
                notif_shim
                    .publish(cfg.writer_region, Bytes::from(post_id), &mut lineage)
                    .await
                    .expect("writer region configured");
            } else {
                post_kv
                    .put(cfg.writer_region, &post_id, body)
                    .await
                    .expect("writer region configured");
                write_times.borrow_mut().insert(post_id.clone(), sim2.now());
                if !cfg.artificial_delay.is_zero() {
                    sim2.sleep(cfg.artificial_delay).await;
                }
                notif_queue
                    .publish(cfg.writer_region, Bytes::from(post_id))
                    .await
                    .expect("writer region configured");
            }
        });
    }

    sim.run();
    let out = result.borrow().clone();
    debug_assert_eq!(
        out.violations.total() as usize,
        cfg.requests,
        "every request measured"
    );
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(post: PostStoreKind, notif: NotifierKind) -> PostNotifConfig {
        PostNotifConfig::new(post, notif).with_requests(150)
    }

    #[test]
    fn sns_races_ahead_of_mysql() {
        // Table 1: MySQL × SNS ≈ 95 % inconsistencies.
        let r = run(&quick(PostStoreKind::MySql, NotifierKind::Sns));
        let pct = r.violations.percent();
        assert!((80.0..100.0).contains(&pct), "MySQL×SNS violations {pct}%");
    }

    #[test]
    fn dynamodb_notifier_is_slow_enough_to_be_safe() {
        // Table 1: MySQL × DynamoDB ≈ 0 %.
        let r = run(&quick(PostStoreKind::MySql, NotifierKind::DynamoDb));
        let pct = r.violations.percent();
        assert!(pct < 5.0, "MySQL×DynamoDB violations {pct}%");
    }

    #[test]
    fn s3_always_loses_the_race() {
        // Table 1: S3 × SNS = 100 %.
        let r = run(&quick(PostStoreKind::S3, NotifierKind::Sns));
        let pct = r.violations.percent();
        assert!(pct > 95.0, "S3×SNS violations {pct}%");
    }

    #[test]
    fn antipode_always_fixes_violations() {
        // §7.3: "regardless of the combination … the inconsistency was
        // always corrected."
        for (p, n) in [
            (PostStoreKind::MySql, NotifierKind::Sns),
            (PostStoreKind::S3, NotifierKind::Sns),
            (PostStoreKind::Redis, NotifierKind::Amq),
        ] {
            let r = run(&quick(p, n).with_antipode());
            assert_eq!(
                r.violations.hits(),
                0,
                "{}×{} still violated with Antipode",
                p.name(),
                n.name()
            );
        }
    }

    #[test]
    fn artificial_delay_reduces_violations() {
        // Fig 6: adding delay before publishing lets the post replicate.
        let base = run(&quick(PostStoreKind::MySql, NotifierKind::Sns));
        let delayed =
            run(&quick(PostStoreKind::MySql, NotifierKind::Sns).with_delay(Duration::from_secs(5)));
        assert!(
            delayed.violations.percent() < base.violations.percent() / 4.0,
            "delayed {}% vs base {}%",
            delayed.violations.percent(),
            base.violations.percent()
        );
    }

    #[test]
    fn antipode_consistency_window_tracks_replication_delay() {
        // Fig 7: with Antipode the window ≈ the store's replication lag;
        // S3's dwarfs MySQL's.
        let mysql = run(&quick(PostStoreKind::MySql, NotifierKind::Sns).with_antipode());
        let s3 = run(&PostNotifConfig::new(PostStoreKind::S3, NotifierKind::Sns)
            .with_requests(80)
            .with_antipode());
        let m = mysql.consistency_window.summary().unwrap();
        let s = s3.consistency_window.summary().unwrap();
        assert!(
            s.mean > 5.0 * m.mean,
            "S3 window {} vs MySQL {}",
            s.mean,
            m.mean
        );
        assert!(
            s.mean > 5.0,
            "S3 window should be many seconds, got {}",
            s.mean
        );
    }

    #[test]
    fn lineage_metadata_stays_small() {
        // §7.4: lineage metadata below 200 bytes.
        let r = run(&quick(PostStoreKind::MySql, NotifierKind::Sns).with_antipode());
        let max = r.lineage_bytes.summary().unwrap().max;
        assert!(max < 200.0, "max lineage size {max} B");
    }

    #[test]
    fn deterministic_across_runs() {
        let a = run(&quick(PostStoreKind::Redis, NotifierKind::Sns));
        let b = run(&quick(PostStoreKind::Redis, NotifierKind::Sns));
        assert_eq!(a.violations.hits(), b.violations.hits());
        assert_eq!(a.consistency_window.values(), b.consistency_window.values());
    }
}

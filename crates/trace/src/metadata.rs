//! Worst-case lineage metadata sizing over call graphs (§7.4).
//!
//! The paper assesses how lineage metadata would fare in a realistic
//! deployment by assuming the **worst case**: every stateful operation of a
//! request joins the dependency chain. It reports an average of ≈ 200 bytes
//! and < 1 KB for 99 % of requests. This module rebuilds that analysis: for
//! each synthetic call graph, construct the lineage containing one write
//! identifier per stateful call and measure its wire size.

use antipode_lineage::{Lineage, LineageId, WriteId};

use crate::gen::CallGraph;
use crate::stats::percentile;

/// Builds the worst-case lineage of a request: one dependency per stateful
/// call. Keys model short datastore keys; datastore names derive from the
/// service id (and are deduplicated by the wire format's string table).
pub fn worst_case_lineage(graph: &CallGraph, id: u64) -> Lineage {
    let mut lineage = Lineage::new(LineageId(id));
    for (i, call) in graph.calls.iter().enumerate().filter(|(_, c)| c.stateful) {
        lineage.append(WriteId::new(
            format!("s{}", call.service),
            format!("k{}", i * 31 % 997),
            (i as u64 % 120) + 1,
        ));
    }
    lineage
}

/// Summary of the metadata-size analysis over a corpus.
#[derive(Clone, Debug, PartialEq)]
pub struct MetadataReport {
    /// Number of requests analyzed.
    pub requests: usize,
    /// Mean worst-case lineage size in bytes.
    pub mean_bytes: f64,
    /// Median size.
    pub p50_bytes: f64,
    /// 99th-percentile size.
    pub p99_bytes: f64,
    /// Maximum size.
    pub max_bytes: f64,
}

/// Runs the analysis over a corpus of call graphs.
pub fn analyze(graphs: &[CallGraph]) -> MetadataReport {
    let mut sizes: Vec<f64> = graphs
        .iter()
        .enumerate()
        .map(|(i, g)| worst_case_lineage(g, i as u64).wire_size() as f64)
        .collect();
    sizes.sort_by(f64::total_cmp);
    let mean = if sizes.is_empty() {
        0.0
    } else {
        sizes.iter().sum::<f64>() / sizes.len() as f64
    };
    MetadataReport {
        requests: graphs.len(),
        mean_bytes: mean,
        p50_bytes: percentile(&sizes, 50.0),
        p99_bytes: percentile(&sizes, 99.0),
        max_bytes: sizes.last().copied().unwrap_or(0.0),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen::generate_many;

    #[test]
    fn worst_case_lineage_has_one_dep_per_stateful_call() {
        let graphs = generate_many(3, 20);
        for (i, g) in graphs.iter().enumerate() {
            let l = worst_case_lineage(g, i as u64);
            // Deps may collapse only when (service, key, version) collide,
            // which the key/version construction avoids for < 1000 calls.
            if g.stateful_calls() < 1000 {
                assert_eq!(l.len(), g.stateful_calls());
            }
        }
    }

    #[test]
    fn corpus_sizes_match_paper_shape() {
        // §7.4: average ≈ 200 B, p99 < 1 KB.
        let graphs = generate_many(11, 4000);
        let report = analyze(&graphs);
        assert!(
            (100.0..420.0).contains(&report.mean_bytes),
            "mean {:.0} B",
            report.mean_bytes
        );
        assert!(report.p99_bytes < 2_048.0, "p99 {:.0} B", report.p99_bytes);
        assert!(report.p50_bytes < report.p99_bytes);
    }

    #[test]
    fn empty_corpus() {
        let r = analyze(&[]);
        assert_eq!(r.requests, 0);
        assert_eq!(r.mean_bytes, 0.0);
    }
}

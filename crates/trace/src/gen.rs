//! Synthetic Alibaba-like call-graph generation.
//!
//! The paper's Fig 1 and §7.4 metadata analysis are computed over the
//! Alibaba 2021 cluster trace, which is not redistributable; this generator
//! is calibrated to the statistics the paper (and the trace paper, Luo et
//! al. SoCC '21) state explicitly:
//!
//! - more than 80 % of the ~17 k microservices are stateful;
//! - more than 20 % of requests make ≥ 20 calls to stateful services;
//! - more than half of requests touch ≥ 5 unique stateful services, and
//!   ~10 % touch more than 20;
//! - heavy-tailed fanout: > 10 % of stateless services fan out to ≥ 5
//!   children; average call depth > 4;
//! - service popularity is Zipf-like, so a few hot stores dominate.

use rand::Rng;

use crate::rng::TraceRng;

/// Number of distinct services in the synthetic universe.
pub const SERVICE_UNIVERSE: u32 = 17_000;
/// Fraction of the universe that is stateful (databases, caches, queues).
pub const STATEFUL_FRACTION: f64 = 0.82;

/// One call in a request's call graph.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Call {
    /// Service identifier within the universe.
    pub service: u32,
    /// Whether the callee is a stateful service.
    pub stateful: bool,
    /// Depth in the call tree (root call = 1).
    pub depth: u32,
}

/// The call graph of one request.
#[derive(Clone, Debug, Default)]
pub struct CallGraph {
    /// All calls, in generation (BFS) order.
    pub calls: Vec<Call>,
}

impl CallGraph {
    /// Total calls.
    pub fn total_calls(&self) -> usize {
        self.calls.len()
    }

    /// Calls to stateful services (Fig 1 left).
    pub fn stateful_calls(&self) -> usize {
        self.calls.iter().filter(|c| c.stateful).count()
    }

    /// Unique stateful services touched (Fig 1 right).
    pub fn unique_stateful_services(&self) -> usize {
        let mut ids: Vec<u32> = self
            .calls
            .iter()
            .filter(|c| c.stateful)
            .map(|c| c.service)
            .collect();
        ids.sort_unstable();
        ids.dedup();
        ids.len()
    }

    /// Maximum call depth.
    pub fn max_depth(&self) -> u32 {
        self.calls.iter().map(|c| c.depth).max().unwrap_or(0)
    }

    /// Mean call depth.
    pub fn mean_depth(&self) -> f64 {
        if self.calls.is_empty() {
            return 0.0;
        }
        self.calls.iter().map(|c| f64::from(c.depth)).sum::<f64>() / self.calls.len() as f64
    }
}

/// Samples a Zipf-ish service id in `[0, n)` with exponent ~1.1 via inverse
/// transform on a truncated power law.
fn zipf_id<R: Rng + ?Sized>(rng: &mut R, n: u32) -> u32 {
    let u: f64 = rng.random::<f64>().max(1e-12);
    // Inverse CDF of p(x) ∝ x^(-1.1) on [1, n].
    let s = 1.1_f64;
    let n_f = f64::from(n);
    let x = ((u * (n_f.powf(1.0 - s) - 1.0)) + 1.0).powf(1.0 / (1.0 - s));
    (x.floor() as u32).min(n - 1)
}

/// Samples a heavy-tailed fanout for a stateless service.
fn fanout<R: Rng + ?Sized>(rng: &mut R) -> usize {
    // ~55% fan out to 1-2, ~30% to 3-4, ~15% to 5+ (tail up to 40).
    let u: f64 = rng.random();
    if u < 0.55 {
        1 + rng.random_range(0..2)
    } else if u < 0.85 {
        3 + rng.random_range(0..2)
    } else {
        let tail: f64 = rng.random::<f64>().max(1e-9);
        (5.0 * tail.powf(-0.45)).min(40.0) as usize
    }
}

/// Generates one request call graph.
pub fn generate<R: Rng + ?Sized>(rng: &mut R) -> CallGraph {
    // Target size: log-normal, median ≈ 15 calls, heavy tail.
    let z = {
        // Box–Muller.
        let u1: f64 = 1.0 - rng.random::<f64>();
        let u2: f64 = rng.random::<f64>();
        (-2.0 * u1.ln()).sqrt() * (std::f64::consts::TAU * u2).cos()
    };
    let size = (15.0 * (1.0_f64 * z).exp()).clamp(1.0, 5_000.0) as usize;

    let stateful_universe = (f64::from(SERVICE_UNIVERSE) * STATEFUL_FRACTION) as u32;
    let stateless_universe = SERVICE_UNIVERSE - stateful_universe;

    let mut graph = CallGraph::default();
    // BFS frontier of stateless services that may fan out further.
    let mut frontier: Vec<u32> = vec![1]; // root at depth 1
    while graph.calls.len() < size {
        let depth = frontier.pop().unwrap_or(1);
        let k = fanout(rng).min(size - graph.calls.len()).max(1);
        for _ in 0..k {
            let stateful = rng.random::<f64>() < 0.62;
            let (service, child_depth) = if stateful {
                (zipf_id(rng, stateful_universe), depth + 1)
            } else {
                (
                    stateful_universe + zipf_id(rng, stateless_universe),
                    depth + 1,
                )
            };
            graph.calls.push(Call {
                service,
                stateful,
                depth: child_depth,
            });
            if !stateful && child_depth < 24 {
                frontier.push(child_depth);
            }
            if graph.calls.len() >= size {
                break;
            }
        }
    }
    graph
}

/// Generates `n` request call graphs from a seeded stream.
pub fn generate_many(seed: u64, n: usize) -> Vec<CallGraph> {
    let mut rng = TraceRng::seeded(seed);
    (0..n).map(|_| generate(&mut rng.inner)).collect()
}

/// Aggregate statistics over a corpus of call graphs — the headline numbers
/// the trace analysis reports (§2.1).
#[derive(Clone, Debug, PartialEq)]
pub struct CorpusStats {
    /// Requests analyzed.
    pub requests: usize,
    /// Mean calls per request.
    pub mean_calls: f64,
    /// Mean stateful calls per request.
    pub mean_stateful_calls: f64,
    /// Fraction of requests with ≥ 20 stateful calls.
    pub frac_ge20_stateful_calls: f64,
    /// Fraction of requests touching ≥ 5 unique stateful services.
    pub frac_ge5_unique_stateful: f64,
    /// Fraction touching > 20 unique stateful services.
    pub frac_gt20_unique_stateful: f64,
    /// Mean per-request maximum call depth.
    pub mean_max_depth: f64,
    /// Fraction of calls that target stateful services.
    pub stateful_call_fraction: f64,
}

/// Computes [`CorpusStats`] over a corpus.
pub fn corpus_stats(graphs: &[CallGraph]) -> CorpusStats {
    let n = graphs.len().max(1) as f64;
    let total_calls: usize = graphs.iter().map(CallGraph::total_calls).sum();
    let stateful_calls: usize = graphs.iter().map(CallGraph::stateful_calls).sum();
    let frac =
        |pred: &dyn Fn(&CallGraph) -> bool| graphs.iter().filter(|g| pred(g)).count() as f64 / n;
    CorpusStats {
        requests: graphs.len(),
        mean_calls: total_calls as f64 / n,
        mean_stateful_calls: stateful_calls as f64 / n,
        frac_ge20_stateful_calls: frac(&|g| g.stateful_calls() >= 20),
        frac_ge5_unique_stateful: frac(&|g| g.unique_stateful_services() >= 5),
        frac_gt20_unique_stateful: frac(&|g| g.unique_stateful_services() > 20),
        mean_max_depth: graphs.iter().map(|g| f64::from(g.max_depth())).sum::<f64>() / n,
        stateful_call_fraction: if total_calls == 0 {
            0.0
        } else {
            stateful_calls as f64 / total_calls as f64
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stats::percentile;

    fn corpus() -> Vec<CallGraph> {
        generate_many(1, 4000)
    }

    #[test]
    fn graphs_are_nonempty_and_bounded() {
        for g in corpus().iter().take(500) {
            assert!(!g.calls.is_empty());
            assert!(g.calls.len() <= 5_000);
            assert!(g.max_depth() >= 1);
        }
    }

    #[test]
    fn stateful_call_tail_matches_alibaba() {
        // Fig 1 left: > 20 % of requests make ≥ 20 stateful calls.
        let graphs = corpus();
        let frac =
            graphs.iter().filter(|g| g.stateful_calls() >= 20).count() as f64 / graphs.len() as f64;
        assert!((0.15..0.5).contains(&frac), "P(stateful ≥ 20) = {frac}");
    }

    #[test]
    fn unique_stateful_matches_alibaba() {
        // Fig 1 right: > 50 % of requests touch ≥ 5 unique stateful
        // services; ~10 % touch > 20.
        let graphs = corpus();
        let n = graphs.len() as f64;
        let ge5 = graphs
            .iter()
            .filter(|g| g.unique_stateful_services() >= 5)
            .count() as f64
            / n;
        let gt20 = graphs
            .iter()
            .filter(|g| g.unique_stateful_services() > 20)
            .count() as f64
            / n;
        assert!(ge5 > 0.5, "P(unique ≥ 5) = {ge5}");
        assert!((0.05..0.3).contains(&gt20), "P(unique > 20) = {gt20}");
    }

    #[test]
    fn depth_is_realistic() {
        // Alibaba: average call depth > 4 (we check the corpus mean of
        // per-request max depth).
        let graphs = corpus();
        let mean_max: f64 =
            graphs.iter().map(|g| f64::from(g.max_depth())).sum::<f64>() / graphs.len() as f64;
        assert!(mean_max > 3.0, "mean max depth {mean_max}");
    }

    #[test]
    fn popular_services_repeat() {
        // Zipf popularity: the median request re-uses at least one service.
        let graphs = corpus();
        let mut ratios: Vec<f64> = graphs
            .iter()
            .filter(|g| g.stateful_calls() >= 10)
            .map(|g| g.unique_stateful_services() as f64 / g.stateful_calls() as f64)
            .collect();
        ratios.sort_by(f64::total_cmp);
        let med = percentile(&ratios, 50.0);
        assert!(med < 0.95, "median unique/total ratio {med}");
    }

    #[test]
    fn corpus_stats_match_alibaba_anchors() {
        let stats = corpus_stats(&corpus());
        assert!(stats.frac_ge20_stateful_calls > 0.15, "{stats:?}");
        assert!(stats.frac_ge5_unique_stateful > 0.5, "{stats:?}");
        assert!(
            (0.04..0.30).contains(&stats.frac_gt20_unique_stateful),
            "{stats:?}"
        );
        assert!(
            (0.5..0.75).contains(&stats.stateful_call_fraction),
            "{stats:?}"
        );
        assert!(stats.mean_calls > stats.mean_stateful_calls);
    }

    #[test]
    fn corpus_stats_empty_is_safe() {
        let s = corpus_stats(&[]);
        assert_eq!(s.requests, 0);
        assert_eq!(s.stateful_call_fraction, 0.0);
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_many(7, 50);
        let b = generate_many(7, 50);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.calls, y.calls);
        }
    }
}

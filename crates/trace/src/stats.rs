//! Small statistics helpers for trace analysis (CDFs, percentiles).

/// Value at percentile `p` (0–100) of a **sorted** slice. Returns 0 for an
/// empty slice.
pub fn percentile(sorted: &[f64], p: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let idx = ((p / 100.0) * (sorted.len() as f64 - 1.0)).round() as usize;
    sorted[idx.min(sorted.len() - 1)]
}

/// Empirical CDF points `(x, P[X ≤ x])` of a data set, evaluated at the
/// given x values.
pub fn cdf_points(data: &[f64], xs: &[f64]) -> Vec<(f64, f64)> {
    if data.is_empty() {
        return xs.iter().map(|&x| (x, 0.0)).collect();
    }
    let mut sorted = data.to_vec();
    sorted.sort_by(f64::total_cmp);
    xs.iter()
        .map(|&x| {
            let count = sorted.partition_point(|&v| v <= x);
            (x, count as f64 / sorted.len() as f64)
        })
        .collect()
}

/// Arithmetic mean (0 for empty input).
pub fn mean(data: &[f64]) -> f64 {
    if data.is_empty() {
        0.0
    } else {
        data.iter().sum::<f64>() / data.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn percentile_basics() {
        let v = [1.0, 2.0, 3.0, 4.0, 5.0];
        assert_eq!(percentile(&v, 0.0), 1.0);
        assert_eq!(percentile(&v, 50.0), 3.0);
        assert_eq!(percentile(&v, 100.0), 5.0);
        assert_eq!(percentile(&[], 50.0), 0.0);
    }

    #[test]
    fn cdf_points_monotone() {
        let data = [1.0, 1.0, 2.0, 5.0];
        let pts = cdf_points(&data, &[0.0, 1.0, 2.0, 10.0]);
        assert_eq!(pts[0].1, 0.0);
        assert_eq!(pts[1].1, 0.5);
        assert_eq!(pts[2].1, 0.75);
        assert_eq!(pts[3].1, 1.0);
    }

    #[test]
    fn mean_basics() {
        assert_eq!(mean(&[2.0, 4.0]), 3.0);
        assert_eq!(mean(&[]), 0.0);
    }
}

//! # antipode-trace
//!
//! A synthetic Alibaba-like microservice trace generator and the analyses
//! the paper computes over the real trace: the Fig 1 CDFs (calls to stateful
//! services per request; unique stateful services per request) and the §7.4
//! worst-case lineage metadata sizing (avg ≈ 200 B, p99 < 1 KB).

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod gen;
pub mod metadata;
pub mod rng;
pub mod stats;

pub use gen::{corpus_stats, generate, generate_many, Call, CallGraph, CorpusStats};
pub use metadata::{analyze, worst_case_lineage, MetadataReport};

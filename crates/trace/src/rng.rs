//! Seeded RNG wrapper for trace generation (kept separate from the
//! simulator's streams so trace corpora are reproducible standalone).

use rand_chacha::rand_core::SeedableRng;
use rand_chacha::ChaCha12Rng;

/// A deterministic trace-generation RNG.
pub struct TraceRng {
    /// The underlying ChaCha stream.
    pub inner: ChaCha12Rng,
}

impl TraceRng {
    /// Creates a stream from a 64-bit seed.
    pub fn seeded(seed: u64) -> Self {
        let mut key = [0u8; 32];
        key[..8].copy_from_slice(&seed.to_le_bytes());
        key[8..16].copy_from_slice(&seed.wrapping_mul(0x9e37_79b9_7f4a_7c15).to_le_bytes());
        TraceRng {
            inner: ChaCha12Rng::from_seed(key),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::RngCore;

    #[test]
    fn seeded_streams_are_reproducible() {
        let mut a = TraceRng::seeded(5);
        let mut b = TraceRng::seeded(5);
        assert_eq!(a.inner.next_u64(), b.inner.next_u64());
        let mut c = TraceRng::seeded(6);
        assert_ne!(a.inner.next_u64(), c.inner.next_u64());
    }
}

//! Acceptance tests for the model checker: the barriered cell exhausts
//! clean with a pinned schedule count, the ablated cell yields a minimal
//! replayable counterexample, and sleep-set reduction prunes the majority
//! of raw interleavings without losing any violation.

use antipode_mc::{Counterexample, Explorer, Pruning, BARRIER_BASIC, BARRIER_REMOVED};

const SEED: u64 = 1;

#[test]
fn barriered_cell_exhausts_clean_with_pinned_count() {
    let report = Explorer::new().explore(&BARRIER_BASIC, SEED);
    assert!(report.verified(), "barriered cell must verify: {report:?}");
    assert!(report.divergences.is_empty(), "{:?}", report.divergences);
    // Pinned: the inequivalent-schedule count of the 2-writes x 2-regions
    // cell. A change here means the cell's concurrency structure changed —
    // deliberate executor/engine work, or an accidental new race.
    assert_eq!(
        report.schedules, 4,
        "completed schedules changed: {report:?}"
    );
    assert_eq!(
        report.sleep_pruned, 16,
        "sleep-pruned count changed: {report:?}"
    );
    assert_eq!(
        report.max_depth, 7,
        "choice-point depth changed: {report:?}"
    );
}

#[test]
fn ablated_cell_yields_minimal_replayable_counterexample() {
    let report = Explorer::new().explore(&BARRIER_REMOVED, SEED);
    assert!(!report.verified());
    assert_eq!(
        report.violations.len(),
        1,
        "exactly one violating checkpoint expected: {:?}",
        report.violations
    );
    let sig = report.violations.iter().next().unwrap();
    assert!(
        sig.contains("posts/post-1@v1"),
        "violation must name the missing post write: {sig}"
    );
    assert!(report.divergences.is_empty(), "{:?}", report.divergences);

    let cx = report.counterexample.as_ref().expect("witness recorded");
    let (minimal, shrunk_outcome) = cx.shrink().expect("replayable");
    assert!(minimal.choices.len() <= cx.choices.len());
    assert_eq!(
        shrunk_outcome.verdict.violations,
        report.violations.iter().cloned().collect::<Vec<_>>()
    );

    // Minimality: no strictly shorter prefix reproduces the violation.
    for k in 0..minimal.choices.len() {
        let shorter = Counterexample::new(
            minimal.cell.clone(),
            minimal.seed,
            minimal.choices[..k].to_vec(),
        );
        let out = shorter.replay().expect("replayable");
        assert_ne!(
            out.verdict.violations, shrunk_outcome.verdict.violations,
            "prefix of length {k} already reproduces — shrink missed it"
        );
    }

    // Replay determinism: two replays of the minimal witness are
    // byte-identical, trace included.
    let a = minimal.replay().expect("replayable");
    let b = minimal.replay().expect("replayable");
    assert!(a.violated());
    assert_eq!(a.verdict, b.verdict);
    assert_eq!(a.trace, b.trace);

    // The wire form round-trips through parse.
    let parsed = Counterexample::parse(&minimal.serialize()).expect("parses");
    assert_eq!(parsed, minimal);
}

#[test]
fn sleep_set_reduction_prunes_majority_of_raw_interleavings() {
    let raw = Explorer::new()
        .pruning(Pruning::Raw)
        .explore(&BARRIER_REMOVED, SEED);
    let reduced = Explorer::new().explore(&BARRIER_REMOVED, SEED);
    assert!(raw.schedules > 0 && reduced.schedules > 0);
    // The reduction must prune at least half of the raw interleavings —
    // in practice it executes ~20 runs against 432 raw schedules.
    assert!(
        reduced.runs() * 2 <= raw.schedules,
        "reduction too weak: {} runs (incl. pruned) vs {} raw schedules",
        reduced.runs(),
        raw.schedules
    );
    // Soundness: pruning drops executions, never behaviours — the two
    // explorations must find the identical violation set.
    assert_eq!(raw.violations, reduced.violations);
    assert!(raw.divergences.is_empty() && reduced.divergences.is_empty());
}

#[test]
fn raw_and_reduced_agree_on_the_clean_cell() {
    let raw = Explorer::new()
        .pruning(Pruning::Raw)
        .explore(&BARRIER_BASIC, SEED);
    let reduced = Explorer::new().explore(&BARRIER_BASIC, SEED);
    assert!(raw.verified() && reduced.verified());
    assert_eq!(raw.violations, reduced.violations);
}

#[test]
fn preemption_bound_two_suffices_for_the_ablation() {
    let report = Explorer::new()
        .preemption_bound(Some(2))
        .budget(Some(10_000))
        .explore(&BARRIER_REMOVED, SEED);
    assert!(!report.budget_exhausted);
    assert_eq!(report.violations.len(), 1);
    assert!(report.counterexample.is_some());
}

#[test]
fn budget_cuts_exploration_off_and_says_so() {
    let report = Explorer::new()
        .pruning(Pruning::Raw)
        .budget(Some(3))
        .explore(&BARRIER_REMOVED, SEED);
    assert!(report.budget_exhausted);
    assert_eq!(report.runs(), 3);
}

#[test]
fn stop_on_violation_halts_the_search_early() {
    let full = Explorer::new()
        .pruning(Pruning::Raw)
        .explore(&BARRIER_REMOVED, SEED);
    let early = Explorer::new()
        .pruning(Pruning::Raw)
        .stop_on_violation(true)
        .explore(&BARRIER_REMOVED, SEED);
    assert!(early.stopped_early);
    assert!(early.runs() < full.runs());
    assert!(early.counterexample.is_some());
}

//! The oracle stack: judges one explored interleaving.
//!
//! Two independent analyses run over every schedule the explorer visits:
//!
//! 1. the [`ConsistencyChecker`] — lineage replay: at each checkpoint it
//!    asks the shims whether every dependency is visible (paper §6.3);
//! 2. the [`RaceDetector`] — happens-before reconstruction from the event
//!    trace alone (program order + message edges), blind to lineages.
//!
//! A schedule is a violation witness if the checker recorded at least one
//! non-speculative checkpoint with unmet dependencies. The detector is the
//! cross-check: the two analyses must agree on *which* checkpoints were
//! unsatisfied — a disagreement means the instrumentation itself is broken
//! and is reported as a [`OracleVerdict::divergence`], which the explorer
//! treats as fatal (it would silently invalidate every verdict).

use antipode::{ConsistencyChecker, RaceDetector, TraceEvent};

/// What the oracle concluded about one execution.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct OracleVerdict {
    /// Canonical checker violation signatures
    /// ([`ConsistencyChecker::violation_signatures`]) — sorted, so two
    /// executions violating identically compare equal.
    pub violations: Vec<String>,
    /// Race-detector findings with unmet causal dependencies, as
    /// `location@region` labels (sorted).
    pub race_unsatisfied: Vec<String>,
    /// Set when the two analyses disagree on which checkpoints were
    /// unsatisfied. Always a bug in the harness, never in the cell.
    pub divergence: Option<String>,
}

impl OracleVerdict {
    /// A verdict for an execution that produced nothing to judge.
    pub fn empty() -> Self {
        OracleVerdict::default()
    }
}

/// Runs the oracle stack over one completed execution.
pub fn evaluate(checker: &ConsistencyChecker, trace: &[TraceEvent]) -> OracleVerdict {
    let violations = checker.violation_signatures();

    let detector = RaceDetector::analyze(trace);
    let mut race_unsatisfied: Vec<String> = detector
        .findings()
        .iter()
        .filter(|f| !f.is_satisfied())
        .map(|f| format!("{}@{}", f.location, f.region.name()))
        .collect();
    race_unsatisfied.sort();

    // Cross-validate per checkpoint location: the checker's violating
    // locations must be exactly the detector's.
    // Signatures look like `location@region: unmet=[...]` — strip the
    // unmet list to get the `location@region` label the detector also uses
    // (the location itself may contain ':').
    let mut checker_locs: Vec<String> = violations
        .iter()
        .filter_map(|sig| sig.split(": unmet=").next().map(str::to_string))
        .collect();
    checker_locs.sort();
    checker_locs.dedup();
    let mut race_locs = race_unsatisfied.clone();
    race_locs.dedup();
    let divergence = (checker_locs != race_locs).then(|| {
        format!(
            "oracle divergence: lineage replay flagged [{}] but happens-before \
             reconstruction flagged [{}]",
            checker_locs.join(", "),
            race_locs.join(", ")
        )
    });

    OracleVerdict {
        violations,
        race_unsatisfied,
        divergence,
    }
}

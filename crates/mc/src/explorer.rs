//! Depth-first schedule-space exploration with sleep-set reduction.
//!
//! The explorer is *stateless* in the model-checking sense: it cannot fork
//! the simulator at a choice point, so it re-executes the cell from scratch
//! for every branch, steering each run with a [`Schedule`] that follows the
//! recorded choice prefix and then extends it. This is the classic
//! VeriSoft/CHESS architecture; it trades CPU for zero snapshotting
//! machinery and keeps every run bit-reproducible.
//!
//! # Reduction
//!
//! Exhaustively enumerating raw interleavings is wasteful: two schedules
//! that only swap *independent* steps (disjoint access footprints — see
//! [`StepRecord::accesses`](antipode_sim::StepRecord)) reach the same
//! state. The explorer prunes with **sleep sets** (Godefroid): after fully
//! exploring sibling `t` at a node, `t` is put to sleep for the remaining
//! siblings' subtrees and stays asleep until some step *dependent* on `t`'s
//! step executes. Choosing a sleeping task is provably redundant, so a run
//! whose only runnable tasks are asleep is abandoned
//! ([`ExploreReport::sleep_pruned`]). Sleep sets prune *executions*, never
//! *behaviours*: with [`Pruning::SleepSets`] the explorer still visits every
//! inequivalent interleaving that [`Pruning::Raw`] does.
//!
//! # Bounding
//!
//! Orthogonally, a **preemption bound** (CHESS-style) restricts exploration
//! to schedules with at most `n` preemptions — switches away from a task
//! that is still runnable. Most concurrency bugs manifest within two
//! preemptions, and the bound turns an exponential space into a polynomial
//! one; runs cut off by the bound are counted in
//! [`ExploreReport::bound_pruned`] (unlike sleep pruning, bounding *is*
//! incomplete — it is a search heuristic, not a reduction).

use std::cell::RefCell;
use std::collections::BTreeSet;
use std::rc::Rc;

use antipode_sim::{footprints_conflict, Schedule, SimTime, StepRecord, TaskRef};

use crate::cells::{run_cell, CellSpec};
use crate::counterexample::Counterexample;

/// Which equivalence-pruning strategy to explore with.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Pruning {
    /// No reduction: enumerate every schedule (within the preemption
    /// bound). Exists to *measure* the reduction, not to use.
    Raw,
    /// Sleep-set reduction keyed on per-step access footprints.
    SleepSets,
}

/// Result of exploring one cell's schedule space.
#[derive(Clone, Debug)]
pub struct ExploreReport {
    /// Cell that was explored.
    pub cell: String,
    /// Simulation seed every run used.
    pub seed: u64,
    /// Completed executions judged by the oracle.
    pub schedules: u64,
    /// Executions abandoned because every runnable task was asleep
    /// (redundant with an already-explored interleaving).
    pub sleep_pruned: u64,
    /// Executions abandoned by the preemption bound.
    pub bound_pruned: u64,
    /// Deepest branching-choice-point count seen in any run.
    pub max_depth: usize,
    /// `true` if the run budget was hit before the space was exhausted —
    /// the absence of violations is then *not* a proof.
    pub budget_exhausted: bool,
    /// Whether a violation stopped the search early
    /// ([`Explorer::stop_on_violation`]).
    pub stopped_early: bool,
    /// Union of oracle violation signatures across all explored schedules.
    pub violations: BTreeSet<String>,
    /// Harness-integrity failures: oracle divergence, runs that ended
    /// without completing, or a prefix that replayed to a different
    /// runnable set. Any entry here invalidates the whole exploration.
    pub divergences: Vec<String>,
    /// The first violating schedule found, replayable as recorded (not yet
    /// shrunk — see [`Counterexample::shrink`]).
    pub counterexample: Option<Counterexample>,
}

impl ExploreReport {
    /// Total executions started (completed + pruned).
    pub fn runs(&self) -> u64 {
        self.schedules + self.sleep_pruned + self.bound_pruned
    }

    /// Whether the space was exhausted with no violation and an intact
    /// harness.
    pub fn verified(&self) -> bool {
        !self.budget_exhausted
            && !self.stopped_early
            && self.violations.is_empty()
            && self.divergences.is_empty()
    }
}

/// A task put to sleep: its id plus the footprint of the step it would
/// take, used to decide which later steps wake it.
#[derive(Clone, Debug)]
struct SleepEntry {
    task: u64,
    footprint: Vec<u64>,
}

/// One branching choice point on the current DFS path.
#[derive(Clone, Debug)]
struct Node {
    /// Task ids runnable at this point (deterministic for a fixed prefix).
    enabled: Vec<u64>,
    /// Index currently being explored.
    chosen: usize,
    /// Footprint of the `chosen` branch's first step, recorded when it
    /// first executed; moved into `tried` on rotation.
    cur_step: Option<SleepEntry>,
    /// Fully-explored siblings: `(index, step)` — their steps become sleep
    /// entries for the remaining siblings' subtrees.
    tried: Vec<(usize, SleepEntry)>,
    /// Sleep set on first entry to this node (tasks already redundant
    /// here); such siblings are never tried.
    sleep_on_entry: Vec<SleepEntry>,
    /// Task that executed the step immediately before this choice point
    /// (preemption accounting).
    prev_task: Option<u64>,
    /// Preemptions already spent on the path to this node.
    preemptions_before: u32,
}

/// Why a run was abandoned mid-flight.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum AbortKind {
    Sleep,
    Bound,
    /// The replayed prefix produced a different runnable set than the run
    /// that recorded it — determinism is broken, results are void.
    Divergence,
}

/// Seed for a node discovered during a run (at a depth beyond the plan).
#[derive(Clone, Debug)]
struct NodeSeed {
    enabled: Vec<u64>,
    chosen: usize,
    sleep_on_entry: Vec<SleepEntry>,
    prev_task: Option<u64>,
    preemptions_before: u32,
}

/// Everything one steered run reports back to the explorer.
#[derive(Default)]
struct RunLog {
    new_nodes: Vec<NodeSeed>,
    /// Per branching depth: the executed step (task + footprint).
    steps: Vec<Option<SleepEntry>>,
    /// Per branching depth: the index chosen (a full replay schedule).
    taken: Vec<usize>,
    abort: Option<AbortKind>,
}

/// The [`Schedule`] that steers one DFS run: follows `plan`, then extends
/// depth-first, maintaining the sleep set online.
struct DfsSchedule {
    plan: Vec<usize>,
    /// Expected runnable sets along the plan (determinism check).
    plan_enabled: Vec<Vec<u64>>,
    /// Per plan depth: sleep entries for already-explored siblings, merged
    /// into the live sleep set on entry.
    sleep_adds: Vec<Vec<SleepEntry>>,
    use_sleep: bool,
    bound: Option<u32>,
    depth: usize,
    preemptions: u32,
    prev_task: Option<u64>,
    cur_sleep: Vec<SleepEntry>,
    /// Whether the step about to be observed was a branching choice.
    pending_branch: bool,
    log: Rc<RefCell<RunLog>>,
}

impl DfsSchedule {
    fn asleep(&self, task: u64) -> bool {
        self.use_sleep && self.cur_sleep.iter().any(|e| e.task == task)
    }

    /// Picks the next task at a fresh (beyond-plan) choice point:
    /// continuing the previous task is preferred (free under the bound),
    /// then FIFO order. Returns `None` (with the abort reason logged) if
    /// every candidate is asleep or over the bound.
    fn pick_extension(&mut self, ids: &[u64]) -> Option<usize> {
        let prev_idx = self
            .prev_task
            .and_then(|p| ids.iter().position(|&t| t == p));
        let order = prev_idx
            .into_iter()
            .chain((0..ids.len()).filter(|i| Some(*i) != prev_idx));
        let mut saw_awake = false;
        for i in order {
            if self.asleep(ids[i]) {
                continue;
            }
            saw_awake = true;
            let cost = u32::from(prev_idx.is_some() && Some(i) != prev_idx);
            if self.bound.is_some_and(|b| self.preemptions + cost > b) {
                continue;
            }
            return Some(i);
        }
        self.log.borrow_mut().abort = Some(if saw_awake {
            AbortKind::Bound
        } else {
            AbortKind::Sleep
        });
        None
    }
}

impl Schedule for DfsSchedule {
    fn choose(&mut self, runnable: &[TaskRef], _now: SimTime) -> usize {
        if self.log.borrow().abort.is_some() {
            return 0;
        }
        if runnable.len() == 1 {
            // Forced step. If the sole runnable task is asleep, this whole
            // execution is equivalent to one already explored.
            if self.asleep(runnable[0].id()) {
                self.log.borrow_mut().abort = Some(AbortKind::Sleep);
            }
            self.pending_branch = false;
            return 0;
        }
        let d = self.depth;
        if self.use_sleep {
            if let Some(adds) = self.sleep_adds.get(d) {
                for e in adds {
                    if !self.cur_sleep.iter().any(|x| x.task == e.task) {
                        self.cur_sleep.push(e.clone());
                    }
                }
            }
        }
        let ids: Vec<u64> = runnable.iter().map(TaskRef::id).collect();
        let idx = if d < self.plan.len() {
            if ids != self.plan_enabled[d] {
                self.log.borrow_mut().abort = Some(AbortKind::Divergence);
                return 0;
            }
            self.plan[d].min(ids.len() - 1)
        } else {
            match self.pick_extension(&ids) {
                Some(i) => {
                    self.log.borrow_mut().new_nodes.push(NodeSeed {
                        enabled: ids.clone(),
                        chosen: i,
                        sleep_on_entry: self.cur_sleep.clone(),
                        prev_task: self.prev_task,
                        preemptions_before: self.preemptions,
                    });
                    i
                }
                None => return 0,
            }
        };
        if let Some(p) = self.prev_task {
            if ids.contains(&p) && ids[idx] != p {
                self.preemptions += 1;
            }
        }
        self.depth += 1;
        self.pending_branch = true;
        let mut log = self.log.borrow_mut();
        log.taken.push(idx);
        log.steps.push(None);
        idx
    }

    fn observe(&mut self, step: &StepRecord) {
        if self.log.borrow().abort.is_some() {
            return;
        }
        if self.pending_branch {
            self.pending_branch = false;
            let mut log = self.log.borrow_mut();
            let last = log.steps.len() - 1;
            log.steps[last] = Some(SleepEntry {
                task: step.task,
                footprint: step.accesses.clone(),
            });
        }
        if self.use_sleep {
            // A dependent step wakes a sleeping task: the commutation
            // argument that justified its sleep no longer holds.
            self.cur_sleep
                .retain(|e| !footprints_conflict(&e.footprint, &step.accesses));
        }
        self.prev_task = Some(step.task);
    }

    fn aborted(&self) -> bool {
        self.log.borrow().abort.is_some()
    }
}

/// Configurable DFS explorer. Build with [`Explorer::new`], tune with the
/// builder methods, run with [`Explorer::explore`].
#[derive(Clone, Debug)]
pub struct Explorer {
    pruning: Pruning,
    preemption_bound: Option<u32>,
    budget: Option<u64>,
    stop_on_violation: bool,
}

impl Default for Explorer {
    fn default() -> Self {
        Explorer::new()
    }
}

impl Explorer {
    /// Sleep-set pruning, no preemption bound, no budget.
    pub fn new() -> Self {
        Explorer {
            pruning: Pruning::SleepSets,
            preemption_bound: None,
            budget: None,
            stop_on_violation: false,
        }
    }

    /// Sets the pruning strategy.
    pub fn pruning(mut self, p: Pruning) -> Self {
        self.pruning = p;
        self
    }

    /// Caps the number of preemptions per schedule (`None` = unbounded).
    pub fn preemption_bound(mut self, b: Option<u32>) -> Self {
        self.preemption_bound = b;
        self
    }

    /// Hard cap on executions started; exceeding it sets
    /// [`ExploreReport::budget_exhausted`].
    pub fn budget(mut self, b: Option<u64>) -> Self {
        self.budget = b;
        self
    }

    /// Stop at the first violating schedule instead of mapping the whole
    /// space.
    pub fn stop_on_violation(mut self, stop: bool) -> Self {
        self.stop_on_violation = stop;
        self
    }

    /// Explores `spec`'s schedule space, judging every completed run with
    /// the oracle stack.
    pub fn explore(&self, spec: &CellSpec, seed: u64) -> ExploreReport {
        let mut report = ExploreReport {
            cell: spec.name.to_string(),
            seed,
            schedules: 0,
            sleep_pruned: 0,
            bound_pruned: 0,
            max_depth: 0,
            budget_exhausted: false,
            stopped_early: false,
            violations: BTreeSet::new(),
            divergences: Vec::new(),
            counterexample: None,
        };
        let mut nodes: Vec<Node> = Vec::new();
        let mut first = true;
        loop {
            if !first && !self.backtrack(&mut nodes) {
                break; // space exhausted
            }
            first = false;
            if self.budget.is_some_and(|b| report.runs() >= b) {
                report.budget_exhausted = true;
                break;
            }
            let log = Rc::new(RefCell::new(RunLog::default()));
            let sched = DfsSchedule {
                plan: nodes.iter().map(|n| n.chosen).collect(),
                plan_enabled: nodes.iter().map(|n| n.enabled.clone()).collect(),
                sleep_adds: nodes
                    .iter()
                    .map(|n| n.tried.iter().map(|(_, e)| e.clone()).collect())
                    .collect(),
                use_sleep: self.pruning == Pruning::SleepSets,
                bound: self.preemption_bound,
                depth: 0,
                preemptions: 0,
                prev_task: None,
                cur_sleep: Vec::new(),
                pending_branch: false,
                log: log.clone(),
            };
            let outcome = run_cell(spec, seed, Box::new(sched));
            let log = log.borrow();

            for seed_node in &log.new_nodes {
                nodes.push(Node {
                    enabled: seed_node.enabled.clone(),
                    chosen: seed_node.chosen,
                    cur_step: None,
                    tried: Vec::new(),
                    sleep_on_entry: seed_node.sleep_on_entry.clone(),
                    prev_task: seed_node.prev_task,
                    preemptions_before: seed_node.preemptions_before,
                });
            }
            for (d, s) in log.steps.iter().enumerate() {
                if let (Some(node), Some(entry)) = (nodes.get_mut(d), s) {
                    if node.cur_step.is_none() {
                        node.cur_step = Some(entry.clone());
                    }
                }
            }
            report.max_depth = report.max_depth.max(log.taken.len());

            match log.abort {
                Some(AbortKind::Sleep) => report.sleep_pruned += 1,
                Some(AbortKind::Bound) => report.bound_pruned += 1,
                Some(AbortKind::Divergence) => {
                    report
                        .divergences
                        .push("prefix replay diverged: runnable set mismatch".to_string());
                    break;
                }
                None => {
                    report.schedules += 1;
                    if !outcome.completed {
                        report
                            .divergences
                            .push("run ended without abort but tasks did not complete".to_string());
                    } else {
                        if let Some(d) = &outcome.verdict.divergence {
                            report.divergences.push(d.clone());
                        }
                        if outcome.violated() {
                            for v in &outcome.verdict.violations {
                                report.violations.insert(v.clone());
                            }
                            if report.counterexample.is_none() {
                                report.counterexample =
                                    Some(Counterexample::new(spec.name, seed, log.taken.clone()));
                            }
                            if self.stop_on_violation {
                                report.stopped_early = true;
                                break;
                            }
                        }
                    }
                }
            }
        }
        report
    }

    /// Rotates the deepest node with an untried, non-redundant sibling to
    /// that sibling and truncates the path below it. Returns `false` when
    /// the whole space is exhausted.
    fn backtrack(&self, nodes: &mut Vec<Node>) -> bool {
        while !nodes.is_empty() {
            let pos = nodes.len() - 1;
            match self.next_candidate(&nodes[pos]) {
                Some(alt) => {
                    let node = &mut nodes[pos];
                    let step = node
                        .cur_step
                        .take()
                        .expect("chosen branch of a backtracked node was executed");
                    node.tried.push((node.chosen, step));
                    node.chosen = alt;
                    return true;
                }
                None => {
                    nodes.pop();
                }
            }
        }
        false
    }

    /// The next unexplored sibling at `node`, honouring sleep sets and the
    /// preemption bound, in the same candidate order as
    /// [`DfsSchedule::pick_extension`].
    fn next_candidate(&self, node: &Node) -> Option<usize> {
        let ids = &node.enabled;
        let prev_idx = node
            .prev_task
            .and_then(|p| ids.iter().position(|&t| t == p));
        let order = prev_idx
            .into_iter()
            .chain((0..ids.len()).filter(|i| Some(*i) != prev_idx));
        for i in order {
            if i == node.chosen || node.tried.iter().any(|&(j, _)| j == i) {
                continue;
            }
            if self.pruning == Pruning::SleepSets
                && node.sleep_on_entry.iter().any(|e| e.task == ids[i])
            {
                continue;
            }
            let cost = u32::from(prev_idx.is_some() && Some(i) != prev_idx);
            if self
                .preemption_bound
                .is_some_and(|b| node.preemptions_before + cost > b)
            {
                continue;
            }
            return Some(i);
        }
        None
    }
}

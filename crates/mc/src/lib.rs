//! `antipode-mc` — a systematic schedule-space model checker for XCY
//! invariants, in the style of loom, shuttle and CHESS.
//!
//! The deterministic simulator executes one schedule per seed; chaos testing
//! samples many seeds. Neither is *exhaustive*: a cross-service causality
//! bug that only manifests under one specific interleaving of replication
//! applies, queue deliveries and application reads can survive both. This
//! crate closes that gap for small, closed scenarios (**cells**,
//! [`cells`]): it drives the simulator's schedule choice points
//! ([`antipode_sim::Schedule`]) with a depth-first explorer that enumerates
//! every *inequivalent* interleaving — pruning schedules that merely
//! reorder independent steps (sleep-set reduction over per-step access
//! footprints) and, optionally, schedules that exceed a preemption bound.
//!
//! Every explored schedule is judged by an oracle stack ([`oracle`]):
//! Antipode's lineage-replay [`ConsistencyChecker`] plus the independent
//! happens-before [`RaceDetector`], cross-validated against each other. A
//! violating schedule is shrunk to a minimal prefix and serialized as a
//! replayable counterexample ([`counterexample`]).
//!
//! [`ConsistencyChecker`]: antipode::ConsistencyChecker
//! [`RaceDetector`]: antipode::RaceDetector
//!
//! # Quickstart
//!
//! ```text
//! cargo run -p antipode-mc -- --cell barrier_basic      # exhausts clean
//! cargo run -p antipode-mc -- --cell barrier_removed    # finds a witness
//! ```

pub mod cells;
pub mod counterexample;
pub mod explorer;
pub mod oracle;

pub use cells::{cell, run_cell, CellOutcome, CellSpec, ALL_CELLS, BARRIER_BASIC, BARRIER_REMOVED};
pub use counterexample::Counterexample;
pub use explorer::{ExploreReport, Explorer, Pruning};
pub use oracle::OracleVerdict;

//! Model-checking *cells*: small, closed XCY scenarios the explorer can
//! execute repeatedly under different schedules.
//!
//! A cell is the model checker's unit of verification — the analogue of a
//! `loom::model` closure. It wires up a fresh simulation (stores, shims,
//! probes, checker), runs a fixed application scenario under a caller-chosen
//! [`Schedule`], and returns everything the oracle needs to judge the
//! interleaving: the checker's violation signatures, the happens-before
//! trace, and a human-readable event log.
//!
//! The canonical cell is **two writes × two regions** — the paper's
//! post-upload/notification pattern reduced to its essence: a writer in EU
//! writes a post to a KV store and publishes a notification to a queue; a
//! reader in US receives the notification and reads the post. Every latency
//! in the cell is a *constant* distribution, tuned so the post's replication
//! apply and the notification's delivery land on the **same virtual
//! instant** in US. In controlled mode the executor batch-fires same-instant
//! timers and hands their ordering to the schedule, so the race is decided
//! purely by scheduling — exactly the nondeterminism the explorer
//! enumerates. With the barrier (`barrier_basic`) every interleaving is
//! XCY-consistent; without it (`barrier_removed`) some interleavings let the
//! reader observe the notification before the post.

use std::cell::RefCell;
use std::rc::Rc;

use antipode::{Antipode, ConsistencyChecker, Lineage, LineageId, TraceEvent, UnknownStorePolicy};
use antipode_sim::dist::Dist;
use antipode_sim::net::regions::{EU, US};
use antipode_sim::{Network, Schedule, Sim};
use antipode_store::probe::VisibilityEvent;
use antipode_store::queue::{QueueProfile, QueueStore};
use antipode_store::replica::{KvProfile, KvStore};
use antipode_store::shim::{KvShim, QueueShim};
use bytes::Bytes;

use crate::oracle::{self, OracleVerdict};

/// A named, closed scenario the explorer can execute.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct CellSpec {
    /// Registry name (CLI `--cell` argument).
    pub name: &'static str,
    /// Whether the reader enforces its lineage with a real barrier before
    /// reading.
    pub barrier: bool,
    /// One-line description for `--list`.
    pub description: &'static str,
}

/// The two-writes × two-regions cell with the barrier in place: must be
/// XCY-consistent under *every* schedule.
pub const BARRIER_BASIC: CellSpec = CellSpec {
    name: "barrier_basic",
    barrier: true,
    description: "2 writes x 2 regions, reader barriers on the lineage (expect: exhausts clean)",
};

/// The ablated cell: barrier removed, so some interleavings violate XCY.
pub const BARRIER_REMOVED: CellSpec = CellSpec {
    name: "barrier_removed",
    barrier: false,
    description: "2 writes x 2 regions, barrier ablated (expect: violation witness)",
};

/// All registered cells.
pub const ALL_CELLS: &[CellSpec] = &[BARRIER_BASIC, BARRIER_REMOVED];

/// Looks a cell up by name.
pub fn cell(name: &str) -> Option<CellSpec> {
    ALL_CELLS.iter().copied().find(|c| c.name == name)
}

/// Everything one execution of a cell produced.
#[derive(Clone, Debug)]
pub struct CellOutcome {
    /// Whether both application tasks ran to completion. `false` means the
    /// run was cut short (schedule abort) and the verdict fields are
    /// meaningless.
    pub completed: bool,
    /// Oracle verdict: checker violation signatures plus the race-detector
    /// cross-check.
    pub verdict: OracleVerdict,
    /// Number of branching choice points (≥ 2 runnable tasks) the executor
    /// hit — the length of a full [`ReplaySchedule`] for this run.
    ///
    /// [`ReplaySchedule`]: antipode_sim::ReplaySchedule
    pub choice_points: u64,
    /// Human-readable event log (application + visibility events, in
    /// execution order) — the witness trace shown with a counterexample.
    pub trace: Vec<String>,
}

impl CellOutcome {
    /// Whether the oracle flagged at least one XCY violation.
    pub fn violated(&self) -> bool {
        !self.verdict.violations.is_empty()
    }
}

/// Runs `spec` once under `schedule` and returns the outcome.
///
/// Every run is hermetic: a fresh [`Sim`] (which also resets the
/// thread-local resource-id allocator, so access footprints are comparable
/// across runs), fresh stores, fresh checker. Two runs with the same
/// `(spec, seed, schedule decisions)` produce byte-identical outcomes.
pub fn run_cell(spec: &CellSpec, seed: u64, schedule: Box<dyn Schedule>) -> CellOutcome {
    let sim = Sim::new(seed);
    sim.set_schedule(schedule);

    // Constant latencies everywhere: the only nondeterminism left is the
    // schedule. Intra-region transit 0, inter-region transit 10ms.
    let net = Rc::new(Network::new(
        Dist::constant_ms(0.0),
        Dist::constant_ms(10.0),
    ));

    // Post write: commits locally at 2ms, replicates to US in one 10ms hop
    // => the US apply fires at t = 12ms.
    let posts = KvStore::new(
        &sim,
        net.clone(),
        "posts",
        &[EU, US],
        KvProfile {
            local_write: Dist::constant_ms(2.0),
            local_read: Dist::constant_ms(0.0),
            replication: Dist::constant_ms(0.0),
            rtt_hops: 1.0,
            retry_interval: Dist::constant_ms(5.0),
        },
    );
    posts.set_batching(false);

    // Notification publish: the writer publishes right after the post write
    // completes (t = 2ms); zero publish/delivery overhead plus the same
    // 10ms hop => the US delivery also fires at t = 12ms. Apply and
    // delivery tie, so their order is a pure scheduling choice.
    let notif = QueueStore::new(
        &sim,
        net.clone(),
        "notif",
        &[EU, US],
        QueueProfile {
            local_publish: Dist::constant_ms(0.0),
            delivery: Dist::constant_ms(0.0),
            local_delivery: Dist::constant_ms(0.0),
            rtt_hops: 1.0,
        },
    );
    notif.set_batching(false);

    // Trace shared by the probes (visibility transitions) and the
    // application tasks (writes, sends, recvs, checkpoints): one Vec, so
    // the order *is* execution order — what the race detector requires.
    let trace: Rc<RefCell<Vec<TraceEvent>>> = Rc::new(RefCell::new(Vec::new()));
    let log: Rc<RefCell<Vec<String>>> = Rc::new(RefCell::new(Vec::new()));
    install_probe(&posts, &notif, &trace, &log);

    let post_shim = KvShim::new(posts.clone());
    let notif_shim = QueueShim::new(notif.clone());
    let mut ap = Antipode::new(sim.clone()).with_policy(UnknownStorePolicy::Fail);
    ap.register(Rc::new(post_shim.clone()));
    ap.register(Rc::new(notif_shim.clone()));
    let checker = ConsistencyChecker::new(ap.clone());

    // Subscribe before spawning anything so no schedule can lose the
    // delivery to a not-yet-registered subscriber.
    let mut sub = notif_shim.subscribe(US).expect("US configured");

    let done: Rc<RefCell<u32>> = Rc::new(RefCell::new(0));

    // Writer (EU): write the post, then publish the notification carrying
    // the lineage.
    {
        let sim2 = sim.clone();
        let (post_shim, notif_shim) = (post_shim.clone(), notif_shim.clone());
        let (trace, log, done) = (trace.clone(), log.clone(), done.clone());
        sim.spawn_named("writer", async move {
            let mut lin = Lineage::new(LineageId(1));
            let wid = post_shim
                .write(EU, "post-1", Bytes::from_static(b"body"), &mut lin)
                .await
                .expect("EU configured");
            log.borrow_mut()
                .push(format!("{} writer: wrote posts/post-1", stamp(&sim2)));
            trace.borrow_mut().push(TraceEvent::Write {
                proc: "writer".into(),
                write: wid,
                at: sim2.now(),
            });
            let nid = notif_shim
                .publish(EU, Bytes::from_static(b"post-1"), &mut lin)
                .await
                .expect("EU configured");
            log.borrow_mut().push(format!(
                "{} writer: published notif msg-{}",
                stamp(&sim2),
                nid.version()
            ));
            trace.borrow_mut().push(TraceEvent::Write {
                proc: "writer".into(),
                write: nid.clone(),
                at: sim2.now(),
            });
            trace.borrow_mut().push(TraceEvent::Send {
                proc: "writer".into(),
                channel: "notif".into(),
                msg: nid.version(),
                at: sim2.now(),
            });
            *done.borrow_mut() += 1;
        });
    }

    // Reader (US): receive the notification, optionally barrier on its
    // lineage, checkpoint, read the post.
    {
        let sim2 = sim.clone();
        let post_shim = post_shim.clone();
        let (ap, checker) = (ap.clone(), checker.clone());
        let (trace, log, done) = (trace.clone(), log.clone(), done.clone());
        let with_barrier = spec.barrier;
        sim.spawn_named("reader", async move {
            let msg = sub
                .recv()
                .await
                .expect("queue open")
                .expect("valid envelope");
            log.borrow_mut().push(format!(
                "{} reader: received notif msg-{}",
                stamp(&sim2),
                msg.raw.id
            ));
            trace.borrow_mut().push(TraceEvent::Recv {
                proc: "reader".into(),
                channel: "notif".into(),
                msg: msg.raw.id,
                at: sim2.now(),
            });
            let lin = msg.lineage.clone().expect("publisher attached lineage");
            if with_barrier {
                ap.barrier(&lin, US).await.expect("barrier enforceable");
                log.borrow_mut()
                    .push(format!("{} reader: barrier satisfied", stamp(&sim2)));
            }
            checker.checkpoint("reader:recv", &lin, US);
            trace.borrow_mut().push(TraceEvent::Checkpoint {
                proc: "reader".into(),
                location: "reader:recv".into(),
                region: US,
                at: sim2.now(),
            });
            let got = post_shim.read(US, "post-1").await.expect("US configured");
            log.borrow_mut().push(format!(
                "{} reader: read posts/post-1 -> {}",
                stamp(&sim2),
                if got.is_some() { "found" } else { "MISSING" }
            ));
            *done.borrow_mut() += 1;
        });
    }

    sim.run();

    let completed = *done.borrow() == 2;
    let verdict = if completed {
        oracle::evaluate(&checker, &trace.borrow())
    } else {
        OracleVerdict::empty()
    };
    let trace_log = log.borrow().clone();
    CellOutcome {
        completed,
        verdict,
        choice_points: sim.choice_points(),
        trace: trace_log,
    }
}

fn stamp(sim: &Sim) -> String {
    format!("[{:>6}us]", sim.now().as_nanos() / 1_000)
}

/// Wires a visibility probe into both stores that appends to `trace` (for
/// the race detector) and `log` (for the human witness).
fn install_probe(
    posts: &KvStore,
    notif: &QueueStore,
    trace: &Rc<RefCell<Vec<TraceEvent>>>,
    log: &Rc<RefCell<Vec<String>>>,
) {
    let (trace, log) = (trace.clone(), log.clone());
    let probe: antipode_store::probe::VisibilityProbe = Rc::new(move |e: &VisibilityEvent| {
        let ev = match e {
            VisibilityEvent::KvApplied {
                store,
                region,
                key,
                watermark,
                at,
            } => {
                log.borrow_mut().push(format!(
                    "[{:>6}us] {}@{}: applied {} v{}",
                    at.as_nanos() / 1_000,
                    store,
                    region.name(),
                    key,
                    watermark
                ));
                TraceEvent::KvApplied {
                    store: store.clone(),
                    region: *region,
                    key: key.clone(),
                    watermark: *watermark,
                    at: *at,
                }
            }
            VisibilityEvent::QueueDelivered {
                store,
                region,
                id,
                at,
            } => {
                log.borrow_mut().push(format!(
                    "[{:>6}us] {}@{}: delivered msg-{}",
                    at.as_nanos() / 1_000,
                    store,
                    region.name(),
                    id
                ));
                TraceEvent::QueueDelivered {
                    store: store.clone(),
                    region: *region,
                    id: *id,
                    at: *at,
                }
            }
            VisibilityEvent::QueueAcked {
                store,
                region,
                id,
                at,
            } => TraceEvent::QueueAcked {
                store: store.clone(),
                region: *region,
                id: *id,
                at: *at,
            },
        };
        trace.borrow_mut().push(ev);
    });
    posts.set_probe(Some(probe.clone()));
    notif.set_probe(Some(probe));
}

//! Replayable counterexamples: a violating schedule, serialized.
//!
//! A counterexample is nothing but `(cell, seed, choice indices)` — the
//! complete recipe for steering the deterministic simulator back into the
//! violating interleaving with a [`ReplaySchedule`]. The wire form is a
//! single line, easy to paste into `antipode-mc --replay`:
//!
//! ```text
//! cell=barrier_removed;seed=1;choices=2,0,1
//! ```
//!
//! Minimization is **prefix trimming**: the shortest prefix of the recorded
//! choices that — with a FIFO tail — still reproduces the identical
//! violation signatures. Everything after the decisive wrong turn is
//! schedule noise the FIFO tail regenerates on its own.

use antipode_sim::ReplaySchedule;

use crate::cells::{cell, run_cell, CellOutcome};

/// A serialized, replayable violating schedule.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Counterexample {
    /// Cell the schedule violates.
    pub cell: String,
    /// Simulation seed of the violating run.
    pub seed: u64,
    /// Choice index per branching choice point (a [`ReplaySchedule`]
    /// prefix; the tail is FIFO).
    pub choices: Vec<usize>,
}

impl Counterexample {
    /// Creates a counterexample from a recorded schedule.
    pub fn new(cell: impl Into<String>, seed: u64, choices: Vec<usize>) -> Self {
        Counterexample {
            cell: cell.into(),
            seed,
            choices,
        }
    }

    /// One-line wire form: `cell=<name>;seed=<n>;choices=<i,j,k>`.
    pub fn serialize(&self) -> String {
        let choices: Vec<String> = self.choices.iter().map(usize::to_string).collect();
        format!(
            "cell={};seed={};choices={}",
            self.cell,
            self.seed,
            choices.join(",")
        )
    }

    /// Parses the wire form produced by [`Counterexample::serialize`].
    pub fn parse(s: &str) -> Result<Self, String> {
        let mut cell = None;
        let mut seed = None;
        let mut choices = None;
        for part in s.trim().split(';') {
            let (k, v) = part
                .split_once('=')
                .ok_or_else(|| format!("malformed field {part:?} (expected key=value)"))?;
            match k {
                "cell" => cell = Some(v.to_string()),
                "seed" => {
                    seed = Some(
                        v.parse::<u64>()
                            .map_err(|e| format!("bad seed {v:?}: {e}"))?,
                    )
                }
                "choices" => {
                    let parsed: Result<Vec<usize>, _> = if v.is_empty() {
                        Ok(Vec::new())
                    } else {
                        v.split(',').map(str::parse).collect()
                    };
                    choices = Some(parsed.map_err(|e| format!("bad choices {v:?}: {e}"))?);
                }
                other => return Err(format!("unknown field {other:?}")),
            }
        }
        Ok(Counterexample {
            cell: cell.ok_or("missing cell=")?,
            seed: seed.ok_or("missing seed=")?,
            choices: choices.ok_or("missing choices=")?,
        })
    }

    /// Re-executes the counterexample's schedule and returns the outcome.
    /// Deterministic: two replays produce identical outcomes.
    pub fn replay(&self) -> Result<CellOutcome, String> {
        let spec = cell(&self.cell).ok_or_else(|| format!("unknown cell {:?}", self.cell))?;
        Ok(run_cell(
            &spec,
            self.seed,
            Box::new(ReplaySchedule::new(self.choices.clone())),
        ))
    }

    /// Shrinks by prefix trimming: the shortest choice prefix whose
    /// FIFO-tail replay reproduces exactly the violation signatures of the
    /// full schedule. Returns `self` unchanged (and the full outcome) if
    /// the full replay does not violate.
    pub fn shrink(&self) -> Result<(Counterexample, CellOutcome), String> {
        let full = self.replay()?;
        if !full.violated() {
            return Ok((self.clone(), full));
        }
        for k in 0..self.choices.len() {
            let candidate =
                Counterexample::new(self.cell.clone(), self.seed, self.choices[..k].to_vec());
            let out = candidate.replay()?;
            if out.completed && out.verdict.violations == full.verdict.violations {
                return Ok((candidate, out));
            }
        }
        Ok((self.clone(), full))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wire_form_round_trips() {
        let cx = Counterexample::new("barrier_removed", 7, vec![2, 0, 1]);
        let s = cx.serialize();
        assert_eq!(s, "cell=barrier_removed;seed=7;choices=2,0,1");
        assert_eq!(Counterexample::parse(&s).unwrap(), cx);
        // Empty choice list (violation on the pure-FIFO schedule).
        let cx = Counterexample::new("barrier_removed", 7, vec![]);
        assert_eq!(Counterexample::parse(&cx.serialize()).unwrap(), cx);
    }

    #[test]
    fn parse_rejects_garbage() {
        assert!(Counterexample::parse("cell=x;seed=nope;choices=1").is_err());
        assert!(Counterexample::parse("seed=1;choices=1").is_err());
        assert!(Counterexample::parse("cell=x;seed=1;choices=1;bogus=2").is_err());
    }
}

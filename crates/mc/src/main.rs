//! `antipode-mc` CLI: explore a cell's schedule space or replay a
//! counterexample.
//!
//! ```text
//! antipode-mc --cell barrier_basic                 # exhaust; exit 2 on violation
//! antipode-mc --cell barrier_removed --expect-violation
//! antipode-mc --replay 'cell=barrier_removed;seed=1;choices=2'
//! antipode-mc --list
//! ```

use std::process::ExitCode;

use antipode_mc::{cell, Counterexample, Explorer, Pruning, ALL_CELLS};

struct Args {
    cell: Option<String>,
    replay: Option<String>,
    seed: u64,
    bound: Option<u32>,
    budget: Option<u64>,
    raw: bool,
    expect_violation: bool,
    stop_on_violation: bool,
    list: bool,
}

const USAGE: &str = "usage: antipode-mc --cell <name> [options]
       antipode-mc --replay '<counterexample>'
       antipode-mc --list

options:
  --cell <name>        cell to explore (see --list)
  --seed <n>           simulation seed for every run (default 1)
  --bound <n>          preemption bound (default: unbounded)
  --budget <n>         hard cap on executions started (default: unbounded)
  --raw                disable sleep-set reduction (measurement mode)
  --expect-violation   invert the exit code: fail unless a violation is found
  --stop-on-violation  stop at the first witness instead of mapping the space
  --replay <cx>        replay a serialized counterexample and print its trace
  --list               list registered cells";

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        cell: None,
        replay: None,
        seed: 1,
        bound: None,
        budget: None,
        raw: false,
        expect_violation: false,
        stop_on_violation: false,
        list: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        let mut value = |name: &str| it.next().ok_or_else(|| format!("{name} requires a value"));
        match a.as_str() {
            "--cell" => args.cell = Some(value("--cell")?),
            "--replay" => args.replay = Some(value("--replay")?),
            "--seed" => {
                args.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--bound" => {
                args.bound = Some(
                    value("--bound")?
                        .parse()
                        .map_err(|e| format!("--bound: {e}"))?,
                )
            }
            "--budget" => {
                args.budget = Some(
                    value("--budget")?
                        .parse()
                        .map_err(|e| format!("--budget: {e}"))?,
                )
            }
            "--raw" => args.raw = true,
            "--expect-violation" => args.expect_violation = true,
            "--stop-on-violation" => args.stop_on_violation = true,
            "--list" => args.list = true,
            "--help" | "-h" => {
                println!("{USAGE}");
                std::process::exit(0);
            }
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("error: {e}\n\n{USAGE}");
            return ExitCode::from(64);
        }
    };

    if args.list {
        for c in ALL_CELLS {
            println!("{:<16} {}", c.name, c.description);
        }
        return ExitCode::SUCCESS;
    }

    if let Some(cx) = &args.replay {
        return replay(cx);
    }

    let Some(name) = &args.cell else {
        eprintln!("error: one of --cell, --replay or --list is required\n\n{USAGE}");
        return ExitCode::from(64);
    };
    let Some(spec) = cell(name) else {
        eprintln!("error: unknown cell {name:?} (try --list)");
        return ExitCode::from(64);
    };

    let explorer = Explorer::new()
        .pruning(if args.raw {
            Pruning::Raw
        } else {
            Pruning::SleepSets
        })
        .preemption_bound(args.bound)
        .budget(args.budget)
        .stop_on_violation(args.stop_on_violation);
    let report = explorer.explore(&spec, args.seed);

    println!(
        "cell {}: {} schedules explored ({} sleep-set pruned, {} bound pruned, max depth {})",
        report.cell, report.schedules, report.sleep_pruned, report.bound_pruned, report.max_depth
    );
    if report.budget_exhausted {
        println!("budget exhausted — exploration is INCOMPLETE");
    }
    for d in &report.divergences {
        eprintln!("harness divergence: {d}");
    }
    if !report.divergences.is_empty() {
        return ExitCode::from(3);
    }

    if report.violations.is_empty() {
        let verdict = if report.budget_exhausted || report.stopped_early {
            "no violation found (incomplete)"
        } else {
            "schedule space exhausted: no XCY violation"
        };
        println!("{verdict}");
        return if args.expect_violation {
            eprintln!("error: --expect-violation, but the cell verified clean");
            ExitCode::from(2)
        } else {
            ExitCode::SUCCESS
        };
    }

    println!("XCY violations found:");
    for v in &report.violations {
        println!("  {v}");
    }
    if let Some(cx) = &report.counterexample {
        match cx.shrink() {
            Ok((minimal, outcome)) => {
                println!("counterexample (minimal): {}", minimal.serialize());
                println!("witness trace:");
                for line in &outcome.trace {
                    println!("  {line}");
                }
            }
            Err(e) => eprintln!("shrink failed: {e}"),
        }
    }
    if args.expect_violation {
        ExitCode::SUCCESS
    } else {
        ExitCode::from(2)
    }
}

fn replay(serialized: &str) -> ExitCode {
    let cx = match Counterexample::parse(serialized) {
        Ok(cx) => cx,
        Err(e) => {
            eprintln!("error: {e}");
            return ExitCode::from(64);
        }
    };
    match cx.replay() {
        Ok(outcome) => {
            for line in &outcome.trace {
                println!("{line}");
            }
            if outcome.violated() {
                println!("replay reproduced the violation:");
                for v in &outcome.verdict.violations {
                    println!("  {v}");
                }
                ExitCode::SUCCESS
            } else {
                eprintln!("replay did NOT violate");
                ExitCode::from(2)
            }
        }
        Err(e) => {
            eprintln!("error: {e}");
            ExitCode::from(64)
        }
    }
}

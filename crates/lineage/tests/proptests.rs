//! Property-based tests for the lineage crate: codec round-trips and
//! formal-model invariants.

use antipode_lineage::model::{Causality, Execution, Op, ProcId};
use antipode_lineage::varint::{get_str, get_varint, put_str, put_varint};
use antipode_lineage::{base64, Baggage, Lineage, LineageId, WriteId};
use proptest::prelude::*;

fn arb_write_id() -> impl Strategy<Value = WriteId> {
    ("[a-z][a-z0-9-]{0,20}", "[a-zA-Z0-9/_-]{0,24}", any::<u64>())
        .prop_map(|(s, k, v)| WriteId::new(s, k, v))
}

fn arb_lineage() -> impl Strategy<Value = Lineage> {
    (
        any::<u64>(),
        proptest::collection::vec(arb_write_id(), 0..40),
    )
        .prop_map(|(id, deps)| {
            let mut l = Lineage::new(LineageId(id));
            for d in deps {
                l.append(d);
            }
            l
        })
}

proptest! {
    #[test]
    fn varint_round_trips(v in any::<u64>()) {
        let mut buf = Vec::new();
        put_varint(&mut buf, v);
        let mut slice = buf.as_slice();
        prop_assert_eq!(get_varint(&mut slice), Ok(v));
        prop_assert!(slice.is_empty());
    }

    #[test]
    fn string_round_trips(s in "\\PC{0,64}") {
        let mut buf = Vec::new();
        put_str(&mut buf, &s);
        let mut slice = buf.as_slice();
        prop_assert_eq!(get_str(&mut slice).unwrap(), s);
    }

    #[test]
    fn base64_round_trips(data in proptest::collection::vec(any::<u8>(), 0..256)) {
        let enc = base64::encode(&data);
        prop_assert_eq!(base64::decode(&enc).unwrap(), data);
    }

    #[test]
    fn base64_decoding_never_panics(s in "\\PC{0,64}") {
        let _ = base64::decode(&s);
    }

    #[test]
    fn lineage_serialization_round_trips(l in arb_lineage()) {
        let bytes = l.serialize();
        let back = Lineage::deserialize(&bytes).unwrap();
        prop_assert_eq!(back, l);
    }

    #[test]
    fn lineage_deserialize_never_panics(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        let _ = Lineage::deserialize(&bytes);
    }

    #[test]
    fn truncated_payloads_are_rejected_not_panicked(
        l in arb_lineage(),
        cut in any::<proptest::sample::Index>(),
    ) {
        // Every strict prefix of a valid encoding must decode to an error:
        // declared counts pin the payload length, so a network-truncated
        // lineage can never silently drop dependencies.
        let bytes = l.serialize();
        let cut = cut.index(bytes.len().max(1));
        if cut < bytes.len() {
            prop_assert!(Lineage::deserialize(&bytes[..cut]).is_err());
        }
    }

    #[test]
    fn corrupted_payloads_never_panic(
        l in arb_lineage(),
        pos in any::<proptest::sample::Index>(),
        xor in 1u8..=255,
    ) {
        // A single flipped byte may still decode (e.g. a changed version
        // number), but must never panic, and whatever decodes must
        // re-serialize cleanly.
        let mut bytes = l.serialize();
        let pos = pos.index(bytes.len());
        bytes[pos] ^= xor;
        if let Ok(decoded) = Lineage::deserialize(&bytes) {
            let _ = decoded.serialize();
        }
    }

    #[test]
    fn hostile_counts_are_rejected(count in 64u64.., tail in proptest::collection::vec(any::<u8>(), 0..8)) {
        // A tiny payload declaring a huge name- or dep-count must fail the
        // length guard (each entry costs bytes the input doesn't have),
        // never trigger a large allocation or a panic.
        for inject_deps in [false, true] {
            let mut buf = vec![1u8]; // version
            put_varint(&mut buf, 7); // id
            if inject_deps {
                put_varint(&mut buf, 1); // 1 name
                put_str(&mut buf, "s");
            }
            put_varint(&mut buf, count); // hostile count
            buf.extend_from_slice(&tail);
            prop_assert!(Lineage::deserialize(&buf).is_err());
        }
    }

    #[test]
    fn base64_decode_is_strict_inverse_of_encode(s in "[A-Za-z0-9+/=]{0,64}") {
        // Strictness: anything the decoder accepts is exactly what the
        // encoder produces for those bytes — decode is a bijection onto
        // encode's range, the property cache adoption relies on.
        if let Ok(data) = base64::decode(&s) {
            prop_assert_eq!(base64::encode(&data), s);
        }
    }

    #[test]
    fn lineage_wire_size_is_linear_in_deps(l in arb_lineage()) {
        // Sanity bound used by the metadata experiments: each dependency
        // costs at most (key + store name + version + framing) bytes.
        let size = l.wire_size();
        prop_assert!(size <= 16 + l.len() * 64);
    }

    #[test]
    fn transfer_is_a_superset_union(a in arb_lineage(), b in arb_lineage()) {
        let mut merged = a.clone();
        merged.transfer_from(&b);
        for d in a.deps() {
            prop_assert!(merged.contains(d));
        }
        for d in b.deps() {
            prop_assert!(merged.contains(d));
        }
        prop_assert_eq!(merged.id(), a.id());
        // Idempotent.
        let mut twice = merged.clone();
        twice.transfer_from(&b);
        prop_assert_eq!(twice, merged);
    }

    #[test]
    fn baggage_header_round_trips(
        entries in proptest::collection::btree_map("[a-z%=,]{1,12}", "[a-zA-Z0-9%=,+/]{0,24}", 0..6),
        l in arb_lineage(),
    ) {
        let mut b = Baggage::new();
        for (k, v) in &entries {
            b.set(k.clone(), v.clone());
        }
        b.set_lineage(&l);
        let back = Baggage::from_header(&b.to_header());
        prop_assert_eq!(back.lineage().unwrap(), l);
        for (k, v) in &entries {
            prop_assert_eq!(back.get(k), Some(v.as_str()));
        }
    }
}

// ---------------------------------------------------------------------------
// Formal-model properties over small random executions.
// ---------------------------------------------------------------------------

#[derive(Clone, Debug)]
enum OpSpec {
    Write {
        proc: u8,
        lineage: u8,
        key: u8,
    },
    Read {
        proc: u8,
        lineage: u8,
        key: u8,
        version_back: u8,
    },
    Msg {
        from: u8,
        to: u8,
        lineage: u8,
    },
}

fn arb_ops() -> impl Strategy<Value = Vec<OpSpec>> {
    proptest::collection::vec(
        prop_oneof![
            (0u8..4, 0u8..4, 0u8..3).prop_map(|(proc, lineage, key)| OpSpec::Write {
                proc,
                lineage,
                key
            }),
            (0u8..4, 0u8..4, 0u8..3, 0u8..3).prop_map(|(proc, lineage, key, version_back)| {
                OpSpec::Read {
                    proc,
                    lineage,
                    key,
                    version_back,
                }
            }),
            (0u8..4, 0u8..4, 0u8..4).prop_map(|(from, to, lineage)| OpSpec::Msg {
                from,
                to,
                lineage
            }),
        ],
        0..14,
    )
}

/// Builds an execution where reads return a previously-written version of
/// their key (or not-found).
fn build_execution(specs: &[OpSpec]) -> Execution {
    let mut e = Execution::new();
    let mut versions: Vec<Vec<WriteId>> = vec![Vec::new(); 3];
    let mut msg_id = 0u64;
    for spec in specs {
        match spec {
            OpSpec::Write { proc, lineage, key } => {
                let v = versions[*key as usize].len() as u64 + 1;
                let w = WriteId::new("store", format!("k{key}"), v);
                versions[*key as usize].push(w.clone());
                e.write(ProcId(u32::from(*proc)), LineageId(u64::from(*lineage)), w);
            }
            OpSpec::Read {
                proc,
                lineage,
                key,
                version_back,
            } => {
                let written = &versions[*key as usize];
                let returned = if written.is_empty() {
                    None
                } else {
                    let idx = written.len().saturating_sub(1 + *version_back as usize);
                    written.get(idx).cloned()
                };
                e.read(
                    ProcId(u32::from(*proc)),
                    LineageId(u64::from(*lineage)),
                    "store",
                    format!("k{key}"),
                    returned,
                );
            }
            OpSpec::Msg { from, to, lineage } => {
                msg_id += 1;
                e.send(
                    ProcId(u32::from(*from)),
                    LineageId(u64::from(*lineage)),
                    msg_id,
                );
                e.recv(
                    ProcId(u32::from(*to)),
                    LineageId(u64::from(*lineage)),
                    msg_id,
                );
            }
        }
    }
    e
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn lamport_dependencies_are_a_subset_of_xcy(specs in arb_ops()) {
        let e = build_execution(&specs);
        let n = e.ops().len();
        for a in 0..n {
            for b in 0..n {
                if e.depends(a, b, Causality::Lamport) {
                    prop_assert!(
                        e.depends(a, b, Causality::Xcy),
                        "Lamport {a}↝{b} must imply XCY"
                    );
                }
            }
        }
    }

    #[test]
    fn lamport_violations_are_a_subset_of_xcy_violations(specs in arb_ops()) {
        // XCY is stronger: anything inconsistent under Lamport is
        // inconsistent under XCY.
        let e = build_execution(&specs);
        if !e.is_consistent(Causality::Lamport) {
            prop_assert!(!e.is_consistent(Causality::Xcy));
        }
    }

    #[test]
    fn reads_of_latest_version_in_program_order_are_consistent(
        writes in proptest::collection::vec(0u8..3, 0..8)
    ) {
        // A single process writing keys and immediately reading back the
        // latest version is consistent under both definitions.
        let mut e = Execution::new();
        let mut latest: [Option<WriteId>; 3] = [None, None, None];
        for (i, key) in writes.iter().enumerate() {
            let w = WriteId::new("store", format!("k{key}"), i as u64 + 1);
            latest[*key as usize] = Some(w.clone());
            e.write(ProcId(0), LineageId(1), w);
            e.read(ProcId(0), LineageId(1), "store", format!("k{key}"), latest[*key as usize].clone());
        }
        prop_assert!(e.is_consistent(Causality::Lamport));
        prop_assert!(e.is_consistent(Causality::Xcy));
    }

    #[test]
    fn checker_never_panics(specs in arb_ops()) {
        let e = build_execution(&specs);
        let _ = e.check(Causality::Lamport);
        let _ = e.check(Causality::Xcy);
    }

    #[test]
    fn ops_accessors_consistent(specs in arb_ops()) {
        let e = build_execution(&specs);
        for op in e.ops() {
            match op {
                Op::Write { proc, .. } | Op::Read { proc, .. }
                | Op::Send { proc, .. } | Op::Recv { proc, .. } => {
                    prop_assert_eq!(op.proc(), *proc);
                }
            }
        }
    }
}

//! Compat suite for the flat v2 wire frame.
//!
//! The v2 frame is `[0x02][varint len][body][crc]` where the body is
//! byte-identical to the v1 body (everything after v1's version byte), the
//! declared length covers body + trailer, and the trailer is the
//! little-endian CRC32C of the body. This suite pins the mixed-version
//! contract a rolling deployment depends on:
//!
//! - the v1 golden bytes still decode through the version-dispatching
//!   [`Lineage::deserialize`] (a v2-speaking reader accepts v1 writers);
//! - pre-CRC v2 frames (`[0x02][varint body-len][body]`, no trailer) still
//!   decode: the declared length delimiting exactly the body identifies them;
//! - v2 frames round-trip against an independent, spec-derived reference
//!   codec that shares no code with the production implementation —
//!   including an independent bit-at-a-time CRC32C;
//! - garbage, truncation, and in-body corruption never panic and never
//!   silently reproduce the original lineage; sealed-frame body corruption
//!   that still parses is caught by the trailer;
//! - canonical inputs are adopted as caches in both directions, so a
//!   decode→forward hop re-emits the incoming bytes without re-encoding.

use antipode_lineage::{stats, CodecError, Lineage, LineageId, WriteId};
use proptest::prelude::*;

// ---------------------------------------------------------------------------
// Golden fixtures: the v1 constants from `golden_v1.rs`, plus the v2 frames
// derived from them per the spec (shared body, new prefix).
// ---------------------------------------------------------------------------

/// DeathStarBench-shaped lineage: 4 deps across 4 stores (v1 bytes).
const V1_FIXTURE1: &[u8] = &[
    1, 188, 181, 226, 179, 197, 198, 4, 4, 13, 109, 101, 100, 105, 97, 45, 109, 111, 110, 103, 111,
    100, 98, 20, 112, 111, 115, 116, 45, 115, 116, 111, 114, 97, 103, 101, 45, 109, 111, 110, 103,
    111, 100, 98, 21, 117, 115, 101, 114, 45, 116, 105, 109, 101, 108, 105, 110, 101, 45, 109, 111,
    110, 103, 111, 100, 98, 28, 119, 114, 105, 116, 101, 45, 104, 111, 109, 101, 45, 116, 105, 109,
    101, 108, 105, 110, 101, 45, 114, 97, 98, 98, 105, 116, 109, 113, 4, 0, 10, 109, 101, 100, 105,
    97, 45, 52, 52, 49, 49, 2, 1, 24, 112, 111, 115, 116, 45, 54, 57, 49, 55, 53, 50, 57, 48, 50,
    55, 54, 52, 49, 48, 56, 49, 56, 53, 54, 3, 2, 9, 117, 115, 101, 114, 45, 49, 55, 50, 57, 12, 3,
    23, 109, 115, 103, 45, 54, 57, 49, 55, 53, 50, 57, 48, 50, 55, 54, 52, 49, 48, 56, 49, 56, 53,
    55, 1,
];

/// Empty lineage, small id (v1 bytes).
const V1_FIXTURE2: &[u8] = &[1, 5, 0, 0];

fn fixture1_lineage() -> Lineage {
    let mut l = Lineage::new(LineageId(0x1234_5678_9abc));
    l.append(WriteId::new(
        "post-storage-mongodb",
        "post-6917529027641081856",
        3,
    ));
    l.append(WriteId::new(
        "write-home-timeline-rabbitmq",
        "msg-6917529027641081857",
        1,
    ));
    l.append(WriteId::new("user-timeline-mongodb", "user-1729", 12));
    l.append(WriteId::new("media-mongodb", "media-4411", 2));
    l
}

/// Builds the expected v2 frame for a v1 byte string, straight from the
/// spec: version byte 2, minimal-varint declared length (body + 4-byte
/// trailer), the shared body, then the little-endian CRC32C of the body.
fn v2_frame_of(v1: &[u8]) -> Vec<u8> {
    let body = &v1[1..];
    let mut out = vec![2u8];
    reference::put_varint(&mut out, (body.len() + 4) as u64);
    out.extend_from_slice(body);
    out.extend_from_slice(&reference::crc32c(body).to_le_bytes());
    out
}

/// Builds the pre-CRC form of the frame (an early v2 writer): declared
/// length delimits exactly the body, no trailer.
fn v2_legacy_frame_of(v1: &[u8]) -> Vec<u8> {
    let body = &v1[1..];
    let mut out = vec![2u8];
    reference::put_varint(&mut out, body.len() as u64);
    out.extend_from_slice(body);
    out
}

#[test]
fn golden_v1_bytes_decode_through_the_dispatcher() {
    // A v2-speaking reader must accept a v1 writer unchanged: same entry
    // point, version byte selects the codec.
    let decoded = Lineage::deserialize(V1_FIXTURE1).expect("v1 golden bytes decode");
    assert_eq!(decoded, fixture1_lineage());
    let empty = Lineage::deserialize(V1_FIXTURE2).expect("v1 golden bytes decode");
    assert_eq!(empty, Lineage::new(LineageId(5)));
}

#[test]
fn golden_v2_frames_match_the_spec_derivation() {
    for (v1, expect) in [
        (V1_FIXTURE1, fixture1_lineage()),
        (V1_FIXTURE2, Lineage::new(LineageId(5))),
    ] {
        let frame = v2_frame_of(v1);
        assert_eq!(
            expect.frame_bytes().as_ref(),
            frame.as_slice(),
            "production frame must be the spec derivation of the v1 bytes"
        );
        let (back, consumed) = Lineage::decode_frame(&frame).expect("spec frame decodes");
        assert_eq!(consumed, frame.len());
        assert_eq!(back, expect);
    }
}

#[test]
fn v1_writer_to_v2_reader_adopts_canonical_input() {
    // Canonical v1 bytes are adopted as the wire cache: a pass-through hop
    // re-serializes the exact input without an encode, and the v2 frame it
    // then renders shares the body byte-for-byte.
    let decoded = Lineage::deserialize(V1_FIXTURE1).unwrap();
    let before = stats::snapshot().wire_encodes;
    assert_eq!(
        decoded.serialize(),
        V1_FIXTURE1,
        "decode→forward is identity"
    );
    assert_eq!(
        stats::snapshot().wire_encodes,
        before,
        "canonical v1 adoption must make re-serialization encode-free"
    );
    let frame = decoded.frame_bytes();
    let crc_at = frame.len() - 4;
    assert_eq!(
        &frame[crc_at - (V1_FIXTURE1.len() - 1)..crc_at],
        &V1_FIXTURE1[1..]
    );
}

#[test]
fn legacy_v2_frames_without_crc_still_decode() {
    // Pre-CRC v2 writers emitted no trailer; a CRC-aware reader must accept
    // them (the declared length delimiting exactly the body is the tell) and
    // seal them on re-encode.
    for (v1, expect) in [
        (V1_FIXTURE1, fixture1_lineage()),
        (V1_FIXTURE2, Lineage::new(LineageId(5))),
    ] {
        let legacy = v2_legacy_frame_of(v1);
        let (back, consumed) = Lineage::decode_frame(&legacy).expect("legacy frame decodes");
        assert_eq!(consumed, legacy.len());
        assert_eq!(back, expect);
        assert_eq!(
            back.frame_bytes().as_ref(),
            v2_frame_of(v1).as_slice(),
            "re-encoding a legacy frame seals it with the trailer"
        );
    }
}

#[test]
fn v2_reader_adopts_canonical_frames() {
    let l = fixture1_lineage();
    let frame = l.frame_bytes().to_vec();
    let (back, _) = Lineage::decode_frame(&frame).unwrap();
    let before = stats::snapshot().frame_encodes;
    assert_eq!(back.frame_bytes().as_ref(), frame.as_slice());
    assert_eq!(
        stats::snapshot().frame_encodes,
        before,
        "decode→forward of a canonical v2 frame must be encode-free"
    );
}

// ---------------------------------------------------------------------------
// Independent reference codec (spec-derived, shares nothing with production).
// ---------------------------------------------------------------------------

mod reference {
    /// Bit-at-a-time CRC32C straight from the reflected Castagnoli
    /// polynomial — deliberately naive, sharing nothing with the production
    /// slicing-by-8 tables.
    pub fn crc32c(bytes: &[u8]) -> u32 {
        let mut crc = !0u32;
        for &b in bytes {
            crc ^= b as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ 0x82F6_3B78
                } else {
                    crc >> 1
                };
            }
        }
        !crc
    }

    /// LEB128 unsigned varint.
    pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                buf.push(byte);
                return;
            }
            buf.push(byte | 0x80);
        }
    }

    pub fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
        let mut out: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = *buf.get(*pos)?;
            *pos += 1;
            out |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Some(out);
            }
        }
        None
    }

    fn put_str(buf: &mut Vec<u8>, s: &str) {
        put_varint(buf, s.len() as u64);
        buf.extend_from_slice(s.as_bytes());
    }

    fn get_str(buf: &[u8], pos: &mut usize) -> Option<String> {
        let len = get_varint(buf, pos)? as usize;
        let bytes = buf.get(*pos..*pos + len)?;
        *pos += len;
        String::from_utf8(bytes.to_vec()).ok()
    }

    /// Encodes the shared body: id varint, sorted-name string table, then
    /// (table-index, key, version) per dep. `deps` must be in canonical
    /// (datastore, key, version) order, deduplicated.
    fn encode_body(buf: &mut Vec<u8>, id: u64, deps: &[(String, String, u64)]) {
        put_varint(buf, id);
        let mut names: Vec<&str> = Vec::new();
        for (store, _, _) in deps {
            if names.last() != Some(&store.as_str()) {
                names.push(store);
            }
        }
        put_varint(buf, names.len() as u64);
        for name in &names {
            put_str(buf, name);
        }
        put_varint(buf, deps.len() as u64);
        let mut idx = 0u64;
        for (i, (store, key, version)) in deps.iter().enumerate() {
            if i > 0 && deps[i - 1].0 != *store {
                idx += 1;
            }
            put_varint(buf, idx);
            put_str(buf, key);
            put_varint(buf, *version);
        }
    }

    #[allow(clippy::type_complexity)]
    fn decode_body(bytes: &[u8], pos: &mut usize) -> Option<(u64, Vec<(String, String, u64)>)> {
        let id = get_varint(bytes, pos)?;
        let n_names = get_varint(bytes, pos)? as usize;
        let mut names = Vec::new();
        for _ in 0..n_names {
            names.push(get_str(bytes, pos)?);
        }
        let n_deps = get_varint(bytes, pos)? as usize;
        let mut deps = Vec::new();
        for _ in 0..n_deps {
            let idx = get_varint(bytes, pos)? as usize;
            let key = get_str(bytes, pos)?;
            let version = get_varint(bytes, pos)?;
            deps.push((names.get(idx)?.clone(), key, version));
        }
        Some((id, deps))
    }

    /// Encodes a v2 frame per the spec: version byte 2, minimal-varint
    /// declared length (body + 4), shared body, little-endian CRC32C of the
    /// body.
    pub fn encode_frame(id: u64, deps: &[(String, String, u64)]) -> Vec<u8> {
        let mut body = Vec::new();
        encode_body(&mut body, id, deps);
        let mut out = vec![2u8];
        put_varint(&mut out, (body.len() + 4) as u64);
        out.extend_from_slice(&body);
        out.extend_from_slice(&crc32c(&body).to_le_bytes());
        out
    }

    /// Decodes a v2 frame per the spec, returning the lineage triples and
    /// bytes consumed. Strict about framing: after the body, the declared
    /// window must hold either nothing (a legacy pre-CRC frame) or exactly a
    /// matching 4-byte CRC32C trailer.
    #[allow(clippy::type_complexity)]
    pub fn decode_frame(bytes: &[u8]) -> Option<(u64, Vec<(String, String, u64)>, usize)> {
        let mut pos = 0usize;
        if *bytes.first()? != 2 {
            return None;
        }
        pos += 1;
        let declared = get_varint(bytes, &mut pos)? as usize;
        let window_end = pos.checked_add(declared)?;
        if window_end > bytes.len() {
            return None;
        }
        let body_start = pos;
        let (id, deps) = decode_body(&bytes[..window_end], &mut pos)?;
        match window_end - pos {
            0 => {}
            4 => {
                let expect = u32::from_le_bytes(bytes[pos..window_end].try_into().ok()?);
                if crc32c(&bytes[body_start..pos]) != expect {
                    return None;
                }
            }
            _ => return None,
        }
        Some((id, deps, window_end))
    }
}

/// Canonical (store, key, version) triples of a lineage.
fn triples(l: &Lineage) -> Vec<(String, String, u64)> {
    l.deps()
        .map(|d| (d.datastore().to_string(), d.key().to_string(), d.version()))
        .collect()
}

#[test]
fn reference_codec_agrees_on_generated_lineages() {
    // Deterministic pseudo-random lineages, both directions of a
    // mid-upgrade deployment: production frames must decode under the
    // reference decoder, reference frames under the production decoder, and
    // the two encoders must agree byte for byte (both emit canonical form).
    let mut state = 0x51f0u64;
    let mut mix = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for case in 0..50u64 {
        let mut l = Lineage::new(LineageId(mix()));
        for _ in 0..(mix() % 24) {
            let r = mix();
            l.append(WriteId::new(
                format!("store-{}", r % 5),
                format!("key-{}", r >> 40),
                (r & 0xff) + 1,
            ));
        }
        let frame = l.frame_bytes();

        // Production → reference.
        let (id, deps, consumed) = reference::decode_frame(&frame)
            .unwrap_or_else(|| panic!("case {case}: reference rejects production frame"));
        assert_eq!(consumed, frame.len(), "case {case}");
        assert_eq!(id, l.id().0, "case {case}");
        assert_eq!(deps, triples(&l), "case {case}");

        // Reference → production (byte-identical too).
        let ref_frame = reference::encode_frame(id, &deps);
        assert_eq!(
            ref_frame.as_slice(),
            frame.as_ref(),
            "case {case}: encoders must agree"
        );
        let (back, n) = Lineage::decode_frame(&ref_frame)
            .unwrap_or_else(|e| panic!("case {case}: production rejects reference frame: {e}"));
        assert_eq!(n, ref_frame.len(), "case {case}");
        assert_eq!(back, l, "case {case}");
    }
}

#[test]
fn frames_are_self_delimiting_with_trailing_data() {
    let l = fixture1_lineage();
    let mut buf = l.frame_bytes().to_vec();
    let frame_len = buf.len();
    buf.extend_from_slice(b"trailing payload the caller owns");
    let (back, consumed) = Lineage::decode_frame(&buf).expect("trailing bytes are not an error");
    assert_eq!(consumed, frame_len);
    assert_eq!(back, l);
    // The reference decoder agrees on the boundary.
    let (_, _, ref_consumed) = reference::decode_frame(&buf).unwrap();
    assert_eq!(ref_consumed, frame_len);
}

// ---------------------------------------------------------------------------
// Hostile-input proptests.
// ---------------------------------------------------------------------------

proptest! {
    /// Arbitrary bytes never panic; they either decode or error cleanly —
    /// and whatever one decoder accepts, lineage equality aside, must not
    /// crash the other.
    #[test]
    fn arbitrary_bytes_never_panic(bytes in proptest::collection::vec(any::<u8>(), 0..256)) {
        let _ = Lineage::decode_frame(&bytes);
        let _ = Lineage::deserialize(&bytes);
        let _ = reference::decode_frame(&bytes);
    }

    /// Every strict prefix of a valid frame is rejected: the length prefix
    /// makes truncation detectable at any cut point.
    #[test]
    fn truncated_frames_never_decode(n_deps in 0usize..12, cut_fraction in 0.0f64..1.0) {
        let mut l = Lineage::new(LineageId(77));
        for i in 0..n_deps {
            l.append(WriteId::new(format!("s-{}", i % 3), format!("k-{i}"), i as u64 + 1));
        }
        let frame = l.frame_bytes();
        let cut = ((frame.len() - 1) as f64 * cut_fraction) as usize;
        prop_assert!(
            Lineage::decode_frame(&frame[..cut]).is_err(),
            "truncation to {cut}/{} bytes must not decode", frame.len()
        );
    }

    /// Corrupting the body-length varint (without touching the version byte)
    /// either errors or consumes a different boundary — it never silently
    /// yields the original lineage with the original length.
    #[test]
    fn corrupt_length_prefix_is_caught(delta in 1u8..255) {
        let l = fixture1_lineage();
        let mut frame = l.frame_bytes().to_vec();
        frame[1] = frame[1].wrapping_add(delta);
        match Lineage::decode_frame(&frame) {
            Err(_) => {}
            Ok((_, consumed)) => prop_assert_ne!(consumed, frame.len()),
        }
    }

    /// Flipping any single bit of a sealed frame — body or trailer — never
    /// silently reproduces the original lineage: the decode errors (usually
    /// `ChecksumMismatch`) or visibly yields something else.
    #[test]
    fn sealed_frame_bit_flips_never_reproduce_the_lineage(
        pos_fraction in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let l = fixture1_lineage();
        let frame = l.frame_bytes().to_vec();
        // Skip the version byte and length varint: those are covered above;
        // here we corrupt the CRC-protected region (body + trailer).
        let payload_start = 3; // [0x02] + 2-byte length varint for this fixture
        let pos = payload_start
            + ((frame.len() - payload_start - 1) as f64 * pos_fraction) as usize;
        let mut bad = frame.clone();
        bad[pos] ^= 1 << bit;
        match Lineage::decode_frame(&bad) {
            Err(_) => {}
            Ok((back, _)) => prop_assert_ne!(back, l),
        }
    }

    /// Flipping any single bit of the trailer itself always errors: the body
    /// still parses to 4 bytes short of the window, so the frame cannot be
    /// misread as a legacy (no-CRC) one.
    #[test]
    fn trailer_bit_flips_always_error(offset in 0usize..4, bit in 0u8..8) {
        let l = fixture1_lineage();
        let mut frame = l.frame_bytes().to_vec();
        let pos = frame.len() - 4 + offset;
        frame[pos] ^= 1 << bit;
        prop_assert_eq!(
            Lineage::decode_frame(&frame),
            Err(CodecError::ChecksumMismatch)
        );
    }
}

/// The violation the trailer exists to prevent, pinned deterministically: a
/// one-bit flip in a dependency's version varint leaves the body perfectly
/// parseable, so the pre-CRC format decodes it *silently* into a different
/// lineage (a barrier would then wait on the wrong version). The sealed
/// frame turns the same corruption into `ChecksumMismatch`.
#[test]
fn crc_catches_corruption_the_legacy_format_silently_accepts() {
    let l = fixture1_lineage();

    // Legacy pre-CRC frame: flip the final body byte (version varint of the
    // last dep, 1 → 0). Structurally valid → silent wrong decode.
    let mut legacy = v2_legacy_frame_of(V1_FIXTURE1);
    let last = legacy.len() - 1;
    legacy[last] ^= 0x01;
    let (corrupted, _) =
        Lineage::decode_frame(&legacy).expect("legacy format cannot detect the flip");
    assert_ne!(corrupted, l, "the silent decode names a different version");

    // Sealed frame: same flip, same byte — now a hard error.
    let mut sealed = v2_frame_of(V1_FIXTURE1);
    let victim = sealed.len() - 5; // last body byte, just before the trailer
    sealed[victim] ^= 0x01;
    assert_eq!(
        Lineage::decode_frame(&sealed),
        Err(CodecError::ChecksumMismatch)
    );
}

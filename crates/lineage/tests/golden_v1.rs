//! Golden-bytes tests pinning the v1 wire format.
//!
//! The fixtures below were captured from the pre-refactor (string-keyed,
//! no-interner) encoder. The zero-copy lineage plane must reproduce them
//! byte for byte: the interner and the cached encoding are process-local
//! accelerations that may never leak into the wire format, or mixed-version
//! deployments would stop interoperating mid-upgrade.
//!
//! Alongside the fixtures, an independent reference encoder/decoder —
//! written against the format spec, sharing no code with the production
//! codec — cross-checks both directions on arbitrary lineages.

use antipode_lineage::{Lineage, LineageId, WriteId};

// ---------------------------------------------------------------------------
// Golden fixtures (captured pre-refactor).
// ---------------------------------------------------------------------------

/// DeathStarBench-shaped lineage: 4 deps across 4 stores.
const FIXTURE1: &[u8] = &[
    1, 188, 181, 226, 179, 197, 198, 4, 4, 13, 109, 101, 100, 105, 97, 45, 109, 111, 110, 103, 111,
    100, 98, 20, 112, 111, 115, 116, 45, 115, 116, 111, 114, 97, 103, 101, 45, 109, 111, 110, 103,
    111, 100, 98, 21, 117, 115, 101, 114, 45, 116, 105, 109, 101, 108, 105, 110, 101, 45, 109, 111,
    110, 103, 111, 100, 98, 28, 119, 114, 105, 116, 101, 45, 104, 111, 109, 101, 45, 116, 105, 109,
    101, 108, 105, 110, 101, 45, 114, 97, 98, 98, 105, 116, 109, 113, 4, 0, 10, 109, 101, 100, 105,
    97, 45, 52, 52, 49, 49, 2, 1, 24, 112, 111, 115, 116, 45, 54, 57, 49, 55, 53, 50, 57, 48, 50,
    55, 54, 52, 49, 48, 56, 49, 56, 53, 54, 3, 2, 9, 117, 115, 101, 114, 45, 49, 55, 50, 57, 12, 3,
    23, 109, 115, 103, 45, 54, 57, 49, 55, 53, 50, 57, 48, 50, 55, 54, 52, 49, 48, 56, 49, 56, 53,
    55, 1,
];

/// Empty lineage, small id.
const FIXTURE2: &[u8] = &[1, 5, 0, 0];

/// Max-valued id and versions (worst-case varints), one store, 5 deps.
const FIXTURE3: &[u8] = &[
    1, 255, 255, 255, 255, 255, 255, 255, 255, 255, 1, 1, 2, 100, 98, 5, 0, 2, 107, 48, 255, 255,
    255, 255, 255, 255, 255, 255, 255, 1, 0, 2, 107, 49, 254, 255, 255, 255, 255, 255, 255, 255,
    255, 1, 0, 2, 107, 50, 253, 255, 255, 255, 255, 255, 255, 255, 255, 1, 0, 2, 107, 51, 252, 255,
    255, 255, 255, 255, 255, 255, 255, 1, 0, 2, 107, 52, 251, 255, 255, 255, 255, 255, 255, 255,
    255, 1,
];

fn fixture1_lineage() -> Lineage {
    let mut l = Lineage::new(LineageId(0x1234_5678_9abc));
    l.append(WriteId::new(
        "post-storage-mongodb",
        "post-6917529027641081856",
        3,
    ));
    l.append(WriteId::new(
        "write-home-timeline-rabbitmq",
        "msg-6917529027641081857",
        1,
    ));
    l.append(WriteId::new("user-timeline-mongodb", "user-1729", 12));
    l.append(WriteId::new("media-mongodb", "media-4411", 2));
    l
}

fn fixture3_lineage() -> Lineage {
    let mut l = Lineage::new(LineageId(u64::MAX));
    for i in 0..5u64 {
        l.append(WriteId::new("db", format!("k{i}"), u64::MAX - i));
    }
    l
}

#[test]
fn golden_encode_matches_pre_refactor_bytes() {
    assert_eq!(fixture1_lineage().serialize(), FIXTURE1);
    assert_eq!(Lineage::new(LineageId(5)).serialize(), FIXTURE2);
    assert_eq!(fixture3_lineage().serialize(), FIXTURE3);
}

#[test]
fn golden_decode_round_trips() {
    for (bytes, expect) in [
        (FIXTURE1, fixture1_lineage()),
        (FIXTURE2, Lineage::new(LineageId(5))),
        (FIXTURE3, fixture3_lineage()),
    ] {
        let decoded = Lineage::deserialize(bytes).expect("golden bytes decode");
        assert_eq!(decoded, expect);
        assert_eq!(decoded.serialize(), bytes, "decode→encode must be identity");
    }
}

// ---------------------------------------------------------------------------
// Independent reference codec (spec-derived, shares nothing with production).
// ---------------------------------------------------------------------------

mod reference {
    /// LEB128 unsigned varint.
    pub fn put_varint(buf: &mut Vec<u8>, mut v: u64) {
        loop {
            let byte = (v & 0x7f) as u8;
            v >>= 7;
            if v == 0 {
                buf.push(byte);
                return;
            }
            buf.push(byte | 0x80);
        }
    }

    pub fn get_varint(buf: &[u8], pos: &mut usize) -> Option<u64> {
        let mut out: u64 = 0;
        for shift in (0..64).step_by(7) {
            let byte = *buf.get(*pos)?;
            *pos += 1;
            out |= u64::from(byte & 0x7f) << shift;
            if byte & 0x80 == 0 {
                return Some(out);
            }
        }
        None
    }

    fn put_str(buf: &mut Vec<u8>, s: &str) {
        put_varint(buf, s.len() as u64);
        buf.extend_from_slice(s.as_bytes());
    }

    fn get_str(buf: &[u8], pos: &mut usize) -> Option<String> {
        let len = get_varint(buf, pos)? as usize;
        let bytes = buf.get(*pos..*pos + len)?;
        *pos += len;
        String::from_utf8(bytes.to_vec()).ok()
    }

    /// Encodes per the v1 spec: version byte, id varint, sorted-name string
    /// table, then (table-index, key, version) per dep. `deps` must be in
    /// canonical (datastore, key, version) order, deduplicated.
    pub fn encode(id: u64, deps: &[(String, String, u64)]) -> Vec<u8> {
        let mut buf = vec![1u8];
        put_varint(&mut buf, id);
        let mut names: Vec<&str> = Vec::new();
        for (store, _, _) in deps {
            if names.last() != Some(&store.as_str()) {
                names.push(store);
            }
        }
        put_varint(&mut buf, names.len() as u64);
        for name in &names {
            put_str(&mut buf, name);
        }
        put_varint(&mut buf, deps.len() as u64);
        let mut idx = 0u64;
        for (i, (store, key, version)) in deps.iter().enumerate() {
            if i > 0 && deps[i - 1].0 != *store {
                idx += 1;
            }
            put_varint(&mut buf, idx);
            put_str(&mut buf, key);
            put_varint(&mut buf, *version);
        }
        buf
    }

    /// Decodes per the v1 spec. Lenient like a spec-minimal reader: no
    /// canonicality checks beyond structural validity.
    #[allow(clippy::type_complexity)]
    pub fn decode(bytes: &[u8]) -> Option<(u64, Vec<(String, String, u64)>)> {
        let mut pos = 0usize;
        if *bytes.first()? != 1 {
            return None;
        }
        pos += 1;
        let id = get_varint(bytes, &mut pos)?;
        let n_names = get_varint(bytes, &mut pos)? as usize;
        let mut names = Vec::new();
        for _ in 0..n_names {
            names.push(get_str(bytes, &mut pos)?);
        }
        let n_deps = get_varint(bytes, &mut pos)? as usize;
        let mut deps = Vec::new();
        for _ in 0..n_deps {
            let idx = get_varint(bytes, &mut pos)? as usize;
            let key = get_str(bytes, &mut pos)?;
            let version = get_varint(bytes, &mut pos)?;
            deps.push((names.get(idx)?.clone(), key, version));
        }
        if pos != bytes.len() {
            return None;
        }
        Some((id, deps))
    }
}

/// Canonical (store, key, version) triples of a lineage.
fn triples(l: &Lineage) -> Vec<(String, String, u64)> {
    l.deps()
        .map(|d| (d.datastore().to_string(), d.key().to_string(), d.version()))
        .collect()
}

#[test]
fn reference_codec_agrees_on_fixtures() {
    for bytes in [FIXTURE1, FIXTURE2, FIXTURE3] {
        let (id, deps) = reference::decode(bytes).expect("reference decodes golden bytes");
        assert_eq!(reference::encode(id, &deps), bytes);
        let prod = Lineage::deserialize(bytes).unwrap();
        assert_eq!(prod.id().0, id);
        assert_eq!(triples(&prod), deps);
    }
}

#[test]
fn cross_version_round_trip_on_generated_lineages() {
    // Deterministic pseudo-random lineages: production-encoded bytes must
    // decode under the reference decoder to the same triples, and
    // reference-encoded bytes must decode under the production decoder to
    // an equal lineage (both directions of a mid-upgrade deployment).
    let mut state = 0x9e37u64;
    let mut mix = move || {
        state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    };
    for case in 0..50u64 {
        let mut l = Lineage::new(LineageId(mix()));
        for _ in 0..(mix() % 24) {
            let r = mix();
            l.append(WriteId::new(
                format!("store-{}", r % 5),
                format!("key-{}", r >> 40),
                (r & 0xff) + 1,
            ));
        }
        let bytes = l.serialize();

        // Production → reference.
        let (id, deps) = reference::decode(&bytes)
            .unwrap_or_else(|| panic!("case {case}: reference rejects production bytes"));
        assert_eq!(id, l.id().0, "case {case}");
        assert_eq!(deps, triples(&l), "case {case}");

        // Reference → production (byte-identical too: both encode the
        // canonical form).
        let ref_bytes = reference::encode(id, &deps);
        assert_eq!(ref_bytes, bytes, "case {case}: encoders must agree");
        let back = Lineage::deserialize(&ref_bytes).unwrap();
        assert_eq!(back, l, "case {case}");
    }
}

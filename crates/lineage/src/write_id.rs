//! Write identifiers.
//!
//! A [`WriteId`] uniquely identifies a write to a datastore as the triple
//! ⟨datastore, key, version⟩ (paper §6.1). Antipode relies on the underlying
//! datastore to generate the version under a versioned key-object model;
//! lineages are sets of these identifiers.

use std::fmt;

/// Identifies one write: which datastore, which key, which version.
///
/// Ordered lexicographically by (datastore, key, version) so lineages can
/// hold them in ordered sets with a canonical serialization.
#[derive(Clone, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct WriteId {
    /// Name of the datastore instance (e.g. `"post-storage-mysql"`).
    pub datastore: String,
    /// The key (or object name / queue entry id) that was written.
    pub key: String,
    /// Monotonic version assigned by the datastore for this key.
    pub version: u64,
}

impl WriteId {
    /// Creates a write identifier.
    pub fn new(datastore: impl Into<String>, key: impl Into<String>, version: u64) -> Self {
        WriteId {
            datastore: datastore.into(),
            key: key.into(),
            version,
        }
    }

    /// Whether this identifier is for the same datastore and key as `other`
    /// (possibly a different version).
    pub fn same_object(&self, other: &WriteId) -> bool {
        self.datastore == other.datastore && self.key == other.key
    }

    /// Whether this write supersedes `other`: same object, newer-or-equal
    /// version. A datastore that has applied a superseding write satisfies a
    /// `wait` on the older one (paper §5.2: "or superseded by more recent
    /// operations").
    pub fn supersedes(&self, other: &WriteId) -> bool {
        self.same_object(other) && self.version >= other.version
    }
}

impl fmt::Debug for WriteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{},{},v{}⟩", self.datastore, self.key, self.version)
    }
}

impl fmt::Display for WriteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}@{}", self.datastore, self.key, self.version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_lexicographic() {
        let a = WriteId::new("a", "k", 2);
        let b = WriteId::new("a", "k", 3);
        let c = WriteId::new("b", "a", 0);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn same_object_ignores_version() {
        let a = WriteId::new("s", "k", 1);
        let b = WriteId::new("s", "k", 9);
        let c = WriteId::new("s", "other", 1);
        assert!(a.same_object(&b));
        assert!(!a.same_object(&c));
    }

    #[test]
    fn supersedes_requires_same_object_and_newer_version() {
        let old = WriteId::new("s", "k", 1);
        let new = WriteId::new("s", "k", 2);
        assert!(new.supersedes(&old));
        assert!(new.supersedes(&new));
        assert!(!old.supersedes(&new));
        assert!(!WriteId::new("s", "x", 5).supersedes(&old));
    }

    #[test]
    fn display_round_trips_fields() {
        let w = WriteId::new("mysql", "post-7", 3);
        assert_eq!(w.to_string(), "mysql:post-7@3");
    }
}

//! Write identifiers.
//!
//! A [`WriteId`] uniquely identifies a write to a datastore as the triple
//! ⟨datastore, key, version⟩ (paper §6.1). Antipode relies on the underlying
//! datastore to generate the version under a versioned key-object model;
//! lineages are sets of these identifiers.
//!
//! Representation: the datastore name is held as an interned [`StoreId`] and
//! the key as a shared `Rc<str>`, so cloning a `WriteId` is two pointer
//! bumps and an integer copy, and equality/`same_object` checks compare
//! integers before ever touching string data. The canonical ordering (and
//! therefore the v1 wire format, which carries names as strings) is
//! unchanged: lexicographic by (datastore name, key, version).

use std::cmp::Ordering;
use std::fmt;
use std::rc::Rc;

use crate::interner::StoreId;

/// Identifies one write: which datastore, which key, which version.
///
/// Ordered lexicographically by (datastore name, key, version) so lineages
/// can hold them in ordered sets with a canonical serialization.
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct WriteId {
    store: StoreId,
    key: Rc<str>,
    version: u64,
}

impl WriteId {
    /// Creates a write identifier, interning the datastore name.
    pub fn new(datastore: impl AsRef<str>, key: impl Into<Rc<str>>, version: u64) -> Self {
        WriteId {
            store: StoreId::intern(datastore.as_ref()),
            key: key.into(),
            version,
        }
    }

    /// Creates a write identifier from an already-interned store id.
    pub fn from_parts(store: StoreId, key: Rc<str>, version: u64) -> Self {
        WriteId {
            store,
            key,
            version,
        }
    }

    /// The interned datastore id. Integer compare/hash; resolves to the name
    /// via [`StoreId::name`].
    pub fn store(&self) -> StoreId {
        self.store
    }

    /// Name of the datastore instance (e.g. `"post-storage-mysql"`).
    pub fn datastore(&self) -> Rc<str> {
        self.store.name()
    }

    /// The key (or object name / queue entry id) that was written.
    pub fn key(&self) -> &str {
        &self.key
    }

    /// The key as the shared `Rc<str>` (clone is a pointer bump).
    pub fn key_rc(&self) -> Rc<str> {
        Rc::clone(&self.key)
    }

    /// Monotonic version assigned by the datastore for this key.
    pub fn version(&self) -> u64 {
        self.version
    }

    /// Whether this identifier is for the same datastore and key as `other`
    /// (possibly a different version).
    pub fn same_object(&self, other: &WriteId) -> bool {
        self.store == other.store && self.key == other.key
    }

    /// Whether this write supersedes `other`: same object, newer-or-equal
    /// version. A datastore that has applied a superseding write satisfies a
    /// `wait` on the older one (paper §5.2: "or superseded by more recent
    /// operations").
    pub fn supersedes(&self, other: &WriteId) -> bool {
        self.same_object(other) && self.version >= other.version
    }
}

impl Ord for WriteId {
    fn cmp(&self, other: &Self) -> Ordering {
        // Integer-first: same interned id means same name, so only the
        // (key, version) tail needs comparing. Distinct ids fall back to
        // comparing the names themselves, preserving the pre-interning
        // lexicographic order the wire format's canonical dep ordering
        // relies on (ids are assigned in intern order, not name order).
        if self.store == other.store {
            self.key
                .cmp(&other.key)
                .then_with(|| self.version.cmp(&other.version))
        } else {
            self.store.name().cmp(&other.store.name())
        }
    }
}

impl PartialOrd for WriteId {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl fmt::Debug for WriteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "⟨{},{},v{}⟩", self.store.name(), self.key, self.version)
    }
}

impl fmt::Display for WriteId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}:{}@{}", self.store.name(), self.key, self.version)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ordering_is_lexicographic() {
        let a = WriteId::new("a", "k", 2);
        let b = WriteId::new("a", "k", 3);
        let c = WriteId::new("b", "a", 0);
        assert!(a < b);
        assert!(b < c);
    }

    #[test]
    fn ordering_by_name_survives_intern_order() {
        // Intern the lexicographically-later name first: ordering must still
        // follow the names, not the ids.
        let z = WriteId::new("zzz-interned-first", "k", 1);
        let a = WriteId::new("aaa-interned-second", "k", 1);
        assert!(a < z);
    }

    #[test]
    fn same_object_ignores_version() {
        let a = WriteId::new("s", "k", 1);
        let b = WriteId::new("s", "k", 9);
        let c = WriteId::new("s", "other", 1);
        assert!(a.same_object(&b));
        assert!(!a.same_object(&c));
    }

    #[test]
    fn supersedes_requires_same_object_and_newer_version() {
        let old = WriteId::new("s", "k", 1);
        let new = WriteId::new("s", "k", 2);
        assert!(new.supersedes(&old));
        assert!(new.supersedes(&new));
        assert!(!old.supersedes(&new));
        assert!(!WriteId::new("s", "x", 5).supersedes(&old));
    }

    #[test]
    fn display_round_trips_fields() {
        let w = WriteId::new("mysql", "post-7", 3);
        assert_eq!(w.to_string(), "mysql:post-7@3");
    }

    #[test]
    fn clone_shares_the_key_allocation() {
        let w = WriteId::new("mysql", "post-7", 3);
        let c = w.clone();
        assert!(Rc::ptr_eq(&w.key, &c.key));
        assert_eq!(w, c);
    }

    #[test]
    fn equal_names_share_one_store_id() {
        let a = WriteId::new("same-store", "k1", 1);
        let b = WriteId::new("same-store", "k2", 2);
        assert_eq!(a.store(), b.store());
        assert_eq!(&*a.datastore(), "same-store");
    }
}

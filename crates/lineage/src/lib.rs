//! # antipode-lineage
//!
//! Lineages, write identifiers, wire codecs, baggage propagation, and the
//! formal cross-service causal consistency (XCY) model from *Antipode:
//! Enforcing Cross-Service Causal Consistency in Distributed Applications*
//! (SOSP 2023).
//!
//! - [`WriteId`]: ⟨datastore, key, version⟩ write identifiers (§6.1),
//!   interned ([`StoreId`]) and shared so clones are pointer bumps;
//! - [`Lineage`]: dependency sets with `append`/`remove`/`transfer` (§5.1),
//!   copy-on-write sharing, a cached compact wire format whose size the
//!   paper's §7.4 metadata experiments measure;
//! - [`interner`]: the deterministic datastore-name interner;
//! - [`crc32c`]: hand-rolled Castagnoli checksum (like the hand-rolled
//!   [`base64`]) sealing WAL records and v2 wire frames;
//! - [`stats`]: lineage-plane counters (allocation proxy for perf baselines);
//! - [`Baggage`]: OpenTelemetry-style request-context propagation (§6.2);
//! - [`model`]: the formal ↝ relation and an execution checker that
//!   distinguishes Lamport causality from XCY (§4, Fig 3);
//! - [`lineage_dag`]: the appendix-B lineage DAG;
//! - [`vector_clock`]: the classical alternative, kept for the §3.2 ablation.
//!
//! ```
//! use antipode_lineage::{Baggage, Lineage, LineageId, WriteId};
//!
//! // A request's lineage accumulates its datastore writes…
//! let mut lineage = Lineage::new(LineageId(1));
//! lineage.append(WriteId::new("post-storage", "post-7", 3));
//! lineage.append(WriteId::new("notifier", "msg-9", 9));
//!
//! // …travels as compact bytes (what §7.4 measures)…
//! let bytes = lineage.serialize();
//! assert!(bytes.len() < 200);
//! assert_eq!(Lineage::deserialize(&bytes).unwrap(), lineage);
//!
//! // …and rides request baggage across RPC hops.
//! let mut baggage = Baggage::new();
//! baggage.set_lineage(&lineage);
//! let remote = Baggage::from_header(&baggage.to_header());
//! assert_eq!(remote.lineage().unwrap(), lineage);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod baggage;
pub mod base64;
pub mod crc32c;
pub mod interner;
pub mod lineage;
pub mod lineage_dag;
pub mod model;
pub mod stats;
pub mod varint;
pub mod vector_clock;
pub mod write_id;

pub use baggage::{Baggage, BaggageError, LINEAGE_KEY};
pub use interner::StoreId;
pub use lineage::{Lineage, LineageId};
pub use lineage_dag::{Action, DagError, LineageDag, ServiceId, Vertex};
pub use model::{Causality, Execution, Op, ProcId, Violation};
pub use stats::LineageStats;
pub use varint::CodecError;
pub use vector_clock::{ClockOrder, VectorClock};
pub use write_id::WriteId;

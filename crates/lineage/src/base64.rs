//! Minimal standard base64 (RFC 4648, with padding), used to embed binary
//! lineage payloads in string-valued baggage entries. Hand-rolled to keep the
//! dependency set to the approved list.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes bytes as standard base64 with padding.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let n = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(n >> 18) as usize & 0x3f] as char);
        out.push(ALPHABET[(n >> 12) as usize & 0x3f] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(n >> 6) as usize & 0x3f] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[n as usize & 0x3f] as char
        } else {
            '='
        });
    }
    out
}

/// Error from [`decode`]: the input was not valid base64.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Base64Error;

impl std::fmt::Display for Base64Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid base64 input")
    }
}
impl std::error::Error for Base64Error {}

fn decode_char(c: u8) -> Result<u32, Base64Error> {
    match c {
        b'A'..=b'Z' => Ok(u32::from(c - b'A')),
        b'a'..=b'z' => Ok(u32::from(c - b'a') + 26),
        b'0'..=b'9' => Ok(u32::from(c - b'0') + 52),
        b'+' => Ok(62),
        b'/' => Ok(63),
        _ => Err(Base64Error),
    }
}

/// Decodes standard base64 (padding required).
///
/// Strict: padding may only appear at the very end of the input, and the
/// unused trailing bits of a padded final group must be zero. Every accepted
/// string is therefore exactly what [`encode`] produces for its bytes —
/// decode is a bijection onto encode's range, which is what lets a decoded
/// lineage adopt the incoming string as its cached base64 form.
pub fn decode(s: &str) -> Result<Vec<u8>, Base64Error> {
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err(Base64Error);
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    let chunks = bytes.chunks(4);
    let last = chunks.len().saturating_sub(1);
    for (i, chunk) in chunks.enumerate() {
        let pad = chunk.iter().rev().take_while(|&&c| c == b'=').count();
        if pad > 2 {
            return Err(Base64Error);
        }
        // '=' may only appear as trailing padding of the final chunk.
        if (pad > 0 && i != last) || chunk[..4 - pad].contains(&b'=') {
            return Err(Base64Error);
        }
        let mut n: u32 = 0;
        for &c in &chunk[..4 - pad] {
            n = (n << 6) | decode_char(c)?;
        }
        n <<= 6 * pad as u32;
        // Bits dropped by padding must be zero (canonical encoding).
        if (pad == 1 && n & 0xff != 0) || (pad == 2 && n & 0xffff != 0) {
            return Err(Base64Error);
        }
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        let cases = [
            ("", ""),
            ("f", "Zg=="),
            ("fo", "Zm8="),
            ("foo", "Zm9v"),
            ("foob", "Zm9vYg=="),
            ("fooba", "Zm9vYmE="),
            ("foobar", "Zm9vYmFy"),
        ];
        for (plain, enc) in cases {
            assert_eq!(encode(plain.as_bytes()), enc);
            assert_eq!(decode(enc).unwrap(), plain.as_bytes());
        }
    }

    #[test]
    fn binary_round_trip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(decode("abc").is_err()); // length not multiple of 4
        assert!(decode("ab!=").is_err()); // invalid character
        assert!(decode("a===").is_err()); // too much padding
        assert!(decode("=abc").is_err()); // padding in the middle
        assert!(decode("Zg==Zg==").is_err()); // padding before the end
    }

    #[test]
    fn rejects_non_canonical_trailing_bits() {
        // "Zh==" decodes to the same byte as "Zg==" under a lenient decoder;
        // strictness makes decode a bijection onto encode's range.
        assert_eq!(decode("Zg==").unwrap(), b"f");
        assert!(decode("Zh==").is_err());
        assert_eq!(decode("Zm8=").unwrap(), b"fo");
        assert!(decode("Zm9=").is_err());
    }

    #[test]
    fn decode_is_inverse_of_encode_only() {
        // Exhaustive over 2-byte inputs: the only accepted encoding of each
        // value is the canonical one.
        for hi in 0..=255u8 {
            let data = [hi, 0x5a];
            let enc = encode(&data);
            assert_eq!(decode(&enc).unwrap(), data);
        }
    }
}

//! Minimal standard base64 (RFC 4648, with padding), used to embed binary
//! lineage payloads in string-valued baggage entries. Hand-rolled to keep the
//! dependency set to the approved list.

const ALPHABET: &[u8; 64] = b"ABCDEFGHIJKLMNOPQRSTUVWXYZabcdefghijklmnopqrstuvwxyz0123456789+/";

/// Encodes bytes as standard base64 with padding.
pub fn encode(data: &[u8]) -> String {
    let mut out = String::with_capacity(data.len().div_ceil(3) * 4);
    for chunk in data.chunks(3) {
        let b0 = chunk[0] as u32;
        let b1 = chunk.get(1).copied().unwrap_or(0) as u32;
        let b2 = chunk.get(2).copied().unwrap_or(0) as u32;
        let n = (b0 << 16) | (b1 << 8) | b2;
        out.push(ALPHABET[(n >> 18) as usize & 0x3f] as char);
        out.push(ALPHABET[(n >> 12) as usize & 0x3f] as char);
        out.push(if chunk.len() > 1 {
            ALPHABET[(n >> 6) as usize & 0x3f] as char
        } else {
            '='
        });
        out.push(if chunk.len() > 2 {
            ALPHABET[n as usize & 0x3f] as char
        } else {
            '='
        });
    }
    out
}

/// Error from [`decode`]: the input was not valid base64.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Base64Error;

impl std::fmt::Display for Base64Error {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid base64 input")
    }
}
impl std::error::Error for Base64Error {}

fn decode_char(c: u8) -> Result<u32, Base64Error> {
    match c {
        b'A'..=b'Z' => Ok(u32::from(c - b'A')),
        b'a'..=b'z' => Ok(u32::from(c - b'a') + 26),
        b'0'..=b'9' => Ok(u32::from(c - b'0') + 52),
        b'+' => Ok(62),
        b'/' => Ok(63),
        _ => Err(Base64Error),
    }
}

/// Decodes standard base64 (padding required).
pub fn decode(s: &str) -> Result<Vec<u8>, Base64Error> {
    let bytes = s.as_bytes();
    if !bytes.len().is_multiple_of(4) {
        return Err(Base64Error);
    }
    let mut out = Vec::with_capacity(bytes.len() / 4 * 3);
    for chunk in bytes.chunks(4) {
        let pad = chunk.iter().rev().take_while(|&&c| c == b'=').count();
        if pad > 2 {
            return Err(Base64Error);
        }
        // '=' may only appear as trailing padding of the final chunk.
        if chunk[..4 - pad].contains(&b'=') {
            return Err(Base64Error);
        }
        let mut n: u32 = 0;
        for &c in &chunk[..4 - pad] {
            n = (n << 6) | decode_char(c)?;
        }
        n <<= 6 * pad as u32;
        out.push((n >> 16) as u8);
        if pad < 2 {
            out.push((n >> 8) as u8);
        }
        if pad < 1 {
            out.push(n as u8);
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rfc4648_vectors() {
        let cases = [
            ("", ""),
            ("f", "Zg=="),
            ("fo", "Zm8="),
            ("foo", "Zm9v"),
            ("foob", "Zm9vYg=="),
            ("fooba", "Zm9vYmE="),
            ("foobar", "Zm9vYmFy"),
        ];
        for (plain, enc) in cases {
            assert_eq!(encode(plain.as_bytes()), enc);
            assert_eq!(decode(enc).unwrap(), plain.as_bytes());
        }
    }

    #[test]
    fn binary_round_trip() {
        let data: Vec<u8> = (0..=255).collect();
        assert_eq!(decode(&encode(&data)).unwrap(), data);
    }

    #[test]
    fn rejects_bad_input() {
        assert!(decode("abc").is_err()); // length not multiple of 4
        assert!(decode("ab!=").is_err()); // invalid character
        assert!(decode("a===").is_err()); // too much padding
        assert!(decode("=abc").is_err()); // padding in the middle
    }
}

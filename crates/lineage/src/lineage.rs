//! Lineages: the dependency sets Antipode carries alongside requests and
//! datastore values.
//!
//! A [`Lineage`] embodies "the dependent actions of a request across multiple
//! processes" (paper §4.1). Operationally it is a set of [`WriteId`]s plus
//! the lineage's identity; `append`/`remove` give developers the explicit
//! dependency control of §5.1, and `transfer` establishes continuity between
//! two lineages.

use std::collections::BTreeSet;
use std::fmt;

use bytes::{Buf, BufMut};

use crate::varint::{get_str, get_varint, put_str, put_varint, CodecError};
use crate::write_id::WriteId;

/// Identity of a lineage: one per root action (external request).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineageId(pub u64);

impl fmt::Debug for LineageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ℒ{:x}", self.0)
    }
}

impl fmt::Display for LineageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:x}", self.0)
    }
}

/// Wire format version for [`Lineage::serialize`].
const WIRE_VERSION: u8 = 1;

/// A lineage: the set of datastore writes an execution currently depends on.
#[derive(Clone, PartialEq, Eq, Default)]
pub struct Lineage {
    id: LineageId,
    deps: BTreeSet<WriteId>,
}

impl Lineage {
    /// Creates an empty lineage with the given identity (the paper's `root`
    /// initializes one at the beginning of a request's execution).
    pub fn new(id: LineageId) -> Self {
        Lineage {
            id,
            deps: BTreeSet::new(),
        }
    }

    /// The lineage's identity.
    pub fn id(&self) -> LineageId {
        self.id
    }

    /// Appends a dependency (paper `append(ℒ, dep)`); also how the Shim
    /// `write` extends a lineage with the new write identifier.
    pub fn append(&mut self, dep: WriteId) {
        self.deps.insert(dep);
    }

    /// Removes a dependency (paper `remove(ℒ, dep)`), letting developers
    /// drop irrelevant dependencies for an optimized user experience.
    /// Returns whether the dependency was present.
    pub fn remove(&mut self, dep: &WriteId) -> bool {
        self.deps.remove(dep)
    }

    /// Transfers `other`'s dependencies into this lineage (paper
    /// `transfer(ℒa, ℒb)`), explicitly establishing transitivity between two
    /// lineages (§5.1, e.g. the ACL example). The receiving lineage keeps its
    /// own identity.
    pub fn transfer_from(&mut self, other: &Lineage) {
        for d in &other.deps {
            self.deps.insert(d.clone());
        }
    }

    /// Iterates over the dependencies in canonical order.
    pub fn deps(&self) -> impl Iterator<Item = &WriteId> {
        self.deps.iter()
    }

    /// Number of dependencies.
    pub fn len(&self) -> usize {
        self.deps.len()
    }

    /// Whether the lineage has no dependencies.
    pub fn is_empty(&self) -> bool {
        self.deps.is_empty()
    }

    /// Whether the lineage contains the exact dependency.
    pub fn contains(&self, dep: &WriteId) -> bool {
        self.deps.contains(dep)
    }

    /// The distinct datastores named by this lineage's dependencies, in
    /// canonical order. `barrier` groups its per-store `wait` calls by this.
    pub fn datastores(&self) -> Vec<&str> {
        let mut out: Vec<&str> = Vec::new();
        for d in &self.deps {
            if out.last() != Some(&d.datastore.as_str()) {
                out.push(&d.datastore);
            }
        }
        out
    }

    /// Serializes to the compact wire format: a version byte, the lineage id,
    /// a datastore-name string table, then each dependency as
    /// (table-index, key, version). This is the payload piggybacked on
    /// request baggage and stored alongside values (§6.2); its size is what
    /// the paper's §7.4 metadata measurements report.
    pub fn serialize(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16 + self.deps.len() * 16);
        buf.put_u8(WIRE_VERSION);
        put_varint(&mut buf, self.id.0);
        // String table: distinct datastore names in first-seen (canonical)
        // order. Deps are sorted, so names group together.
        let names: Vec<&str> = self.datastores();
        put_varint(&mut buf, names.len() as u64);
        for n in &names {
            put_str(&mut buf, n);
        }
        put_varint(&mut buf, self.deps.len() as u64);
        for d in &self.deps {
            let idx = names
                .iter()
                .position(|n| *n == d.datastore)
                .expect("datastore name must be in the table it was built from");
            put_varint(&mut buf, idx as u64);
            put_str(&mut buf, &d.key);
            put_varint(&mut buf, d.version);
        }
        buf
    }

    /// Decodes the wire format produced by [`Lineage::serialize`].
    pub fn deserialize(mut bytes: &[u8]) -> Result<Lineage, CodecError> {
        let buf = &mut bytes;
        if !buf.has_remaining() {
            return Err(CodecError::UnexpectedEof);
        }
        let version = buf.get_u8();
        if version != WIRE_VERSION {
            return Err(CodecError::UnknownVersion(version));
        }
        let id = LineageId(get_varint(buf)?);
        let n_names = get_varint(buf)? as usize;
        if n_names > buf.remaining() {
            return Err(CodecError::LengthOutOfBounds);
        }
        let mut names = Vec::with_capacity(n_names);
        for _ in 0..n_names {
            names.push(get_str(buf)?);
        }
        let n_deps = get_varint(buf)? as usize;
        if n_deps > buf.remaining().saturating_add(1) * 3 {
            return Err(CodecError::LengthOutOfBounds);
        }
        let mut deps = BTreeSet::new();
        for _ in 0..n_deps {
            let idx = get_varint(buf)? as usize;
            let datastore = names.get(idx).ok_or(CodecError::LengthOutOfBounds)?.clone();
            let key = get_str(buf)?;
            let version = get_varint(buf)?;
            deps.insert(WriteId {
                datastore,
                key,
                version,
            });
        }
        Ok(Lineage { id, deps })
    }

    /// The serialized size in bytes, without materializing the buffer.
    pub fn wire_size(&self) -> usize {
        self.serialize().len()
    }
}

impl fmt::Debug for Lineage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}{{", self.id)?;
        for (i, d) in self.deps.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d:?}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wid(s: &str, k: &str, v: u64) -> WriteId {
        WriteId::new(s, k, v)
    }

    #[test]
    fn append_remove_contains() {
        let mut l = Lineage::new(LineageId(1));
        assert!(l.is_empty());
        l.append(wid("mysql", "post-1", 3));
        assert!(l.contains(&wid("mysql", "post-1", 3)));
        assert_eq!(l.len(), 1);
        assert!(l.remove(&wid("mysql", "post-1", 3)));
        assert!(!l.remove(&wid("mysql", "post-1", 3)));
        assert!(l.is_empty());
    }

    #[test]
    fn append_is_idempotent() {
        let mut l = Lineage::new(LineageId(1));
        l.append(wid("s", "k", 1));
        l.append(wid("s", "k", 1));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn transfer_unions_dependencies() {
        let mut a = Lineage::new(LineageId(1));
        a.append(wid("acl", "alice-blocks", 7));
        let mut b = Lineage::new(LineageId(2));
        b.append(wid("posts", "post-9", 1));
        b.transfer_from(&a);
        assert_eq!(b.len(), 2);
        assert_eq!(
            b.id(),
            LineageId(2),
            "transfer keeps the receiving identity"
        );
        assert!(b.contains(&wid("acl", "alice-blocks", 7)));
    }

    #[test]
    fn serialize_round_trip() {
        let mut l = Lineage::new(LineageId(0xdead_beef));
        l.append(wid("post-storage-mysql", "post-12345", 42));
        l.append(wid("post-storage-mysql", "post-12346", 43));
        l.append(wid("notifier-sns", "notif-99", 1));
        let bytes = l.serialize();
        let back = Lineage::deserialize(&bytes).unwrap();
        assert_eq!(back, l);
    }

    #[test]
    fn serialize_empty_lineage() {
        let l = Lineage::new(LineageId(5));
        let back = Lineage::deserialize(&l.serialize()).unwrap();
        assert_eq!(back, l);
        assert!(back.is_empty());
    }

    #[test]
    fn string_table_dedups_datastore_names() {
        // 10 deps on the same store: the name must be encoded once.
        let mut l = Lineage::new(LineageId(1));
        for i in 0..10 {
            l.append(wid("a-rather-long-datastore-name", &format!("k{i}"), i));
        }
        let size = l.wire_size();
        let name_len = "a-rather-long-datastore-name".len();
        assert!(
            size < name_len * 2 + 10 * 8,
            "size {size} suggests the name was not deduplicated"
        );
    }

    #[test]
    fn typical_lineage_is_small() {
        // §7.4: lineage metadata stayed under 200 bytes in DeathStarBench.
        // A typical lineage (a handful of writes to 2-3 stores) must fit.
        let mut l = Lineage::new(LineageId(0x1234_5678_9abc));
        l.append(wid("post-storage-mongodb", "post-6917529027641081856", 3));
        l.append(wid(
            "write-home-timeline-rabbitmq",
            "msg-6917529027641081857",
            1,
        ));
        l.append(wid("user-timeline-mongodb", "user-1729", 12));
        l.append(wid("media-mongodb", "media-4411", 2));
        assert!(l.wire_size() < 200, "wire size {} >= 200", l.wire_size());
    }

    #[test]
    fn deserialize_rejects_garbage() {
        assert!(Lineage::deserialize(&[]).is_err());
        assert!(Lineage::deserialize(&[9, 0, 0]).is_err()); // bad version
        let mut good = Lineage::new(LineageId(1));
        good.append(wid("s", "k", 1));
        let mut bytes = good.serialize();
        bytes.truncate(bytes.len() - 1);
        assert!(Lineage::deserialize(&bytes).is_err());
    }

    #[test]
    fn datastores_lists_distinct_names() {
        let mut l = Lineage::new(LineageId(1));
        l.append(wid("b", "k1", 1));
        l.append(wid("a", "k1", 1));
        l.append(wid("a", "k2", 2));
        assert_eq!(l.datastores(), vec!["a", "b"]);
    }
}

//! Lineages: the dependency sets Antipode carries alongside requests and
//! datastore values.
//!
//! A [`Lineage`] embodies "the dependent actions of a request across multiple
//! processes" (paper §4.1). Operationally it is a set of [`WriteId`]s plus
//! the lineage's identity; `append`/`remove` give developers the explicit
//! dependency control of §5.1, and `transfer` establishes continuity between
//! two lineages.
//!
//! Representation (see DESIGN.md "Zero-copy lineage plane"): dependencies
//! live in an `Rc`-shared sorted vector with copy-on-write mutation, so the
//! clones taken on every RPC hop, envelope write, and baggage injection are
//! O(1) pointer bumps. The v1 wire encoding (and its base64 baggage form)
//! is cached next to the deps and invalidated on mutation, so a lineage that
//! crosses several hops unchanged is encoded exactly once. None of this
//! changes the wire format: serialized bytes are identical to the
//! pre-interning implementation (asserted by `tests/golden_v1.rs`).

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

use bytes::{Buf, BufMut};

use crate::interner::StoreId;
use crate::stats;
use crate::varint::{get_str, get_varint, put_str, put_varint, varint_len, CodecError};
use crate::write_id::WriteId;

/// Identity of a lineage: one per root action (external request).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct LineageId(pub u64);

impl fmt::Debug for LineageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "ℒ{:x}", self.0)
    }
}

impl fmt::Display for LineageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "L{:x}", self.0)
    }
}

/// Wire format version for [`Lineage::serialize`].
const WIRE_VERSION: u8 = 1;

/// Version byte of the flat v2 frame: `[0x02][varint len][body][crc]` where
/// the body is byte-identical to the v1 payload minus its version byte and
/// `crc` is the little-endian CRC32C of the body. The length prefix (which
/// covers body + trailer) makes the frame self-delimiting, so it can be
/// embedded in larger binary messages ([`crate::Baggage::to_frame`], engine
/// envelopes) without base64 or escaping; the trailer makes in-frame
/// corruption detectable instead of decodable. Early v2 frames carried no
/// trailer; the decoder still accepts them (see [`Lineage::decode_frame`]).
const FRAME_VERSION: u8 = 2;

/// Width of the v2 frame's trailing CRC32C.
const FRAME_CRC_LEN: usize = 4;

/// The shared empty dep vector: `Lineage::new` is allocation-free until the
/// first append materializes a private vector via copy-on-write.
fn empty_deps() -> Rc<Vec<WriteId>> {
    thread_local! {
        static EMPTY: Rc<Vec<WriteId>> = Rc::new(Vec::new());
    }
    EMPTY.with(Rc::clone)
}

/// A lineage: the set of datastore writes an execution currently depends on.
pub struct Lineage {
    id: LineageId,
    /// Sorted (canonical WriteId order), deduplicated, shared.
    deps: Rc<Vec<WriteId>>,
    /// Cached v1 wire encoding; `None` = dirty.
    wire: RefCell<Option<Rc<[u8]>>>,
    /// Cached base64 of the wire encoding (the baggage form).
    b64: RefCell<Option<Rc<str>>>,
    /// Cached v2 flat frame (the binary baggage/envelope form).
    frame: RefCell<Option<Rc<[u8]>>>,
}

impl Clone for Lineage {
    fn clone(&self) -> Self {
        Lineage {
            id: self.id,
            deps: Rc::clone(&self.deps),
            wire: RefCell::new(self.wire.borrow().clone()),
            b64: RefCell::new(self.b64.borrow().clone()),
            frame: RefCell::new(self.frame.borrow().clone()),
        }
    }
}

impl Default for Lineage {
    fn default() -> Self {
        Lineage::new(LineageId::default())
    }
}

impl PartialEq for Lineage {
    fn eq(&self, other: &Self) -> bool {
        self.id == other.id && (Rc::ptr_eq(&self.deps, &other.deps) || self.deps == other.deps)
    }
}

impl Eq for Lineage {}

impl Lineage {
    /// Creates an empty lineage with the given identity (the paper's `root`
    /// initializes one at the beginning of a request's execution).
    pub fn new(id: LineageId) -> Self {
        Lineage {
            id,
            deps: empty_deps(),
            wire: RefCell::new(None),
            b64: RefCell::new(None),
            frame: RefCell::new(None),
        }
    }

    /// The lineage's identity.
    pub fn id(&self) -> LineageId {
        self.id
    }

    fn invalidate_cache(&mut self) {
        *self.wire.borrow_mut() = None;
        *self.b64.borrow_mut() = None;
        *self.frame.borrow_mut() = None;
    }

    /// Mutable access to the dep vector, materializing a private copy if the
    /// current one is shared (copy-on-write).
    fn deps_mut(&mut self) -> &mut Vec<WriteId> {
        if Rc::strong_count(&self.deps) > 1 {
            stats::count_cow_dep_clone();
        }
        Rc::make_mut(&mut self.deps)
    }

    /// Appends a dependency (paper `append(ℒ, dep)`); also how the Shim
    /// `write` extends a lineage with the new write identifier.
    pub fn append(&mut self, dep: WriteId) {
        match self.deps.binary_search(&dep) {
            Ok(_) => {} // already present: no mutation, caches stay valid
            Err(pos) => {
                self.invalidate_cache();
                self.deps_mut().insert(pos, dep);
            }
        }
    }

    /// Removes a dependency (paper `remove(ℒ, dep)`), letting developers
    /// drop irrelevant dependencies for an optimized user experience.
    /// Returns whether the dependency was present.
    pub fn remove(&mut self, dep: &WriteId) -> bool {
        match self.deps.binary_search(dep) {
            Ok(pos) => {
                self.invalidate_cache();
                self.deps_mut().remove(pos);
                true
            }
            Err(_) => false,
        }
    }

    /// Transfers `other`'s dependencies into this lineage (paper
    /// `transfer(ℒa, ℒb)`), explicitly establishing transitivity between two
    /// lineages (§5.1, e.g. the ACL example). The receiving lineage keeps its
    /// own identity.
    pub fn transfer_from(&mut self, other: &Lineage) {
        if other.deps.is_empty() || Rc::ptr_eq(&self.deps, &other.deps) {
            return;
        }
        if self.deps.is_empty() {
            // Share the donor's vector outright — O(1).
            self.deps = Rc::clone(&other.deps);
            self.invalidate_cache();
            return;
        }
        if other
            .deps
            .iter()
            .all(|d| self.deps.binary_search(d).is_ok())
        {
            return; // nothing new: keep deps and caches untouched
        }
        // Two-pointer merge of the sorted vectors into a fresh private one.
        let merged = merge_sorted(&self.deps, &other.deps);
        self.invalidate_cache();
        self.deps = Rc::new(merged);
    }

    /// Iterates over the dependencies in canonical order.
    pub fn deps(&self) -> impl Iterator<Item = &WriteId> {
        self.deps.iter()
    }

    /// Number of dependencies.
    pub fn len(&self) -> usize {
        self.deps.len()
    }

    /// Whether the lineage has no dependencies.
    pub fn is_empty(&self) -> bool {
        self.deps.is_empty()
    }

    /// Whether the lineage contains the exact dependency.
    pub fn contains(&self, dep: &WriteId) -> bool {
        self.deps.binary_search(dep).is_ok()
    }

    /// Whether this lineage and `other` share the same dep vector allocation
    /// (an O(1) "definitely equal deps" probe for tests and diagnostics).
    pub fn shares_deps_with(&self, other: &Lineage) -> bool {
        Rc::ptr_eq(&self.deps, &other.deps)
    }

    /// The distinct datastores named by this lineage's dependencies, in
    /// canonical order.
    pub fn datastores(&self) -> Vec<Rc<str>> {
        self.store_ids().into_iter().map(StoreId::name).collect()
    }

    /// The distinct interned store ids, in canonical (name) order. `barrier`
    /// groups its per-store waits by these.
    pub fn store_ids(&self) -> Vec<StoreId> {
        let mut out: Vec<StoreId> = Vec::new();
        for d in self.deps.iter() {
            if out.last() != Some(&d.store()) {
                out.push(d.store());
            }
        }
        out
    }

    /// The v1 wire encoding as shared bytes, (re-)encoding only if the
    /// lineage changed since the last call. This is what every hop of an
    /// unchanged lineage costs: an `Rc` bump.
    pub fn wire_bytes(&self) -> Rc<[u8]> {
        if let Some(cached) = &*self.wire.borrow() {
            stats::count_wire_cache_hit();
            return Rc::clone(cached);
        }
        stats::count_wire_encode();
        let rc: Rc<[u8]> = self.encode().into();
        *self.wire.borrow_mut() = Some(Rc::clone(&rc));
        rc
    }

    /// The base64 form of [`Lineage::wire_bytes`] — the baggage entry value
    /// — cached with the same dirty-tracking.
    pub fn wire_b64(&self) -> Rc<str> {
        if let Some(cached) = &*self.b64.borrow() {
            stats::count_b64_cache_hit();
            return Rc::clone(cached);
        }
        stats::count_b64_encode();
        let rc: Rc<str> = crate::base64::encode(&self.wire_bytes()).into();
        *self.b64.borrow_mut() = Some(Rc::clone(&rc));
        rc
    }

    /// The flat v2 frame as shared bytes, (re-)encoding only if the lineage
    /// changed since the last call. The frame is `[0x02][varint body-len]`
    /// followed by the v1 body, so it is self-delimiting: it can be embedded
    /// directly in binary messages with no base64 expansion (~33%) and no
    /// percent-escaping. Cached with the same dirty-tracking as
    /// [`Lineage::wire_bytes`].
    pub fn frame_bytes(&self) -> Rc<[u8]> {
        if let Some(cached) = &*self.frame.borrow() {
            stats::count_frame_cache_hit();
            return Rc::clone(cached);
        }
        stats::count_frame_encode();
        let rc: Rc<[u8]> = self.encode_frame().into();
        *self.frame.borrow_mut() = Some(Rc::clone(&rc));
        rc
    }

    /// The v2 frame size in bytes. Served from the frame cache.
    pub fn frame_size(&self) -> usize {
        self.frame_bytes().len()
    }

    /// Assembles the v2 frame from the (cached) v1 wire form: the body is
    /// shared byte-for-byte between the two versions, so this is a memcpy
    /// plus a ≤10-byte prefix and a 4-byte CRC32C trailer — no second dep
    /// traversal.
    fn encode_frame(&self) -> Vec<u8> {
        let wire = self.wire_bytes();
        let body = &wire[1..];
        let declared = body.len() + FRAME_CRC_LEN;
        let mut buf = Vec::with_capacity(1 + varint_len(declared as u64) + declared);
        buf.put_u8(FRAME_VERSION);
        put_varint(&mut buf, declared as u64);
        buf.extend_from_slice(body);
        buf.extend_from_slice(&crate::crc32c::crc32c(body).to_le_bytes());
        buf
    }

    /// Adopts `b64` as the cached base64 form. Crate-internal: the caller
    /// guarantees `b64` is the canonical base64 of this lineage's cached
    /// wire bytes (baggage extraction decodes with a strict — bijective —
    /// base64 decoder, so the incoming string is exactly what re-encoding
    /// would produce). No-op unless a canonical decode already populated the
    /// wire cache, which is what ties the guarantee to this lineage.
    pub(crate) fn adopt_b64_cache(&self, b64: Rc<str>) {
        if self.wire.borrow().is_some() {
            *self.b64.borrow_mut() = Some(b64);
        }
    }

    /// Serializes to the compact wire format: a version byte, the lineage id,
    /// a datastore-name string table, then each dependency as
    /// (table-index, key, version). This is the payload piggybacked on
    /// request baggage and stored alongside values (§6.2); its size is what
    /// the paper's §7.4 metadata measurements report.
    ///
    /// Returns an owned copy for API compatibility; the cached shared form
    /// is [`Lineage::wire_bytes`].
    pub fn serialize(&self) -> Vec<u8> {
        self.wire_bytes().to_vec()
    }

    /// Encodes the canonical v1 wire form. O(deps): the string table is
    /// built by watching the interned store id change across the sorted dep
    /// vector (same-store deps are adjacent), so no per-dep name scan and no
    /// intermediate name vector allocation beyond the table itself.
    fn encode(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(16 + self.deps.len() * 16);
        buf.put_u8(WIRE_VERSION);
        put_varint(&mut buf, self.id.0);
        // String table: distinct datastore names in first-seen (canonical)
        // order. Deps are sorted, so names group together.
        let ids = self.store_ids();
        put_varint(&mut buf, ids.len() as u64);
        for id in &ids {
            put_str(&mut buf, &id.name());
        }
        put_varint(&mut buf, self.deps.len() as u64);
        let mut idx: u64 = 0;
        let mut prev: Option<StoreId> = None;
        for d in self.deps.iter() {
            if let Some(p) = prev {
                if p != d.store() {
                    idx += 1;
                }
            }
            prev = Some(d.store());
            put_varint(&mut buf, idx);
            put_str(&mut buf, d.key());
            put_varint(&mut buf, d.version());
        }
        buf
    }

    /// Decodes the wire format produced by [`Lineage::serialize`] (v1) or
    /// [`Lineage::frame_bytes`] (v2): the version byte selects the codec, so
    /// a v2-speaking reader transparently accepts v1 writers (and vice
    /// versa — v1 bytes are never reinterpreted).
    ///
    /// Length guards are strict: declared counts are validated against the
    /// bytes actually remaining (a name costs ≥ 1 byte, a dependency ≥ 3),
    /// and pre-allocation is bounded by the same limits, so a hostile count
    /// cannot force a large allocation from a tiny input. When the input is
    /// byte-for-byte canonical (sorted deps, first-use name table, minimal
    /// varints — everything [`Lineage::serialize`] emits), the decoder
    /// adopts it as the cached wire form, making a decode→forward hop free
    /// of re-encoding.
    pub fn deserialize(bytes: &[u8]) -> Result<Lineage, CodecError> {
        match bytes.first() {
            None => Err(CodecError::UnexpectedEof),
            Some(&WIRE_VERSION) => Self::decode_v1(bytes),
            Some(&FRAME_VERSION) => Self::decode_frame(bytes).map(|(lineage, _)| lineage),
            Some(&other) => Err(CodecError::UnknownVersion(other)),
        }
    }

    /// The v1 compat path: body decode plus canonical adoption into the
    /// wire cache.
    fn decode_v1(bytes: &[u8]) -> Result<Lineage, CodecError> {
        let total_len = bytes.len();
        let mut slice = &bytes[1..]; // version byte checked by the dispatcher
        let buf = &mut slice;
        let body = decode_body(buf)?;
        let consumed = total_len - buf.remaining();
        // Minimal-varint check: the consumed length must equal the canonical
        // minimal length (version byte + body).
        let canonical = body.canonical && consumed == 1 + body.canonical_len;
        let lineage = body.into_lineage(canonical);
        if canonical {
            stats::count_canonical_decode();
            *lineage.wire.borrow_mut() = Some(bytes[..consumed].into());
            debug_assert_eq!(lineage.encode().as_slice(), &bytes[..consumed]);
        }
        Ok(lineage)
    }

    /// Decodes a v2 flat frame from the front of `bytes`, returning the
    /// lineage and the number of bytes consumed. The frame is
    /// self-delimiting, so trailing bytes are left for the caller — this is
    /// what lets frames embed in binary baggage and engine envelopes.
    ///
    /// The declared length must delimit the payload exactly: either the body
    /// alone (an early v2 writer, pre-CRC — accepted for compatibility) or
    /// the body plus a 4-byte CRC32C trailer, which is then verified —
    /// a mismatch is [`CodecError::ChecksumMismatch`], never a silently
    /// different lineage. Canonical sealed frames are adopted as the cached
    /// frame form: decode→forward of an unchanged lineage re-emits the exact
    /// input bytes.
    pub fn decode_frame(bytes: &[u8]) -> Result<(Lineage, usize), CodecError> {
        let total_len = bytes.len();
        let mut slice = bytes;
        let buf = &mut slice;
        if !buf.has_remaining() {
            return Err(CodecError::UnexpectedEof);
        }
        let version = buf.get_u8();
        if version != FRAME_VERSION {
            return Err(CodecError::UnknownVersion(version));
        }
        let declared = get_varint(buf)? as usize;
        if declared > buf.remaining() {
            return Err(CodecError::LengthOutOfBounds);
        }
        let prefix_len = total_len - buf.remaining();
        let mut body_slice = &bytes[prefix_len..prefix_len + declared];
        let body_buf = &mut body_slice;
        let body = decode_body(body_buf)?;
        let body_len = declared - body_buf.remaining();
        // What remains of the declared window after the body is the trailer:
        // absent (legacy v2 writer) or exactly one CRC32C. Anything else is
        // a framing violation, not trailing data.
        let sealed = match body_buf.remaining() {
            0 => false,
            FRAME_CRC_LEN => {
                let body_bytes = &bytes[prefix_len..prefix_len + body_len];
                let mut trailer = [0u8; FRAME_CRC_LEN];
                trailer.copy_from_slice(&bytes[prefix_len + body_len..prefix_len + declared]);
                if crate::crc32c::crc32c(body_bytes) != u32::from_le_bytes(trailer) {
                    return Err(CodecError::ChecksumMismatch);
                }
                true
            }
            _ => return Err(CodecError::LengthOutOfBounds),
        };
        let consumed = prefix_len + declared;
        let canonical = sealed
            && body.canonical
            && body_len == body.canonical_len
            && prefix_len == 1 + varint_len(declared as u64);
        let lineage = body.into_lineage(canonical);
        if canonical {
            stats::count_canonical_decode();
            *lineage.frame.borrow_mut() = Some(bytes[..consumed].into());
            debug_assert_eq!(
                &lineage.encode()[1..],
                &bytes[prefix_len..prefix_len + body_len]
            );
        }
        Ok((lineage, consumed))
    }

    /// The serialized size in bytes. Served from the wire cache — never
    /// materializes a second buffer.
    pub fn wire_size(&self) -> usize {
        self.wire_bytes().len()
    }
}

/// Result of decoding the body shared by the v1 and v2 wire forms:
/// `[varint id][string table][deps]`.
struct BodyDecode {
    id: u64,
    deps: Vec<WriteId>,
    /// Whether the body was structurally canonical: sorted names, first-use
    /// table order, strictly increasing same-store deps, every table entry
    /// used. Minimal-varint detection is the caller's length comparison.
    canonical: bool,
    /// Minimal encoding length of the parsed body.
    canonical_len: usize,
}

impl BodyDecode {
    /// Builds the lineage, sorting/deduplicating unless the input was
    /// canonical. Caches start empty; the caller adopts the input bytes.
    fn into_lineage(self, canonical: bool) -> Lineage {
        let mut deps = self.deps;
        if !canonical {
            deps.sort_unstable();
            deps.dedup();
        }
        Lineage {
            id: LineageId(self.id),
            deps: if deps.is_empty() {
                empty_deps()
            } else {
                Rc::new(deps)
            },
            wire: RefCell::new(None),
            b64: RefCell::new(None),
            frame: RefCell::new(None),
        }
    }
}

/// Decodes the version-independent body, tracking canonicality as it parses.
fn decode_body(buf: &mut &[u8]) -> Result<BodyDecode, CodecError> {
    let id = get_varint(buf)?;
    // Canonical minimal length, accumulated as we parse; the caller compares
    // it to the consumed length to detect non-minimal varints.
    let mut canonical_len = varint_len(id);
    let n_names = get_varint(buf)? as usize;
    // Each table entry consumes at least its 1-byte length prefix.
    if n_names > buf.remaining() {
        return Err(CodecError::LengthOutOfBounds);
    }
    canonical_len += varint_len(n_names as u64);
    let mut stores: Vec<StoreId> = Vec::with_capacity(n_names.min(buf.remaining()));
    let mut names_sorted = true;
    let mut prev_name: Option<String> = None;
    for _ in 0..n_names {
        let name = get_str(buf)?;
        canonical_len += varint_len(name.len() as u64) + name.len();
        if prev_name.as_deref().is_some_and(|p| p >= name.as_str()) {
            names_sorted = false;
        }
        stores.push(StoreId::intern(&name));
        prev_name = Some(name);
    }
    let n_deps = get_varint(buf)? as usize;
    // Each dependency consumes at least 3 bytes: a table index varint, a
    // key length varint, and a version varint.
    if n_deps > buf.remaining() / 3 {
        return Err(CodecError::LengthOutOfBounds);
    }
    canonical_len += varint_len(n_deps as u64);
    let mut deps: Vec<WriteId> = Vec::with_capacity(n_deps);
    // Canonical index pattern: starts at 0, steps by at most 1, ends at
    // n_names - 1 (every table entry used), deps strictly increasing.
    let mut canonical = names_sorted;
    let mut prev_idx: Option<u64> = None;
    for _ in 0..n_deps {
        let idx = get_varint(buf)?;
        let store = *stores
            .get(idx as usize)
            .ok_or(CodecError::LengthOutOfBounds)?;
        let key = get_str(buf)?;
        let version = get_varint(buf)?;
        canonical_len +=
            varint_len(idx) + varint_len(key.len() as u64) + key.len() + varint_len(version);
        let dep = WriteId::from_parts(store, key.into(), version);
        match prev_idx {
            None => {
                if idx != 0 {
                    canonical = false;
                }
            }
            Some(p) => {
                if idx != p && idx != p + 1 {
                    canonical = false;
                }
                if idx == p && canonical {
                    // Same store: names are equal, so WriteId order
                    // reduces to (key, version) — must strictly increase.
                    if deps.last().is_some_and(|prev| *prev >= dep) {
                        canonical = false;
                    }
                }
            }
        }
        prev_idx = Some(idx);
        deps.push(dep);
    }
    canonical &= match prev_idx {
        Some(last) => last as usize == n_names - 1,
        None => n_names == 0,
    };
    Ok(BodyDecode {
        id,
        deps,
        canonical,
        canonical_len,
    })
}

/// Merges two sorted deduplicated WriteId vectors into a new one.
fn merge_sorted(a: &[WriteId], b: &[WriteId]) -> Vec<WriteId> {
    let mut out = Vec::with_capacity(a.len() + b.len());
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => {
                out.push(a[i].clone());
                i += 1;
            }
            std::cmp::Ordering::Greater => {
                out.push(b[j].clone());
                j += 1;
            }
            std::cmp::Ordering::Equal => {
                out.push(a[i].clone());
                i += 1;
                j += 1;
            }
        }
    }
    out.extend_from_slice(&a[i..]);
    out.extend_from_slice(&b[j..]);
    out
}

impl fmt::Debug for Lineage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:?}{{", self.id)?;
        for (i, d) in self.deps.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{d:?}")?;
        }
        write!(f, "}}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wid(s: &str, k: &str, v: u64) -> WriteId {
        WriteId::new(s, k, v)
    }

    #[test]
    fn append_remove_contains() {
        let mut l = Lineage::new(LineageId(1));
        assert!(l.is_empty());
        l.append(wid("mysql", "post-1", 3));
        assert!(l.contains(&wid("mysql", "post-1", 3)));
        assert_eq!(l.len(), 1);
        assert!(l.remove(&wid("mysql", "post-1", 3)));
        assert!(!l.remove(&wid("mysql", "post-1", 3)));
        assert!(l.is_empty());
    }

    #[test]
    fn append_is_idempotent() {
        let mut l = Lineage::new(LineageId(1));
        l.append(wid("s", "k", 1));
        l.append(wid("s", "k", 1));
        assert_eq!(l.len(), 1);
    }

    #[test]
    fn transfer_unions_dependencies() {
        let mut a = Lineage::new(LineageId(1));
        a.append(wid("acl", "alice-blocks", 7));
        let mut b = Lineage::new(LineageId(2));
        b.append(wid("posts", "post-9", 1));
        b.transfer_from(&a);
        assert_eq!(b.len(), 2);
        assert_eq!(
            b.id(),
            LineageId(2),
            "transfer keeps the receiving identity"
        );
        assert!(b.contains(&wid("acl", "alice-blocks", 7)));
    }

    #[test]
    fn transfer_into_empty_shares_the_dep_vector() {
        let mut a = Lineage::new(LineageId(1));
        a.append(wid("s", "k", 1));
        let mut b = Lineage::new(LineageId(2));
        b.transfer_from(&a);
        assert!(b.shares_deps_with(&a), "empty receiver adopts by sharing");
        // Mutating either side un-shares (copy-on-write).
        a.append(wid("s", "k2", 2));
        assert!(!b.shares_deps_with(&a));
        assert_eq!(b.len(), 1);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn transfer_of_subset_is_a_no_op() {
        let mut a = Lineage::new(LineageId(1));
        a.append(wid("s", "k1", 1));
        a.append(wid("s", "k2", 2));
        let first = a.wire_bytes();
        let mut sub = Lineage::new(LineageId(9));
        sub.append(wid("s", "k1", 1));
        a.transfer_from(&sub);
        // Cache survived: no re-encode happened.
        assert!(Rc::ptr_eq(&first, &a.wire_bytes()));
    }

    #[test]
    fn clone_is_shallow_and_cow_on_mutation() {
        let mut a = Lineage::new(LineageId(1));
        for i in 0..8 {
            a.append(wid("s", &format!("k{i}"), i));
        }
        let b = a.clone();
        assert!(b.shares_deps_with(&a));
        a.append(wid("s", "new", 99));
        assert!(!b.shares_deps_with(&a));
        assert_eq!(b.len(), 8);
        assert_eq!(a.len(), 9);
    }

    #[test]
    fn serialize_round_trip() {
        let mut l = Lineage::new(LineageId(0xdead_beef));
        l.append(wid("post-storage-mysql", "post-12345", 42));
        l.append(wid("post-storage-mysql", "post-12346", 43));
        l.append(wid("notifier-sns", "notif-99", 1));
        let bytes = l.serialize();
        let back = Lineage::deserialize(&bytes).unwrap();
        assert_eq!(back, l);
    }

    #[test]
    fn serialize_empty_lineage() {
        let l = Lineage::new(LineageId(5));
        let back = Lineage::deserialize(&l.serialize()).unwrap();
        assert_eq!(back, l);
        assert!(back.is_empty());
    }

    #[test]
    fn serialize_is_cached_until_mutation() {
        let mut l = Lineage::new(LineageId(7));
        l.append(wid("s", "k", 1));
        let first = l.wire_bytes();
        let second = l.wire_bytes();
        assert!(Rc::ptr_eq(&first, &second), "unchanged lineage: cache hit");
        l.append(wid("s", "k2", 2));
        let third = l.wire_bytes();
        assert!(
            !Rc::ptr_eq(&first, &third),
            "mutation invalidates the cache"
        );
        assert_eq!(third.as_ref(), l.serialize().as_slice());
    }

    #[test]
    fn canonical_decode_adopts_input_as_cache() {
        let mut l = Lineage::new(LineageId(3));
        l.append(wid("a", "k1", 1));
        l.append(wid("b", "k2", 2));
        let bytes = l.serialize();
        let before = stats::snapshot().wire_encodes;
        let back = Lineage::deserialize(&bytes).unwrap();
        // Re-serializing the decoded lineage must not re-encode.
        assert_eq!(back.serialize(), bytes);
        assert_eq!(
            stats::snapshot().wire_encodes,
            before,
            "decode→serialize of canonical bytes must be encode-free"
        );
    }

    #[test]
    fn non_canonical_input_still_decodes_to_canonical_form() {
        // Hand-build an encoding with deps out of order and a duplicate:
        // table ["b", "a"], deps (b,k,1), (a,k,1), (a,k,1).
        let mut buf = vec![1u8]; // version
        put_varint(&mut buf, 9); // id
        put_varint(&mut buf, 2); // 2 names
        put_str(&mut buf, "b");
        put_str(&mut buf, "a");
        put_varint(&mut buf, 3); // 3 deps
        for idx in [0u64, 1, 1] {
            put_varint(&mut buf, idx);
            put_str(&mut buf, "k");
            put_varint(&mut buf, 1);
        }
        let l = Lineage::deserialize(&buf).unwrap();
        assert_eq!(l.len(), 2, "duplicate dep collapsed");
        let mut expect = Lineage::new(LineageId(9));
        expect.append(wid("a", "k", 1));
        expect.append(wid("b", "k", 1));
        assert_eq!(l, expect);
        // And its serialization is canonical, not the input bytes.
        assert_eq!(l.serialize(), expect.serialize());
        assert_ne!(l.serialize(), buf);
    }

    #[test]
    fn string_table_dedups_datastore_names() {
        // 10 deps on the same store: the name must be encoded once.
        let mut l = Lineage::new(LineageId(1));
        for i in 0..10 {
            l.append(wid("a-rather-long-datastore-name", &format!("k{i}"), i));
        }
        let size = l.wire_size();
        let name_len = "a-rather-long-datastore-name".len();
        assert!(
            size < name_len * 2 + 10 * 8,
            "size {size} suggests the name was not deduplicated"
        );
    }

    #[test]
    fn typical_lineage_is_small() {
        // §7.4: lineage metadata stayed under 200 bytes in DeathStarBench.
        // A typical lineage (a handful of writes to 2-3 stores) must fit.
        let mut l = Lineage::new(LineageId(0x1234_5678_9abc));
        l.append(wid("post-storage-mongodb", "post-6917529027641081856", 3));
        l.append(wid(
            "write-home-timeline-rabbitmq",
            "msg-6917529027641081857",
            1,
        ));
        l.append(wid("user-timeline-mongodb", "user-1729", 12));
        l.append(wid("media-mongodb", "media-4411", 2));
        assert!(l.wire_size() < 200, "wire size {} >= 200", l.wire_size());
    }

    #[test]
    fn deserialize_rejects_garbage() {
        assert!(Lineage::deserialize(&[]).is_err());
        assert!(Lineage::deserialize(&[9, 0, 0]).is_err()); // bad version
        let mut good = Lineage::new(LineageId(1));
        good.append(wid("s", "k", 1));
        let mut bytes = good.serialize();
        bytes.truncate(bytes.len() - 1);
        assert!(Lineage::deserialize(&bytes).is_err());
    }

    #[test]
    fn deserialize_rejects_hostile_counts() {
        // Claims u64::MAX names with 2 bytes of input.
        let mut buf = vec![1u8, 0];
        put_varint(&mut buf, u64::MAX);
        assert_eq!(
            Lineage::deserialize(&buf),
            Err(CodecError::LengthOutOfBounds)
        );
        // Claims far more deps than the remaining bytes could hold.
        let mut buf = vec![1u8, 0];
        put_varint(&mut buf, 0); // 0 names
        put_varint(&mut buf, 1000); // 1000 deps, ~0 bytes left
        assert_eq!(
            Lineage::deserialize(&buf),
            Err(CodecError::LengthOutOfBounds)
        );
    }

    #[test]
    fn frame_round_trip_and_cache() {
        let mut l = Lineage::new(LineageId(0xabc));
        l.append(wid("posts", "p-1", 3));
        l.append(wid("notifier", "n-9", 1));
        let frame = l.frame_bytes();
        assert_eq!(frame[0], 2, "v2 frames carry version byte 2");
        let again = l.frame_bytes();
        assert!(
            Rc::ptr_eq(&frame, &again),
            "unchanged lineage: frame cached"
        );
        let (back, consumed) = Lineage::decode_frame(&frame).unwrap();
        assert_eq!(consumed, frame.len());
        assert_eq!(back, l);
        // deserialize dispatches on the version byte: both codecs accepted.
        assert_eq!(Lineage::deserialize(&frame).unwrap(), l);
        assert_eq!(Lineage::deserialize(&l.serialize()).unwrap(), l);
    }

    #[test]
    fn frame_shares_body_with_v1() {
        let mut l = Lineage::new(LineageId(7));
        l.append(wid("s", "k", 1));
        let wire = l.wire_bytes();
        let frame = l.frame_bytes();
        // [0x02][varint len][v1 body][crc32c(body)]
        let body = &wire[1..];
        let crc_at = frame.len() - 4;
        assert_eq!(&frame[crc_at - body.len()..crc_at], body);
        assert_eq!(&frame[crc_at..], crate::crc32c::crc32c(body).to_le_bytes());
    }

    #[test]
    fn legacy_v2_frame_without_crc_still_decodes() {
        // An early v2 writer emitted [0x02][varint body-len][body] with no
        // trailer; the declared length delimiting exactly the body is what
        // identifies it.
        let mut l = Lineage::new(LineageId(7));
        l.append(wid("s", "k", 1));
        let wire = l.wire_bytes();
        let body = &wire[1..];
        let mut legacy = vec![2u8];
        put_varint(&mut legacy, body.len() as u64);
        legacy.extend_from_slice(body);
        let (back, consumed) = Lineage::decode_frame(&legacy).unwrap();
        assert_eq!(consumed, legacy.len());
        assert_eq!(back, l);
        // Legacy frames are never adopted as the cache: re-encoding seals
        // them with the trailer.
        let sealed = back.frame_bytes();
        assert_eq!(sealed.len(), legacy.len() + 4);
    }

    #[test]
    fn corrupt_frame_body_is_a_checksum_mismatch() {
        let mut l = Lineage::new(LineageId(7));
        l.append(wid("s", "k", 1));
        let frame = l.frame_bytes().to_vec();
        // Flip the final body byte (the dep's version varint): structurally
        // the body still decodes, so only the trailer can catch it.
        let mut bad = frame.clone();
        let victim = bad.len() - 5;
        bad[victim] ^= 0x01;
        assert_eq!(
            Lineage::decode_frame(&bad),
            Err(CodecError::ChecksumMismatch)
        );
        // A flipped trailer byte is equally fatal.
        let mut bad_crc = frame;
        let last = bad_crc.len() - 1;
        bad_crc[last] ^= 0x80;
        assert_eq!(
            Lineage::decode_frame(&bad_crc),
            Err(CodecError::ChecksumMismatch)
        );
    }

    #[test]
    fn frame_is_self_delimiting() {
        let mut l = Lineage::new(LineageId(9));
        l.append(wid("s", "k", 4));
        let mut buf = l.frame_bytes().to_vec();
        buf.extend_from_slice(b"trailing-payload");
        let (back, consumed) = Lineage::decode_frame(&buf).unwrap();
        assert_eq!(back, l);
        assert_eq!(&buf[consumed..], b"trailing-payload");
    }

    #[test]
    fn canonical_frame_decode_adopts_input() {
        let mut l = Lineage::new(LineageId(3));
        l.append(wid("a", "k1", 1));
        let frame = l.frame_bytes().to_vec();
        let before = stats::snapshot().frame_encodes;
        let (back, _) = Lineage::decode_frame(&frame).unwrap();
        assert_eq!(back.frame_bytes().as_ref(), frame.as_slice());
        assert_eq!(
            stats::snapshot().frame_encodes,
            before,
            "decode→forward of a canonical frame must be encode-free"
        );
    }

    #[test]
    fn frame_rejects_bad_length_prefix() {
        let mut l = Lineage::new(LineageId(1));
        l.append(wid("s", "k", 1));
        let frame = l.frame_bytes().to_vec();
        // Truncated body.
        assert!(Lineage::decode_frame(&frame[..frame.len() - 1]).is_err());
        // Length prefix larger than the remaining bytes.
        let mut over = frame.clone();
        over[1] = over[1].wrapping_add(40);
        assert_eq!(
            Lineage::decode_frame(&over),
            Err(CodecError::LengthOutOfBounds)
        );
        // Length prefix that under-declares the body (decode stops short).
        let mut under = frame.clone();
        under[1] -= 1;
        assert!(Lineage::decode_frame(&under).is_err());
    }

    #[test]
    fn mutation_invalidates_the_frame_cache() {
        let mut l = Lineage::new(LineageId(5));
        l.append(wid("s", "k", 1));
        let first = l.frame_bytes();
        l.append(wid("s", "k2", 2));
        let second = l.frame_bytes();
        assert!(!Rc::ptr_eq(&first, &second));
        let (back, _) = Lineage::decode_frame(&second).unwrap();
        assert_eq!(back, l);
    }

    #[test]
    fn datastores_lists_distinct_names() {
        let mut l = Lineage::new(LineageId(1));
        l.append(wid("b", "k1", 1));
        l.append(wid("a", "k1", 1));
        l.append(wid("a", "k2", 2));
        let names: Vec<String> = l.datastores().iter().map(|n| n.to_string()).collect();
        assert_eq!(names, vec!["a", "b"]);
        assert_eq!(l.store_ids().len(), 2);
    }
}

//! Hand-rolled CRC32C (Castagnoli, the iSCSI/ext4 polynomial), the checksum
//! behind the self-validating WAL frames and the v2 lineage frame trailer.
//! No external dependency, mirroring the hand-rolled [`crate::base64`]: the
//! integrity experiments should measure a realistic checksum, not a stub.
//!
//! The implementation is the classic slicing-by-8 table walk: eight 256-entry
//! tables generated at compile time let the hot loop fold 8 input bytes per
//! iteration with independent lookups, breaking the byte-at-a-time dependency
//! chain. On the engine workload this keeps the per-record cost in the low
//! tens of nanoseconds — well inside the <5% hop budget the bench artifact
//! (`BENCH_engine.json`) tracks.

/// Reflected Castagnoli polynomial (0x1EDC6F41 bit-reversed).
const POLY: u32 = 0x82F6_3B78;

/// The slicing-by-8 tables: `TABLES[0]` is the plain byte-at-a-time table,
/// `TABLES[k]` advances a byte that sits `k` positions deeper in the stream.
const fn make_tables() -> [[u32; 256]; 8] {
    let mut t = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut k = 0;
        while k < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            k += 1;
        }
        t[0][i] = crc;
        i += 1;
    }
    let mut i = 0;
    while i < 256 {
        let mut j = 1;
        let mut crc = t[0][i];
        while j < 8 {
            crc = t[0][(crc & 0xff) as usize] ^ (crc >> 8);
            t[j][i] = crc;
            j += 1;
        }
        i += 1;
    }
    t
}

static TABLES: [[u32; 256]; 8] = make_tables();

/// CRC32C of `bytes` (initial value and final XOR both `0xFFFF_FFFF`, input
/// and output reflected — the standard parameterization, so the output
/// matches iSCSI/ext4/SSE4.2 `crc32` hardware vectors).
pub fn crc32c(bytes: &[u8]) -> u32 {
    update(!0u32, bytes) ^ !0u32
}

/// Folds `bytes` into a running (pre-inverted) CRC state. Exposed so callers
/// that frame multiple segments can checksum without concatenating; start
/// from `!0u32` and finish with `^ !0u32` (or use [`crc32c`] directly).
pub fn update(mut crc: u32, bytes: &[u8]) -> u32 {
    let mut chunks = bytes.chunks_exact(8);
    for chunk in &mut chunks {
        // The two halves load as little-endian words; the first is folded
        // into the running state, the second is independent of it, so the
        // eight lookups can issue in parallel.
        let lo = crc ^ u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
        let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
        crc = TABLES[7][(lo & 0xff) as usize]
            ^ TABLES[6][((lo >> 8) & 0xff) as usize]
            ^ TABLES[5][((lo >> 16) & 0xff) as usize]
            ^ TABLES[4][(lo >> 24) as usize]
            ^ TABLES[3][(hi & 0xff) as usize]
            ^ TABLES[2][((hi >> 8) & 0xff) as usize]
            ^ TABLES[1][((hi >> 16) & 0xff) as usize]
            ^ TABLES[0][(hi >> 24) as usize];
    }
    for &b in chunks.remainder() {
        crc = TABLES[0][((crc ^ b as u32) & 0xff) as usize] ^ (crc >> 8);
    }
    crc
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Bit-at-a-time reference straight from the polynomial definition,
    /// sharing nothing with the table path.
    fn reference(bytes: &[u8]) -> u32 {
        let mut crc = !0u32;
        for &b in bytes {
            crc ^= b as u32;
            for _ in 0..8 {
                crc = if crc & 1 != 0 {
                    (crc >> 1) ^ POLY
                } else {
                    crc >> 1
                };
            }
        }
        !crc
    }

    #[test]
    fn known_vectors() {
        // RFC 3720 §B.4 / SSE4.2 test vectors.
        assert_eq!(crc32c(b""), 0);
        assert_eq!(crc32c(b"123456789"), 0xE306_9283);
        assert_eq!(crc32c(&[0u8; 32]), 0x8A91_36AA);
        assert_eq!(crc32c(&[0xFFu8; 32]), 0x62A8_AB43);
        let ascending: Vec<u8> = (0u8..32).collect();
        assert_eq!(crc32c(&ascending), 0x46DD_794E);
        let descending: Vec<u8> = (0u8..32).rev().collect();
        assert_eq!(crc32c(&descending), 0x113F_DB5C);
    }

    #[test]
    fn slicing_matches_the_bitwise_reference() {
        // Every length 0..=67 crosses the chunk/remainder boundary several
        // ways; contents are a deterministic ramp with some structure.
        for len in 0..=67usize {
            let data: Vec<u8> = (0..len)
                .map(|i| (i as u8).wrapping_mul(37).wrapping_add(11))
                .collect();
            assert_eq!(crc32c(&data), reference(&data), "len {len}");
        }
    }

    #[test]
    fn incremental_update_matches_one_shot() {
        let data: Vec<u8> = (0..100u8).collect();
        for split in [0, 1, 7, 8, 9, 50, 99, 100] {
            let mut crc = !0u32;
            crc = update(crc, &data[..split]);
            crc = update(crc, &data[split..]);
            assert_eq!(crc ^ !0u32, crc32c(&data), "split {split}");
        }
    }

    #[test]
    fn single_bit_flips_change_the_checksum() {
        let data: Vec<u8> = (0..64u8).collect();
        let base = crc32c(&data);
        for byte in 0..data.len() {
            for bit in 0..8 {
                let mut flipped = data.clone();
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32c(&flipped), base, "flip {byte}:{bit} undetected");
            }
        }
    }
}

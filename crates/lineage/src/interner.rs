//! Deterministic datastore-name interner.
//!
//! Lineages reference a small, stable universe of datastore names (a
//! deployment has a handful of stores; §7.4 lineages carry a few deps), yet
//! the pre-interning representation re-hashed and re-compared those names on
//! every [`crate::WriteId`] comparison and every serialization. The interner
//! maps each distinct name to a dense [`StoreId`] once, so the hot paths —
//! write-id equality/ordering, lineage dep sorting, barrier grouping, wire
//! string-table construction — become integer operations.
//!
//! Determinism: identifiers are assigned in first-intern order. The
//! simulation is single-threaded and deterministic, so two runs of the same
//! seeded workload intern the same names in the same order and observe
//! identical [`StoreId`] values (asserted by `tests/lineage_determinism.rs`).
//! The interner is thread-local — every lineage type in this workspace is
//! `!Send` (`Rc`-based), so ids never cross threads.
//!
//! [`StoreId`]s are a process-local acceleration only: they never appear in
//! the v1 wire format, which still carries datastore names as strings.

use std::cell::RefCell;
// lint: allow(nondeterministic-map, lookup-only index — never iterated, so
// iteration order cannot escape; hashing keeps interning O(1) on the hot path)
use std::collections::HashMap;
use std::fmt;
use std::rc::Rc;

/// Dense identifier for an interned datastore name.
///
/// `Copy`, integer equality/hash. Deliberately **not** `Ord`: ids are
/// assigned in first-intern order, so sorting by id would depend on
/// interning history rather than on names — [`crate::WriteId`]'s canonical
/// (wire-stable) ordering compares the names themselves.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct StoreId(u32);

#[derive(Default)]
struct Interner {
    names: Vec<Rc<str>>,
    // lint: allow(nondeterministic-map, get/insert only; ids come from the
    // insertion-ordered `names` vector, never from map iteration)
    index: HashMap<Rc<str>, u32>,
}

thread_local! {
    static INTERNER: RefCell<Interner> = RefCell::new(Interner::default());
}

impl StoreId {
    /// Interns `name`, returning its id (allocating one in first-intern
    /// order if the name is new).
    pub fn intern(name: &str) -> StoreId {
        INTERNER.with(|cell| {
            let mut interner = cell.borrow_mut();
            if let Some(&id) = interner.index.get(name) {
                return StoreId(id);
            }
            let id = u32::try_from(interner.names.len()).expect("interner overflow");
            let name: Rc<str> = Rc::from(name);
            interner.names.push(Rc::clone(&name));
            interner.index.insert(name, id);
            StoreId(id)
        })
    }

    /// Looks a name up without interning it.
    pub fn lookup(name: &str) -> Option<StoreId> {
        INTERNER.with(|cell| cell.borrow().index.get(name).map(|&id| StoreId(id)))
    }

    /// The interned name. O(1) — a vector index plus an `Rc` bump.
    pub fn name(self) -> Rc<str> {
        INTERNER.with(|cell| {
            let interner = cell.borrow();
            Rc::clone(
                interner
                    .names
                    .get(self.0 as usize)
                    .expect("StoreId from a foreign interner"),
            )
        })
    }

    /// The raw id value (diagnostics; never serialized).
    pub fn as_u32(self) -> u32 {
        self.0
    }
}

/// Number of names interned so far on this thread.
pub fn interned_count() -> usize {
    INTERNER.with(|cell| cell.borrow().names.len())
}

/// All interned names in id order — the deterministic first-intern sequence.
pub fn snapshot() -> Vec<Rc<str>> {
    INTERNER.with(|cell| cell.borrow().names.clone())
}

impl fmt::Debug for StoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}#{}", self.name(), self.0)
    }
}

impl fmt::Display for StoreId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let a = StoreId::intern("interner-test-idempotent");
        let b = StoreId::intern("interner-test-idempotent");
        assert_eq!(a, b);
        assert_eq!(&*a.name(), "interner-test-idempotent");
    }

    #[test]
    fn distinct_names_get_distinct_ids() {
        let a = StoreId::intern("interner-test-distinct-a");
        let b = StoreId::intern("interner-test-distinct-b");
        assert_ne!(a, b);
    }

    #[test]
    fn ids_are_assigned_in_first_intern_order() {
        let a = StoreId::intern("interner-test-order-a");
        let b = StoreId::intern("interner-test-order-b");
        assert!(a.as_u32() < b.as_u32());
        // Re-interning does not move either.
        assert_eq!(StoreId::intern("interner-test-order-a"), a);
        assert_eq!(StoreId::intern("interner-test-order-b"), b);
    }

    #[test]
    fn lookup_does_not_intern() {
        assert_eq!(StoreId::lookup("interner-test-never-interned"), None);
        let before = interned_count();
        assert_eq!(StoreId::lookup("interner-test-never-interned-2"), None);
        assert_eq!(interned_count(), before);
        let id = StoreId::intern("interner-test-lookup-hit");
        assert_eq!(StoreId::lookup("interner-test-lookup-hit"), Some(id));
    }

    #[test]
    fn snapshot_lists_names_in_id_order() {
        let a = StoreId::intern("interner-test-snapshot-a");
        let snap = snapshot();
        assert_eq!(&*snap[a.as_u32() as usize], "interner-test-snapshot-a");
    }
}

//! Vector clocks — the classical dependency-tracking alternative that §3.2
//! argues against for the cross-service setting.
//!
//! "The most common approach for tracking these dependencies is to use
//! vector clocks, where each entry contains the most recent version observed
//! for each process. […] in an ecosystem as large as Alibaba's, this would
//! require enforcing dependencies from possibly hundreds of services", i.e.
//! metadata proportional to the number of tracked entities rather than to
//! the number of *relevant* dependencies.
//!
//! This module provides a correct sparse vector clock with the same compact
//! wire discipline as [`crate::Lineage`], so the ablation benchmark can
//! compare the two fairly on the Alibaba-like trace.

use std::collections::BTreeMap;

use bytes::Buf;

use crate::varint::{get_str, get_varint, put_str, put_varint, CodecError};

/// A sparse vector clock: entity name → highest version observed.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct VectorClock {
    entries: BTreeMap<String, u64>,
}

/// Result of comparing two vector clocks.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ClockOrder {
    /// Identical.
    Equal,
    /// Strictly before the other.
    Before,
    /// Strictly after the other.
    After,
    /// Concurrent (incomparable).
    Concurrent,
}

const WIRE_VERSION: u8 = 1;

impl VectorClock {
    /// Creates an empty clock.
    pub fn new() -> Self {
        VectorClock::default()
    }

    /// Records that `entity` reached `version`; keeps the maximum.
    pub fn observe(&mut self, entity: impl Into<String>, version: u64) {
        let e = self.entries.entry(entity.into()).or_insert(0);
        *e = (*e).max(version);
    }

    /// The version recorded for `entity` (0 when absent).
    pub fn get(&self, entity: &str) -> u64 {
        self.entries.get(entity).copied().unwrap_or(0)
    }

    /// Number of nonzero entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the clock is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Pointwise maximum (the merge on message receipt).
    pub fn merge(&mut self, other: &VectorClock) {
        for (k, v) in &other.entries {
            self.observe(k.clone(), *v);
        }
    }

    /// Whether every entry of `self` is ≤ the corresponding entry of
    /// `other`.
    pub fn dominated_by(&self, other: &VectorClock) -> bool {
        self.entries.iter().all(|(k, v)| *v <= other.get(k))
    }

    /// Compares two clocks.
    pub fn compare(&self, other: &VectorClock) -> ClockOrder {
        let le = self.dominated_by(other);
        let ge = other.dominated_by(self);
        match (le, ge) {
            (true, true) => ClockOrder::Equal,
            (true, false) => ClockOrder::Before,
            (false, true) => ClockOrder::After,
            (false, false) => ClockOrder::Concurrent,
        }
    }

    /// Serializes with the same varint + name discipline as lineages.
    pub fn serialize(&self) -> Vec<u8> {
        let mut buf = Vec::with_capacity(1 + self.entries.len() * 12);
        buf.push(WIRE_VERSION);
        put_varint(&mut buf, self.entries.len() as u64);
        for (k, v) in &self.entries {
            put_str(&mut buf, k);
            put_varint(&mut buf, *v);
        }
        buf
    }

    /// Decodes [`VectorClock::serialize`] output.
    pub fn deserialize(mut bytes: &[u8]) -> Result<VectorClock, CodecError> {
        let buf = &mut bytes;
        if !buf.has_remaining() {
            return Err(CodecError::UnexpectedEof);
        }
        let version = buf.get_u8();
        if version != WIRE_VERSION {
            return Err(CodecError::UnknownVersion(version));
        }
        let n = get_varint(buf)? as usize;
        if n > buf.remaining().saturating_add(1) * 2 {
            return Err(CodecError::LengthOutOfBounds);
        }
        let mut clock = VectorClock::new();
        for _ in 0..n {
            let k = get_str(buf)?;
            let v = get_varint(buf)?;
            clock.observe(k, v);
        }
        Ok(clock)
    }

    /// Serialized size in bytes.
    pub fn wire_size(&self) -> usize {
        self.serialize().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn observe_keeps_maximum() {
        let mut c = VectorClock::new();
        c.observe("a", 3);
        c.observe("a", 1);
        assert_eq!(c.get("a"), 3);
        assert_eq!(c.get("missing"), 0);
    }

    #[test]
    fn merge_is_pointwise_max() {
        let mut a = VectorClock::new();
        a.observe("x", 1);
        a.observe("y", 5);
        let mut b = VectorClock::new();
        b.observe("y", 2);
        b.observe("z", 7);
        a.merge(&b);
        assert_eq!(a.get("x"), 1);
        assert_eq!(a.get("y"), 5);
        assert_eq!(a.get("z"), 7);
    }

    #[test]
    fn compare_orders() {
        let mut a = VectorClock::new();
        a.observe("x", 1);
        let mut b = a.clone();
        assert_eq!(a.compare(&b), ClockOrder::Equal);
        b.observe("x", 2);
        assert_eq!(a.compare(&b), ClockOrder::Before);
        assert_eq!(b.compare(&a), ClockOrder::After);
        let mut c = VectorClock::new();
        c.observe("y", 1);
        assert_eq!(a.compare(&c), ClockOrder::Concurrent);
    }

    #[test]
    fn serialization_round_trips() {
        let mut c = VectorClock::new();
        for i in 0..20 {
            c.observe(format!("svc-{i}"), i * 3 + 1);
        }
        let back = VectorClock::deserialize(&c.serialize()).unwrap();
        assert_eq!(back, c);
    }

    #[test]
    fn deserialize_rejects_garbage() {
        assert!(VectorClock::deserialize(&[]).is_err());
        assert!(VectorClock::deserialize(&[9]).is_err());
        let mut c = VectorClock::new();
        c.observe("a", 1);
        let mut bytes = c.serialize();
        bytes.truncate(bytes.len() - 1);
        assert!(VectorClock::deserialize(&bytes).is_err());
    }

    #[test]
    fn size_grows_with_entries_not_deps() {
        // The §3.2 argument in miniature: a clock over many entities is big
        // even when only one dependency matters.
        let mut clock = VectorClock::new();
        for i in 0..500 {
            clock.observe(format!("service-{i:04}"), 1);
        }
        let mut lineage = crate::Lineage::new(crate::LineageId(1));
        lineage.append(crate::WriteId::new("service-0001", "k", 1));
        assert!(clock.wire_size() > 20 * lineage.wire_size());
    }
}

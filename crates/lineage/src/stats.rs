//! Lineage-plane instrumentation counters.
//!
//! The perf baseline (`crates/bench/src/bin/perf_baseline.rs`) needs an
//! allocation proxy that is deterministic across same-seed runs — wall-clock
//! and real allocator telemetry are not. These thread-local counters track
//! the events that correspond one-to-one with heap work in the lineage
//! plane: copy-on-write dep-vector materializations and wire (re-)encodes
//! versus cache hits. They are plain `Cell<u64>` bumps, cheap enough to stay
//! enabled unconditionally.

use std::cell::Cell;

thread_local! {
    static COW_DEP_CLONES: Cell<u64> = const { Cell::new(0) };
    static WIRE_ENCODES: Cell<u64> = const { Cell::new(0) };
    static WIRE_CACHE_HITS: Cell<u64> = const { Cell::new(0) };
    static B64_ENCODES: Cell<u64> = const { Cell::new(0) };
    static B64_CACHE_HITS: Cell<u64> = const { Cell::new(0) };
    static FRAME_ENCODES: Cell<u64> = const { Cell::new(0) };
    static FRAME_CACHE_HITS: Cell<u64> = const { Cell::new(0) };
    static CANONICAL_DECODES: Cell<u64> = const { Cell::new(0) };
}

/// A snapshot of the lineage-plane counters on this thread.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LineageStats {
    /// Times a shared dep vector was deep-copied before mutation (the
    /// copy-on-write slow path — one `Vec<WriteId>` allocation each).
    pub cow_dep_clones: u64,
    /// Times the v1 wire encoding was actually produced (one buffer
    /// allocation each).
    pub wire_encodes: u64,
    /// Times `wire_bytes` was served from the cache (no allocation).
    pub wire_cache_hits: u64,
    /// Times the base64 baggage form was actually encoded.
    pub b64_encodes: u64,
    /// Times the base64 baggage form was served from the cache.
    pub b64_cache_hits: u64,
    /// Times the v2 binary frame was actually assembled (one buffer
    /// allocation each).
    pub frame_encodes: u64,
    /// Times `frame_bytes` was served from the cache (no allocation).
    pub frame_cache_hits: u64,
    /// Decodes whose input was byte-for-byte canonical, letting the decoder
    /// adopt the input as the cached wire form (re-serialization is free).
    pub canonical_decodes: u64,
}

/// Reads the counters.
pub fn snapshot() -> LineageStats {
    LineageStats {
        cow_dep_clones: COW_DEP_CLONES.with(Cell::get),
        wire_encodes: WIRE_ENCODES.with(Cell::get),
        wire_cache_hits: WIRE_CACHE_HITS.with(Cell::get),
        b64_encodes: B64_ENCODES.with(Cell::get),
        b64_cache_hits: B64_CACHE_HITS.with(Cell::get),
        frame_encodes: FRAME_ENCODES.with(Cell::get),
        frame_cache_hits: FRAME_CACHE_HITS.with(Cell::get),
        canonical_decodes: CANONICAL_DECODES.with(Cell::get),
    }
}

/// Zeroes the counters (start of a measured workload).
pub fn reset() {
    COW_DEP_CLONES.with(|c| c.set(0));
    WIRE_ENCODES.with(|c| c.set(0));
    WIRE_CACHE_HITS.with(|c| c.set(0));
    B64_ENCODES.with(|c| c.set(0));
    B64_CACHE_HITS.with(|c| c.set(0));
    FRAME_ENCODES.with(|c| c.set(0));
    FRAME_CACHE_HITS.with(|c| c.set(0));
    CANONICAL_DECODES.with(|c| c.set(0));
}

pub(crate) fn count_cow_dep_clone() {
    COW_DEP_CLONES.with(|c| c.set(c.get() + 1));
}

pub(crate) fn count_wire_encode() {
    WIRE_ENCODES.with(|c| c.set(c.get() + 1));
}

pub(crate) fn count_wire_cache_hit() {
    WIRE_CACHE_HITS.with(|c| c.set(c.get() + 1));
}

pub(crate) fn count_b64_encode() {
    B64_ENCODES.with(|c| c.set(c.get() + 1));
}

pub(crate) fn count_b64_cache_hit() {
    B64_CACHE_HITS.with(|c| c.set(c.get() + 1));
}

pub(crate) fn count_frame_encode() {
    FRAME_ENCODES.with(|c| c.set(c.get() + 1));
}

pub(crate) fn count_frame_cache_hit() {
    FRAME_CACHE_HITS.with(|c| c.set(c.get() + 1));
}

pub(crate) fn count_canonical_decode() {
    CANONICAL_DECODES.with(|c| c.set(c.get() + 1));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_accumulate_and_reset() {
        reset();
        count_cow_dep_clone();
        count_wire_encode();
        count_wire_encode();
        count_wire_cache_hit();
        let s = snapshot();
        assert_eq!(s.cow_dep_clones, 1);
        assert_eq!(s.wire_encodes, 2);
        assert_eq!(s.wire_cache_hits, 1);
        reset();
        assert_eq!(snapshot(), LineageStats::default());
    }
}

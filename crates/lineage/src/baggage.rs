//! Request-context baggage, mirroring OpenTelemetry baggage (paper §6.2,
//! §6.4: "Antipode piggybacks lineage metadata on OpenTelemetry baggage").
//!
//! Baggage is a string-keyed map propagated with every RPC and queue message.
//! The lineage rides in a structural slot next to the entries, so injecting
//! it ([`Baggage::set_lineage`]) is an O(1) clone — no encoding happens until
//! the baggage actually crosses a wire. Two wire forms exist:
//!
//! - [`Baggage::to_header`]/[`Baggage::from_header`] — the textual v1 form
//!   (`k=v` pairs, lineage as base64 under [`LINEAGE_KEY`]), byte-identical
//!   to the pre-slot implementation and kept as the compat codec;
//! - [`Baggage::to_frame`]/[`Baggage::from_frame`] — the flat binary form:
//!   varint-prefixed entry strings plus the lineage's self-delimiting v2
//!   frame, with no base64 expansion and no percent-escaping.

use std::collections::BTreeMap;
use std::rc::Rc;

use bytes::{Buf, BufMut};

use crate::base64;
use crate::lineage::Lineage;
use crate::varint::{get_str, get_varint, put_str, put_varint, CodecError};

/// Baggage key under which the serialized lineage travels.
pub const LINEAGE_KEY: &str = "antipode-lineage";

/// A propagated string-keyed context map.
#[derive(Clone, Debug, Default)]
pub struct Baggage {
    entries: BTreeMap<String, String>,
    /// The structural lineage slot. Invariant: when this is `Some`, the
    /// entry map holds no [`LINEAGE_KEY`] entry (raw string entries — e.g.
    /// parsed headers — live in the map until decoded on demand).
    lineage: Option<Lineage>,
}

/// Errors from extracting a lineage out of baggage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaggageError {
    /// No lineage entry present.
    Missing,
    /// The entry was not valid base64.
    Encoding,
    /// The decoded bytes were not a valid lineage payload.
    Codec(CodecError),
}

impl std::fmt::Display for BaggageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaggageError::Missing => write!(f, "baggage carries no lineage"),
            BaggageError::Encoding => write!(f, "lineage baggage entry is not valid base64"),
            BaggageError::Codec(e) => write!(f, "lineage payload: {e}"),
        }
    }
}
impl std::error::Error for BaggageError {}

impl PartialEq for Baggage {
    fn eq(&self, other: &Self) -> bool {
        // Compare the non-lineage entries structurally and the lineage by
        // value, regardless of whether it sits in the slot or (as after
        // `from_header`) as an undecoded base64 entry.
        let a = self
            .entries
            .iter()
            .filter(|(k, _)| k.as_str() != LINEAGE_KEY);
        let b = other
            .entries
            .iter()
            .filter(|(k, _)| k.as_str() != LINEAGE_KEY);
        a.eq(b) && self.lineage_b64() == other.lineage_b64()
    }
}

impl Eq for Baggage {}

impl Baggage {
    /// Creates empty baggage.
    pub fn new() -> Self {
        Baggage::default()
    }

    /// Sets an entry, returning the previous value. Setting [`LINEAGE_KEY`]
    /// directly stores the raw string (the compat path for hand-built
    /// headers) and displaces any structural lineage.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<String>) -> Option<String> {
        let key = key.into();
        let displaced = if key == LINEAGE_KEY {
            self.lineage.take().map(|l| l.wire_b64().to_string())
        } else {
            None
        };
        self.entries.insert(key, value.into()).or(displaced)
    }

    /// Looks up an entry. The structural lineage is not visible here — use
    /// [`Baggage::lineage`] (raw [`LINEAGE_KEY`] entries set via
    /// [`Baggage::set`] or parsed from headers are).
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(String::as_str)
    }

    /// Removes an entry, returning its value ([`LINEAGE_KEY`] removes the
    /// structural lineage too, rendering it to base64 if needed).
    pub fn remove(&mut self, key: &str) -> Option<String> {
        let displaced = if key == LINEAGE_KEY {
            self.lineage.take().map(|l| l.wire_b64().to_string())
        } else {
            None
        };
        self.entries.remove(key).or(displaced)
    }

    /// Number of entries, counting the lineage (slot or raw) as one.
    pub fn len(&self) -> usize {
        self.entries.len() + usize::from(self.lineage.is_some())
    }

    /// Whether the baggage is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty() && self.lineage.is_none()
    }

    /// Stores a lineage in the structural slot: an O(1) clone (`Rc` bumps),
    /// no encoding. The textual or binary form is produced lazily — and
    /// served from the lineage's own caches — only when the baggage is
    /// rendered by [`Baggage::to_header`] or [`Baggage::to_frame`].
    pub fn set_lineage(&mut self, lineage: &Lineage) {
        self.entries.remove(LINEAGE_KEY);
        self.lineage = Some(lineage.clone());
    }

    /// Extracts the lineage, if any.
    ///
    /// A structural lineage (set by [`Baggage::set_lineage`] or decoded by
    /// [`Baggage::from_frame`]) is returned by clone. Otherwise the raw
    /// [`LINEAGE_KEY`] entry is decoded; when that payload is canonical, the
    /// decoded lineage adopts both the wire bytes and the incoming base64
    /// string as its caches, so forwarding it unchanged into the next hop's
    /// baggage re-uses the exact header value with no re-encoding.
    pub fn lineage(&self) -> Result<Lineage, BaggageError> {
        if let Some(l) = &self.lineage {
            return Ok(l.clone());
        }
        let raw = self.get(LINEAGE_KEY).ok_or(BaggageError::Missing)?;
        let bytes = base64::decode(raw).map_err(|_| BaggageError::Encoding)?;
        let lineage = Lineage::deserialize(&bytes).map_err(BaggageError::Codec)?;
        // Sound because `decode` is strict: `raw` is the unique base64 of
        // `bytes`, and a canonical decode cached exactly those bytes.
        lineage.adopt_b64_cache(raw.into());
        Ok(lineage)
    }

    /// Removes the lineage entry (the paper's `stop`: execution ends and the
    /// context drops the ongoing dependency set).
    pub fn clear_lineage(&mut self) {
        self.lineage = None;
        self.entries.remove(LINEAGE_KEY);
    }

    /// The base64 rendering of the lineage, from whichever representation
    /// holds it (slot wins; raw entries pass through verbatim).
    fn lineage_b64(&self) -> Option<Rc<str>> {
        match &self.lineage {
            Some(l) => Some(l.wire_b64()),
            None => self.entries.get(LINEAGE_KEY).map(|s| s.as_str().into()),
        }
    }

    /// Renders the W3C-baggage-style header `k1=v1,k2=v2` with percent
    /// escaping of `%`, `,` and `=` in keys and values. The structural
    /// lineage renders under [`LINEAGE_KEY`] at its sorted position, so the
    /// bytes are identical to the pre-slot implementation (asserted by the
    /// golden header test).
    pub fn to_header(&self) -> String {
        let lin_b64 = self.lineage.as_ref().map(|l| l.wire_b64());
        let mut lin_pending = lin_b64.is_some();
        let mut out = String::new();
        let mut first = true;
        let push_item = |out: &mut String, first: &mut bool, k: &str, v: &str| {
            if !*first {
                out.push(',');
            }
            *first = false;
            out.push_str(&escape(k));
            out.push('=');
            out.push_str(&escape(v));
        };
        for (k, v) in &self.entries {
            if lin_pending && k.as_str() > LINEAGE_KEY {
                push_item(
                    &mut out,
                    &mut first,
                    LINEAGE_KEY,
                    lin_b64.as_deref().expect("pending implies present"),
                );
                lin_pending = false;
            }
            push_item(&mut out, &mut first, k, v);
        }
        if lin_pending {
            push_item(
                &mut out,
                &mut first,
                LINEAGE_KEY,
                lin_b64.as_deref().expect("pending implies present"),
            );
        }
        out
    }

    /// Parses a header produced by [`Baggage::to_header`]. Malformed items
    /// (no `=`) are skipped, matching the lenient posture of real
    /// propagators. The lineage entry stays a raw string until
    /// [`Baggage::lineage`] decodes it (lenient: a corrupt entry surfaces at
    /// extraction, not at parse).
    pub fn from_header(header: &str) -> Baggage {
        let mut b = Baggage::new();
        for item in header.split(',') {
            if item.is_empty() {
                continue;
            }
            if let Some((k, v)) = item.split_once('=') {
                b.set(unescape(k), unescape(v));
            }
        }
        b
    }

    /// Size in bytes of the header form — what request propagation actually
    /// adds to each RPC.
    pub fn header_size(&self) -> usize {
        self.to_header().len()
    }

    /// Renders the flat binary frame: `[varint n][k v string pairs…]`
    /// followed by a presence byte and, if present, the lineage's
    /// self-delimiting v2 frame. No base64 (saves the ~33% expansion), no
    /// escaping, and the lineage bytes come straight from the frame cache —
    /// a pass-through hop memcpys cached bytes and encodes nothing.
    pub fn to_frame(&self) -> Vec<u8> {
        let lin_frame = match &self.lineage {
            Some(l) => Some(l.frame_bytes()),
            // Compat: a raw base64 entry still travels as a binary frame.
            None => match self.lineage() {
                Ok(l) => Some(l.frame_bytes()),
                Err(_) => None,
            },
        };
        let mut buf = Vec::with_capacity(64 + lin_frame.as_ref().map_or(0, |f| f.len()));
        let n = self
            .entries
            .iter()
            .filter(|(k, _)| k.as_str() != LINEAGE_KEY)
            .count();
        put_varint(&mut buf, n as u64);
        for (k, v) in &self.entries {
            if k.as_str() == LINEAGE_KEY {
                continue;
            }
            put_str(&mut buf, k);
            put_str(&mut buf, v);
        }
        match lin_frame {
            Some(f) => {
                buf.put_u8(1);
                buf.extend_from_slice(&f);
            }
            None => buf.put_u8(0),
        }
        buf
    }

    /// Parses a frame produced by [`Baggage::to_frame`]. Unlike headers,
    /// frames are machine-built, so corruption is an error, not something to
    /// skip past. A canonical embedded lineage lands in the structural slot
    /// with its frame cache adopted — re-rendering is a memcpy.
    pub fn from_frame(bytes: &[u8]) -> Result<Baggage, BaggageError> {
        let total_len = bytes.len();
        let mut slice = bytes;
        let buf = &mut slice;
        let n = get_varint(buf).map_err(BaggageError::Codec)? as usize;
        // Each entry costs at least two 1-byte length prefixes.
        if n > buf.remaining() / 2 {
            return Err(BaggageError::Codec(CodecError::LengthOutOfBounds));
        }
        let mut b = Baggage::new();
        for _ in 0..n {
            let k = get_str(buf).map_err(BaggageError::Codec)?;
            let v = get_str(buf).map_err(BaggageError::Codec)?;
            b.entries.insert(k, v);
        }
        if !buf.has_remaining() {
            return Err(BaggageError::Codec(CodecError::UnexpectedEof));
        }
        match buf.get_u8() {
            0 => {}
            1 => {
                let consumed = total_len - buf.remaining();
                let (lineage, _) =
                    Lineage::decode_frame(&bytes[consumed..]).map_err(BaggageError::Codec)?;
                b.lineage = Some(lineage);
            }
            _ => return Err(BaggageError::Codec(CodecError::LengthOutOfBounds)),
        }
        Ok(b)
    }

    /// Size in bytes of the binary frame form.
    pub fn frame_size(&self) -> usize {
        self.to_frame().len()
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            ',' => out.push_str("%2C"),
            '=' => out.push_str("%3D"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() + 1 && i + 3 <= bytes.len() {
            match &bytes[i + 1..i + 3] {
                b"25" => {
                    out.push('%');
                    i += 3;
                    continue;
                }
                b"2C" => {
                    out.push(',');
                    i += 3;
                    continue;
                }
                b"3D" => {
                    out.push('=');
                    i += 3;
                    continue;
                }
                _ => {}
            }
        }
        // Safe: we only ever skip whole ASCII escape triples, so `i` stays on
        // a char boundary.
        let c = s[i..].chars().next().expect("index is on a char boundary");
        out.push(c);
        i += c.len_utf8();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::LineageId;
    use crate::write_id::WriteId;

    #[test]
    fn set_get_remove() {
        let mut b = Baggage::new();
        assert!(b.is_empty());
        b.set("trace-id", "abc");
        assert_eq!(b.get("trace-id"), Some("abc"));
        assert_eq!(b.remove("trace-id"), Some("abc".to_string()));
        assert!(b.get("trace-id").is_none());
    }

    #[test]
    fn lineage_round_trip_through_baggage() {
        let mut l = Lineage::new(LineageId(7));
        l.append(WriteId::new("mysql", "post-1", 3));
        let mut b = Baggage::new();
        b.set_lineage(&l);
        assert_eq!(b.lineage().unwrap(), l);
    }

    #[test]
    fn set_lineage_is_encode_free() {
        let mut l = Lineage::new(LineageId(7));
        l.append(WriteId::new("mysql", "post-1", 3));
        let before = crate::stats::snapshot();
        let mut b = Baggage::new();
        b.set_lineage(&l);
        let _ = b.lineage().unwrap();
        let after = crate::stats::snapshot();
        assert_eq!(
            (after.wire_encodes, after.b64_encodes, after.frame_encodes),
            (
                before.wire_encodes,
                before.b64_encodes,
                before.frame_encodes
            ),
            "slot-based inject/extract must not touch any codec"
        );
    }

    #[test]
    fn missing_lineage() {
        assert_eq!(Baggage::new().lineage(), Err(BaggageError::Missing));
    }

    #[test]
    fn corrupt_lineage_entry() {
        let mut b = Baggage::new();
        b.set(LINEAGE_KEY, "!!!not-base64!!!");
        assert_eq!(b.lineage(), Err(BaggageError::Encoding));
        b.set(LINEAGE_KEY, crate::base64::encode(&[0xFF, 0x00]));
        assert!(matches!(b.lineage(), Err(BaggageError::Codec(_))));
    }

    #[test]
    fn raw_entry_displaces_structural_lineage() {
        let mut l = Lineage::new(LineageId(4));
        l.append(WriteId::new("s", "k", 1));
        let mut b = Baggage::new();
        b.set_lineage(&l);
        b.set(LINEAGE_KEY, "!!!not-base64!!!");
        assert_eq!(b.lineage(), Err(BaggageError::Encoding));
        assert_eq!(b.len(), 1);
    }

    #[test]
    fn header_round_trip() {
        let mut b = Baggage::new();
        b.set("a", "1");
        b.set("weird,key", "va=lue%");
        let h = b.to_header();
        let back = Baggage::from_header(&h);
        assert_eq!(back, b);
    }

    #[test]
    fn header_round_trip_with_lineage() {
        let mut l = Lineage::new(LineageId(42));
        l.append(WriteId::new("s3", "obj/1", 1));
        let mut b = Baggage::new();
        b.set_lineage(&l);
        b.set("request-id", "r-17");
        let back = Baggage::from_header(&b.to_header());
        assert_eq!(back.lineage().unwrap(), l);
        assert_eq!(back.get("request-id"), Some("r-17"));
    }

    #[test]
    fn slot_header_matches_raw_entry_header() {
        // The structural slot must render byte-identically to the old
        // entry-map representation, keys sorting around LINEAGE_KEY.
        let mut l = Lineage::new(LineageId(42));
        l.append(WriteId::new("s3", "obj/1", 1));
        let mut slot = Baggage::new();
        slot.set("aardvark", "1"); // sorts before "antipode-lineage"
        slot.set("zebra", "2"); // sorts after
        slot.set_lineage(&l);
        let mut raw = Baggage::new();
        raw.set("aardvark", "1");
        raw.set("zebra", "2");
        raw.set(LINEAGE_KEY, l.wire_b64().to_string());
        assert_eq!(slot.to_header(), raw.to_header());
        assert_eq!(slot, raw);
    }

    #[test]
    fn from_header_skips_malformed_items() {
        let b = Baggage::from_header("good=1,,bad-item,also=2");
        assert_eq!(b.len(), 2);
        assert_eq!(b.get("good"), Some("1"));
        assert_eq!(b.get("also"), Some("2"));
    }

    #[test]
    fn clear_lineage_removes_entry() {
        let mut b = Baggage::new();
        b.set_lineage(&Lineage::new(LineageId(1)));
        b.clear_lineage();
        assert_eq!(b.lineage(), Err(BaggageError::Missing));
    }

    #[test]
    fn frame_round_trip() {
        let mut l = Lineage::new(LineageId(42));
        l.append(WriteId::new("s3", "obj/1", 1));
        let mut b = Baggage::new();
        b.set_lineage(&l);
        b.set("request-id", "r-17");
        let frame = b.to_frame();
        let back = Baggage::from_frame(&frame).unwrap();
        assert_eq!(back.lineage().unwrap(), l);
        assert_eq!(back.get("request-id"), Some("r-17"));
        assert_eq!(back, b);
    }

    #[test]
    fn frame_without_lineage() {
        let mut b = Baggage::new();
        b.set("k", "v");
        let back = Baggage::from_frame(&b.to_frame()).unwrap();
        assert_eq!(back, b);
        assert_eq!(back.lineage(), Err(BaggageError::Missing));
    }

    #[test]
    fn frame_is_smaller_than_header_with_lineage() {
        let mut l = Lineage::new(LineageId(7));
        for i in 0..16 {
            l.append(WriteId::new("post-storage", format!("post-{i}"), i + 1));
        }
        let mut b = Baggage::new();
        b.set_lineage(&l);
        assert!(
            b.frame_size() < b.header_size(),
            "binary frame ({}) must beat base64 header ({})",
            b.frame_size(),
            b.header_size()
        );
    }

    #[test]
    fn frame_rejects_garbage() {
        assert!(Baggage::from_frame(&[]).is_err());
        // Hostile entry count with no bytes behind it.
        let mut buf = Vec::new();
        put_varint(&mut buf, u64::MAX);
        assert!(Baggage::from_frame(&buf).is_err());
        // Truncated: presence byte missing.
        let mut b = Baggage::new();
        b.set("k", "v");
        let frame = b.to_frame();
        assert!(Baggage::from_frame(&frame[..frame.len() - 1]).is_err());
        // Bad presence byte.
        let mut bad = frame.clone();
        *bad.last_mut().unwrap() = 7;
        assert!(Baggage::from_frame(&bad).is_err());
    }
}

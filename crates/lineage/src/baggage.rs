//! Request-context baggage, mirroring OpenTelemetry baggage (paper §6.2,
//! §6.4: "Antipode piggybacks lineage metadata on OpenTelemetry baggage").
//!
//! Baggage is a string-keyed map propagated with every RPC and queue message.
//! The lineage travels under [`LINEAGE_KEY`] as base64 of the compact wire
//! format; [`Baggage::to_header`]/[`Baggage::from_header`] give the textual
//! on-the-wire form whose size the metadata experiments measure.

use std::collections::BTreeMap;

use crate::base64;
use crate::lineage::Lineage;
use crate::varint::CodecError;

/// Baggage key under which the serialized lineage travels.
pub const LINEAGE_KEY: &str = "antipode-lineage";

/// A propagated string-keyed context map.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct Baggage {
    entries: BTreeMap<String, String>,
}

/// Errors from extracting a lineage out of baggage.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BaggageError {
    /// No lineage entry present.
    Missing,
    /// The entry was not valid base64.
    Encoding,
    /// The decoded bytes were not a valid lineage payload.
    Codec(CodecError),
}

impl std::fmt::Display for BaggageError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BaggageError::Missing => write!(f, "baggage carries no lineage"),
            BaggageError::Encoding => write!(f, "lineage baggage entry is not valid base64"),
            BaggageError::Codec(e) => write!(f, "lineage payload: {e}"),
        }
    }
}
impl std::error::Error for BaggageError {}

impl Baggage {
    /// Creates empty baggage.
    pub fn new() -> Self {
        Baggage::default()
    }

    /// Sets an entry, returning the previous value.
    pub fn set(&mut self, key: impl Into<String>, value: impl Into<String>) -> Option<String> {
        self.entries.insert(key.into(), value.into())
    }

    /// Looks up an entry.
    pub fn get(&self, key: &str) -> Option<&str> {
        self.entries.get(key).map(String::as_str)
    }

    /// Removes an entry.
    pub fn remove(&mut self, key: &str) -> Option<String> {
        self.entries.remove(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the baggage is empty.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Stores a lineage under [`LINEAGE_KEY`]. Uses the lineage's cached
    /// wire/base64 encoding, so injecting an unchanged lineage on every hop
    /// costs one string copy instead of a full re-serialization.
    pub fn set_lineage(&mut self, lineage: &Lineage) {
        self.set(LINEAGE_KEY, lineage.wire_b64().to_string());
    }

    /// Extracts the lineage, if any.
    ///
    /// When the payload is canonical, the decoded lineage adopts both the
    /// wire bytes and the incoming base64 string as its caches: forwarding
    /// it unchanged into the next hop's baggage re-uses the exact header
    /// value, no re-encoding at either layer.
    pub fn lineage(&self) -> Result<Lineage, BaggageError> {
        let raw = self.get(LINEAGE_KEY).ok_or(BaggageError::Missing)?;
        let bytes = base64::decode(raw).map_err(|_| BaggageError::Encoding)?;
        let lineage = Lineage::deserialize(&bytes).map_err(BaggageError::Codec)?;
        // Sound because `decode` is strict: `raw` is the unique base64 of
        // `bytes`, and a canonical decode cached exactly those bytes.
        lineage.adopt_b64_cache(raw.into());
        Ok(lineage)
    }

    /// Removes the lineage entry (the paper's `stop`: execution ends and the
    /// context drops the ongoing dependency set).
    pub fn clear_lineage(&mut self) {
        self.remove(LINEAGE_KEY);
    }

    /// Renders the W3C-baggage-style header `k1=v1,k2=v2` with percent
    /// escaping of `%`, `,` and `=` in keys and values.
    pub fn to_header(&self) -> String {
        let mut out = String::new();
        for (i, (k, v)) in self.entries.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&escape(k));
            out.push('=');
            out.push_str(&escape(v));
        }
        out
    }

    /// Parses a header produced by [`Baggage::to_header`]. Malformed items
    /// (no `=`) are skipped, matching the lenient posture of real
    /// propagators.
    pub fn from_header(header: &str) -> Baggage {
        let mut b = Baggage::new();
        for item in header.split(',') {
            if item.is_empty() {
                continue;
            }
            if let Some((k, v)) = item.split_once('=') {
                b.set(unescape(k), unescape(v));
            }
        }
        b
    }

    /// Size in bytes of the header form — what request propagation actually
    /// adds to each RPC.
    pub fn header_size(&self) -> usize {
        self.to_header().len()
    }
}

fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '%' => out.push_str("%25"),
            ',' => out.push_str("%2C"),
            '=' => out.push_str("%3D"),
            _ => out.push(c),
        }
    }
    out
}

fn unescape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' && i + 2 < bytes.len() + 1 && i + 3 <= bytes.len() {
            match &bytes[i + 1..i + 3] {
                b"25" => {
                    out.push('%');
                    i += 3;
                    continue;
                }
                b"2C" => {
                    out.push(',');
                    i += 3;
                    continue;
                }
                b"3D" => {
                    out.push('=');
                    i += 3;
                    continue;
                }
                _ => {}
            }
        }
        // Safe: we only ever skip whole ASCII escape triples, so `i` stays on
        // a char boundary.
        let c = s[i..].chars().next().expect("index is on a char boundary");
        out.push(c);
        i += c.len_utf8();
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lineage::LineageId;
    use crate::write_id::WriteId;

    #[test]
    fn set_get_remove() {
        let mut b = Baggage::new();
        assert!(b.is_empty());
        b.set("trace-id", "abc");
        assert_eq!(b.get("trace-id"), Some("abc"));
        assert_eq!(b.remove("trace-id"), Some("abc".to_string()));
        assert!(b.get("trace-id").is_none());
    }

    #[test]
    fn lineage_round_trip_through_baggage() {
        let mut l = Lineage::new(LineageId(7));
        l.append(WriteId::new("mysql", "post-1", 3));
        let mut b = Baggage::new();
        b.set_lineage(&l);
        assert_eq!(b.lineage().unwrap(), l);
    }

    #[test]
    fn missing_lineage() {
        assert_eq!(Baggage::new().lineage(), Err(BaggageError::Missing));
    }

    #[test]
    fn corrupt_lineage_entry() {
        let mut b = Baggage::new();
        b.set(LINEAGE_KEY, "!!!not-base64!!!");
        assert_eq!(b.lineage(), Err(BaggageError::Encoding));
        b.set(LINEAGE_KEY, crate::base64::encode(&[0xFF, 0x00]));
        assert!(matches!(b.lineage(), Err(BaggageError::Codec(_))));
    }

    #[test]
    fn header_round_trip() {
        let mut b = Baggage::new();
        b.set("a", "1");
        b.set("weird,key", "va=lue%");
        let h = b.to_header();
        let back = Baggage::from_header(&h);
        assert_eq!(back, b);
    }

    #[test]
    fn header_round_trip_with_lineage() {
        let mut l = Lineage::new(LineageId(42));
        l.append(WriteId::new("s3", "obj/1", 1));
        let mut b = Baggage::new();
        b.set_lineage(&l);
        b.set("request-id", "r-17");
        let back = Baggage::from_header(&b.to_header());
        assert_eq!(back.lineage().unwrap(), l);
        assert_eq!(back.get("request-id"), Some("r-17"));
    }

    #[test]
    fn from_header_skips_malformed_items() {
        let b = Baggage::from_header("good=1,,bad-item,also=2");
        assert_eq!(b.len(), 2);
        assert_eq!(b.get("good"), Some("1"));
        assert_eq!(b.get("also"), Some("2"));
    }

    #[test]
    fn clear_lineage_removes_entry() {
        let mut b = Baggage::new();
        b.set_lineage(&Lineage::new(LineageId(1)));
        b.clear_lineage();
        assert_eq!(b.lineage(), Err(BaggageError::Missing));
    }
}

//! The formal lineage DAG of appendix B.
//!
//! A lineage is "a partial order of dependent actions that stem from an
//! initial `root` action and end in one or more `stop` actions". This module
//! implements that definition literally: actions of the five kinds of the
//! system model (appendix A), the five DAG-construction rules, and queries
//! over the resulting graph (membership, reachability, the delimiting
//! `stop` frontier). The operational [`crate::Lineage`] (a set of write
//! identifiers) is the *projection* of this DAG onto datastore writes;
//! [`LineageDag::write_projection`] computes it, and tests verify the two
//! views agree.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::lineage::{Lineage, LineageId};
use crate::model::ProcId;
use crate::write_id::WriteId;

/// A service identifier in the formal model (processes implement services).
#[derive(Clone, Copy, PartialEq, Eq, Hash, Debug)]
pub struct ServiceId(pub u32);

/// One action in an execution (appendix A's five kinds, plus the `root` and
/// `stop` markers of appendix B).
#[derive(Clone, Debug, PartialEq)]
pub enum Action {
    /// The initial invocation of the application (external client request).
    Root,
    /// A local computation step.
    Local,
    /// Sending message `msg` to another process of the *same service*
    /// (rule 3 only relates send/receive within one service).
    Send {
        /// Message identity.
        msg: u64,
    },
    /// Receiving message `msg`.
    Recv {
        /// Message identity.
        msg: u64,
    },
    /// Invoking an operation on another service (rule 4): `invoke` pairs
    /// with the service-side action carrying the same `call` id.
    Invoke {
        /// Call identity, pairing caller and callee actions.
        call: u64,
    },
    /// The service-side execution of an invocation.
    ServiceExec {
        /// Call identity this execution belongs to.
        call: u64,
    },
    /// The reply to a previous invocation (rule 5): pairs with the caller's
    /// continuation action carrying the same `call` id.
    Reply {
        /// Call identity.
        call: u64,
    },
    /// The caller-side continuation after a reply.
    ReplyCont {
        /// Call identity.
        call: u64,
    },
    /// A datastore write performed as part of the lineage (the projection
    /// [`LineageDag::write_projection`] collects these).
    Write {
        /// The produced write identifier.
        write: WriteId,
    },
    /// Marks the end of handling an external invocation at a process.
    Stop,
}

/// A vertex: an action performed by a process.
#[derive(Clone, Debug)]
pub struct Vertex {
    /// The process performing the action.
    pub proc: ProcId,
    /// The service that process belongs to.
    pub service: ServiceId,
    /// The action.
    pub action: Action,
}

/// The lineage DAG of one root action.
#[derive(Clone, Debug, Default)]
pub struct LineageDag {
    vertices: Vec<Vertex>,
    edges: Vec<(usize, usize)>,
}

/// Errors from DAG construction.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum DagError {
    /// The first vertex of a lineage must be the root action.
    FirstVertexMustBeRoot,
    /// Only one root is allowed (rule 1: "the single root").
    MultipleRoots,
    /// An edge refers to a vertex that does not exist.
    UnknownVertex(usize),
}

impl std::fmt::Display for DagError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            DagError::FirstVertexMustBeRoot => write!(f, "first vertex must be the root action"),
            DagError::MultipleRoots => write!(f, "a lineage has a single root"),
            DagError::UnknownVertex(i) => write!(f, "edge names unknown vertex {i}"),
        }
    }
}
impl std::error::Error for DagError {}

impl LineageDag {
    /// Starts a lineage with its root action (rule 1).
    pub fn new(proc: ProcId, service: ServiceId) -> Self {
        LineageDag {
            vertices: vec![Vertex {
                proc,
                service,
                action: Action::Root,
            }],
            edges: Vec::new(),
        }
    }

    /// The root vertex index (always 0).
    pub fn root(&self) -> usize {
        0
    }

    /// Adds a vertex, returning its index. Use [`LineageDag::connect`] to
    /// attach it per the rules.
    pub fn push(
        &mut self,
        proc: ProcId,
        service: ServiceId,
        action: Action,
    ) -> Result<usize, DagError> {
        if matches!(action, Action::Root) {
            return Err(DagError::MultipleRoots);
        }
        self.vertices.push(Vertex {
            proc,
            service,
            action,
        });
        Ok(self.vertices.len() - 1)
    }

    /// Adds the edge `from → to` after validating it against the five rules:
    ///
    /// 1. handled by construction (single root);
    /// 2. `from` precedes `to` in the execution of the same process, and
    ///    `from` is not a `stop`;
    /// 3. `from` is a send and `to` the matching receive **within the same
    ///    service**;
    /// 4. `from` is an `invoke` and `to` the matching service-side execution;
    /// 5. `from` is a `reply` and `to` the matching caller-side continuation.
    pub fn connect(&mut self, from: usize, to: usize) -> Result<(), DagError> {
        let f = self
            .vertices
            .get(from)
            .ok_or(DagError::UnknownVertex(from))?
            .clone();
        let t = self
            .vertices
            .get(to)
            .ok_or(DagError::UnknownVertex(to))?
            .clone();
        let valid = match (&f.action, &t.action) {
            // Rule 2: program order within a process, never out of a stop.
            _ if f.proc == t.proc && !matches!(f.action, Action::Stop) && from < to => true,
            // Rule 3: send → receive within the same service.
            (Action::Send { msg: a }, Action::Recv { msg: b }) => a == b && f.service == t.service,
            // Rule 4: invoke → service-side execution.
            (Action::Invoke { call: a }, Action::ServiceExec { call: b }) => a == b,
            // Rule 5: reply → caller-side continuation.
            (Action::Reply { call: a }, Action::ReplyCont { call: b }) => a == b,
            _ => false,
        };
        if !valid {
            return Err(DagError::UnknownVertex(to)); // misuse; keep the error space small
        }
        self.edges.push((from, to));
        Ok(())
    }

    /// All vertices.
    pub fn vertices(&self) -> &[Vertex] {
        &self.vertices
    }

    /// Whether vertex `v` is reachable from the root (i.e., genuinely part
    /// of the lineage).
    pub fn in_lineage(&self, v: usize) -> bool {
        self.reachable_from(self.root()).contains(&v)
    }

    fn reachable_from(&self, start: usize) -> BTreeSet<usize> {
        let mut adj: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &(a, b) in &self.edges {
            adj.entry(a).or_default().push(b);
        }
        let mut seen = BTreeSet::from([start]);
        let mut q = VecDeque::from([start]);
        while let Some(u) = q.pop_front() {
            for &v in adj.get(&u).into_iter().flatten() {
                if seen.insert(v) {
                    q.push_back(v);
                }
            }
        }
        seen
    }

    /// The processes whose handling has ended (their `stop` markers), i.e.
    /// the frontier delimiting the lineage.
    pub fn stop_frontier(&self) -> Vec<ProcId> {
        self.vertices
            .iter()
            .enumerate()
            .filter(|(i, v)| matches!(v.action, Action::Stop) && self.in_lineage(*i))
            .map(|(_, v)| v.proc)
            .collect()
    }

    /// Whether the edge set is acyclic (it must be, for well-formed
    /// recordings; rule 2 forbids back edges within a process).
    pub fn is_acyclic(&self) -> bool {
        // Kahn's algorithm.
        let n = self.vertices.len();
        let mut indeg = vec![0usize; n];
        let mut adj: BTreeMap<usize, Vec<usize>> = BTreeMap::new();
        for &(a, b) in &self.edges {
            indeg[b] += 1;
            adj.entry(a).or_default().push(b);
        }
        let mut q: VecDeque<usize> = (0..n).filter(|&i| indeg[i] == 0).collect();
        let mut seen = 0;
        while let Some(u) = q.pop_front() {
            seen += 1;
            for &v in adj.get(&u).into_iter().flatten() {
                indeg[v] -= 1;
                if indeg[v] == 0 {
                    q.push_back(v);
                }
            }
        }
        seen == n
    }

    /// Projects the lineage DAG onto its datastore writes: exactly the
    /// operational [`Lineage`] Antipode propagates (a set of write
    /// identifiers).
    pub fn write_projection(&self, id: LineageId) -> Lineage {
        let reach = self.reachable_from(self.root());
        let mut l = Lineage::new(id);
        for (i, v) in self.vertices.iter().enumerate() {
            if let Action::Write { write } = &v.action {
                if reach.contains(&i) {
                    l.append(write.clone());
                }
            }
        }
        l
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const P1: ProcId = ProcId(1);
    const P2: ProcId = ProcId(2);
    const Q1: ProcId = ProcId(3);
    const R1: ProcId = ProcId(4);
    const SVC_P: ServiceId = ServiceId(1);
    const SVC_Q: ServiceId = ServiceId(2);
    const SVC_R: ServiceId = ServiceId(3);

    /// Builds the appendix-B figure (Fig 10): root at p, local steps, an
    /// intra-service message p→q, an invoke q→r, a reply r→q, stops at all
    /// three processes.
    fn fig10() -> (LineageDag, Vec<usize>) {
        let mut dag = LineageDag::new(P1, SVC_P);
        let root = dag.root();
        let p1 = dag.push(P1, SVC_P, Action::Local).unwrap();
        let p_send = dag.push(P1, SVC_P, Action::Send { msg: 9 }).unwrap();
        let p_stop = dag.push(P1, SVC_P, Action::Stop).unwrap();
        let q_recv = dag.push(P2, SVC_P, Action::Recv { msg: 9 }).unwrap();
        let q_inv = dag.push(P2, SVC_P, Action::Invoke { call: 5 }).unwrap();
        let r_exec = dag
            .push(Q1, SVC_Q, Action::ServiceExec { call: 5 })
            .unwrap();
        let r_write = dag
            .push(
                Q1,
                SVC_Q,
                Action::Write {
                    write: WriteId::new("store", "x", 1),
                },
            )
            .unwrap();
        let r_reply = dag.push(Q1, SVC_Q, Action::Reply { call: 5 }).unwrap();
        let r_stop = dag.push(Q1, SVC_Q, Action::Stop).unwrap();
        let q_cont = dag.push(P2, SVC_P, Action::ReplyCont { call: 5 }).unwrap();
        let q_stop = dag.push(P2, SVC_P, Action::Stop).unwrap();

        dag.connect(root, p1).unwrap(); // rule 2
        dag.connect(p1, p_send).unwrap(); // rule 2
        dag.connect(p_send, p_stop).unwrap(); // rule 2
        dag.connect(p_send, q_recv).unwrap(); // rule 3 (same service)
        dag.connect(q_recv, q_inv).unwrap(); // rule 2
        dag.connect(q_inv, r_exec).unwrap(); // rule 4
        dag.connect(r_exec, r_write).unwrap(); // rule 2
        dag.connect(r_write, r_reply).unwrap(); // rule 2
        dag.connect(r_reply, r_stop).unwrap(); // rule 2
        dag.connect(r_reply, q_cont).unwrap(); // rule 5
        dag.connect(q_cont, q_stop).unwrap(); // rule 2
        (
            dag,
            vec![
                root, p1, p_send, q_recv, q_inv, r_exec, r_write, r_reply, q_cont,
            ],
        )
    }

    #[test]
    fn fig10_is_well_formed() {
        let (dag, members) = fig10();
        assert!(dag.is_acyclic());
        for v in members {
            assert!(dag.in_lineage(v), "vertex {v} must be in the lineage");
        }
        // Delimited by stop actions at p, q and r.
        let mut stops = dag.stop_frontier();
        stops.sort_by_key(|p| p.0);
        assert_eq!(stops, vec![P1, P2, Q1]);
    }

    #[test]
    fn write_projection_collects_reachable_writes() {
        let (dag, _) = fig10();
        let l = dag.write_projection(LineageId(7));
        assert_eq!(l.len(), 1);
        assert!(l.contains(&WriteId::new("store", "x", 1)));
    }

    #[test]
    fn unreachable_writes_are_excluded() {
        let mut dag = LineageDag::new(P1, SVC_P);
        // A write never connected to the root.
        dag.push(
            R1,
            SVC_R,
            Action::Write {
                write: WriteId::new("s", "orphan", 1),
            },
        )
        .unwrap();
        let l = dag.write_projection(LineageId(1));
        assert!(l.is_empty());
    }

    #[test]
    fn single_root_enforced() {
        let mut dag = LineageDag::new(P1, SVC_P);
        assert_eq!(
            dag.push(P1, SVC_P, Action::Root),
            Err(DagError::MultipleRoots)
        );
    }

    #[test]
    fn stop_has_no_outgoing_program_order() {
        // Rule 2 requires the predecessor not be a stop action.
        let mut dag = LineageDag::new(P1, SVC_P);
        let stop = dag.push(P1, SVC_P, Action::Stop).unwrap();
        let after = dag.push(P1, SVC_P, Action::Local).unwrap();
        assert!(dag.connect(stop, after).is_err());
    }

    #[test]
    fn cross_service_send_recv_is_rejected() {
        // Rule 3 relates send/receive only within one service; cross-service
        // interactions go through invoke/reply (rules 4-5).
        let mut dag = LineageDag::new(P1, SVC_P);
        let s = dag.push(P1, SVC_P, Action::Send { msg: 1 }).unwrap();
        let r = dag.push(Q1, SVC_Q, Action::Recv { msg: 1 }).unwrap();
        assert!(dag.connect(s, r).is_err());
    }

    #[test]
    fn mismatched_call_ids_are_rejected() {
        let mut dag = LineageDag::new(P1, SVC_P);
        let i = dag.push(P1, SVC_P, Action::Invoke { call: 1 }).unwrap();
        let e = dag
            .push(Q1, SVC_Q, Action::ServiceExec { call: 2 })
            .unwrap();
        assert!(dag.connect(i, e).is_err());
    }

    #[test]
    fn unknown_vertices_are_rejected() {
        let mut dag = LineageDag::new(P1, SVC_P);
        assert_eq!(dag.connect(0, 99), Err(DagError::UnknownVertex(99)));
    }

    #[test]
    fn concurrent_branches_share_one_lineage() {
        // A root fanning out to two services: both branches (and their
        // writes) belong to the same lineage — the structure behind Fig 3.
        let mut dag = LineageDag::new(P1, SVC_P);
        let root = dag.root();
        let inv_a = dag.push(P1, SVC_P, Action::Invoke { call: 1 }).unwrap();
        let inv_b = dag.push(P1, SVC_P, Action::Invoke { call: 2 }).unwrap();
        let exec_a = dag
            .push(Q1, SVC_Q, Action::ServiceExec { call: 1 })
            .unwrap();
        let exec_b = dag
            .push(R1, SVC_R, Action::ServiceExec { call: 2 })
            .unwrap();
        let w_a = dag
            .push(
                Q1,
                SVC_Q,
                Action::Write {
                    write: WriteId::new("a", "y", 1),
                },
            )
            .unwrap();
        let w_b = dag
            .push(
                R1,
                SVC_R,
                Action::Write {
                    write: WriteId::new("b", "x", 1),
                },
            )
            .unwrap();
        dag.connect(root, inv_a).unwrap();
        dag.connect(root, inv_b).unwrap();
        dag.connect(inv_a, exec_a).unwrap();
        dag.connect(inv_b, exec_b).unwrap();
        dag.connect(exec_a, w_a).unwrap();
        dag.connect(exec_b, w_b).unwrap();

        let l = dag.write_projection(LineageId(1));
        assert_eq!(l.len(), 2, "both concurrent branches' writes project in");
        assert!(dag.is_acyclic());
    }
}

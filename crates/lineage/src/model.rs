//! The formal XCY model (paper §4 and appendices A–B).
//!
//! This module records executions as sequences of operations and decides the
//! cross-service causal order ↝ between them, under either classic Lamport /
//! causal-memory causality or XCY. The difference is rule 2
//! (*reads-from-lineage*): under XCY a read that returns the value written by
//! `a'` depends on **every** operation of ℒ(a'), not just `a'` itself.
//!
//! The checker detects XCY violations of recorded executions in the
//! read/write model of §4.2: a read must observe the newest ↝-preceding
//! write to its object (or something newer). It powers the property tests and
//! the applications' violation detectors.

use std::collections::VecDeque;
use std::fmt;

use crate::lineage::LineageId;
use crate::write_id::WriteId;

/// A process identifier in the formal model.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct ProcId(pub u32);

/// Which causality definition to evaluate ↝ under.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum Causality {
    /// Lamport happened-before extended with causal-memory *writes-into*
    /// (rules 1 and 3, plus the single-edge reads-from).
    Lamport,
    /// Cross-service causal consistency: rule 2 relates a read to the whole
    /// lineage of the write it observed.
    Xcy,
}

/// One recorded operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Op {
    /// A write of (datastore, key) producing `write`.
    Write {
        /// Process performing the write.
        proc: ProcId,
        /// The produced write identifier (carries datastore, key, version).
        write: WriteId,
        /// Lineage (root request) this operation belongs to.
        lineage: LineageId,
    },
    /// A read of (datastore, key) returning `returned` (`None` = not found).
    Read {
        /// Process performing the read.
        proc: ProcId,
        /// Datastore read from.
        datastore: String,
        /// Key read.
        key: String,
        /// The write whose value was returned, or `None` for *not found*.
        returned: Option<WriteId>,
        /// Lineage this operation belongs to.
        lineage: LineageId,
    },
    /// Sending message `msg` to another process.
    Send {
        /// Sending process.
        proc: ProcId,
        /// Message identity, pairing with the matching `Recv`.
        msg: u64,
        /// Lineage this operation belongs to.
        lineage: LineageId,
    },
    /// Receiving message `msg`.
    Recv {
        /// Receiving process.
        proc: ProcId,
        /// Message identity, pairing with the matching `Send`.
        msg: u64,
        /// Lineage this operation belongs to.
        lineage: LineageId,
    },
}

impl Op {
    /// The process that performed this operation.
    pub fn proc(&self) -> ProcId {
        match self {
            Op::Write { proc, .. }
            | Op::Read { proc, .. }
            | Op::Send { proc, .. }
            | Op::Recv { proc, .. } => *proc,
        }
    }

    /// The lineage this operation belongs to.
    pub fn lineage(&self) -> LineageId {
        match self {
            Op::Write { lineage, .. }
            | Op::Read { lineage, .. }
            | Op::Send { lineage, .. }
            | Op::Recv { lineage, .. } => *lineage,
        }
    }
}

/// A detected consistency violation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// A read returned *not found* although a ↝-preceding write to its object
    /// exists (the paper's `object not found` scenario).
    MissingWrite {
        /// Index of the offending read.
        read: usize,
        /// Index of a write the read should have observed.
        missing: usize,
    },
    /// A read returned a value that is superseded by a ↝-preceding write.
    StaleRead {
        /// Index of the offending read.
        read: usize,
        /// Index of the write whose value was returned.
        returned: usize,
        /// Index of the newer write the read should have observed.
        newer: usize,
    },
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::MissingWrite { read, missing } => {
                write!(
                    f,
                    "read #{read} returned not-found but depends on write #{missing}"
                )
            }
            Violation::StaleRead {
                read,
                returned,
                newer,
            } => {
                write!(
                    f,
                    "read #{read} returned write #{returned} but depends on newer write #{newer}"
                )
            }
        }
    }
}

/// A recorded execution: operations in the order each process performed them
/// (the global list order is arbitrary across processes; program order is the
/// relative order of a process's own operations).
#[derive(Clone, Debug, Default)]
pub struct Execution {
    ops: Vec<Op>,
}

impl Execution {
    /// Creates an empty execution.
    pub fn new() -> Self {
        Execution::default()
    }

    /// Appends an operation, returning its index.
    pub fn push(&mut self, op: Op) -> usize {
        self.ops.push(op);
        self.ops.len() - 1
    }

    /// Convenience: record a write.
    pub fn write(&mut self, proc: ProcId, lineage: LineageId, w: WriteId) -> usize {
        self.push(Op::Write {
            proc,
            write: w,
            lineage,
        })
    }

    /// Convenience: record a read.
    pub fn read(
        &mut self,
        proc: ProcId,
        lineage: LineageId,
        datastore: impl Into<String>,
        key: impl Into<String>,
        returned: Option<WriteId>,
    ) -> usize {
        self.push(Op::Read {
            proc,
            datastore: datastore.into(),
            key: key.into(),
            returned,
            lineage,
        })
    }

    /// Convenience: record a message send.
    pub fn send(&mut self, proc: ProcId, lineage: LineageId, msg: u64) -> usize {
        self.push(Op::Send { proc, msg, lineage })
    }

    /// Convenience: record a message receive.
    pub fn recv(&mut self, proc: ProcId, lineage: LineageId, msg: u64) -> usize {
        self.push(Op::Recv { proc, msg, lineage })
    }

    /// The recorded operations.
    pub fn ops(&self) -> &[Op] {
        &self.ops
    }

    /// Builds the direct-edge adjacency of ↝ under `mode` (before taking the
    /// transitive closure).
    fn edges(&self, mode: Causality) -> Vec<Vec<usize>> {
        let n = self.ops.len();
        let mut adj = vec![Vec::new(); n];

        // Rule 1a: program order within each process.
        let mut last_of: std::collections::BTreeMap<ProcId, usize> =
            std::collections::BTreeMap::new();
        for (i, op) in self.ops.iter().enumerate() {
            if let Some(&prev) = last_of.get(&op.proc()) {
                adj[prev].push(i);
            }
            last_of.insert(op.proc(), i);
        }

        // Rule 1b: message send → receive.
        for (i, op) in self.ops.iter().enumerate() {
            if let Op::Send { msg, .. } = op {
                for (j, other) in self.ops.iter().enumerate() {
                    if let Op::Recv { msg: m2, .. } = other {
                        if m2 == msg {
                            adj[i].push(j);
                        }
                    }
                }
            }
        }

        // Reads-from. Under Lamport: the writes-into edge a' → b. Under XCY
        // (rule 2): an edge from every op of ℒ(a') to b.
        for (r_idx, op) in self.ops.iter().enumerate() {
            let Op::Read {
                returned: Some(w), ..
            } = op
            else {
                continue;
            };
            let writer = self
                .ops
                .iter()
                .position(|o| matches!(o, Op::Write { write, .. } if write == w));
            let Some(w_idx) = writer else { continue };
            match mode {
                Causality::Lamport => adj[w_idx].push(r_idx),
                Causality::Xcy => {
                    let lin = self.ops[w_idx].lineage();
                    if lin == op.lineage() {
                        // A request observing its *own* intermediate state:
                        // rule 2 is about observing another lineage's effects
                        // (the offshoot of a different root request, §4.2);
                        // within one lineage plain happened-before governs,
                        // otherwise write-v1 / read-v1 / write-v2 sequences
                        // would be self-inconsistent.
                        adj[w_idx].push(r_idx);
                    } else {
                        for (a_idx, a) in self.ops.iter().enumerate() {
                            if a_idx != r_idx && a.lineage() == lin {
                                adj[a_idx].push(r_idx);
                            }
                        }
                    }
                }
            }
        }
        adj
    }

    /// Reachability (the transitive closure of the direct edges, i.e. ↝ with
    /// rule 3 applied). `reach[a]` contains every `b` with `a ↝ b`.
    fn closure(&self, mode: Causality) -> Vec<Vec<bool>> {
        let n = self.ops.len();
        let adj = self.edges(mode);
        let mut reach = vec![vec![false; n]; n];
        #[allow(clippy::needless_range_loop)]
        for start in 0..n {
            let mut q = VecDeque::new();
            q.push_back(start);
            while let Some(u) = q.pop_front() {
                for &v in &adj[u] {
                    if !reach[start][v] {
                        reach[start][v] = true;
                        q.push_back(v);
                    }
                }
            }
        }
        reach
    }

    /// Whether `a ↝ b` under `mode` (strict: an op does not depend on
    /// itself unless it lies on a cycle of edges).
    pub fn depends(&self, a: usize, b: usize, mode: Causality) -> bool {
        self.closure(mode)[a][b]
    }

    /// Checks the execution for violations under `mode`.
    ///
    /// A read `r` of object (d, k) violates consistency iff either
    /// - it returned *not found* while some write `w` on (d, k) satisfies
    ///   `w ↝ r`; or
    /// - it returned the value of `w0` while some write `w1` on (d, k)
    ///   satisfies `w1 ↝ r` and `w0 ↝ w1` (the value read is causally
    ///   superseded).
    ///
    /// For executions whose per-object writes are totally ordered by version
    /// (our datastores guarantee this), this is exactly the condition for a
    /// ↝-respecting serialization of §4.2 to exist.
    pub fn check(&self, mode: Causality) -> Vec<Violation> {
        let reach = self.closure(mode);
        let mut out = Vec::new();
        for (r_idx, op) in self.ops.iter().enumerate() {
            let Op::Read {
                datastore,
                key,
                returned,
                ..
            } = op
            else {
                continue;
            };
            // Writes on the same object that the read depends on.
            let preceding: Vec<usize> = self
                .ops
                .iter()
                .enumerate()
                .filter(|(w_idx, w)| {
                    matches!(w, Op::Write { write, .. }
                        if &*write.datastore() == datastore.as_str() && write.key() == key.as_str())
                        && reach[*w_idx][r_idx]
                })
                .map(|(i, _)| i)
                .collect();
            match returned {
                None => {
                    if let Some(&missing) = preceding.first() {
                        out.push(Violation::MissingWrite {
                            read: r_idx,
                            missing,
                        });
                    }
                }
                Some(w0) => {
                    let returned_idx = self
                        .ops
                        .iter()
                        .position(|o| matches!(o, Op::Write { write, .. } if write == w0));
                    for &w1 in &preceding {
                        let newer = match returned_idx {
                            Some(r0) => r0 != w1 && reach[r0][w1],
                            // Unknown origin: any ↝-preceding newer version
                            // flags it, using version order as the fallback.
                            None => matches!(
                                &self.ops[w1],
                                Op::Write { write, .. } if write.supersedes(w0) && *write != *w0
                            ),
                        };
                        if newer {
                            out.push(Violation::StaleRead {
                                read: r_idx,
                                returned: returned_idx.unwrap_or(w1),
                                newer: w1,
                            });
                            break;
                        }
                    }
                }
            }
        }
        out
    }

    /// Whether the execution is consistent (no violations) under `mode`.
    pub fn is_consistent(&self, mode: Causality) -> bool {
        self.check(mode).is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn wid(s: &str, k: &str, v: u64) -> WriteId {
        WriteId::new(s, k, v)
    }

    const P1: ProcId = ProcId(1);
    const P2: ProcId = ProcId(2);
    const P3: ProcId = ProcId(3);
    const L1: LineageId = LineageId(1);
    const L2: LineageId = LineageId(2);

    /// The paper's Fig. 3: R1 writes y (service A) and x (service B) on two
    /// concurrent branches. R2 reads y, percolates, then reads x. Under
    /// Lamport, write(x) and read(x) are concurrent — a not-found read of x
    /// is fine. Under XCY, reading y pulls in all of ℒ(R1), so read(x) must
    /// observe write(x).
    fn fig3(read_x_returns: Option<WriteId>) -> Execution {
        let mut e = Execution::new();
        // R1 branch 1 at service A:
        e.write(P1, L1, wid("svcA", "y", 1));
        // R1 branch 2 at service B, on a *different process* — a concurrent
        // branch of the same request (same lineage, no message edge):
        e.write(ProcId(4), L1, wid("svcB", "x", 1));
        // R2 starts by reading y at service A:
        e.read(P3, L2, "svcA", "y", Some(wid("svcA", "y", 1)));
        // R2 percolates to service B via a message:
        e.send(P3, L2, 77);
        e.recv(P2, L2, 77);
        // R2 reads x at service B:
        e.read(P2, L2, "svcB", "x", read_x_returns);
        e
    }

    #[test]
    fn fig3_lamport_allows_not_found() {
        let e = fig3(None);
        assert!(e.is_consistent(Causality::Lamport));
    }

    #[test]
    fn fig3_xcy_flags_not_found() {
        let e = fig3(None);
        let v = e.check(Causality::Xcy);
        assert_eq!(
            v,
            vec![Violation::MissingWrite {
                read: 5,
                missing: 1
            }]
        );
    }

    #[test]
    fn fig3_xcy_satisfied_when_write_observed() {
        let e = fig3(Some(wid("svcB", "x", 1)));
        assert!(e.is_consistent(Causality::Xcy));
    }

    #[test]
    fn xcy_is_stronger_than_lamport() {
        // Every Lamport dependency is an XCY dependency.
        let e = fig3(Some(wid("svcB", "x", 1)));
        for a in 0..e.ops().len() {
            for b in 0..e.ops().len() {
                if e.depends(a, b, Causality::Lamport) {
                    assert!(
                        e.depends(a, b, Causality::Xcy),
                        "Lamport {a}↝{b} must imply XCY"
                    );
                }
            }
        }
        // Fig 3's green edge exists only under XCY: write(x) ↝ read(x) via
        // read(y) pulling in all of ℒ(R1) — even when read(x) itself returns
        // nothing (use the not-found variant, where Lamport's writes-into
        // edge cannot apply either).
        let e = fig3(None);
        assert!(!e.depends(1, 5, Causality::Lamport));
        assert!(e.depends(1, 5, Causality::Xcy));
    }

    #[test]
    fn program_order_is_a_dependency() {
        let mut e = Execution::new();
        let a = e.write(P1, L1, wid("s", "k", 1));
        let b = e.read(P1, L1, "s", "k", Some(wid("s", "k", 1)));
        assert!(e.depends(a, b, Causality::Lamport));
        assert!(e.depends(a, b, Causality::Xcy));
        assert!(!e.depends(b, a, Causality::Xcy));
    }

    #[test]
    fn message_edge_crosses_processes() {
        let mut e = Execution::new();
        let w = e.write(P1, L1, wid("s", "k", 1));
        e.send(P1, L1, 5);
        e.recv(P2, L1, 5);
        let r = e.read(P2, L1, "s", "k", None);
        // The write precedes the read through send/recv: not-found violates
        // even plain Lamport causality.
        assert!(e.depends(w, r, Causality::Lamport));
        assert_eq!(
            e.check(Causality::Lamport),
            vec![Violation::MissingWrite {
                read: r,
                missing: w
            }]
        );
    }

    #[test]
    fn stale_read_detected() {
        let mut e = Execution::new();
        let w1 = e.write(P1, L1, wid("s", "k", 1));
        let w2 = e.write(P1, L1, wid("s", "k", 2));
        let r = e.read(P1, L1, "s", "k", Some(wid("s", "k", 1)));
        assert_eq!(
            e.check(Causality::Xcy),
            vec![Violation::StaleRead {
                read: r,
                returned: w1,
                newer: w2
            }]
        );
    }

    #[test]
    fn concurrent_writes_allow_either_value() {
        let mut e = Execution::new();
        e.write(P1, L1, wid("s", "k", 1));
        e.write(P2, L2, wid("s", "k", 2));
        // P3 reads the older version; the writes are concurrent, so this is
        // consistent under both definitions.
        e.read(P3, LineageId(3), "s", "k", Some(wid("s", "k", 1)));
        assert!(e.is_consistent(Causality::Lamport));
        assert!(e.is_consistent(Causality::Xcy));
    }

    #[test]
    fn read_of_unwritten_key_is_fine() {
        let mut e = Execution::new();
        e.read(P1, L1, "s", "nope", None);
        assert!(e.is_consistent(Causality::Xcy));
    }

    #[test]
    fn post_notification_violation_is_xcy_only() {
        // §2.2: the post write and the notification write share a lineage but
        // execute at *different services* (post-storage, notifier). Each
        // service's recorder sees its own operations, not the other's RPC
        // chain — exactly the "no global knowledge" setting of §3.3 — so no
        // happened-before edge connects the two writes here. A remote reader
        // reads the notification, then the post is not found.
        let mut e = Execution::new();
        let post = e.write(P1, L1, wid("post-storage", "post-1", 1));
        e.write(ProcId(5), L1, wid("notifier", "notif-1", 1));
        // Remote reader (different lineage) dequeues the notification...
        e.read(
            P2,
            L2,
            "notifier",
            "notif-1",
            Some(wid("notifier", "notif-1", 1)),
        );
        // ...then reads the post: not found.
        let r = e.read(P2, L2, "post-storage", "post-1", None);
        assert!(
            e.is_consistent(Causality::Lamport),
            "Lamport misses the bug"
        );
        assert_eq!(
            e.check(Causality::Xcy),
            vec![Violation::MissingWrite {
                read: r,
                missing: post
            }]
        );
    }

    #[test]
    fn transitivity_through_lineages() {
        // L1 writes a; L2 reads a then writes b; L3 reads b then must see a.
        let mut e = Execution::new();
        let wa = e.write(P1, L1, wid("s", "a", 1));
        e.read(P2, L2, "s", "a", Some(wid("s", "a", 1)));
        e.write(P2, L2, wid("s", "b", 1));
        e.read(P3, LineageId(3), "s", "b", Some(wid("s", "b", 1)));
        let r = e.read(P3, LineageId(3), "s", "a", None);
        assert!(e.depends(wa, r, Causality::Xcy));
        assert!(!e.is_consistent(Causality::Xcy));
    }

    #[test]
    fn violation_display() {
        let v = Violation::MissingWrite {
            read: 3,
            missing: 1,
        };
        assert!(v.to_string().contains("read #3"));
    }
}

//! LEB128 varint and length-prefixed string primitives for the lineage wire
//! format. Hand-rolled so the metadata-size experiments (Table 3, §7.4)
//! measure a realistic compact encoding rather than a debug format.

use bytes::{Buf, BufMut};

/// Errors from decoding the lineage wire format.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// Input ended in the middle of a value.
    UnexpectedEof,
    /// A varint ran longer than 10 bytes (not a valid u64).
    VarintOverflow,
    /// A string was not valid UTF-8.
    InvalidUtf8,
    /// The format version byte was unknown.
    UnknownVersion(u8),
    /// A declared length exceeded the remaining input.
    LengthOutOfBounds,
    /// A frame's trailing checksum did not match its body.
    ChecksumMismatch,
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::UnexpectedEof => write!(f, "unexpected end of input"),
            CodecError::VarintOverflow => write!(f, "varint longer than 10 bytes"),
            CodecError::InvalidUtf8 => write!(f, "string is not valid UTF-8"),
            CodecError::UnknownVersion(v) => write!(f, "unknown wire format version {v}"),
            CodecError::LengthOutOfBounds => write!(f, "declared length exceeds input"),
            CodecError::ChecksumMismatch => write!(f, "frame checksum does not match body"),
        }
    }
}

impl std::error::Error for CodecError {}

/// Appends `v` as an LEB128 varint.
pub fn put_varint(buf: &mut impl BufMut, mut v: u64) {
    loop {
        let byte = (v & 0x7f) as u8;
        v >>= 7;
        if v == 0 {
            buf.put_u8(byte);
            return;
        }
        buf.put_u8(byte | 0x80);
    }
}

/// Reads an LEB128 varint.
pub fn get_varint(buf: &mut impl Buf) -> Result<u64, CodecError> {
    let mut v: u64 = 0;
    let mut shift = 0u32;
    loop {
        if !buf.has_remaining() {
            return Err(CodecError::UnexpectedEof);
        }
        let byte = buf.get_u8();
        if shift >= 64 {
            return Err(CodecError::VarintOverflow);
        }
        v |= u64::from(byte & 0x7f) << shift;
        if byte & 0x80 == 0 {
            return Ok(v);
        }
        shift += 7;
    }
}

/// Appends a length-prefixed UTF-8 string.
pub fn put_str(buf: &mut impl BufMut, s: &str) {
    put_varint(buf, s.len() as u64);
    buf.put_slice(s.as_bytes());
}

/// Reads a length-prefixed UTF-8 string.
pub fn get_str(buf: &mut impl Buf) -> Result<String, CodecError> {
    let len = get_varint(buf)? as usize;
    if buf.remaining() < len {
        return Err(CodecError::LengthOutOfBounds);
    }
    let mut bytes = vec![0u8; len];
    buf.copy_to_slice(&mut bytes);
    String::from_utf8(bytes).map_err(|_| CodecError::InvalidUtf8)
}

/// Number of bytes `v` occupies as a varint.
pub fn varint_len(v: u64) -> usize {
    if v == 0 {
        return 1;
    }
    (64 - v.leading_zeros() as usize).div_ceil(7)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn varint_round_trip() {
        for v in [
            0u64,
            1,
            127,
            128,
            300,
            16_383,
            16_384,
            u32::MAX as u64,
            u64::MAX,
        ] {
            let mut buf = Vec::new();
            put_varint(&mut buf, v);
            assert_eq!(buf.len(), varint_len(v), "length of {v}");
            let mut slice = buf.as_slice();
            assert_eq!(get_varint(&mut slice), Ok(v));
            assert!(slice.is_empty());
        }
    }

    #[test]
    fn varint_eof() {
        let mut slice: &[u8] = &[0x80];
        assert_eq!(get_varint(&mut slice), Err(CodecError::UnexpectedEof));
    }

    #[test]
    fn varint_overflow() {
        let mut slice: &[u8] = &[0xff; 11];
        assert_eq!(get_varint(&mut slice), Err(CodecError::VarintOverflow));
    }

    #[test]
    fn str_round_trip() {
        for s in ["", "k", "post-storage-mysql", "ünïcode ✓"] {
            let mut buf = Vec::new();
            put_str(&mut buf, s);
            let mut slice = buf.as_slice();
            assert_eq!(get_str(&mut slice).unwrap(), s);
        }
    }

    #[test]
    fn str_length_out_of_bounds() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 100);
        buf.extend_from_slice(b"short");
        let mut slice = buf.as_slice();
        assert_eq!(get_str(&mut slice), Err(CodecError::LengthOutOfBounds));
    }

    #[test]
    fn str_invalid_utf8() {
        let mut buf = Vec::new();
        put_varint(&mut buf, 2);
        buf.extend_from_slice(&[0xff, 0xfe]);
        let mut slice = buf.as_slice();
        assert_eq!(get_str(&mut slice), Err(CodecError::InvalidUtf8));
    }
}

//! A vector-clock happens-before race detector for replication streams.
//!
//! The [`crate::ConsistencyChecker`] audits XCY by *replaying the lineage*:
//! at a checkpoint it asks every dependency's shim whether the write is
//! visible. That verdict is only as trustworthy as lineage propagation
//! itself — if an `append` or `transfer` is missing, the checker is blind to
//! the dependency it lost. This module flags the same class of violation
//! from first principles, the way dynamic race detectors (FastTrack-style
//! epoch/vector clocks) do for threads, applied to replication streams
//! instead: it consumes the simulator's event trace, reconstructs
//! happens-before from program order and message edges alone, and reports
//! every causally-prior write that was not yet visible in the reading region
//! at a checkpoint. Cross-validating the two analyses against each other
//! (`tests/checker_cross_validation.rs`) means a bug must fool both a
//! lineage replay *and* an independent happens-before reconstruction to
//! slip through.
//!
//! ## Event model
//!
//! - [`TraceEvent::Write`]: a process performed a cross-service write
//!   (ticks the process clock; the write's causal snapshot is the clock at
//!   that instant).
//! - [`TraceEvent::Send`] / [`TraceEvent::Recv`]: a message edge — the
//!   receiver's clock merges the sender's clock at send time.
//! - [`TraceEvent::KvApplied`] / [`TraceEvent::QueueDelivered`] /
//!   [`TraceEvent::QueueAcked`]: visibility transitions, recorded by the
//!   store probes (`antipode_store::probe`).
//! - [`TraceEvent::Checkpoint`]: a candidate read location — the detector
//!   evaluates every happens-before-prior write against the visibility
//!   state at this point in the trace.
//!
//! Events must be fed in execution order (the deterministic simulator
//! records them that way); visibility at a checkpoint is then exactly the
//! store state at the instant the checkpoint ran.

use std::collections::{BTreeMap, BTreeSet};

use antipode_lineage::vector_clock::VectorClock;
use antipode_lineage::WriteId;
use antipode_sim::{Region, SimTime};

/// One event of the simulation trace the detector consumes.
#[derive(Clone, Debug)]
pub enum TraceEvent {
    /// Process `proc` performed the cross-service write `write`.
    Write {
        /// Logical process (service/handler instance) name.
        proc: String,
        /// The write's identifier, as the shims would append it.
        write: WriteId,
        /// Virtual instant of the write.
        at: SimTime,
    },
    /// Process `proc` sent message `msg` on `channel` (a queue publish, an
    /// RPC request — anything that carries causality to another process).
    Send {
        /// Sender process name.
        proc: String,
        /// Channel (queue/topic) name, namespacing the message id.
        channel: String,
        /// Message id, unique within the channel.
        msg: u64,
        /// Virtual instant of the send.
        at: SimTime,
    },
    /// Process `proc` received message `msg` from `channel`.
    Recv {
        /// Receiver process name.
        proc: String,
        /// Channel (queue/topic) name.
        channel: String,
        /// Message id.
        msg: u64,
        /// Virtual instant of the receive.
        at: SimTime,
    },
    /// A KV replica applied a write: `key` at `region` has now seen
    /// versions up to `watermark` (visibility is monotone in the version).
    KvApplied {
        /// Store name.
        store: String,
        /// Region whose replica applied.
        region: Region,
        /// Key written.
        key: String,
        /// Highest version seen for `key` at this replica.
        watermark: u64,
        /// Virtual instant of the apply.
        at: SimTime,
    },
    /// A queue delivered message `id` in `region`.
    QueueDelivered {
        /// Queue-store name.
        store: String,
        /// Region of delivery.
        region: Region,
        /// Message id (the version in write identifiers).
        id: u64,
        /// Virtual instant of the delivery.
        at: SimTime,
    },
    /// A consumer acknowledged message `id` in `region`.
    QueueAcked {
        /// Queue-store name.
        store: String,
        /// Region of the ack.
        region: Region,
        /// Message id.
        id: u64,
        /// Virtual instant of the ack.
        at: SimTime,
    },
    /// Process `proc` reached a candidate read location.
    Checkpoint {
        /// Process name.
        proc: String,
        /// Developer-chosen location label (same convention as
        /// [`crate::ConsistencyChecker::checkpoint`]).
        location: String,
        /// Region visibility is evaluated against.
        region: Region,
        /// Virtual instant of the checkpoint.
        at: SimTime,
    },
}

impl TraceEvent {
    /// The virtual instant the event occurred at.
    pub fn at(&self) -> SimTime {
        match self {
            TraceEvent::Write { at, .. }
            | TraceEvent::Send { at, .. }
            | TraceEvent::Recv { at, .. }
            | TraceEvent::KvApplied { at, .. }
            | TraceEvent::QueueDelivered { at, .. }
            | TraceEvent::QueueAcked { at, .. }
            | TraceEvent::Checkpoint { at, .. } => *at,
        }
    }
}

/// One checkpoint evaluation by the detector.
#[derive(Clone, Debug)]
pub struct RaceFinding {
    /// Location label of the checkpoint.
    pub location: String,
    /// Process that reached it.
    pub proc: String,
    /// Region visibility was evaluated against.
    pub region: Region,
    /// Virtual instant of the evaluation.
    pub at: SimTime,
    /// Causally-prior writes not yet visible in `region` — each one a
    /// visible-before-dependency ordering, i.e. an XCY race.
    pub unmet: Vec<WriteId>,
    /// Causally-prior writes that were already visible.
    pub visible: Vec<WriteId>,
}

impl RaceFinding {
    /// Whether the checkpoint was race-free.
    pub fn is_satisfied(&self) -> bool {
        self.unmet.is_empty()
    }
}

/// Per-location aggregation of detector findings, mirroring
/// [`crate::checker::LocationStats`] so the two analyses compare directly.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct RaceStats {
    /// Checkpoint evaluations at this location.
    pub evaluations: usize,
    /// Evaluations with at least one unmet causal dependency.
    pub unsatisfied: usize,
    /// Total unmet dependencies across evaluations.
    pub unmet_deps: usize,
}

/// The happens-before race detector. Feed events with
/// [`RaceDetector::observe`] (in execution order), then read
/// [`RaceDetector::findings`] / [`RaceDetector::summary`].
#[derive(Default)]
pub struct RaceDetector {
    /// Per-process vector clock (entity = process name).
    clocks: BTreeMap<String, VectorClock>,
    /// Every observed write with its causal snapshot, in trace order.
    writes: Vec<(WriteId, VectorClock)>,
    /// Clock attached to each in-flight message, keyed by (channel, id).
    msg_clocks: BTreeMap<(String, u64), VectorClock>,
    /// KV visibility: (store, region, key) → highest applied version.
    kv_watermarks: BTreeMap<(String, Region, String), u64>,
    /// Queue visibility: (store, region) → delivered message ids.
    delivered: BTreeMap<(String, Region), BTreeSet<u64>>,
    /// Queue ack state: (store, region) → acknowledged message ids.
    acked: BTreeMap<(String, Region), BTreeSet<u64>>,
    findings: Vec<RaceFinding>,
}

impl RaceDetector {
    /// Creates an empty detector.
    pub fn new() -> Self {
        RaceDetector::default()
    }

    /// Runs a detector over a complete trace.
    pub fn analyze(events: &[TraceEvent]) -> Self {
        let mut d = RaceDetector::new();
        for e in events {
            d.observe(e);
        }
        d
    }

    fn tick(&mut self, proc: &str) -> &mut VectorClock {
        let clock = self.clocks.entry(proc.to_string()).or_default();
        clock.observe(proc.to_string(), clock.get(proc) + 1);
        clock
    }

    /// Feeds one event. Events must arrive in execution order.
    pub fn observe(&mut self, event: &TraceEvent) {
        match event {
            TraceEvent::Write { proc, write, .. } => {
                let snapshot = self.tick(proc).clone();
                self.writes.push((write.clone(), snapshot));
            }
            TraceEvent::Send {
                proc, channel, msg, ..
            } => {
                let snapshot = self.tick(proc).clone();
                self.msg_clocks.insert((channel.clone(), *msg), snapshot);
            }
            TraceEvent::Recv {
                proc, channel, msg, ..
            } => {
                if let Some(snapshot) = self.msg_clocks.get(&(channel.clone(), *msg)).cloned() {
                    self.tick(proc).merge(&snapshot);
                }
            }
            TraceEvent::KvApplied {
                store,
                region,
                key,
                watermark,
                ..
            } => {
                let slot = self
                    .kv_watermarks
                    .entry((store.clone(), *region, key.clone()))
                    .or_insert(0);
                *slot = (*slot).max(*watermark);
            }
            TraceEvent::QueueDelivered {
                store, region, id, ..
            } => {
                self.delivered
                    .entry((store.clone(), *region))
                    .or_default()
                    .insert(*id);
            }
            TraceEvent::QueueAcked {
                store, region, id, ..
            } => {
                self.acked
                    .entry((store.clone(), *region))
                    .or_default()
                    .insert(*id);
            }
            TraceEvent::Checkpoint {
                proc,
                location,
                region,
                at,
            } => {
                let clock = self.clocks.entry(proc.clone()).or_default().clone();
                let mut unmet = Vec::new();
                let mut visible = Vec::new();
                for (write, snapshot) in &self.writes {
                    if !snapshot.dominated_by(&clock) {
                        continue; // concurrent or later: not a causal dep
                    }
                    if self.is_visible(write, *region) {
                        visible.push(write.clone());
                    } else {
                        unmet.push(write.clone());
                    }
                }
                self.findings.push(RaceFinding {
                    location: location.clone(),
                    proc: proc.clone(),
                    region: *region,
                    at: *at,
                    unmet,
                    visible,
                });
            }
        }
    }

    /// Whether `write` is visible in `region` per the visibility events
    /// observed so far (watermark semantics for KV, delivery for queues).
    fn is_visible(&self, write: &WriteId, region: Region) -> bool {
        let store = write.datastore().to_string();
        if let Some(mark) =
            self.kv_watermarks
                .get(&(store.clone(), region, write.key().to_string()))
        {
            if *mark >= write.version() {
                return true;
            }
        }
        self.delivered
            .get(&(store, region))
            .is_some_and(|ids| ids.contains(&write.version()))
    }

    /// Whether queue message `id` of `store` was acknowledged in `region`
    /// (work-queue visibility semantics).
    pub fn is_acked(&self, store: &str, region: Region, id: u64) -> bool {
        self.acked
            .get(&(store.to_string(), region))
            .is_some_and(|ids| ids.contains(&id))
    }

    /// All checkpoint evaluations, in trace order.
    pub fn findings(&self) -> &[RaceFinding] {
        &self.findings
    }

    /// Findings with at least one unmet dependency — the detected races.
    pub fn races(&self) -> Vec<&RaceFinding> {
        self.findings.iter().filter(|f| !f.is_satisfied()).collect()
    }

    /// Per-location aggregation, sorted by location label.
    pub fn summary(&self) -> BTreeMap<String, RaceStats> {
        let mut out: BTreeMap<String, RaceStats> = BTreeMap::new();
        for f in &self.findings {
            let s = out.entry(f.location.clone()).or_default();
            s.evaluations += 1;
            if !f.unmet.is_empty() {
                s.unsatisfied += 1;
            }
            s.unmet_deps += f.unmet.len();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antipode_sim::net::regions::{EU, US};

    fn t(ms: u64) -> SimTime {
        SimTime::from_millis(ms)
    }

    fn w(store: &str, key: &str, version: u64) -> WriteId {
        WriteId::new(store, key, version)
    }

    /// The Post-Notification race in miniature: the post write has not
    /// reached US when the reader (causally after the publish) checks.
    #[test]
    fn flags_visible_before_dependency_ordering() {
        let events = vec![
            TraceEvent::Write {
                proc: "writer".into(),
                write: w("posts", "p1", 1),
                at: t(0),
            },
            TraceEvent::KvApplied {
                store: "posts".into(),
                region: EU,
                key: "p1".into(),
                watermark: 1,
                at: t(1),
            },
            TraceEvent::Send {
                proc: "writer".into(),
                channel: "notif".into(),
                msg: 1,
                at: t(2),
            },
            TraceEvent::QueueDelivered {
                store: "notif".into(),
                region: US,
                id: 1,
                at: t(50),
            },
            TraceEvent::Recv {
                proc: "reader".into(),
                channel: "notif".into(),
                msg: 1,
                at: t(50),
            },
            // The posts write is visible in EU but not US yet.
            TraceEvent::Checkpoint {
                proc: "reader".into(),
                location: "reader:recv".into(),
                region: US,
                at: t(51),
            },
        ];
        let d = RaceDetector::analyze(&events);
        assert_eq!(d.findings().len(), 1);
        let f = &d.findings()[0];
        assert_eq!(f.unmet, vec![w("posts", "p1", 1)]);
        assert_eq!(d.summary()["reader:recv"].unsatisfied, 1);
    }

    #[test]
    fn satisfied_once_replication_lands() {
        let events = vec![
            TraceEvent::Write {
                proc: "writer".into(),
                write: w("posts", "p1", 1),
                at: t(0),
            },
            TraceEvent::Send {
                proc: "writer".into(),
                channel: "notif".into(),
                msg: 1,
                at: t(1),
            },
            TraceEvent::KvApplied {
                store: "posts".into(),
                region: US,
                key: "p1".into(),
                watermark: 1,
                at: t(40),
            },
            TraceEvent::QueueDelivered {
                store: "notif".into(),
                region: US,
                id: 1,
                at: t(50),
            },
            TraceEvent::Recv {
                proc: "reader".into(),
                channel: "notif".into(),
                msg: 1,
                at: t(50),
            },
            TraceEvent::Checkpoint {
                proc: "reader".into(),
                location: "reader:recv".into(),
                region: US,
                at: t(51),
            },
        ];
        let d = RaceDetector::analyze(&events);
        assert!(d.races().is_empty());
        assert_eq!(d.findings()[0].visible.len(), 1);
    }

    /// A write with no message edge to the reader is concurrent, not a
    /// dependency — the detector must not flag it (this is exactly the §5.1
    /// distinction between causally-prior and merely-earlier writes).
    #[test]
    fn concurrent_writes_are_not_dependencies() {
        let events = vec![
            TraceEvent::Write {
                proc: "other".into(),
                write: w("posts", "unrelated", 9),
                at: t(0),
            },
            TraceEvent::Checkpoint {
                proc: "reader".into(),
                location: "reader:recv".into(),
                region: US,
                at: t(10),
            },
        ];
        let d = RaceDetector::analyze(&events);
        assert!(d.races().is_empty());
        assert!(d.findings()[0].visible.is_empty());
    }

    /// Superseded KV versions are visible through the watermark, matching
    /// the store's monotone `is_visible`.
    #[test]
    fn watermark_satisfies_older_versions() {
        let events = vec![
            TraceEvent::Write {
                proc: "writer".into(),
                write: w("db", "k", 3),
                at: t(0),
            },
            TraceEvent::Send {
                proc: "writer".into(),
                channel: "q".into(),
                msg: 1,
                at: t(1),
            },
            // The replica saw version 5 (a newer write) before the reader
            // checked: version 3 counts as visible.
            TraceEvent::KvApplied {
                store: "db".into(),
                region: US,
                key: "k".into(),
                watermark: 5,
                at: t(20),
            },
            TraceEvent::Recv {
                proc: "reader".into(),
                channel: "q".into(),
                msg: 1,
                at: t(30),
            },
            TraceEvent::Checkpoint {
                proc: "reader".into(),
                location: "l".into(),
                region: US,
                at: t(31),
            },
        ];
        let d = RaceDetector::analyze(&events);
        assert!(d.races().is_empty());
    }

    /// Causality is transitive across processes: writer → svc-b → reader.
    #[test]
    fn transitive_message_edges_carry_dependencies() {
        let events = vec![
            TraceEvent::Write {
                proc: "writer".into(),
                write: w("db", "k", 1),
                at: t(0),
            },
            TraceEvent::Send {
                proc: "writer".into(),
                channel: "a".into(),
                msg: 1,
                at: t(1),
            },
            TraceEvent::Recv {
                proc: "svc-b".into(),
                channel: "a".into(),
                msg: 1,
                at: t(10),
            },
            TraceEvent::Send {
                proc: "svc-b".into(),
                channel: "b".into(),
                msg: 7,
                at: t(11),
            },
            TraceEvent::Recv {
                proc: "reader".into(),
                channel: "b".into(),
                msg: 7,
                at: t(20),
            },
            TraceEvent::Checkpoint {
                proc: "reader".into(),
                location: "l".into(),
                region: US,
                at: t(21),
            },
        ];
        let d = RaceDetector::analyze(&events);
        assert_eq!(d.findings()[0].unmet, vec![w("db", "k", 1)]);
    }

    #[test]
    fn acks_are_tracked_for_work_queue_semantics() {
        let mut d = RaceDetector::new();
        d.observe(&TraceEvent::QueueAcked {
            store: "amq".into(),
            region: EU,
            id: 4,
            at: t(5),
        });
        assert!(d.is_acked("amq", EU, 4));
        assert!(!d.is_acked("amq", US, 4));
        assert!(!d.is_acked("amq", EU, 5));
    }
}

//! Lineage-identifier generation.
//!
//! Lineage ids must be unique across the whole deployment without
//! coordination. We pack a 16-bit node id with a 48-bit per-node counter —
//! the shape real tracing systems use for trace ids.

use std::cell::Cell;

use antipode_lineage::LineageId;

/// Allocates unique [`LineageId`]s for one node (service instance).
#[derive(Clone, Debug)]
pub struct LineageIdGen {
    node: u16,
    next: Cell<u64>,
}

impl LineageIdGen {
    /// Creates a generator for the given node id.
    pub fn new(node: u16) -> Self {
        LineageIdGen {
            node,
            next: Cell::new(0),
        }
    }

    /// Allocates the next id: `node` in the top 16 bits, counter below.
    pub fn next_id(&self) -> LineageId {
        let c = self.next.get();
        self.next.set(c + 1);
        debug_assert!(c < (1 << 48), "per-node lineage counter exhausted");
        LineageId((u64::from(self.node) << 48) | c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ids_are_unique_and_monotone() {
        let g = LineageIdGen::new(3);
        let a = g.next_id();
        let b = g.next_id();
        assert_ne!(a, b);
        assert!(a.0 < b.0);
    }

    #[test]
    fn node_ids_partition_the_space() {
        let g1 = LineageIdGen::new(1);
        let g2 = LineageIdGen::new(2);
        assert_ne!(g1.next_id(), g2.next_id());
        assert_eq!(g1.next_id().0 >> 48, 1);
        assert_eq!(g2.next_id().0 >> 48, 2);
    }
}

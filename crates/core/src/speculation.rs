//! The speculation plane (core half): proceed past a heavy-tail barrier.
//!
//! The paper's §7.4 shows S3-style stores with heavy-tailed cross-region
//! replication keeping barriers blocked for tens of seconds. A *speculative*
//! barrier turns that blocking wait into optimistic progress: when the
//! blocking budget elapses with dependencies still unmet, the caller gets a
//! [`SpeculationFrontier`] recording exactly the writes it is speculating
//! past, and execution proceeds — provided every externally-visible effect
//! stays confined until the frontier resolves. A deterministic confirmation
//! watcher keeps enforcing the remainder in the background and resolves the
//! frontier to *confirmed* (the deps became visible) or *violated* (an
//! outage or crash made them unsatisfiable within the confirmation budget).
//!
//! The datastore half (the confinement buffer) lives in `antipode-store`;
//! the rollback/redelivery orchestration lives in `antipode-runtime`.

use std::cell::{Cell, RefCell};
use std::fmt;
use std::rc::Rc;
use std::time::Duration;

use antipode_lineage::{Lineage, LineageId, WriteId};
use antipode_sim::sync::Notify;
use antipode_sim::{Region, SimTime};

use crate::barrier::{Antipode, BarrierError, BarrierOutcome, BarrierReport, SpeculativeBarrier};

/// Budgets governing one speculative barrier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SpeculationConfig {
    /// How long the barrier blocks before giving up and speculating — the
    /// budget handed to [`Antipode::barrier_budget`].
    pub budget: Duration,
    /// How long the confirmation watcher keeps enforcing the unmet
    /// remainder before declaring the speculation violated.
    pub confirm_budget: Duration,
}

impl Default for SpeculationConfig {
    fn default() -> Self {
        SpeculationConfig {
            budget: Duration::from_millis(500),
            confirm_budget: Duration::from_secs(30),
        }
    }
}

/// Resolution state of a [`SpeculationFrontier`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SpecState {
    /// Execution is proceeding past unmet dependencies. Every
    /// externally-visible effect issued under this frontier must stay
    /// confined.
    Open,
    /// The dependencies became visible within the confirmation budget —
    /// confined effects may be committed.
    Confirmed,
    /// The dependencies could not be satisfied within the confirmation
    /// budget — confined effects must be discarded and the work redelivered.
    Violated,
}

/// Why a frontier resolved to [`SpecState::Violated`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum ViolationCause {
    /// The confirmation budget elapsed with dependencies still unmet (e.g. a
    /// replica crash outlasting the budget).
    BudgetElapsed,
    /// The confirmation barrier surfaced a hard error — typically retry
    /// exhaustion against a store the chaos plane keeps down.
    Barrier(String),
}

impl fmt::Display for ViolationCause {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ViolationCause::BudgetElapsed => write!(f, "confirmation budget elapsed"),
            ViolationCause::Barrier(e) => write!(f, "confirmation barrier failed: {e}"),
        }
    }
}

struct FrontierInner {
    lineage: LineageId,
    region: Region,
    deps: Vec<WriteId>,
    opened_at: SimTime,
    state: Cell<SpecState>,
    resolved_at: Cell<Option<SimTime>>,
    confirmation: RefCell<Option<BarrierReport>>,
    cause: RefCell<Option<ViolationCause>>,
    still_unmet: RefCell<Vec<WriteId>>,
    notify: Notify,
}

/// One open speculation: the exact unmet dependencies execution proceeded
/// past, plus the resolution the confirmation watcher eventually reaches.
///
/// Cheap to clone (shared handle); equality is identity — two handles are
/// equal iff they refer to the same speculation.
#[derive(Clone)]
pub struct SpeculationFrontier {
    inner: Rc<FrontierInner>,
}

impl PartialEq for SpeculationFrontier {
    fn eq(&self, other: &Self) -> bool {
        Rc::ptr_eq(&self.inner, &other.inner)
    }
}
impl Eq for SpeculationFrontier {}

impl fmt::Debug for SpeculationFrontier {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("SpeculationFrontier")
            .field("lineage", &self.inner.lineage)
            .field("region", &self.inner.region)
            .field("deps", &self.inner.deps.len())
            .field("state", &self.state())
            .finish()
    }
}

impl SpeculationFrontier {
    pub(crate) fn open(
        lineage: LineageId,
        region: Region,
        deps: Vec<WriteId>,
        opened_at: SimTime,
    ) -> Self {
        SpeculationFrontier {
            inner: Rc::new(FrontierInner {
                lineage,
                region,
                deps,
                opened_at,
                state: Cell::new(SpecState::Open),
                resolved_at: Cell::new(None),
                confirmation: RefCell::new(None),
                cause: RefCell::new(None),
                still_unmet: RefCell::new(Vec::new()),
                notify: Notify::new(),
            }),
        }
    }

    /// The lineage this speculation belongs to.
    pub fn lineage(&self) -> LineageId {
        self.inner.lineage
    }

    /// The region the unmet dependencies were (not) visible at.
    pub fn region(&self) -> Region {
        self.inner.region
    }

    /// The dependencies execution is speculating past.
    pub fn deps(&self) -> &[WriteId] {
        &self.inner.deps
    }

    /// Virtual time the frontier opened.
    pub fn opened_at(&self) -> SimTime {
        self.inner.opened_at
    }

    /// Current resolution state.
    pub fn state(&self) -> SpecState {
        self.inner.state.get()
    }

    /// Whether the speculation is still unresolved.
    pub fn is_open(&self) -> bool {
        self.state() == SpecState::Open
    }

    /// Virtual time the watcher resolved the frontier, once it has.
    pub fn resolved_at(&self) -> Option<SimTime> {
        self.inner.resolved_at.get()
    }

    /// The confirmation barrier's telemetry, present once confirmed.
    pub fn confirmation_report(&self) -> Option<BarrierReport> {
        self.inner.confirmation.borrow().clone()
    }

    /// Why the speculation violated, present once violated.
    pub fn violation_cause(&self) -> Option<ViolationCause> {
        self.inner.cause.borrow().clone()
    }

    /// The dependencies still unmet at violation time (a subset of
    /// [`SpeculationFrontier::deps`]). Empty before resolution and after a
    /// confirmation.
    pub fn violation_unmet(&self) -> Vec<WriteId> {
        self.inner.still_unmet.borrow().clone()
    }

    /// Waits until the confirmation watcher resolves the frontier and
    /// returns the terminal state ([`SpecState::Confirmed`] or
    /// [`SpecState::Violated`]). Returns immediately if already resolved.
    pub async fn resolved(&self) -> SpecState {
        loop {
            let notified = self.inner.notify.notified();
            let s = self.state();
            if s != SpecState::Open {
                return s;
            }
            notified.await;
        }
    }

    pub(crate) fn confirm(&self, at: SimTime, report: BarrierReport) {
        if !self.is_open() {
            return;
        }
        *self.inner.confirmation.borrow_mut() = Some(report);
        self.inner.resolved_at.set(Some(at));
        self.inner.state.set(SpecState::Confirmed);
        self.inner.notify.notify_all();
    }

    pub(crate) fn violate(&self, at: SimTime, cause: ViolationCause, unmet: Vec<WriteId>) {
        if !self.is_open() {
            return;
        }
        *self.inner.cause.borrow_mut() = Some(cause);
        *self.inner.still_unmet.borrow_mut() = unmet;
        self.inner.resolved_at.set(Some(at));
        self.inner.state.set(SpecState::Violated);
        self.inner.notify.notify_all();
    }
}

impl Antipode {
    /// Speculative barrier: block like [`Antipode::barrier_budget`] for
    /// `cfg.budget`; if dependencies are still unmet when the budget
    /// elapses, *proceed anyway* — returning
    /// [`BarrierOutcome::Speculative`] with an open
    /// [`SpeculationFrontier`] recording the writes being speculated past,
    /// and spawning a deterministic confirmation watcher that resolves the
    /// frontier to confirmed or violated within `cfg.confirm_budget`.
    ///
    /// The contract mirrors speculative execution for cloud applications:
    /// the caller may run its handler immediately, but every
    /// externally-visible effect issued while the frontier is open must be
    /// confined (see `ConfinementBuffer` in `antipode-store`) until the
    /// frontier resolves.
    pub async fn barrier_speculative(
        &self,
        lineage: &Lineage,
        region: Region,
        cfg: &SpeculationConfig,
    ) -> Result<BarrierOutcome, BarrierError> {
        match self.barrier_budget(lineage, region, cfg.budget).await? {
            BarrierOutcome::Degraded(d) => {
                let frontier =
                    SpeculationFrontier::open(d.lineage, region, d.unmet.clone(), self.sim().now());
                self.spawn_confirmation(frontier.clone(), cfg.confirm_budget);
                Ok(BarrierOutcome::Speculative(SpeculativeBarrier {
                    frontier,
                    report: d.report,
                    budget: cfg.budget,
                }))
            }
            done => Ok(done),
        }
    }

    /// The confirmation watcher: a detached task re-enforcing the unmet
    /// remainder with the client's usual retry policy, bounded by
    /// `confirm_budget`. Deterministic — it runs on the simulation's
    /// single-threaded scheduler, so the same seed and fault plan resolve
    /// every frontier at the same virtual time.
    fn spawn_confirmation(&self, frontier: SpeculationFrontier, confirm_budget: Duration) {
        let this = self.clone();
        self.sim().spawn(async move {
            let mut remainder = Lineage::new(frontier.lineage());
            for w in frontier.deps() {
                remainder.append(w.clone());
            }
            let region = frontier.region();
            let sim = this.sim().clone();
            let enforce = this.barrier(&remainder, region);
            match antipode_sim::timeout(&sim, confirm_budget, enforce).await {
                Ok(Ok(report)) => frontier.confirm(sim.now(), report),
                Ok(Err(e)) => {
                    let unmet = this.dry_run(&remainder, region).unmet;
                    frontier.violate(sim.now(), ViolationCause::Barrier(e.to_string()), unmet);
                }
                Err(_elapsed) => {
                    let unmet = this.dry_run(&remainder, region).unmet;
                    frontier.violate(sim.now(), ViolationCause::BudgetElapsed, unmet);
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wait::{LocalBoxFuture, WaitError, WaitTarget};
    use antipode_sim::Sim;
    use std::collections::HashSet;

    const HERE: Region = Region("spec-region");

    struct TestStore {
        name: String,
        sim: Sim,
        visible: Rc<RefCell<HashSet<(String, u64)>>>,
        unavailable: Cell<bool>,
    }

    impl TestStore {
        fn new(sim: &Sim, name: &str) -> Rc<Self> {
            Rc::new(TestStore {
                name: name.to_string(),
                sim: sim.clone(),
                visible: Rc::new(RefCell::new(HashSet::new())),
                unavailable: Cell::new(false),
            })
        }

        fn visible_after(&self, key: &str, version: u64, d: Duration) {
            let visible = self.visible.clone();
            let key = key.to_string();
            let sim = self.sim.clone();
            self.sim.spawn(async move {
                sim.sleep(d).await;
                visible.borrow_mut().insert((key, version));
            });
        }
    }

    impl WaitTarget for TestStore {
        fn datastore_name(&self) -> &str {
            &self.name
        }
        fn wait<'a>(
            &'a self,
            write: &'a WriteId,
            region: Region,
        ) -> LocalBoxFuture<'a, Result<(), WaitError>> {
            Box::pin(async move {
                if self.unavailable.get() {
                    return Err(WaitError::StoreUnavailable(format!("{}@down", self.name)));
                }
                while !self.is_visible(write, region) {
                    self.sim.sleep(Duration::from_millis(1)).await;
                }
                Ok(())
            })
        }
        fn is_visible(&self, write: &WriteId, _region: Region) -> bool {
            self.visible
                .borrow()
                .contains(&(write.key().to_string(), write.version()))
        }
    }

    fn lineage_with(deps: &[(&str, &str, u64)]) -> Lineage {
        let mut l = Lineage::new(LineageId(1));
        for (s, k, v) in deps {
            l.append(WriteId::new(*s, *k, *v));
        }
        l
    }

    fn cfg(budget_ms: u64, confirm_secs: u64) -> SpeculationConfig {
        SpeculationConfig {
            budget: Duration::from_millis(budget_ms),
            confirm_budget: Duration::from_secs(confirm_secs),
        }
    }

    #[test]
    fn fast_dependencies_complete_without_speculating() {
        let sim = Sim::new(0);
        let store = TestStore::new(&sim, "db");
        store.visible_after("k", 1, Duration::from_millis(50));
        let mut ap = Antipode::new(sim.clone());
        ap.register(store);
        let l = lineage_with(&[("db", "k", 1)]);
        let outcome = sim.block_on(async move {
            ap.barrier_speculative(&l, HERE, &cfg(500, 30))
                .await
                .unwrap()
        });
        assert!(outcome.is_complete());
        assert!(!outcome.is_speculative());
    }

    #[test]
    fn slow_dependency_opens_a_frontier_then_confirms() {
        let sim = Sim::new(0);
        let store = TestStore::new(&sim, "s3");
        store.visible_after("k", 1, Duration::from_secs(10));
        let mut ap = Antipode::new(sim.clone());
        ap.register(store);
        let l = lineage_with(&[("s3", "k", 1)]);
        let sim2 = sim.clone();
        sim.block_on(async move {
            let outcome = ap
                .barrier_speculative(&l, HERE, &cfg(500, 30))
                .await
                .unwrap();
            let spec = match outcome {
                BarrierOutcome::Speculative(s) => s,
                other => panic!("10s dep past a 500ms budget must speculate, got {other:?}"),
            };
            assert!(spec.frontier.is_open());
            assert_eq!(spec.frontier.deps(), &[WriteId::new("s3", "k", 1)]);
            assert_eq!(spec.frontier.opened_at(), sim2.now());
            let state = spec.frontier.resolved().await;
            assert_eq!(state, SpecState::Confirmed);
            assert!(spec.frontier.resolved_at().unwrap() >= SimTime::from_secs(10));
            let report = spec.frontier.confirmation_report().unwrap();
            assert_eq!(report.waited_for, 1);
            assert!(spec.frontier.violation_cause().is_none());
            assert!(spec.frontier.violation_unmet().is_empty());
        });
    }

    #[test]
    fn unsatisfiable_dependency_violates_within_confirm_budget() {
        let sim = Sim::new(0);
        let store = TestStore::new(&sim, "s3");
        // Never becomes visible.
        let mut ap = Antipode::new(sim.clone());
        ap.register(store);
        let l = lineage_with(&[("s3", "k", 1)]);
        sim.block_on(async move {
            let outcome = ap
                .barrier_speculative(&l, HERE, &cfg(100, 5))
                .await
                .unwrap();
            let spec = match outcome {
                BarrierOutcome::Speculative(s) => s,
                other => panic!("expected speculation, got {other:?}"),
            };
            let state = spec.frontier.resolved().await;
            assert_eq!(state, SpecState::Violated);
            assert_eq!(
                spec.frontier.violation_cause(),
                Some(ViolationCause::BudgetElapsed)
            );
            assert_eq!(
                spec.frontier.violation_unmet(),
                vec![WriteId::new("s3", "k", 1)]
            );
        });
    }

    #[test]
    fn store_outage_exhausting_retries_violates_with_barrier_cause() {
        let sim = Sim::new(0);
        let store = TestStore::new(&sim, "s3");
        store.unavailable.set(true);
        let mut ap = Antipode::new(sim.clone()).with_retry(crate::BarrierRetry {
            max_attempts: 2,
            ..crate::BarrierRetry::default()
        });
        ap.register(store);
        let l = lineage_with(&[("s3", "k", 1)]);
        sim.block_on(async move {
            let outcome = ap
                .barrier_speculative(&l, HERE, &cfg(50, 60))
                .await
                .unwrap();
            let spec = match outcome {
                BarrierOutcome::Speculative(s) => s,
                other => panic!("expected speculation, got {other:?}"),
            };
            let state = spec.frontier.resolved().await;
            assert_eq!(state, SpecState::Violated);
            match spec.frontier.violation_cause() {
                Some(ViolationCause::Barrier(msg)) => {
                    assert!(msg.contains("s3@down"), "cause carries the store: {msg}")
                }
                other => panic!("expected a barrier cause, got {other:?}"),
            }
        });
    }

    #[test]
    fn resolved_is_idempotent_and_multi_waiter() {
        let sim = Sim::new(7);
        let store = TestStore::new(&sim, "db");
        store.visible_after("k", 1, Duration::from_secs(2));
        let mut ap = Antipode::new(sim.clone());
        ap.register(store);
        let l = lineage_with(&[("db", "k", 1)]);
        let resolutions: Rc<RefCell<Vec<SpecState>>> = Rc::new(RefCell::new(Vec::new()));
        let sim2 = sim.clone();
        let slot = resolutions.clone();
        sim.block_on(async move {
            let spec = match ap
                .barrier_speculative(&l, HERE, &cfg(100, 30))
                .await
                .unwrap()
            {
                BarrierOutcome::Speculative(s) => s,
                other => panic!("expected speculation, got {other:?}"),
            };
            for _ in 0..3 {
                let f = spec.frontier.clone();
                let slot = slot.clone();
                sim2.spawn(async move {
                    let state = f.resolved().await;
                    slot.borrow_mut().push(state);
                });
            }
            assert_eq!(spec.frontier.resolved().await, SpecState::Confirmed);
            // Resolving again returns instantly with the same state.
            assert_eq!(spec.frontier.resolved().await, SpecState::Confirmed);
        });
        sim.run();
        assert_eq!(
            &*resolutions.borrow(),
            &[SpecState::Confirmed; 3],
            "every waiter observes the same resolution"
        );
    }
}

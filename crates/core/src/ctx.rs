//! The Lineage API (paper Table 2) as a per-request context.
//!
//! A [`LineageCtx`] plays the role the paper assigns to the (thread-local)
//! request context: it holds the lineage of the request currently executing
//! in this task. `root` initializes it, `stop` discards it (Antipode's
//! default dependency-truncation behaviour, §5.1), and lineages move in and
//! out of request [`Baggage`] at RPC boundaries.

use antipode_lineage::{Baggage, Lineage, WriteId};

use crate::idgen::LineageIdGen;
use crate::speculation::SpeculationFrontier;

/// Per-request lineage context.
///
/// Besides the lineage itself, the context tracks the request's open
/// [`SpeculationFrontier`]s: each records unmet dependencies the execution
/// has proceeded past under a speculative barrier. While any frontier is
/// open, the request's externally-visible effects must stay confined.
#[derive(Clone, Debug, Default)]
pub struct LineageCtx {
    current: Option<Lineage>,
    frontiers: Vec<SpeculationFrontier>,
}

impl LineageCtx {
    /// An empty context (no lineage attached yet).
    pub fn new() -> Self {
        LineageCtx::default()
    }

    /// `root()`: initializes an empty lineage in the running process. Used at
    /// the beginning of a request's execution; replaces any existing lineage
    /// and forgets frontiers tracked for the previous one.
    pub fn root(&mut self, gen: &LineageIdGen) -> &Lineage {
        self.current = Some(Lineage::new(gen.next_id()));
        self.frontiers.clear();
        self.current.as_ref().expect("just set")
    }

    /// `stop()`: closes the lineage, dropping the ongoing dependency set and
    /// any tracked frontiers. Returns the discarded lineage (callers may
    /// still `transfer` from it).
    pub fn stop(&mut self) -> Option<Lineage> {
        self.frontiers.clear();
        self.current.take()
    }

    /// Adopts a lineage received from elsewhere (RPC baggage or a datastore
    /// read), replacing the current one.
    pub fn adopt(&mut self, lineage: Lineage) {
        self.current = Some(lineage);
    }

    /// The current lineage, if any.
    pub fn lineage(&self) -> Option<&Lineage> {
        self.current.as_ref()
    }

    /// Mutable access to the current lineage, if any.
    pub fn lineage_mut(&mut self) -> Option<&mut Lineage> {
        self.current.as_mut()
    }

    /// `append(ℒ, dep)` on the current lineage. No-op without a lineage.
    pub fn append(&mut self, dep: WriteId) {
        if let Some(l) = &mut self.current {
            l.append(dep);
        }
    }

    /// `remove(ℒ, dep)` on the current lineage.
    pub fn remove(&mut self, dep: &WriteId) -> bool {
        self.current.as_mut().is_some_and(|l| l.remove(dep))
    }

    /// `transfer(ℒa, ℒb)`: copies `from`'s dependencies into the current
    /// lineage, explicitly re-establishing cross-lineage transitivity
    /// (§5.1's ACL example). No-op without a current lineage.
    pub fn transfer(&mut self, from: &Lineage) {
        if let Some(l) = &mut self.current {
            l.transfer_from(from);
        }
    }

    /// Writes the current lineage into outgoing request baggage; clears the
    /// entry if there is none. Services must include their lineage with all
    /// RPC requests and responses (§6.2).
    pub fn inject(&self, baggage: &mut Baggage) {
        match &self.current {
            Some(l) => baggage.set_lineage(l),
            None => baggage.clear_lineage(),
        }
    }

    /// Extracts a lineage from incoming baggage into this context. Leaves
    /// the context untouched when the baggage carries none.
    pub fn extract(&mut self, baggage: &Baggage) {
        if let Ok(l) = baggage.lineage() {
            self.current = Some(l);
        }
    }

    /// Tracks a speculation frontier this request opened: a speculative
    /// barrier let execution proceed past unmet dependencies, and until the
    /// frontier resolves the request's effects must stay confined.
    pub fn open_frontier(&mut self, frontier: SpeculationFrontier) {
        self.frontiers.push(frontier);
    }

    /// Every tracked frontier, resolved or not, in opening order.
    pub fn frontiers(&self) -> &[SpeculationFrontier] {
        &self.frontiers
    }

    /// Whether the request is currently executing past at least one open
    /// (unresolved) frontier — i.e. whether effects must be confined.
    pub fn speculating(&self) -> bool {
        self.frontiers.iter().any(|f| f.is_open())
    }

    /// Drops frontiers that have resolved (confirmed or violated); returns
    /// how many were pruned. The remaining set is exactly the open ones.
    pub fn prune_frontiers(&mut self) -> usize {
        let before = self.frontiers.len();
        self.frontiers.retain(|f| f.is_open());
        before - self.frontiers.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antipode_lineage::LineageId;

    fn wid(k: &str, v: u64) -> WriteId {
        WriteId::new("store", k, v)
    }

    #[test]
    fn root_creates_fresh_lineage() {
        let gen = LineageIdGen::new(1);
        let mut ctx = LineageCtx::new();
        assert!(ctx.lineage().is_none());
        let id1 = ctx.root(&gen).id();
        let id2 = ctx.root(&gen).id();
        assert_ne!(id1, id2, "each root is a new lineage");
        assert!(ctx.lineage().unwrap().is_empty());
    }

    #[test]
    fn stop_discards_dependencies() {
        let gen = LineageIdGen::new(1);
        let mut ctx = LineageCtx::new();
        ctx.root(&gen);
        ctx.append(wid("k", 1));
        let dropped = ctx.stop().unwrap();
        assert_eq!(dropped.len(), 1);
        assert!(ctx.lineage().is_none());
        ctx.append(wid("x", 1)); // no-op, must not panic
        assert!(ctx.lineage().is_none());
    }

    #[test]
    fn transfer_copies_dependencies() {
        let gen = LineageIdGen::new(1);
        let mut block = LineageCtx::new();
        block.root(&gen);
        block.append(wid("acl", 7));
        let l_block = block.stop().unwrap();

        let mut post = LineageCtx::new();
        post.root(&gen);
        post.transfer(&l_block);
        assert!(post.lineage().unwrap().contains(&wid("acl", 7)));
    }

    #[test]
    fn inject_extract_round_trip() {
        let gen = LineageIdGen::new(4);
        let mut ctx = LineageCtx::new();
        ctx.root(&gen);
        ctx.append(wid("post-1", 3));
        let mut bag = Baggage::new();
        ctx.inject(&mut bag);

        let mut remote = LineageCtx::new();
        remote.extract(&bag);
        assert_eq!(remote.lineage(), ctx.lineage());
    }

    #[test]
    fn inject_without_lineage_clears_entry() {
        let mut bag = Baggage::new();
        bag.set_lineage(&Lineage::new(LineageId(9)));
        LineageCtx::new().inject(&mut bag);
        assert!(bag.lineage().is_err());
    }

    #[test]
    fn extract_from_empty_baggage_keeps_current() {
        let gen = LineageIdGen::new(1);
        let mut ctx = LineageCtx::new();
        ctx.root(&gen);
        ctx.append(wid("k", 1));
        ctx.extract(&Baggage::new());
        assert_eq!(ctx.lineage().unwrap().len(), 1);
    }

    #[test]
    fn frontier_tracking_follows_resolution() {
        use antipode_sim::{Region, SimTime};
        let gen = LineageIdGen::new(1);
        let mut ctx = LineageCtx::new();
        let id = ctx.root(&gen).id();
        assert!(!ctx.speculating());
        let f = SpeculationFrontier::open(id, Region("r"), vec![wid("k", 1)], SimTime::ZERO);
        ctx.open_frontier(f.clone());
        assert!(ctx.speculating());
        assert_eq!(ctx.frontiers().len(), 1);
        assert_eq!(ctx.prune_frontiers(), 0, "open frontiers are kept");
        f.confirm(SimTime::from_secs(1), crate::BarrierReport::default());
        assert!(!ctx.speculating());
        assert_eq!(ctx.prune_frontiers(), 1);
        assert!(ctx.frontiers().is_empty());
    }

    #[test]
    fn root_and_stop_forget_frontiers() {
        use antipode_sim::{Region, SimTime};
        let gen = LineageIdGen::new(1);
        let mut ctx = LineageCtx::new();
        let id = ctx.root(&gen).id();
        ctx.open_frontier(SpeculationFrontier::open(
            id,
            Region("r"),
            vec![wid("k", 1)],
            SimTime::ZERO,
        ));
        ctx.stop();
        assert!(ctx.frontiers().is_empty(), "stop drops tracked frontiers");
        ctx.root(&gen);
        assert!(!ctx.speculating());
    }

    #[test]
    fn remove_returns_presence() {
        let gen = LineageIdGen::new(1);
        let mut ctx = LineageCtx::new();
        ctx.root(&gen);
        ctx.append(wid("k", 1));
        assert!(ctx.remove(&wid("k", 1)));
        assert!(!ctx.remove(&wid("k", 1)));
    }
}

//! The Core API: `barrier(ℒ)` and its variants (paper §6.3).
//!
//! `barrier` unpacks the write identifiers carried by a lineage, groups them
//! by datastore, and calls each store's `wait` against the replica co-located
//! with the caller. It returns once every dependency is visible (or
//! superseded). Variants: a timeout form, an asynchronous form that invokes a
//! callback, and a **dry-run** mode that only reports which dependencies are
//! not yet visible — the passive consistency checker developers use to find
//! barrier placements.

use std::fmt;
use std::rc::Rc;
use std::time::Duration;

use antipode_lineage::{Lineage, StoreId, WriteId};
use antipode_sim::{Region, Sim};

use crate::registry::{ShimRegistry, UnknownStorePolicy};
use crate::wait::{WaitError, WaitTarget};

/// Errors from [`Antipode::barrier`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BarrierError {
    /// A lineage dependency names a datastore with no registered shim and
    /// the policy is [`UnknownStorePolicy::Fail`].
    UnknownStore(String),
    /// A datastore-specific wait failed.
    Wait(WaitError),
    /// The timeout elapsed before all dependencies became visible
    /// ([`Antipode::barrier_with_timeout`] only).
    Timeout {
        /// Dependencies still not visible when the deadline passed.
        unmet: Vec<WriteId>,
    },
}

impl fmt::Display for BarrierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BarrierError::UnknownStore(s) => write!(f, "no shim registered for datastore {s}"),
            BarrierError::Wait(e) => write!(f, "wait failed: {e}"),
            BarrierError::Timeout { unmet } => {
                write!(
                    f,
                    "barrier timed out with {} unmet dependencies",
                    unmet.len()
                )
            }
        }
    }
}
impl std::error::Error for BarrierError {}

impl From<WaitError> for BarrierError {
    fn from(e: WaitError) -> Self {
        BarrierError::Wait(e)
    }
}

/// Retry policy for transient store unavailability inside a barrier.
///
/// A store-specific `wait` can fail with
/// [`WaitError::StoreUnavailable`] while the chaos plane has the replica's
/// region down. Rather than surfacing every transient outage to the
/// application, the barrier re-polls the store with exponential backoff —
/// dependencies are immutable facts, so retrying is always safe.
#[derive(Clone, Debug)]
pub struct BarrierRetry {
    /// Total attempts per dependency (first try included). Clamped ≥ 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub base: Duration,
    /// Growth factor per attempt.
    pub multiplier: f64,
    /// Backoff ceiling.
    pub max: Duration,
}

impl Default for BarrierRetry {
    fn default() -> Self {
        BarrierRetry {
            max_attempts: 32,
            base: Duration::from_millis(100),
            multiplier: 2.0,
            max: Duration::from_secs(5),
        }
    }
}

impl BarrierRetry {
    /// A policy that surfaces the first unavailability error unretried.
    pub fn none() -> Self {
        BarrierRetry {
            max_attempts: 1,
            ..BarrierRetry::default()
        }
    }

    /// The sleep after (0-based) failed attempt `attempt`. Deterministic —
    /// barrier schedules reproduce exactly from the simulation seed.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self.base.as_secs_f64() * self.multiplier.max(1.0).powi(attempt as i32);
        Duration::from_secs_f64(exp.min(self.max.as_secs_f64()))
    }
}

/// Per-datastore wait telemetry from one barrier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreWait {
    /// Interned datastore id; grouping compares this, not the name.
    pub store: StoreId,
    /// Datastore name.
    pub datastore: String,
    /// Dependencies on this store the barrier examined.
    pub deps: usize,
    /// Virtual time spent blocked on this store (waits + retry backoff).
    pub blocked: Duration,
    /// Waits retried after transient [`WaitError::StoreUnavailable`].
    pub retries: u32,
}

/// What a completed barrier did.
#[derive(Clone, Debug, PartialEq)]
pub struct BarrierReport {
    /// Dependencies that were already visible when the barrier started.
    pub already_visible: usize,
    /// Dependencies the barrier had to wait for.
    pub waited_for: usize,
    /// Dependencies skipped under [`UnknownStorePolicy::Skip`].
    pub skipped: usize,
    /// Virtual time spent blocked in the barrier.
    pub blocked: Duration,
    /// Per-datastore breakdown: time blocked and outage retries per store.
    pub waits: Vec<StoreWait>,
}

impl BarrierReport {
    fn empty() -> Self {
        BarrierReport {
            already_visible: 0,
            waited_for: 0,
            skipped: 0,
            blocked: Duration::ZERO,
            waits: Vec::new(),
        }
    }

    fn store_entry(&mut self, store: StoreId) -> &mut StoreWait {
        // Integer compare per entry — the per-store grouping of a barrier
        // never re-hashes or re-compares datastore name strings.
        if let Some(i) = self.waits.iter().position(|w| w.store == store) {
            return &mut self.waits[i];
        }
        self.waits.push(StoreWait {
            store,
            datastore: store.name().to_string(),
            deps: 0,
            blocked: Duration::ZERO,
            retries: 0,
        });
        self.waits.last_mut().expect("just pushed")
    }
}

/// Result of a dry-run barrier: the passive consistency checker of §6.3.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct DryRunReport {
    /// Dependencies visible at the caller's region right now.
    pub visible: Vec<WriteId>,
    /// Dependencies **not** visible — each one is a potential XCY violation
    /// were the execution to proceed without a barrier here.
    pub unmet: Vec<WriteId>,
    /// Dependencies on datastores this service has no shim for.
    pub unknown: Vec<WriteId>,
}

impl DryRunReport {
    /// Whether proceeding without a barrier would be safe right now.
    pub fn is_satisfied(&self) -> bool {
        self.unmet.is_empty()
    }
}

/// The Antipode client of one service: a shim registry plus the simulation
/// handle. Cheap to clone.
#[derive(Clone)]
pub struct Antipode {
    sim: Sim,
    registry: ShimRegistry,
    policy: UnknownStorePolicy,
    retry: BarrierRetry,
}

impl Antipode {
    /// Creates a client with the default [`UnknownStorePolicy::Fail`] and
    /// the default [`BarrierRetry`].
    pub fn new(sim: Sim) -> Self {
        Antipode {
            sim,
            registry: ShimRegistry::new(),
            policy: UnknownStorePolicy::default(),
            retry: BarrierRetry::default(),
        }
    }

    /// Sets the unknown-store policy.
    pub fn with_policy(mut self, policy: UnknownStorePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the retry policy applied when a store is transiently
    /// unavailable during a barrier.
    pub fn with_retry(mut self, retry: BarrierRetry) -> Self {
        self.retry = retry;
        self
    }

    /// Registers a datastore shim.
    pub fn register(&mut self, shim: Rc<dyn WaitTarget>) {
        self.registry.register(shim);
    }

    /// The shim registry.
    pub fn registry(&self) -> &ShimRegistry {
        &self.registry
    }

    /// The simulation handle.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// Enforces the lineage's dependencies: blocks until every write in the
    /// lineage is visible at `region` (paper §6.3). Transient
    /// [`WaitError::StoreUnavailable`] failures (a chaos-plane region
    /// outage, say) are retried per the configured [`BarrierRetry`]; other
    /// wait errors surface immediately. Returns a report of what was
    /// enforced, including a per-store wait/retry breakdown.
    pub async fn barrier(
        &self,
        lineage: &Lineage,
        region: Region,
    ) -> Result<BarrierReport, BarrierError> {
        let start = self.sim.now();
        let mut report = BarrierReport::empty();
        for dep in lineage.deps() {
            let Some(shim) = self.registry.get_id(dep.store()) else {
                match self.policy {
                    UnknownStorePolicy::Fail => {
                        return Err(BarrierError::UnknownStore(dep.datastore().to_string()))
                    }
                    UnknownStorePolicy::Skip => {
                        report.skipped += 1;
                        continue;
                    }
                }
            };
            let dep_start = self.sim.now();
            let mut retries = 0u32;
            if shim.is_visible(dep, region) {
                report.already_visible += 1;
            } else {
                let max_attempts = self.retry.max_attempts.max(1);
                loop {
                    match shim.wait(dep, region).await {
                        Ok(()) => break,
                        Err(WaitError::StoreUnavailable(_)) if retries + 1 < max_attempts => {
                            self.sim.sleep(self.retry.backoff(retries)).await;
                            retries += 1;
                        }
                        Err(e) => return Err(e.into()),
                    }
                }
                report.waited_for += 1;
            }
            let entry = report.store_entry(dep.store());
            entry.deps += 1;
            entry.retries += retries;
            entry.blocked += self.sim.now().since(dep_start);
        }
        report.blocked = self.sim.now().since(start);
        Ok(report)
    }

    /// Enforces the lineage's dependencies in **several** regions at once —
    /// global enforcement, as opposed to the geo-local optimization of §6.3
    /// ("enforce dependencies only from replicas that are co-located with
    /// its caller"). Useful when the caller's output will be consumed from
    /// multiple regions.
    pub async fn barrier_regions(
        &self,
        lineage: &Lineage,
        regions: &[Region],
    ) -> Result<BarrierReport, BarrierError> {
        let start = self.sim.now();
        let mut merged = BarrierReport::empty();
        for region in regions {
            let r = self.barrier(lineage, *region).await?;
            merged.already_visible += r.already_visible;
            merged.waited_for += r.waited_for;
            merged.skipped += r.skipped;
            for w in r.waits {
                let entry = merged.store_entry(w.store);
                entry.deps += w.deps;
                entry.retries += w.retries;
                entry.blocked += w.blocked;
            }
        }
        merged.blocked = self.sim.now().since(start);
        Ok(merged)
    }

    /// [`Antipode::barrier`] with a deadline. On timeout, reports the
    /// dependencies still unmet.
    pub async fn barrier_with_timeout(
        &self,
        lineage: &Lineage,
        region: Region,
        timeout: Duration,
    ) -> Result<BarrierReport, BarrierError> {
        let fut = self.barrier(lineage, region);
        match antipode_sim::timeout(&self.sim, timeout, fut).await {
            Ok(res) => res,
            Err(_) => {
                let dry = self.dry_run(lineage, region);
                Err(BarrierError::Timeout { unmet: dry.unmet })
            }
        }
    }

    /// Asynchronous barrier: returns immediately; `callback` runs once the
    /// dependencies are visible (paper §6.3's callback variant).
    pub fn barrier_async(
        &self,
        lineage: Lineage,
        region: Region,
        callback: impl FnOnce(Result<BarrierReport, BarrierError>) + 'static,
    ) {
        let this = self.clone();
        self.sim.spawn(async move {
            let res = this.barrier(&lineage, region).await;
            callback(res);
        });
    }

    /// Dry-run mode (§6.3): simulates enforcement without blocking,
    /// reporting which dependencies would have stalled the barrier. Unknown
    /// stores are reported rather than failing, regardless of policy.
    pub fn dry_run(&self, lineage: &Lineage, region: Region) -> DryRunReport {
        let mut report = DryRunReport::default();
        for dep in lineage.deps() {
            match self.registry.get_id(dep.store()) {
                None => report.unknown.push(dep.clone()),
                Some(shim) => {
                    if shim.is_visible(dep, region) {
                        report.visible.push(dep.clone());
                    } else {
                        report.unmet.push(dep.clone());
                    }
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wait::LocalBoxFuture;
    use antipode_lineage::LineageId;
    use std::cell::RefCell;
    use std::collections::HashSet;

    const HERE: Region = Region("test-region");

    /// A WaitTarget whose visibility is flipped externally at a given time.
    struct TestStore {
        name: String,
        sim: Sim,
        visible: Rc<RefCell<HashSet<(String, u64)>>>,
    }

    impl TestStore {
        fn new(sim: &Sim, name: &str) -> Rc<Self> {
            Rc::new(TestStore {
                name: name.to_string(),
                sim: sim.clone(),
                visible: Rc::new(RefCell::new(HashSet::new())),
            })
        }

        /// Make (key, version) visible after `d`.
        fn visible_after(&self, key: &str, version: u64, d: Duration) {
            let visible = self.visible.clone();
            let key = key.to_string();
            let sim = self.sim.clone();
            self.sim.spawn(async move {
                sim.sleep(d).await;
                visible.borrow_mut().insert((key, version));
            });
        }
    }

    impl WaitTarget for TestStore {
        fn datastore_name(&self) -> &str {
            &self.name
        }
        fn wait<'a>(
            &'a self,
            write: &'a WriteId,
            region: Region,
        ) -> LocalBoxFuture<'a, Result<(), WaitError>> {
            Box::pin(async move {
                // Poll-based wait; production shims subscribe instead, but
                // for tests 1ms polling is fine.
                while !self.is_visible(write, region) {
                    self.sim.sleep(Duration::from_millis(1)).await;
                }
                Ok(())
            })
        }
        fn is_visible(&self, write: &WriteId, _region: Region) -> bool {
            self.visible
                .borrow()
                .contains(&(write.key().to_string(), write.version()))
        }
    }

    fn lineage_with(deps: &[(&str, &str, u64)]) -> Lineage {
        let mut l = Lineage::new(LineageId(1));
        for (s, k, v) in deps {
            l.append(WriteId::new(*s, *k, *v));
        }
        l
    }

    #[test]
    fn barrier_blocks_until_visible() {
        let sim = Sim::new(0);
        let store = TestStore::new(&sim, "db");
        store.visible_after("k", 1, Duration::from_millis(500));
        let mut ap = Antipode::new(sim.clone());
        ap.register(store);
        let l = lineage_with(&[("db", "k", 1)]);
        let report = sim.block_on(async move { ap.barrier(&l, HERE).await.unwrap() });
        assert_eq!(report.waited_for, 1);
        assert_eq!(report.already_visible, 0);
        assert!(report.blocked >= Duration::from_millis(500));
        assert!(sim.now().since(antipode_sim::SimTime::ZERO) >= Duration::from_millis(500));
    }

    #[test]
    fn barrier_fast_path_when_already_visible() {
        let sim = Sim::new(0);
        let store = TestStore::new(&sim, "db");
        store.visible_after("k", 1, Duration::ZERO);
        sim.run(); // let visibility land
        let mut ap = Antipode::new(sim.clone());
        ap.register(store);
        let l = lineage_with(&[("db", "k", 1)]);
        let report = sim.block_on(async move { ap.barrier(&l, HERE).await.unwrap() });
        assert_eq!(report.already_visible, 1);
        assert_eq!(report.blocked, Duration::ZERO);
    }

    #[test]
    fn barrier_spans_multiple_stores() {
        let sim = Sim::new(0);
        let a = TestStore::new(&sim, "a");
        let b = TestStore::new(&sim, "b");
        a.visible_after("x", 1, Duration::from_millis(100));
        b.visible_after("y", 2, Duration::from_millis(300));
        let mut ap = Antipode::new(sim.clone());
        ap.register(a);
        ap.register(b);
        let l = lineage_with(&[("a", "x", 1), ("b", "y", 2)]);
        let report = sim.block_on(async move { ap.barrier(&l, HERE).await.unwrap() });
        assert_eq!(report.already_visible + report.waited_for, 2);
        assert!(report.blocked >= Duration::from_millis(300));
    }

    #[test]
    fn barrier_regions_waits_for_all() {
        let sim = Sim::new(0);
        let store = TestStore::new(&sim, "db");
        // The same write becomes visible at different times per "region" —
        // the TestStore ignores regions, so emulate by two writes with
        // different delays.
        store.visible_after("k1", 1, Duration::from_millis(100));
        store.visible_after("k2", 1, Duration::from_millis(400));
        let mut ap = Antipode::new(sim.clone());
        ap.register(store);
        let l = lineage_with(&[("db", "k1", 1), ("db", "k2", 1)]);
        let report = sim.block_on(async move {
            ap.barrier_regions(&l, &[Region("r1"), Region("r2")])
                .await
                .unwrap()
        });
        // 2 deps × 2 regions.
        assert_eq!(report.already_visible + report.waited_for, 4);
        assert!(report.blocked >= Duration::from_millis(400));
    }

    #[test]
    fn unknown_store_fails_by_default() {
        let sim = Sim::new(0);
        let ap = Antipode::new(sim.clone());
        let l = lineage_with(&[("ghost", "k", 1)]);
        let err = sim.block_on(async move { ap.barrier(&l, HERE).await.unwrap_err() });
        assert_eq!(err, BarrierError::UnknownStore("ghost".into()));
    }

    #[test]
    fn unknown_store_skipped_under_policy() {
        let sim = Sim::new(0);
        let ap = Antipode::new(sim.clone()).with_policy(UnknownStorePolicy::Skip);
        let l = lineage_with(&[("ghost", "k", 1)]);
        let report = sim.block_on(async move { ap.barrier(&l, HERE).await.unwrap() });
        assert_eq!(report.skipped, 1);
    }

    #[test]
    fn barrier_with_timeout_reports_unmet() {
        let sim = Sim::new(0);
        let store = TestStore::new(&sim, "slow");
        store.visible_after("k", 1, Duration::from_secs(60));
        let mut ap = Antipode::new(sim.clone());
        ap.register(store);
        let l = lineage_with(&[("slow", "k", 1)]);
        let err = sim.block_on(async move {
            ap.barrier_with_timeout(&l, HERE, Duration::from_secs(1))
                .await
                .unwrap_err()
        });
        match err {
            BarrierError::Timeout { unmet } => {
                assert_eq!(unmet, vec![WriteId::new("slow", "k", 1)]);
            }
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn barrier_with_timeout_succeeds_in_time() {
        let sim = Sim::new(0);
        let store = TestStore::new(&sim, "db");
        store.visible_after("k", 1, Duration::from_millis(10));
        let mut ap = Antipode::new(sim.clone());
        ap.register(store);
        let l = lineage_with(&[("db", "k", 1)]);
        let report = sim.block_on(async move {
            ap.barrier_with_timeout(&l, HERE, Duration::from_secs(1))
                .await
                .unwrap()
        });
        assert_eq!(report.waited_for, 1);
    }

    #[test]
    fn barrier_async_invokes_callback() {
        let sim = Sim::new(0);
        let store = TestStore::new(&sim, "db");
        store.visible_after("k", 1, Duration::from_millis(50));
        let mut ap = Antipode::new(sim.clone());
        ap.register(store);
        let l = lineage_with(&[("db", "k", 1)]);
        let done: Rc<RefCell<Option<BarrierReport>>> = Rc::new(RefCell::new(None));
        let slot = done.clone();
        ap.barrier_async(l, HERE, move |res| {
            *slot.borrow_mut() = Some(res.unwrap());
        });
        sim.run();
        assert!(done.borrow().is_some());
    }

    /// A WaitTarget that reports `StoreUnavailable` for the first
    /// `failures` wait calls, then behaves like [`TestStore`].
    struct FlakyStore {
        base: Rc<TestStore>,
        remaining_failures: std::cell::Cell<u32>,
    }

    impl WaitTarget for FlakyStore {
        fn datastore_name(&self) -> &str {
            self.base.datastore_name()
        }
        fn wait<'a>(
            &'a self,
            write: &'a WriteId,
            region: Region,
        ) -> LocalBoxFuture<'a, Result<(), WaitError>> {
            Box::pin(async move {
                let left = self.remaining_failures.get();
                if left > 0 {
                    self.remaining_failures.set(left - 1);
                    return Err(WaitError::StoreUnavailable("db@outage".into()));
                }
                self.base.wait(write, region).await
            })
        }
        fn is_visible(&self, write: &WriteId, region: Region) -> bool {
            self.base.is_visible(write, region)
        }
    }

    #[test]
    fn barrier_retries_through_transient_unavailability() {
        let sim = Sim::new(0);
        let base = TestStore::new(&sim, "db");
        base.visible_after("k", 1, Duration::from_millis(5));
        let flaky = Rc::new(FlakyStore {
            base,
            remaining_failures: std::cell::Cell::new(3),
        });
        let mut ap = Antipode::new(sim.clone());
        ap.register(flaky);
        let l = lineage_with(&[("db", "k", 1)]);
        let report = sim.block_on(async move { ap.barrier(&l, HERE).await.unwrap() });
        assert_eq!(report.waited_for, 1);
        assert_eq!(report.waits.len(), 1);
        let w = &report.waits[0];
        assert_eq!(w.datastore, "db");
        assert_eq!(w.retries, 3);
        // Backoff 100 + 200 + 400 ms at minimum.
        assert!(w.blocked >= Duration::from_millis(700), "blocked {w:?}");
    }

    #[test]
    fn barrier_exhausts_retries_and_surfaces_error() {
        let sim = Sim::new(0);
        let base = TestStore::new(&sim, "db");
        let flaky = Rc::new(FlakyStore {
            base,
            remaining_failures: std::cell::Cell::new(u32::MAX),
        });
        let mut ap = Antipode::new(sim.clone()).with_retry(BarrierRetry {
            max_attempts: 2,
            ..BarrierRetry::default()
        });
        ap.register(flaky);
        let l = lineage_with(&[("db", "k", 1)]);
        let err = sim.block_on(async move { ap.barrier(&l, HERE).await.unwrap_err() });
        assert_eq!(
            err,
            BarrierError::Wait(WaitError::StoreUnavailable("db@outage".into()))
        );
    }

    #[test]
    fn report_breaks_waits_down_by_store() {
        let sim = Sim::new(0);
        let a = TestStore::new(&sim, "a");
        let b = TestStore::new(&sim, "b");
        a.visible_after("x", 1, Duration::from_millis(100));
        b.visible_after("y", 1, Duration::from_millis(300));
        let mut ap = Antipode::new(sim.clone());
        ap.register(a);
        ap.register(b);
        let l = lineage_with(&[("a", "x", 1), ("b", "y", 1)]);
        let report = sim.block_on(async move { ap.barrier(&l, HERE).await.unwrap() });
        assert_eq!(report.waits.len(), 2);
        let get = |n: &str| report.waits.iter().find(|w| w.datastore == n).unwrap();
        assert_eq!(get("a").deps, 1);
        assert_eq!(get("b").deps, 1);
        assert_eq!(get("a").retries + get("b").retries, 0);
        assert!(get("b").blocked >= Duration::from_millis(100));
    }

    #[test]
    fn dry_run_classifies_dependencies() {
        let sim = Sim::new(0);
        let store = TestStore::new(&sim, "db");
        store.visible_after("seen", 1, Duration::ZERO);
        sim.run();
        let mut ap = Antipode::new(sim.clone());
        ap.register(store);
        let l = lineage_with(&[("db", "seen", 1), ("db", "pending", 2), ("ghost", "k", 1)]);
        let report = ap.dry_run(&l, HERE);
        assert_eq!(report.visible, vec![WriteId::new("db", "seen", 1)]);
        assert_eq!(report.unmet, vec![WriteId::new("db", "pending", 2)]);
        assert_eq!(report.unknown, vec![WriteId::new("ghost", "k", 1)]);
        assert!(!report.is_satisfied());
    }

    #[test]
    fn empty_lineage_barrier_is_instant() {
        let sim = Sim::new(0);
        let ap = Antipode::new(sim.clone());
        let l = Lineage::new(LineageId(1));
        let report = sim.block_on(async move { ap.barrier(&l, HERE).await.unwrap() });
        assert_eq!(
            report.already_visible + report.waited_for + report.skipped,
            0
        );
        assert_eq!(report.blocked, Duration::ZERO);
    }
}

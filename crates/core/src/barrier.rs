//! The Core API: `barrier(ℒ)` and its variants (paper §6.3).
//!
//! `barrier` unpacks the write identifiers carried by a lineage, groups them
//! by datastore, and calls each store's `wait` against the replica co-located
//! with the caller. It returns once every dependency is visible (or
//! superseded). Variants: a timeout form, an asynchronous form that invokes a
//! callback, and a **dry-run** mode that only reports which dependencies are
//! not yet visible — the passive consistency checker developers use to find
//! barrier placements.

use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;
use std::time::Duration;

use antipode_lineage::{Lineage, LineageId, StoreId, WriteId};
use antipode_sim::{Region, Sim};

use crate::registry::{ShimRegistry, UnknownStorePolicy};
use crate::wait::{WaitError, WaitTarget};

/// Errors from [`Antipode::barrier`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum BarrierError {
    /// A lineage dependency names a datastore with no registered shim and
    /// the policy is [`UnknownStorePolicy::Fail`].
    UnknownStore(String),
    /// A datastore-specific wait failed.
    Wait(WaitError),
    /// The timeout elapsed before all dependencies became visible
    /// ([`Antipode::barrier_with_timeout`] only).
    Timeout {
        /// Dependencies still not visible when the deadline passed.
        unmet: Vec<WriteId>,
    },
}

impl fmt::Display for BarrierError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BarrierError::UnknownStore(s) => write!(f, "no shim registered for datastore {s}"),
            BarrierError::Wait(e) => write!(f, "wait failed: {e}"),
            BarrierError::Timeout { unmet } => {
                write!(
                    f,
                    "barrier timed out with {} unmet dependencies",
                    unmet.len()
                )
            }
        }
    }
}
impl std::error::Error for BarrierError {}

impl From<WaitError> for BarrierError {
    fn from(e: WaitError) -> Self {
        BarrierError::Wait(e)
    }
}

/// Retry policy for transient store unavailability inside a barrier.
///
/// A store-specific `wait` can fail with
/// [`WaitError::StoreUnavailable`] while the chaos plane has the replica's
/// region down. Rather than surfacing every transient outage to the
/// application, the barrier re-polls the store with exponential backoff —
/// dependencies are immutable facts, so retrying is always safe.
#[derive(Clone, Debug)]
pub struct BarrierRetry {
    /// Total attempts per dependency (first try included). Clamped ≥ 1.
    pub max_attempts: u32,
    /// Backoff before the second attempt.
    pub base: Duration,
    /// Growth factor per attempt.
    pub multiplier: f64,
    /// Backoff ceiling.
    pub max: Duration,
}

impl Default for BarrierRetry {
    fn default() -> Self {
        BarrierRetry {
            max_attempts: 32,
            base: Duration::from_millis(100),
            multiplier: 2.0,
            max: Duration::from_secs(5),
        }
    }
}

impl BarrierRetry {
    /// A policy that surfaces the first unavailability error unretried.
    pub fn none() -> Self {
        BarrierRetry {
            max_attempts: 1,
            ..BarrierRetry::default()
        }
    }

    /// The sleep after (0-based) failed attempt `attempt`. Deterministic —
    /// barrier schedules reproduce exactly from the simulation seed.
    pub fn backoff(&self, attempt: u32) -> Duration {
        let exp = self.base.as_secs_f64() * self.multiplier.max(1.0).powi(attempt as i32);
        Duration::from_secs_f64(exp.min(self.max.as_secs_f64()))
    }
}

/// Per-datastore wait telemetry from one barrier.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StoreWait {
    /// Interned datastore id; grouping compares this, not the name.
    pub store: StoreId,
    /// Datastore name.
    pub datastore: String,
    /// Dependencies on this store the barrier *resolved* (already visible
    /// or waited through). Counting resolutions rather than examinations
    /// keeps the sum stable across degraded re-arms: a dependency that stays
    /// unmet through several budget windows contributes exactly once, when
    /// it finally lands.
    pub deps: usize,
    /// Virtual time spent blocked on this store (waits + retry backoff).
    pub blocked: Duration,
    /// Waits retried after transient [`WaitError::StoreUnavailable`].
    pub retries: u32,
}

/// What a completed barrier did.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct BarrierReport {
    /// Dependencies that were already visible when the barrier started.
    pub already_visible: usize,
    /// Dependencies the barrier had to wait for.
    pub waited_for: usize,
    /// Dependencies skipped under [`UnknownStorePolicy::Skip`].
    pub skipped: usize,
    /// Virtual time spent blocked in the barrier.
    pub blocked: Duration,
    /// Per-datastore breakdown: time blocked and outage retries per store.
    pub waits: Vec<StoreWait>,
}

impl BarrierReport {
    fn empty() -> Self {
        BarrierReport {
            already_visible: 0,
            waited_for: 0,
            skipped: 0,
            blocked: Duration::ZERO,
            waits: Vec::new(),
        }
    }

    /// Folds `other` into this report: counters add, per-store wait entries
    /// merge by interned store id. Used when a barrier resumes across
    /// attempts (degraded re-arm) or spans several regions — the merged
    /// telemetry is the sum of everything every attempt did.
    pub fn merge(&mut self, other: &BarrierReport) {
        self.already_visible += other.already_visible;
        self.waited_for += other.waited_for;
        self.skipped += other.skipped;
        self.blocked += other.blocked;
        for w in &other.waits {
            let entry = self.store_entry(w.store);
            entry.deps += w.deps;
            entry.retries += w.retries;
            entry.blocked += w.blocked;
        }
    }

    fn store_entry(&mut self, store: StoreId) -> &mut StoreWait {
        // Integer compare per entry — the per-store grouping of a barrier
        // never re-hashes or re-compares datastore name strings.
        if let Some(i) = self.waits.iter().position(|w| w.store == store) {
            return &mut self.waits[i];
        }
        self.waits.push(StoreWait {
            store,
            datastore: store.name().to_string(),
            deps: 0,
            blocked: Duration::ZERO,
            retries: 0,
        });
        self.waits.last_mut().expect("just pushed")
    }
}

/// Result of a dry-run barrier: the passive consistency checker of §6.3.
#[derive(Clone, Debug, PartialEq, Eq, Default)]
pub struct DryRunReport {
    /// Dependencies visible at the caller's region right now.
    pub visible: Vec<WriteId>,
    /// Dependencies **not** visible — each one is a potential XCY violation
    /// were the execution to proceed without a barrier here.
    pub unmet: Vec<WriteId>,
    /// Dependencies on datastores this service has no shim for.
    pub unknown: Vec<WriteId>,
}

impl DryRunReport {
    /// Whether proceeding without a barrier would be safe right now.
    pub fn is_satisfied(&self) -> bool {
        self.unmet.is_empty()
    }
}

/// What a budgeted barrier ([`Antipode::barrier_budget`]) produced.
///
/// Unlike [`Antipode::barrier_with_timeout`] — which turns a missed deadline
/// into an *error* and throws the partial work away — a budgeted barrier
/// treats running out of time as a structured, expected outcome: the caller
/// gets the exact dependencies still unmet plus the telemetry of everything
/// the barrier did enforce, and can re-arm the remainder later.
#[derive(Clone, Debug, PartialEq)]
pub enum BarrierOutcome {
    /// Every dependency became visible within the budget.
    Complete(BarrierReport),
    /// The budget elapsed with dependencies still unmet. The application can
    /// degrade (serve partial data, mark the response stale) and re-arm the
    /// remainder via [`Antipode::rearm`].
    Degraded(DegradedBarrier),
    /// The budget elapsed and the caller asked to *speculate* past the unmet
    /// remainder ([`Antipode::barrier_speculative`]): execution may proceed
    /// immediately, but every externally-visible effect must stay confined
    /// until the attached [`crate::SpeculationFrontier`] resolves.
    Speculative(SpeculativeBarrier),
}

impl BarrierOutcome {
    /// The telemetry of this outcome: complete, degraded, or the partial
    /// telemetry of the blocking phase of a speculation.
    pub fn report(&self) -> &BarrierReport {
        match self {
            BarrierOutcome::Complete(r) => r,
            BarrierOutcome::Degraded(d) => &d.report,
            BarrierOutcome::Speculative(s) => &s.report,
        }
    }

    /// Whether every dependency was enforced.
    pub fn is_complete(&self) -> bool {
        matches!(self, BarrierOutcome::Complete(_))
    }

    /// Whether execution is proceeding past unmet dependencies under an open
    /// speculation frontier.
    pub fn is_speculative(&self) -> bool {
        matches!(self, BarrierOutcome::Speculative(_))
    }
}

/// A barrier that ran out of budget: the unmet remainder plus the partial
/// telemetry, re-armable via [`Antipode::rearm`].
#[derive(Clone, Debug, PartialEq)]
pub struct DegradedBarrier {
    /// The lineage the barrier was enforcing (re-arm rebuilds from this).
    pub lineage: LineageId,
    /// Dependencies still not visible when the budget elapsed.
    pub unmet: Vec<WriteId>,
    /// Telemetry of the partial enforcement — per-store waits and retries
    /// accumulated up to the moment the budget ran out.
    pub report: BarrierReport,
    /// The budget that elapsed.
    pub budget: Duration,
}

/// A barrier that ran out of budget and *speculated*: execution proceeds
/// while the [`crate::SpeculationFrontier`] stays open, with all effects
/// confined until the confirmation watcher resolves it.
#[derive(Clone, Debug, PartialEq)]
pub struct SpeculativeBarrier {
    /// The open frontier: the unmet dependencies being speculated past, plus
    /// the resolution the confirmation watcher eventually reaches.
    pub frontier: crate::speculation::SpeculationFrontier,
    /// Telemetry of the blocking phase (everything enforced before the
    /// budget elapsed).
    pub report: BarrierReport,
    /// The blocking budget that elapsed before speculating.
    pub budget: Duration,
}

/// The Antipode client of one service: a shim registry plus the simulation
/// handle. Cheap to clone.
#[derive(Clone)]
pub struct Antipode {
    sim: Sim,
    registry: ShimRegistry,
    policy: UnknownStorePolicy,
    retry: BarrierRetry,
}

impl Antipode {
    /// Creates a client with the default [`UnknownStorePolicy::Fail`] and
    /// the default [`BarrierRetry`].
    pub fn new(sim: Sim) -> Self {
        Antipode {
            sim,
            registry: ShimRegistry::new(),
            policy: UnknownStorePolicy::default(),
            retry: BarrierRetry::default(),
        }
    }

    /// Sets the unknown-store policy.
    pub fn with_policy(mut self, policy: UnknownStorePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the retry policy applied when a store is transiently
    /// unavailable during a barrier.
    pub fn with_retry(mut self, retry: BarrierRetry) -> Self {
        self.retry = retry;
        self
    }

    /// Registers a datastore shim.
    pub fn register(&mut self, shim: Rc<dyn WaitTarget>) {
        self.registry.register(shim);
    }

    /// The shim registry.
    pub fn registry(&self) -> &ShimRegistry {
        &self.registry
    }

    /// The simulation handle.
    pub fn sim(&self) -> &Sim {
        &self.sim
    }

    /// Enforces the lineage's dependencies: blocks until every write in the
    /// lineage is visible at `region` (paper §6.3). Transient
    /// [`WaitError::StoreUnavailable`] failures (a chaos-plane region
    /// outage, say) are retried per the configured [`BarrierRetry`]; other
    /// wait errors surface immediately. Returns a report of what was
    /// enforced, including a per-store wait/retry breakdown.
    pub async fn barrier(
        &self,
        lineage: &Lineage,
        region: Region,
    ) -> Result<BarrierReport, BarrierError> {
        let start = self.sim.now();
        let acc = RefCell::new(BarrierReport::empty());
        self.enforce_deps(lineage, region, &acc).await?;
        let mut report = acc.into_inner();
        report.blocked = self.sim.now().since(start);
        Ok(report)
    }

    /// The enforcement core shared by every barrier variant. Telemetry is
    /// written into `acc` *incrementally* — after every wait attempt and
    /// every backoff, not once per dependency — so a caller that cancels
    /// this future mid-flight (a budgeted barrier whose budget elapsed)
    /// still observes the per-store waits and retries accumulated so far,
    /// and retries against the same store add up instead of overwriting.
    async fn enforce_deps(
        &self,
        lineage: &Lineage,
        region: Region,
        acc: &RefCell<BarrierReport>,
    ) -> Result<(), BarrierError> {
        for dep in lineage.deps() {
            let Some(shim) = self.registry.get_id(dep.store()) else {
                match self.policy {
                    UnknownStorePolicy::Fail => {
                        return Err(BarrierError::UnknownStore(dep.datastore().to_string()))
                    }
                    UnknownStorePolicy::Skip => {
                        acc.borrow_mut().skipped += 1;
                        continue;
                    }
                }
            };
            // `deps` counts *resolved* dependencies, incremented only once a
            // dependency is visible (here) or waited through (below). A
            // dependency merely examined must not bump the counter: a
            // degraded barrier re-arms the unmet remainder, and counting at
            // examination time would tally the same dependency once per
            // attempt — after two re-arms a single dep would read as three.
            if shim.is_visible(dep, region) {
                let mut r = acc.borrow_mut();
                r.store_entry(dep.store()).deps += 1;
                r.already_visible += 1;
                continue;
            }
            let max_attempts = self.retry.max_attempts.max(1);
            let mut retries = 0u32;
            loop {
                let attempt_start = self.sim.now();
                let res = shim.wait(dep, region).await;
                let attempt = self.sim.now().since(attempt_start);
                acc.borrow_mut().store_entry(dep.store()).blocked += attempt;
                match res {
                    Ok(()) => break,
                    Err(WaitError::StoreUnavailable(_)) if retries + 1 < max_attempts => {
                        let backoff = self.retry.backoff(retries);
                        retries += 1;
                        {
                            let mut r = acc.borrow_mut();
                            let entry = r.store_entry(dep.store());
                            entry.retries += 1;
                            entry.blocked += backoff;
                        }
                        self.sim.sleep(backoff).await;
                    }
                    Err(e) => return Err(e.into()),
                }
            }
            {
                let mut r = acc.borrow_mut();
                r.store_entry(dep.store()).deps += 1;
                r.waited_for += 1;
            }
        }
        Ok(())
    }

    /// Degradation-aware barrier: enforce as much of the lineage as `budget`
    /// allows. Completes like [`Antipode::barrier`] when everything lands in
    /// time; otherwise returns [`BarrierOutcome::Degraded`] carrying the
    /// unmet remainder and the partial telemetry — a structured outcome, not
    /// an error, so services can serve degraded responses during a fault and
    /// [`Antipode::rearm`] the remainder once the storm passes.
    pub async fn barrier_budget(
        &self,
        lineage: &Lineage,
        region: Region,
        budget: Duration,
    ) -> Result<BarrierOutcome, BarrierError> {
        let start = self.sim.now();
        let acc = RefCell::new(BarrierReport::empty());
        let enforced = {
            let fut = self.enforce_deps(lineage, region, &acc);
            antipode_sim::timeout(&self.sim, budget, fut).await
        };
        match enforced {
            Ok(Ok(())) => {
                let mut report = acc.into_inner();
                report.blocked = self.sim.now().since(start);
                Ok(BarrierOutcome::Complete(report))
            }
            Ok(Err(e)) => Err(e),
            Err(_elapsed) => {
                let dry = self.dry_run(lineage, region);
                let mut report = acc.into_inner();
                report.blocked = self.sim.now().since(start);
                Ok(BarrierOutcome::Degraded(DegradedBarrier {
                    lineage: lineage.id(),
                    unmet: dry.unmet,
                    report,
                    budget,
                }))
            }
        }
    }

    /// Re-arms a degraded barrier: enforces only the unmet remainder (with a
    /// fresh budget, or unbounded when `budget` is `None`) and merges the
    /// prior partial telemetry into the new outcome's report — the total
    /// telemetry of a degraded-then-rearmed barrier equals one uninterrupted
    /// barrier's. Dependencies are immutable facts, so re-arming is always
    /// safe, any number of times.
    pub async fn rearm(
        &self,
        degraded: &DegradedBarrier,
        region: Region,
        budget: Option<Duration>,
    ) -> Result<BarrierOutcome, BarrierError> {
        let mut remainder = Lineage::new(degraded.lineage);
        for w in &degraded.unmet {
            remainder.append(w.clone());
        }
        let outcome = match budget {
            Some(b) => self.barrier_budget(&remainder, region, b).await?,
            None => BarrierOutcome::Complete(self.barrier(&remainder, region).await?),
        };
        Ok(match outcome {
            BarrierOutcome::Complete(r) => {
                let mut merged = degraded.report.clone();
                merged.merge(&r);
                BarrierOutcome::Complete(merged)
            }
            BarrierOutcome::Degraded(mut d) => {
                let mut merged = degraded.report.clone();
                merged.merge(&d.report);
                d.report = merged;
                BarrierOutcome::Degraded(d)
            }
            // `barrier_budget` never speculates, but fold telemetry anyway
            // so the arm stays correct if a future rearm variant does.
            BarrierOutcome::Speculative(mut s) => {
                let mut merged = degraded.report.clone();
                merged.merge(&s.report);
                s.report = merged;
                BarrierOutcome::Speculative(s)
            }
        })
    }

    /// Enforces the lineage's dependencies in **several** regions at once —
    /// global enforcement, as opposed to the geo-local optimization of §6.3
    /// ("enforce dependencies only from replicas that are co-located with
    /// its caller"). Useful when the caller's output will be consumed from
    /// multiple regions.
    pub async fn barrier_regions(
        &self,
        lineage: &Lineage,
        regions: &[Region],
    ) -> Result<BarrierReport, BarrierError> {
        let start = self.sim.now();
        let mut merged = BarrierReport::empty();
        for region in regions {
            let r = self.barrier(lineage, *region).await?;
            merged.merge(&r);
        }
        // `merge` also summed per-region blocked times; the regions were
        // enforced sequentially, so wall-clock blocked is the span.
        merged.blocked = self.sim.now().since(start);
        Ok(merged)
    }

    /// [`Antipode::barrier`] with a deadline. On timeout, reports the
    /// dependencies still unmet.
    pub async fn barrier_with_timeout(
        &self,
        lineage: &Lineage,
        region: Region,
        timeout: Duration,
    ) -> Result<BarrierReport, BarrierError> {
        let fut = self.barrier(lineage, region);
        match antipode_sim::timeout(&self.sim, timeout, fut).await {
            Ok(res) => res,
            Err(_) => {
                let dry = self.dry_run(lineage, region);
                Err(BarrierError::Timeout { unmet: dry.unmet })
            }
        }
    }

    /// Asynchronous barrier: returns immediately; `callback` runs once the
    /// dependencies are visible (paper §6.3's callback variant).
    pub fn barrier_async(
        &self,
        lineage: Lineage,
        region: Region,
        callback: impl FnOnce(Result<BarrierReport, BarrierError>) + 'static,
    ) {
        let this = self.clone();
        self.sim.spawn(async move {
            let res = this.barrier(&lineage, region).await;
            callback(res);
        });
    }

    /// Dry-run mode (§6.3): simulates enforcement without blocking,
    /// reporting which dependencies would have stalled the barrier. Unknown
    /// stores are reported rather than failing, regardless of policy.
    pub fn dry_run(&self, lineage: &Lineage, region: Region) -> DryRunReport {
        let mut report = DryRunReport::default();
        for dep in lineage.deps() {
            match self.registry.get_id(dep.store()) {
                None => report.unknown.push(dep.clone()),
                Some(shim) => {
                    if shim.is_visible(dep, region) {
                        report.visible.push(dep.clone());
                    } else {
                        report.unmet.push(dep.clone());
                    }
                }
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wait::LocalBoxFuture;
    use antipode_lineage::LineageId;
    use std::cell::RefCell;
    use std::collections::HashSet;

    const HERE: Region = Region("test-region");

    /// A WaitTarget whose visibility is flipped externally at a given time.
    struct TestStore {
        name: String,
        sim: Sim,
        visible: Rc<RefCell<HashSet<(String, u64)>>>,
    }

    impl TestStore {
        fn new(sim: &Sim, name: &str) -> Rc<Self> {
            Rc::new(TestStore {
                name: name.to_string(),
                sim: sim.clone(),
                visible: Rc::new(RefCell::new(HashSet::new())),
            })
        }

        /// Make (key, version) visible after `d`.
        fn visible_after(&self, key: &str, version: u64, d: Duration) {
            let visible = self.visible.clone();
            let key = key.to_string();
            let sim = self.sim.clone();
            self.sim.spawn(async move {
                sim.sleep(d).await;
                visible.borrow_mut().insert((key, version));
            });
        }
    }

    impl WaitTarget for TestStore {
        fn datastore_name(&self) -> &str {
            &self.name
        }
        fn wait<'a>(
            &'a self,
            write: &'a WriteId,
            region: Region,
        ) -> LocalBoxFuture<'a, Result<(), WaitError>> {
            Box::pin(async move {
                // Poll-based wait; production shims subscribe instead, but
                // for tests 1ms polling is fine.
                while !self.is_visible(write, region) {
                    self.sim.sleep(Duration::from_millis(1)).await;
                }
                Ok(())
            })
        }
        fn is_visible(&self, write: &WriteId, _region: Region) -> bool {
            self.visible
                .borrow()
                .contains(&(write.key().to_string(), write.version()))
        }
    }

    fn lineage_with(deps: &[(&str, &str, u64)]) -> Lineage {
        let mut l = Lineage::new(LineageId(1));
        for (s, k, v) in deps {
            l.append(WriteId::new(*s, *k, *v));
        }
        l
    }

    #[test]
    fn barrier_blocks_until_visible() {
        let sim = Sim::new(0);
        let store = TestStore::new(&sim, "db");
        store.visible_after("k", 1, Duration::from_millis(500));
        let mut ap = Antipode::new(sim.clone());
        ap.register(store);
        let l = lineage_with(&[("db", "k", 1)]);
        let report = sim.block_on(async move { ap.barrier(&l, HERE).await.unwrap() });
        assert_eq!(report.waited_for, 1);
        assert_eq!(report.already_visible, 0);
        assert!(report.blocked >= Duration::from_millis(500));
        assert!(sim.now().since(antipode_sim::SimTime::ZERO) >= Duration::from_millis(500));
    }

    #[test]
    fn barrier_fast_path_when_already_visible() {
        let sim = Sim::new(0);
        let store = TestStore::new(&sim, "db");
        store.visible_after("k", 1, Duration::ZERO);
        sim.run(); // let visibility land
        let mut ap = Antipode::new(sim.clone());
        ap.register(store);
        let l = lineage_with(&[("db", "k", 1)]);
        let report = sim.block_on(async move { ap.barrier(&l, HERE).await.unwrap() });
        assert_eq!(report.already_visible, 1);
        assert_eq!(report.blocked, Duration::ZERO);
    }

    #[test]
    fn barrier_spans_multiple_stores() {
        let sim = Sim::new(0);
        let a = TestStore::new(&sim, "a");
        let b = TestStore::new(&sim, "b");
        a.visible_after("x", 1, Duration::from_millis(100));
        b.visible_after("y", 2, Duration::from_millis(300));
        let mut ap = Antipode::new(sim.clone());
        ap.register(a);
        ap.register(b);
        let l = lineage_with(&[("a", "x", 1), ("b", "y", 2)]);
        let report = sim.block_on(async move { ap.barrier(&l, HERE).await.unwrap() });
        assert_eq!(report.already_visible + report.waited_for, 2);
        assert!(report.blocked >= Duration::from_millis(300));
    }

    #[test]
    fn barrier_regions_waits_for_all() {
        let sim = Sim::new(0);
        let store = TestStore::new(&sim, "db");
        // The same write becomes visible at different times per "region" —
        // the TestStore ignores regions, so emulate by two writes with
        // different delays.
        store.visible_after("k1", 1, Duration::from_millis(100));
        store.visible_after("k2", 1, Duration::from_millis(400));
        let mut ap = Antipode::new(sim.clone());
        ap.register(store);
        let l = lineage_with(&[("db", "k1", 1), ("db", "k2", 1)]);
        let report = sim.block_on(async move {
            ap.barrier_regions(&l, &[Region("r1"), Region("r2")])
                .await
                .unwrap()
        });
        // 2 deps × 2 regions.
        assert_eq!(report.already_visible + report.waited_for, 4);
        assert!(report.blocked >= Duration::from_millis(400));
    }

    #[test]
    fn unknown_store_fails_by_default() {
        let sim = Sim::new(0);
        let ap = Antipode::new(sim.clone());
        let l = lineage_with(&[("ghost", "k", 1)]);
        let err = sim.block_on(async move { ap.barrier(&l, HERE).await.unwrap_err() });
        assert_eq!(err, BarrierError::UnknownStore("ghost".into()));
    }

    #[test]
    fn unknown_store_skipped_under_policy() {
        let sim = Sim::new(0);
        let ap = Antipode::new(sim.clone()).with_policy(UnknownStorePolicy::Skip);
        let l = lineage_with(&[("ghost", "k", 1)]);
        let report = sim.block_on(async move { ap.barrier(&l, HERE).await.unwrap() });
        assert_eq!(report.skipped, 1);
    }

    #[test]
    fn barrier_with_timeout_reports_unmet() {
        let sim = Sim::new(0);
        let store = TestStore::new(&sim, "slow");
        store.visible_after("k", 1, Duration::from_secs(60));
        let mut ap = Antipode::new(sim.clone());
        ap.register(store);
        let l = lineage_with(&[("slow", "k", 1)]);
        let err = sim.block_on(async move {
            ap.barrier_with_timeout(&l, HERE, Duration::from_secs(1))
                .await
                .unwrap_err()
        });
        match err {
            BarrierError::Timeout { unmet } => {
                assert_eq!(unmet, vec![WriteId::new("slow", "k", 1)]);
            }
            other => panic!("expected timeout, got {other:?}"),
        }
    }

    #[test]
    fn barrier_with_timeout_succeeds_in_time() {
        let sim = Sim::new(0);
        let store = TestStore::new(&sim, "db");
        store.visible_after("k", 1, Duration::from_millis(10));
        let mut ap = Antipode::new(sim.clone());
        ap.register(store);
        let l = lineage_with(&[("db", "k", 1)]);
        let report = sim.block_on(async move {
            ap.barrier_with_timeout(&l, HERE, Duration::from_secs(1))
                .await
                .unwrap()
        });
        assert_eq!(report.waited_for, 1);
    }

    #[test]
    fn barrier_async_invokes_callback() {
        let sim = Sim::new(0);
        let store = TestStore::new(&sim, "db");
        store.visible_after("k", 1, Duration::from_millis(50));
        let mut ap = Antipode::new(sim.clone());
        ap.register(store);
        let l = lineage_with(&[("db", "k", 1)]);
        let done: Rc<RefCell<Option<BarrierReport>>> = Rc::new(RefCell::new(None));
        let slot = done.clone();
        ap.barrier_async(l, HERE, move |res| {
            *slot.borrow_mut() = Some(res.unwrap());
        });
        sim.run();
        assert!(done.borrow().is_some());
    }

    /// A WaitTarget that reports `StoreUnavailable` for the first
    /// `failures` wait calls, then behaves like [`TestStore`].
    struct FlakyStore {
        base: Rc<TestStore>,
        remaining_failures: std::cell::Cell<u32>,
    }

    impl WaitTarget for FlakyStore {
        fn datastore_name(&self) -> &str {
            self.base.datastore_name()
        }
        fn wait<'a>(
            &'a self,
            write: &'a WriteId,
            region: Region,
        ) -> LocalBoxFuture<'a, Result<(), WaitError>> {
            Box::pin(async move {
                let left = self.remaining_failures.get();
                if left > 0 {
                    self.remaining_failures.set(left - 1);
                    return Err(WaitError::StoreUnavailable("db@outage".into()));
                }
                self.base.wait(write, region).await
            })
        }
        fn is_visible(&self, write: &WriteId, region: Region) -> bool {
            self.base.is_visible(write, region)
        }
    }

    #[test]
    fn barrier_retries_through_transient_unavailability() {
        let sim = Sim::new(0);
        let base = TestStore::new(&sim, "db");
        base.visible_after("k", 1, Duration::from_millis(5));
        let flaky = Rc::new(FlakyStore {
            base,
            remaining_failures: std::cell::Cell::new(3),
        });
        let mut ap = Antipode::new(sim.clone());
        ap.register(flaky);
        let l = lineage_with(&[("db", "k", 1)]);
        let report = sim.block_on(async move { ap.barrier(&l, HERE).await.unwrap() });
        assert_eq!(report.waited_for, 1);
        assert_eq!(report.waits.len(), 1);
        let w = &report.waits[0];
        assert_eq!(w.datastore, "db");
        assert_eq!(w.retries, 3);
        // Backoff 100 + 200 + 400 ms at minimum.
        assert!(w.blocked >= Duration::from_millis(700), "blocked {w:?}");
    }

    /// Satellite regression: per-store telemetry must *accumulate* across
    /// `StoreUnavailable` retries, not be overwritten by the last attempt.
    /// With 3 transient failures and the default policy the store entry must
    /// hold exactly retries = 3 and blocked ≥ the pinned backoff sum
    /// 100 + 200 + 400 ms — a single-attempt overwrite would report
    /// retries ≤ 1 and only the final attempt's wait.
    #[test]
    fn retry_telemetry_accumulates_across_attempts() {
        let sim = Sim::new(0);
        let base = TestStore::new(&sim, "db");
        base.visible_after("k", 1, Duration::from_millis(5));
        let flaky = Rc::new(FlakyStore {
            base,
            remaining_failures: std::cell::Cell::new(3),
        });
        let mut ap = Antipode::new(sim.clone());
        ap.register(flaky);
        let l = lineage_with(&[("db", "k", 1)]);
        let report = sim.block_on(async move { ap.barrier(&l, HERE).await.unwrap() });
        let w = &report.waits[0];
        assert_eq!(w.retries, 3, "each retry must add to the entry");
        assert_eq!(w.deps, 1);
        let backoff_sum = Duration::from_millis(100 + 200 + 400);
        assert!(
            w.blocked >= backoff_sum,
            "blocked {:?} must include every backoff (≥ {backoff_sum:?})",
            w.blocked
        );
        assert!(report.blocked >= w.blocked);
    }

    #[test]
    fn budget_barrier_completes_within_budget() {
        let sim = Sim::new(0);
        let store = TestStore::new(&sim, "db");
        store.visible_after("k", 1, Duration::from_millis(50));
        let mut ap = Antipode::new(sim.clone());
        ap.register(store);
        let l = lineage_with(&[("db", "k", 1)]);
        let outcome = sim.block_on(async move {
            ap.barrier_budget(&l, HERE, Duration::from_secs(1))
                .await
                .unwrap()
        });
        assert!(outcome.is_complete());
        assert_eq!(outcome.report().waited_for, 1);
    }

    #[test]
    fn budget_barrier_degrades_with_partial_telemetry_then_rearms() {
        let sim = Sim::new(0);
        let fast = TestStore::new(&sim, "fast");
        let slow = TestStore::new(&sim, "slow");
        fast.visible_after("a", 1, Duration::from_millis(100));
        slow.visible_after("b", 1, Duration::from_secs(10));
        let mut ap = Antipode::new(sim.clone());
        ap.register(fast);
        ap.register(slow);
        let l = lineage_with(&[("fast", "a", 1), ("slow", "b", 1)]);
        let ap2 = ap.clone();
        sim.block_on(async move {
            let outcome = ap2
                .barrier_budget(&l, HERE, Duration::from_secs(1))
                .await
                .unwrap();
            let degraded = match outcome {
                BarrierOutcome::Degraded(d) => d,
                other => panic!("10s dep cannot meet a 1s budget, got {other:?}"),
            };
            // Structured outcome: exactly the slow dep is unmet, and the
            // partial telemetry still shows the fast store's enforced wait.
            assert_eq!(degraded.unmet, vec![WriteId::new("slow", "b", 1)]);
            assert_eq!(degraded.budget, Duration::from_secs(1));
            let fast_wait = degraded
                .report
                .waits
                .iter()
                .find(|w| w.datastore == "fast")
                .expect("cancelled barrier keeps partial telemetry");
            assert!(fast_wait.blocked >= Duration::from_millis(100));
            // Re-arm the remainder unbounded: it completes, and the merged
            // report covers both phases.
            let rearmed = ap2.rearm(&degraded, HERE, None).await.unwrap();
            let report = match rearmed {
                BarrierOutcome::Complete(r) => r,
                other => panic!("unbounded rearm must complete, got {other:?}"),
            };
            let get = |n: &str| report.waits.iter().find(|w| w.datastore == n).unwrap();
            assert!(get("fast").blocked >= Duration::from_millis(100));
            assert!(get("slow").blocked > Duration::ZERO);
            assert!(ap2.dry_run(&l, HERE).is_satisfied());
        });
        assert!(sim.now().since(antipode_sim::SimTime::ZERO) >= Duration::from_secs(10));
    }

    #[test]
    fn rearm_with_budget_can_degrade_again_and_telemetry_keeps_merging() {
        let sim = Sim::new(0);
        let slow = TestStore::new(&sim, "slow");
        slow.visible_after("b", 1, Duration::from_secs(10));
        let mut ap = Antipode::new(sim.clone());
        ap.register(slow);
        let l = lineage_with(&[("slow", "b", 1)]);
        sim.block_on(async move {
            let first = match ap
                .barrier_budget(&l, HERE, Duration::from_secs(1))
                .await
                .unwrap()
            {
                BarrierOutcome::Degraded(d) => d,
                other => panic!("expected degraded, got {other:?}"),
            };
            let second = match ap
                .rearm(&first, HERE, Some(Duration::from_secs(2)))
                .await
                .unwrap()
            {
                BarrierOutcome::Degraded(d) => d,
                other => panic!("expected degraded again, got {other:?}"),
            };
            assert_eq!(second.unmet, vec![WriteId::new("slow", "b", 1)]);
            // Merged blocked time spans both budget windows.
            assert!(second.report.blocked >= Duration::from_secs(3));
            // A final unbounded rearm drains the remainder.
            let done = ap.rearm(&second, HERE, None).await.unwrap();
            assert!(done.is_complete());
            assert!(done.report().blocked >= Duration::from_secs(10) - Duration::from_secs(1));
        });
    }

    /// Satellite regression: per-store `deps` telemetry must not be
    /// double-counted when a degraded barrier is re-armed more than once.
    /// One slow dep enforced across *three* attempts (degrade → degrade →
    /// complete) must tally exactly one resolved dependency per store — the
    /// merged totals of a degraded-then-rearmed barrier equal one
    /// uninterrupted barrier's. Counting at examination time would report
    /// deps = 3 for the slow store here.
    #[test]
    fn rearm_twice_does_not_double_count_per_store_deps() {
        let sim = Sim::new(0);
        let fast = TestStore::new(&sim, "fast");
        let slow = TestStore::new(&sim, "slow");
        fast.visible_after("a", 1, Duration::from_millis(100));
        slow.visible_after("b", 1, Duration::from_secs(10));
        let mut ap = Antipode::new(sim.clone());
        ap.register(fast);
        ap.register(slow);
        let l = lineage_with(&[("fast", "a", 1), ("slow", "b", 1)]);
        sim.block_on(async move {
            let first = match ap
                .barrier_budget(&l, HERE, Duration::from_secs(1))
                .await
                .unwrap()
            {
                BarrierOutcome::Degraded(d) => d,
                other => panic!("expected degraded, got {other:?}"),
            };
            let second = match ap
                .rearm(&first, HERE, Some(Duration::from_secs(2)))
                .await
                .unwrap()
            {
                BarrierOutcome::Degraded(d) => d,
                other => panic!("expected degraded again, got {other:?}"),
            };
            let report = match ap.rearm(&second, HERE, None).await.unwrap() {
                BarrierOutcome::Complete(r) => r,
                other => panic!("unbounded rearm must complete, got {other:?}"),
            };
            let get = |n: &str| report.waits.iter().find(|w| w.datastore == n).unwrap();
            // Pin the sums: the lineage has exactly one dep per store, and
            // the merged telemetry must agree no matter how many times the
            // barrier was re-armed along the way.
            assert_eq!(get("fast").deps, 1, "fast dep resolved in attempt one");
            assert_eq!(
                get("slow").deps,
                1,
                "slow dep examined thrice but resolved once"
            );
            assert_eq!(
                report.already_visible + report.waited_for,
                2,
                "outcome counters match the dependency count"
            );
            let per_store: usize = report.waits.iter().map(|w| w.deps).sum();
            assert_eq!(
                per_store,
                report.already_visible + report.waited_for,
                "per-store deps sum equals the resolved total"
            );
        });
    }

    #[test]
    fn budget_barrier_with_empty_lineage_is_instantly_complete() {
        let sim = Sim::new(0);
        let ap = Antipode::new(sim.clone());
        let l = Lineage::new(LineageId(1));
        let outcome = sim.block_on(async move {
            ap.barrier_budget(&l, HERE, Duration::from_millis(1))
                .await
                .unwrap()
        });
        assert!(outcome.is_complete());
        assert_eq!(outcome.report().blocked, Duration::ZERO);
    }

    #[test]
    fn barrier_exhausts_retries_and_surfaces_error() {
        let sim = Sim::new(0);
        let base = TestStore::new(&sim, "db");
        let flaky = Rc::new(FlakyStore {
            base,
            remaining_failures: std::cell::Cell::new(u32::MAX),
        });
        let mut ap = Antipode::new(sim.clone()).with_retry(BarrierRetry {
            max_attempts: 2,
            ..BarrierRetry::default()
        });
        ap.register(flaky);
        let l = lineage_with(&[("db", "k", 1)]);
        let err = sim.block_on(async move { ap.barrier(&l, HERE).await.unwrap_err() });
        assert_eq!(
            err,
            BarrierError::Wait(WaitError::StoreUnavailable("db@outage".into()))
        );
    }

    #[test]
    fn report_breaks_waits_down_by_store() {
        let sim = Sim::new(0);
        let a = TestStore::new(&sim, "a");
        let b = TestStore::new(&sim, "b");
        a.visible_after("x", 1, Duration::from_millis(100));
        b.visible_after("y", 1, Duration::from_millis(300));
        let mut ap = Antipode::new(sim.clone());
        ap.register(a);
        ap.register(b);
        let l = lineage_with(&[("a", "x", 1), ("b", "y", 1)]);
        let report = sim.block_on(async move { ap.barrier(&l, HERE).await.unwrap() });
        assert_eq!(report.waits.len(), 2);
        let get = |n: &str| report.waits.iter().find(|w| w.datastore == n).unwrap();
        assert_eq!(get("a").deps, 1);
        assert_eq!(get("b").deps, 1);
        assert_eq!(get("a").retries + get("b").retries, 0);
        assert!(get("b").blocked >= Duration::from_millis(100));
    }

    #[test]
    fn dry_run_classifies_dependencies() {
        let sim = Sim::new(0);
        let store = TestStore::new(&sim, "db");
        store.visible_after("seen", 1, Duration::ZERO);
        sim.run();
        let mut ap = Antipode::new(sim.clone());
        ap.register(store);
        let l = lineage_with(&[("db", "seen", 1), ("db", "pending", 2), ("ghost", "k", 1)]);
        let report = ap.dry_run(&l, HERE);
        assert_eq!(report.visible, vec![WriteId::new("db", "seen", 1)]);
        assert_eq!(report.unmet, vec![WriteId::new("db", "pending", 2)]);
        assert_eq!(report.unknown, vec![WriteId::new("ghost", "k", 1)]);
        assert!(!report.is_satisfied());
    }

    #[test]
    fn empty_lineage_barrier_is_instant() {
        let sim = Sim::new(0);
        let ap = Antipode::new(sim.clone());
        let l = Lineage::new(LineageId(1));
        let report = sim.block_on(async move { ap.barrier(&l, HERE).await.unwrap() });
        assert_eq!(
            report.already_visible + report.waited_for + report.skipped,
            0
        );
        assert_eq!(report.blocked, Duration::ZERO);
    }
}

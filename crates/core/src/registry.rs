//! The shim registry: datastore name → wait implementation.
//!
//! A service integrating Antipode registers a shim for each datastore it can
//! be asked to enforce visibility on. There is deliberately no global
//! registry of *all* datastores (paper §3.4): each service registers only
//! what it knows, and the [`UnknownStorePolicy`] decides what `barrier` does
//! with dependencies on stores the service has no shim for.
//!
//! Shims are keyed by interned [`StoreId`], so the barrier's per-dependency
//! lookup is an integer hash, never a string hash — the hot path of
//! `barrier(ℒ)` touches no string data for known stores.

use std::rc::Rc;

use antipode_lineage::StoreId;

use crate::wait::WaitTarget;

/// What `barrier` does with a lineage dependency whose datastore has no
/// registered shim at this service.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum UnknownStorePolicy {
    /// Fail the barrier with [`crate::barrier::BarrierError::UnknownStore`].
    #[default]
    Fail,
    /// Skip the dependency. This matches incremental deployment: services
    /// that have not yet adopted Antipode shims for a store simply do not
    /// get enforcement for it.
    Skip,
}

/// Registry of datastore shims available to one service.
///
/// Stored as a linear-scan vector in registration order: a service registers
/// a handful of shims (the paper's deployments use at most eight), so a scan
/// beats hashing — and [`StoreId`] is deliberately not `Ord` (ids are
/// assigned in first-intern order), so an ordered map would be
/// interning-history-dependent anyway.
#[derive(Clone, Default)]
pub struct ShimRegistry {
    shims: Vec<(StoreId, Rc<dyn WaitTarget>)>,
}

impl ShimRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        ShimRegistry::default()
    }

    /// Registers a shim under its datastore name, replacing any previous
    /// registration for the same name.
    pub fn register(&mut self, shim: Rc<dyn WaitTarget>) {
        let id = StoreId::intern(shim.datastore_name());
        match self.shims.iter_mut().find(|(k, _)| *k == id) {
            Some(slot) => slot.1 = shim,
            None => self.shims.push((id, shim)),
        }
    }

    /// Looks up a shim by datastore name.
    pub fn get(&self, datastore: &str) -> Option<&Rc<dyn WaitTarget>> {
        StoreId::lookup(datastore).and_then(|id| self.get_id(id))
    }

    /// Looks up a shim by interned store id — the barrier's hot path.
    pub fn get_id(&self, store: StoreId) -> Option<&Rc<dyn WaitTarget>> {
        self.shims
            .iter()
            .find(|(k, _)| *k == store)
            .map(|(_, shim)| shim)
    }

    /// Whether a shim is registered for the datastore.
    pub fn contains(&self, datastore: &str) -> bool {
        StoreId::lookup(datastore).is_some_and(|id| self.get_id(id).is_some())
    }

    /// Number of registered shims.
    pub fn len(&self) -> usize {
        self.shims.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.shims.is_empty()
    }

    /// Registered datastore names, sorted.
    pub fn names(&self) -> Vec<Rc<str>> {
        let mut v: Vec<Rc<str>> = self.shims.iter().map(|(id, _)| id.name()).collect();
        v.sort_unstable();
        v
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wait::{LocalBoxFuture, WaitError};
    use antipode_lineage::WriteId;
    use antipode_sim::Region;

    struct Fake(&'static str);
    impl WaitTarget for Fake {
        fn datastore_name(&self) -> &str {
            self.0
        }
        fn wait<'a>(
            &'a self,
            _write: &'a WriteId,
            _region: Region,
        ) -> LocalBoxFuture<'a, Result<(), WaitError>> {
            Box::pin(async { Ok(()) })
        }
        fn is_visible(&self, _write: &WriteId, _region: Region) -> bool {
            true
        }
    }

    #[test]
    fn register_and_lookup() {
        let mut reg = ShimRegistry::new();
        assert!(reg.is_empty());
        reg.register(Rc::new(Fake("mysql")));
        reg.register(Rc::new(Fake("redis")));
        assert_eq!(reg.len(), 2);
        assert!(reg.contains("mysql"));
        assert!(!reg.contains("s3"));
        let names = reg.names();
        let names: Vec<&str> = names.iter().map(|n| &**n).collect();
        assert_eq!(names, vec!["mysql", "redis"]);
        assert_eq!(reg.get("redis").unwrap().datastore_name(), "redis");
    }

    #[test]
    fn lookup_by_id_matches_lookup_by_name() {
        let mut reg = ShimRegistry::new();
        reg.register(Rc::new(Fake("mysql")));
        let id = StoreId::intern("mysql");
        assert_eq!(reg.get_id(id).unwrap().datastore_name(), "mysql");
        // An interned but unregistered store resolves to nothing.
        let ghost = StoreId::intern("ghost-store-registry-test");
        assert!(reg.get_id(ghost).is_none());
    }

    #[test]
    fn re_register_replaces() {
        let mut reg = ShimRegistry::new();
        reg.register(Rc::new(Fake("mysql")));
        reg.register(Rc::new(Fake("mysql")));
        assert_eq!(reg.len(), 1);
    }
}

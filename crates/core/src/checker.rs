//! Antipode as a passive consistency checker (paper §6.3).
//!
//! "Instead of exhaustively trying to prevent every possible variant of XCY
//! violation, developers can (as part of their development cycle) use
//! Antipode to incrementally correct them": a [`ConsistencyChecker`] records
//! dry-run barrier evaluations at candidate locations without blocking
//! anything. After a test run, [`ConsistencyChecker::summary`] shows which
//! locations had unmet dependencies — i.e., where a real `barrier` call is
//! needed.

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::rc::Rc;

use antipode_lineage::Lineage;
use antipode_sim::{Region, SimTime};

use crate::barrier::{Antipode, DryRunReport};

/// One recorded checkpoint evaluation.
#[derive(Clone, Debug)]
pub struct Checkpoint {
    /// Developer-chosen location label (e.g. `"follower-notify:recv"`).
    pub location: String,
    /// Virtual time of the evaluation.
    pub at: SimTime,
    /// Region the dependencies were checked against.
    pub region: Region,
    /// Whether the region was *degraded* at evaluation time — inside a
    /// region-outage or replica-crash window of the fault plan. Unmet
    /// dependencies observed while degraded usually mean "the recovery plane
    /// has not caught up yet", not "a barrier is missing here".
    pub degraded: bool,
    /// Whether the evaluation happened under an open speculation frontier
    /// ([`ConsistencyChecker::checkpoint_speculative`]). Unmet dependencies
    /// at a speculative checkpoint are *not* observed XCY violations: the
    /// execution's effects are confined until the frontier confirms, so
    /// nothing downstream can read state that is still missing them.
    pub speculative: bool,
    /// The dry-run outcome.
    pub report: DryRunReport,
}

/// Aggregated statistics for one location.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct LocationStats {
    /// Checkpoint evaluations at this location.
    pub evaluations: usize,
    /// Evaluations with at least one unmet dependency — each a would-be XCY
    /// violation if execution proceeded without a barrier here.
    pub unsatisfied: usize,
    /// Total unmet dependencies across evaluations.
    pub unmet_deps: usize,
    /// Dependencies on unregistered datastores (lack of a shim).
    pub unknown_deps: usize,
    /// Evaluations made while the region was degraded (outage or replica
    /// crash). Compare against `unsatisfied` to separate genuine missing
    /// barriers from recovery-in-progress noise.
    pub degraded_evaluations: usize,
    /// Evaluations made under an open speculation frontier.
    pub speculative_evaluations: usize,
    /// Unsatisfied evaluations that were speculative — unmet dependencies
    /// the execution deliberately proceeded past with its effects confined.
    pub speculative_unsatisfied: usize,
}

impl LocationStats {
    /// Fraction of evaluations that would have violated XCY.
    pub fn violation_rate(&self) -> f64 {
        if self.evaluations == 0 {
            0.0
        } else {
            self.unsatisfied as f64 / self.evaluations as f64
        }
    }

    /// Unsatisfied evaluations that were *observable*: speculative
    /// evaluations are excluded, because their effects were confined and no
    /// reader could witness the missing dependencies. With the speculation
    /// plane the invariant becomes "zero observed violations" — this is the
    /// number that must be zero.
    pub fn observed_violations(&self) -> usize {
        self.unsatisfied - self.speculative_unsatisfied
    }

    /// Fraction of non-speculative evaluations that observably violated XCY.
    pub fn observed_violation_rate(&self) -> f64 {
        let observable = self.evaluations - self.speculative_evaluations;
        if observable == 0 {
            0.0
        } else {
            self.observed_violations() as f64 / observable as f64
        }
    }
}

/// Records dry-run barrier evaluations across a test run.
#[derive(Clone)]
pub struct ConsistencyChecker {
    ap: Antipode,
    checkpoints: Rc<RefCell<Vec<Checkpoint>>>,
}

impl ConsistencyChecker {
    /// Wraps an [`Antipode`] client (its shim registry decides which
    /// dependencies can be checked).
    pub fn new(ap: Antipode) -> Self {
        ConsistencyChecker {
            ap,
            checkpoints: Rc::new(RefCell::new(Vec::new())),
        }
    }

    /// Evaluates a candidate barrier location: never blocks, records the
    /// outcome, and returns it (callers may also branch on it).
    pub fn checkpoint(
        &self,
        location: impl Into<String>,
        lineage: &Lineage,
        region: Region,
    ) -> DryRunReport {
        self.record(location.into(), lineage, region, false)
    }

    /// Like [`ConsistencyChecker::checkpoint`], but marks the evaluation as
    /// made under an open speculation frontier. Unmet dependencies recorded
    /// here are expected — the execution is deliberately running ahead of
    /// them with its effects confined — and are excluded from
    /// [`LocationStats::observed_violations`].
    pub fn checkpoint_speculative(
        &self,
        location: impl Into<String>,
        lineage: &Lineage,
        region: Region,
    ) -> DryRunReport {
        self.record(location.into(), lineage, region, true)
    }

    fn record(
        &self,
        location: String,
        lineage: &Lineage,
        region: Region,
        speculative: bool,
    ) -> DryRunReport {
        let report = self.ap.dry_run(lineage, region);
        let now = self.ap.sim().now();
        let faults = self.ap.sim().faults();
        let degraded = faults.region_down(now, region) || faults.any_replica_crash(now, region);
        self.checkpoints.borrow_mut().push(Checkpoint {
            location,
            at: now,
            region,
            degraded,
            speculative,
            report: report.clone(),
        });
        report
    }

    /// All recorded checkpoints, in evaluation order.
    pub fn checkpoints(&self) -> Vec<Checkpoint> {
        self.checkpoints.borrow().clone()
    }

    /// Per-location aggregation, sorted by location label.
    pub fn summary(&self) -> BTreeMap<String, LocationStats> {
        let mut out: BTreeMap<String, LocationStats> = BTreeMap::new();
        for cp in self.checkpoints.borrow().iter() {
            let s = out.entry(cp.location.clone()).or_default();
            s.evaluations += 1;
            if !cp.report.unmet.is_empty() {
                s.unsatisfied += 1;
            }
            s.unmet_deps += cp.report.unmet.len();
            s.unknown_deps += cp.report.unknown.len();
            if cp.degraded {
                s.degraded_evaluations += 1;
            }
            if cp.speculative {
                s.speculative_evaluations += 1;
                if !cp.report.unmet.is_empty() {
                    s.speculative_unsatisfied += 1;
                }
            }
        }
        out
    }

    /// Total observed XCY violations across every location — unsatisfied
    /// evaluations that were *not* made under an open speculation frontier.
    /// With speculative barriers in play this is the system invariant: it
    /// must be zero even when speculations are violated and rolled back.
    pub fn observed_violations(&self) -> usize {
        self.summary()
            .values()
            .map(|s| s.observed_violations())
            .sum()
    }

    /// Locations that had at least one *observed* unsatisfied evaluation —
    /// the candidate `barrier` placements, most-violating first. Locations
    /// whose only unmet evaluations were speculative already sit behind a
    /// (speculative) barrier and are not suggested again.
    pub fn suggested_barriers(&self) -> Vec<(String, LocationStats)> {
        let mut v: Vec<(String, LocationStats)> = self
            .summary()
            .into_iter()
            .filter(|(_, s)| s.observed_violations() > 0)
            .collect();
        v.sort_by(|a, b| b.1.unsatisfied.cmp(&a.1.unsatisfied).then(a.0.cmp(&b.0)));
        v
    }

    /// Canonical one-line signatures of every *observed* XCY violation
    /// (unsatisfied, non-speculative checkpoint), sorted. Two executions
    /// violated the same invariant in the same way iff their signature sets
    /// are equal — this is the identity the `antipode-mc` model checker
    /// uses to compare an explored schedule against its replayed
    /// counterexample, and to check sampled violations are a subset of the
    /// exhaustively-found ones.
    pub fn violation_signatures(&self) -> Vec<String> {
        let mut out: Vec<String> = self
            .checkpoints
            .borrow()
            .iter()
            .filter(|cp| !cp.speculative && !cp.report.unmet.is_empty())
            .map(|cp| {
                let mut unmet: Vec<String> = cp
                    .report
                    .unmet
                    .iter()
                    .map(|w| format!("{}/{}@v{}", w.datastore(), w.key(), w.version()))
                    .collect();
                unmet.sort();
                format!(
                    "{}@{}: unmet=[{}]",
                    cp.location,
                    cp.region.name(),
                    unmet.join(",")
                )
            })
            .collect();
        out.sort();
        out
    }

    /// Discards recorded checkpoints (e.g. between test iterations).
    pub fn reset(&self) {
        self.checkpoints.borrow_mut().clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::wait::{LocalBoxFuture, WaitError, WaitTarget};
    use antipode_lineage::{LineageId, WriteId};
    use antipode_sim::Sim;
    use std::cell::Cell;

    struct Flaky {
        visible: Cell<bool>,
    }
    impl WaitTarget for Flaky {
        fn datastore_name(&self) -> &str {
            "flaky"
        }
        fn wait<'a>(
            &'a self,
            _write: &'a WriteId,
            _region: Region,
        ) -> LocalBoxFuture<'a, Result<(), WaitError>> {
            Box::pin(async { Ok(()) })
        }
        fn is_visible(&self, _write: &WriteId, _region: Region) -> bool {
            self.visible.get()
        }
    }

    const HERE: Region = Region("r");

    fn lineage() -> Lineage {
        let mut l = Lineage::new(LineageId(1));
        l.append(WriteId::new("flaky", "k", 1));
        l
    }

    #[test]
    fn checkpoints_accumulate_and_aggregate() {
        let sim = Sim::new(0);
        let store = Rc::new(Flaky {
            visible: Cell::new(false),
        });
        let mut ap = Antipode::new(sim.clone());
        ap.register(store.clone());
        let checker = ConsistencyChecker::new(ap);

        let l = lineage();
        // Two unsatisfied evaluations at location A, then the store catches
        // up and a third is satisfied; location B is always satisfied.
        assert!(!checker.checkpoint("svc-a:recv", &l, HERE).is_satisfied());
        assert!(!checker.checkpoint("svc-a:recv", &l, HERE).is_satisfied());
        store.visible.set(true);
        assert!(checker.checkpoint("svc-a:recv", &l, HERE).is_satisfied());
        assert!(checker.checkpoint("svc-b:render", &l, HERE).is_satisfied());

        let summary = checker.summary();
        assert_eq!(summary["svc-a:recv"].evaluations, 3);
        assert_eq!(summary["svc-a:recv"].unsatisfied, 2);
        assert_eq!(summary["svc-a:recv"].unmet_deps, 2);
        assert!((summary["svc-a:recv"].violation_rate() - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(summary["svc-b:render"].unsatisfied, 0);

        let suggested = checker.suggested_barriers();
        assert_eq!(suggested.len(), 1);
        assert_eq!(suggested[0].0, "svc-a:recv");
    }

    #[test]
    fn unknown_stores_are_reported_not_fatal() {
        let sim = Sim::new(0);
        let ap = Antipode::new(sim);
        let checker = ConsistencyChecker::new(ap);
        let mut l = Lineage::new(LineageId(1));
        l.append(WriteId::new("ghost", "k", 1));
        let report = checker.checkpoint("loc", &l, HERE);
        assert_eq!(report.unknown.len(), 1);
        assert_eq!(checker.summary()["loc"].unknown_deps, 1);
    }

    #[test]
    fn checkpoints_flag_degraded_regions() {
        use antipode_sim::{FaultKind, SimTime};
        let sim = Sim::new(0);
        let store = Rc::new(Flaky {
            visible: Cell::new(false),
        });
        let mut ap = Antipode::new(sim.clone());
        ap.register(store);
        let checker = ConsistencyChecker::new(ap);
        sim.faults().schedule(
            SimTime::ZERO,
            SimTime::from_secs(5),
            FaultKind::RegionOutage { region: HERE },
        );
        sim.faults().schedule(
            SimTime::from_secs(5),
            SimTime::from_secs(10),
            FaultKind::ReplicaCrash {
                store: "flaky".into(),
                region: HERE,
            },
        );
        let l = lineage();
        // t = 0: outage window → degraded.
        checker.checkpoint("loc", &l, HERE);
        // t = 6 s: a replica crash in the region also counts as degraded.
        sim.run_until(SimTime::from_secs(6));
        checker.checkpoint("loc", &l, HERE);
        // t = 12 s: healthy.
        sim.run_until(SimTime::from_secs(12));
        checker.checkpoint("loc", &l, HERE);
        let cps = checker.checkpoints();
        assert_eq!(
            cps.iter().map(|c| c.degraded).collect::<Vec<_>>(),
            vec![true, true, false]
        );
        assert_eq!(checker.summary()["loc"].degraded_evaluations, 2);
    }

    /// Speculative checkpoints with unmet dependencies do not count as
    /// observed violations — the speculation plane's invariant is "zero
    /// *observed* XCY violations", and a location whose only unmet
    /// evaluations were speculative needs no additional barrier.
    #[test]
    fn speculative_checkpoints_are_not_observed_violations() {
        let sim = Sim::new(0);
        let store = Rc::new(Flaky {
            visible: Cell::new(false),
        });
        let mut ap = Antipode::new(sim.clone());
        ap.register(store.clone());
        let checker = ConsistencyChecker::new(ap);
        let l = lineage();
        // Two speculative evaluations run ahead of the unmet dep (effects
        // confined), then the dep lands and a plain post-commit checkpoint
        // is satisfied.
        assert!(!checker
            .checkpoint_speculative("reader:speculate", &l, HERE)
            .is_satisfied());
        assert!(!checker
            .checkpoint_speculative("reader:speculate", &l, HERE)
            .is_satisfied());
        store.visible.set(true);
        assert!(checker.checkpoint("reader:commit", &l, HERE).is_satisfied());

        let summary = checker.summary();
        let spec = &summary["reader:speculate"];
        assert_eq!(spec.evaluations, 2);
        assert_eq!(spec.unsatisfied, 2);
        assert_eq!(spec.speculative_evaluations, 2);
        assert_eq!(spec.speculative_unsatisfied, 2);
        assert_eq!(spec.observed_violations(), 0);
        assert_eq!(spec.observed_violation_rate(), 0.0);
        assert_eq!(checker.observed_violations(), 0);
        assert!(
            checker.suggested_barriers().is_empty(),
            "speculative locations already sit behind a barrier"
        );
        // A plain checkpoint with the store rolled back *is* observed.
        store.visible.set(false);
        checker.checkpoint("reader:naked", &l, HERE);
        assert_eq!(checker.observed_violations(), 1);
        assert_eq!(checker.suggested_barriers()[0].0, "reader:naked");
    }

    #[test]
    fn reset_clears_history() {
        let sim = Sim::new(0);
        let ap = Antipode::new(sim);
        let checker = ConsistencyChecker::new(ap);
        checker.checkpoint("loc", &Lineage::new(LineageId(1)), HERE);
        assert_eq!(checker.checkpoints().len(), 1);
        checker.reset();
        assert!(checker.checkpoints().is_empty());
        assert!(checker.summary().is_empty());
    }
}

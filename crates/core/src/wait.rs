//! The `wait` abstraction: the datastore-specific half of `barrier`.
//!
//! `barrier(ℒ)` is generic; *visibility* is not — it depends on the design
//! and consistency model of each datastore (paper §6.3). Every datastore shim
//! implements [`WaitTarget`]: block until a given write identifier is visible
//! (or superseded) at the caller's region. The paper notes `wait` only needs
//! monotonic-reads semantics from the underlying store (§6.4).

use std::fmt;
use std::future::Future;
use std::pin::Pin;

use antipode_lineage::WriteId;
use antipode_sim::Region;

/// A boxed single-threaded future, the return type of dyn-dispatched waits.
pub type LocalBoxFuture<'a, T> = Pin<Box<dyn Future<Output = T> + 'a>>;

/// Errors surfaced by a datastore-specific `wait`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum WaitError {
    /// The datastore has no replica in the requested region.
    NoReplicaInRegion(Region),
    /// The store rejected the wait (e.g. shut down during failure injection).
    StoreUnavailable(String),
}

impl fmt::Display for WaitError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaitError::NoReplicaInRegion(r) => write!(f, "no replica in region {r}"),
            WaitError::StoreUnavailable(s) => write!(f, "store unavailable: {s}"),
        }
    }
}
impl std::error::Error for WaitError {}

/// Implemented by every datastore shim so `barrier` can enforce visibility
/// without knowing the store's protocol or semantics.
pub trait WaitTarget {
    /// The datastore name write identifiers refer to.
    fn datastore_name(&self) -> &str;

    /// Resolves once `write` (or a superseding version) is visible at the
    /// replica co-located with `region` — the geo-local optimization of
    /// §6.3: enforcement only consults replicas co-located with the caller.
    fn wait<'a>(
        &'a self,
        write: &'a WriteId,
        region: Region,
    ) -> LocalBoxFuture<'a, Result<(), WaitError>>;

    /// Non-blocking visibility probe, used by the dry-run consistency
    /// checker (§6.3) and by reporting.
    fn is_visible(&self, write: &WriteId, region: Region) -> bool;
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wait_error_display() {
        let e = WaitError::NoReplicaInRegion(Region("mars"));
        assert!(e.to_string().contains("mars"));
        let e = WaitError::StoreUnavailable("redis".into());
        assert!(e.to_string().contains("redis"));
    }
}

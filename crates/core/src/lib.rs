//! # antipode
//!
//! A from-scratch Rust implementation of **Antipode** (SOSP 2023): a bolt-on,
//! application-level library that enforces *cross-service causal consistency*
//! (XCY) in distributed applications composed of many services and many
//! mutually-oblivious datastores.
//!
//! The library follows the paper's three-part API (Table 2):
//!
//! - **Lineage API** ([`LineageCtx`], [`LineageIdGen`], plus
//!   [`antipode_lineage::Lineage`]): `root`, `stop`, `append`, `remove`,
//!   `transfer`, `serialize`, `deserialize`. Lineages are sets of
//!   ⟨datastore, key, version⟩ write identifiers that travel alongside
//!   end-to-end requests (piggybacked on baggage) and within datastores
//!   (stored next to values by the shims).
//! - **Shim API**: datastore-specific shims wrap `write`/`read` to propagate
//!   lineages and implement [`WaitTarget`], the store-specific `wait`.
//!   Concrete shims for eight stores live in the `antipode-store` crate.
//! - **Core API** ([`Antipode::barrier`]): enforces a lineage's
//!   dependencies at a developer-chosen point, decoupled from reads and
//!   writes, with timeout/async variants and a dry-run consistency checker.
//!
//! ```
//! use antipode::{Antipode, LineageCtx, LineageIdGen};
//! use antipode_lineage::WriteId;
//! use antipode_sim::Sim;
//!
//! let sim = Sim::new(1);
//! let gen = LineageIdGen::new(0);
//! let mut ctx = LineageCtx::new();
//! ctx.root(&gen);                               // start a lineage
//! ctx.append(WriteId::new("posts", "p1", 3));   // a datastore write
//! let ap = Antipode::new(sim.clone());
//! // ... register shims, pass the lineage along RPCs, and call
//! // ap.barrier(&lineage, region).await where visibility must hold.
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod barrier;
pub mod checker;
pub mod ctx;
pub mod idgen;
pub mod race;
pub mod registry;
pub mod speculation;
pub mod wait;

pub use barrier::{
    Antipode, BarrierError, BarrierOutcome, BarrierReport, BarrierRetry, DegradedBarrier,
    DryRunReport, SpeculativeBarrier, StoreWait,
};
pub use checker::{Checkpoint, ConsistencyChecker, LocationStats};
pub use ctx::LineageCtx;
pub use idgen::LineageIdGen;
pub use race::{RaceDetector, RaceFinding, RaceStats, TraceEvent};
pub use registry::{ShimRegistry, UnknownStorePolicy};
pub use speculation::{SpecState, SpeculationConfig, SpeculationFrontier, ViolationCause};
pub use wait::{LocalBoxFuture, WaitError, WaitTarget};

// Re-export the foundation types so applications need only this crate.
pub use antipode_lineage::{Baggage, Lineage, LineageId, WriteId};

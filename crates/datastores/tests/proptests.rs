//! Property-based tests for the datastore frameworks: replication always
//! converges, versions are monotone, visibility is monotone per replica, and
//! shims round-trip arbitrary values.

use std::rc::Rc;

use antipode_lineage::{Lineage, LineageId};
use antipode_sim::dist::Dist;
use antipode_sim::net::regions::{EU, SG, US};
use antipode_sim::{Network, Sim};
use antipode_store::replica::{KvProfile, KvStore};
use antipode_store::shim::{KvShim, QueueShim};
use antipode_store::QueueStore;
use bytes::Bytes;
use proptest::prelude::*;

fn store(sim: &Sim, median_ms: f64, sigma: f64, drop_p: f64) -> KvStore {
    let net = Rc::new(Network::global_triangle());
    let s = KvStore::new(
        sim,
        net,
        "db",
        &[EU, US, SG],
        KvProfile {
            local_write: Dist::constant_ms(1.0),
            local_read: Dist::constant_ms(0.5),
            replication: Dist::lognormal_ms(median_ms.max(0.1), sigma),
            rtt_hops: 1.0,
            retry_interval: Dist::constant_ms(100.0),
        },
    );
    s.set_drop_probability(drop_p);
    s
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Whatever the write pattern, replication delays and drop rate, once
    /// the simulation goes quiescent every replica agrees on the newest
    /// version of every key (replication converges).
    #[test]
    fn replication_converges(
        seed in any::<u64>(),
        median_ms in 1.0f64..10_000.0,
        sigma in 0.1f64..1.5,
        drop_p in 0.0f64..0.8,
        writes in proptest::collection::vec((0u8..5, 0u8..3), 1..25),
    ) {
        let sim = Sim::new(seed);
        let st = store(&sim, median_ms, sigma, drop_p);
        let st2 = st.clone();
        let writes2 = writes.clone();
        let expected: Vec<(String, u64)> = sim.clone().block_on(async move {
            let mut latest = std::collections::HashMap::new();
            for (key, origin) in &writes2 {
                let key = format!("k{key}");
                let origin = [EU, US, SG][*origin as usize % 3];
                let v = st2.put(origin, &key, Bytes::from_static(b"x")).await.unwrap();
                latest.insert(key, v);
            }
            latest.into_iter().collect()
        });
        sim.run(); // drain all replication
        for (key, version) in expected {
            for region in [EU, US, SG] {
                let got = st.get_sync(region, &key);
                prop_assert!(
                    got.as_ref().map(|v| v.version >= version).unwrap_or(false),
                    "{key}@{region}: {got:?} never reached v{version}"
                );
            }
        }
    }

    /// Versions assigned by one store are strictly increasing.
    #[test]
    fn versions_are_strictly_monotone(
        seed in any::<u64>(),
        n in 1usize..30,
    ) {
        let sim = Sim::new(seed);
        let st = store(&sim, 10.0, 0.3, 0.0);
        let versions = sim.clone().block_on(async move {
            let mut out = Vec::new();
            for i in 0..n {
                out.push(st.put(EU, &format!("k{}", i % 3), Bytes::new()).await.unwrap());
            }
            out
        });
        for w in versions.windows(2) {
            prop_assert!(w[0] < w[1]);
        }
    }

    /// Visibility is monotone at each replica: once `is_visible` turns true
    /// for a (key, version), it stays true.
    #[test]
    fn visibility_is_monotone(seed in any::<u64>(), probes in 2usize..12) {
        let sim = Sim::new(seed);
        let st = store(&sim, 500.0, 0.8, 0.0);
        let v = sim.clone().block_on({
            let st = st.clone();
            async move { st.put(EU, "k", Bytes::new()).await.unwrap() }
        });
        let mut seen_visible = false;
        for _ in 0..probes {
            sim.run_for(std::time::Duration::from_millis(200));
            let vis = st.is_visible(US, "k", v);
            prop_assert!(!seen_visible || vis, "visibility regressed");
            seen_visible = vis;
        }
        sim.run();
        prop_assert!(st.is_visible(US, "k", v));
    }

    /// Shim writes round-trip arbitrary bytes and arbitrary lineage sizes.
    #[test]
    fn kv_shim_round_trips_arbitrary_values(
        seed in any::<u64>(),
        value in proptest::collection::vec(any::<u8>(), 0..512),
        deps in 0usize..20,
    ) {
        let sim = Sim::new(seed);
        let st = store(&sim, 10.0, 0.3, 0.0);
        let shim = KvShim::new(st);
        let value2 = Bytes::from(value.clone());
        let ok = sim.block_on(async move {
            let mut lin = Lineage::new(LineageId(1));
            for i in 0..deps {
                lin.append(antipode_lineage::WriteId::new("other", format!("d{i}"), i as u64));
            }
            let before = lin.clone();
            shim.write(EU, "k", value2.clone(), &mut lin).await.unwrap();
            let (data, stored) = shim.read(EU, "k").await.unwrap().unwrap();
            data == value2 && stored.as_ref() == Some(&before)
        });
        prop_assert!(ok);
    }

    /// Every published message reaches every region's subscriber exactly
    /// once, in id order per subscriber... (delivery order may interleave
    /// across publishes, so we check the *set*).
    #[test]
    fn queue_delivers_exactly_once_per_region(
        seed in any::<u64>(),
        n in 1usize..20,
    ) {
        let sim = Sim::new(seed);
        let net = Rc::new(Network::global_triangle());
        let q = QueueStore::new(&sim, net, "q", &[EU, US], Default::default());
        let shim = QueueShim::new(q.clone());
        let shim2 = shim.clone();
        let ids = sim.clone().block_on(async move {
            let mut ids = Vec::new();
            for _ in 0..n {
                let mut lin = Lineage::new(LineageId(1));
                let wid = shim2.publish(EU, Bytes::from_static(b"m"), &mut lin).await.unwrap();
                ids.push(wid.version());
            }
            ids
        });
        // Subscribe (messages published before this whose delivery is still
        // in flight will also arrive), publish a second batch, then drain
        // everything after quiescence.
        let mut rx = shim.subscribe(US).unwrap();
        let shim3 = shim.clone();
        let n2 = n;
        let republished = sim.clone().block_on(async move {
            let mut v = Vec::new();
            for _ in 0..n2 {
                let mut lin = Lineage::new(LineageId(2));
                let wid = shim3.publish(EU, Bytes::from_static(b"m2"), &mut lin).await.unwrap();
                v.push(wid.version());
            }
            v
        });
        sim.run();
        let mut got = Vec::new();
        while let Some(m) = rx.try_recv().unwrap() {
            got.push(m.raw.id);
        }
        // Exactly once: no duplicates…
        let mut dedup = got.clone();
        dedup.sort_unstable();
        dedup.dedup();
        prop_assert_eq!(dedup.len(), got.len(), "duplicate deliveries in {:?}", got);
        // …every republished id arrived…
        for id in &republished {
            prop_assert!(got.contains(id), "missing {} in {:?}", id, got);
        }
        // …and nothing that was never published.
        for id in &got {
            prop_assert!(
                republished.contains(id) || ids.contains(id),
                "phantom message {}",
                id
            );
        }
    }
}

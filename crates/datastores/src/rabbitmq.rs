//! Simulated RabbitMQ (federated queues) and its Antipode shim.
//!
//! DeathStarBench's write-home-timeline queue: federation forwards messages
//! across regions essentially at network speed.

use antipode_lineage::{Lineage, WriteId};
use antipode_sim::Region;
use bytes::Bytes;

use crate::facade::queue_facade;
use crate::replica::StoreError;
use crate::shim::{ShimError, ShimSubscription};

/// Extra per-message amplification from AMQP header framing (Table 3:
/// +87 B total on a small message).
pub const HEADER_OVERHEAD_BYTES: usize = 40;

queue_facade! {
    /// A simulated federated RabbitMQ deployment.
    store RabbitMq(profile: crate::profiles::rabbitmq);
    /// The Antipode shim for [`RabbitMq`].
    shim RabbitMqShim;
}

impl RabbitMq {
    /// Publish to the exchange (baseline path, no lineage).
    pub async fn publish(&self, region: Region, payload: Bytes) -> Result<u64, StoreError> {
        self.queue.publish(region, payload).await
    }

    /// Consume messages delivered in a region.
    pub fn consume(
        &self,
        region: Region,
    ) -> Result<antipode_sim::sync::Receiver<crate::queue::QueueMessage>, StoreError> {
        self.queue.subscribe(region)
    }
}

impl RabbitMqShim {
    /// Wraps a deployment as a *work queue*: `wait` resolves when the
    /// message is processed (acked), not merely delivered — TrainTicket's
    /// refund queue uses this (§7.1, §7.4).
    pub fn new_work_queue(mq: &RabbitMq) -> Self {
        RabbitMqShim {
            inner: crate::shim::QueueShim::new(mq.queue.clone())
                .with_semantics(crate::shim::WaitSemantics::Processed),
        }
    }

    /// Acknowledges a processed message (work-queue consumers call this
    /// after committing their work).
    pub fn ack(&self, region: Region, msg: &crate::shim::ShimMessage) -> Result<(), ShimError> {
        self.inner.ack(region, msg)
    }

    /// Lineage-propagating publish.
    pub async fn publish(
        &self,
        region: Region,
        payload: Bytes,
        lineage: &mut Lineage,
    ) -> Result<WriteId, ShimError> {
        self.inner.publish(region, payload, lineage).await
    }

    /// Lineage-decoding consumer.
    pub fn consume(&self, region: Region) -> Result<ShimSubscription, ShimError> {
        self.inner.subscribe(region)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antipode_lineage::LineageId;
    use antipode_sim::net::regions::{SG, US};
    use antipode_sim::net::Network;
    use antipode_sim::Sim;
    use std::rc::Rc;
    use std::time::Duration;

    #[test]
    fn federation_is_roughly_rtt_bound() {
        let sim = Sim::new(71);
        let net = Rc::new(Network::global_triangle());
        let mq = RabbitMq::new(&sim, net, "wht-queue", &[US, SG]);
        let shim = RabbitMqShim::new(&mq);
        let elapsed = sim.block_on({
            let sim = sim.clone();
            async move {
                let mut sub = shim.consume(SG).unwrap();
                let mut lin = Lineage::new(LineageId(1));
                let start = sim.now();
                shim.publish(US, Bytes::from_static(b"m"), &mut lin)
                    .await
                    .unwrap();
                sub.recv().await.unwrap().unwrap();
                sim.now().since(start)
            }
        });
        // US→SG one-way ≈ 110 ms plus a few ms of processing.
        assert!(
            (Duration::from_millis(60)..Duration::from_millis(600)).contains(&elapsed),
            "federation delivery {elapsed:?}"
        );
    }

    #[test]
    fn consumer_sees_lineage() {
        let sim = Sim::new(72);
        let net = Rc::new(Network::global_triangle());
        let mq = RabbitMq::new(&sim, net, "q", &[US, SG]);
        let shim = RabbitMqShim::new(&mq);
        sim.block_on(async move {
            let mut sub = shim.consume(SG).unwrap();
            let mut lin = Lineage::new(LineageId(9));
            lin.append(WriteId::new("post-storage", "posts/5", 2));
            shim.publish(US, Bytes::from_static(b"notif"), &mut lin)
                .await
                .unwrap();
            let msg = sub.recv().await.unwrap().unwrap();
            assert!(msg
                .lineage
                .unwrap()
                .contains(&WriteId::new("post-storage", "posts/5", 2)));
        });
    }
}

//! The geo-replicated key-value family, as a facade over the shared
//! replication engine.
//!
//! A [`KvStore`] keeps one replica per region. Writes commit at the origin
//! replica, then replicate asynchronously to every other replica with a lag
//! sampled from the store's [`KvProfile`] — the racing of these per-store
//! lags against notification delivery is precisely what produces the paper's
//! Table 1 / Fig 6 / Fig 7 results. Each replica maintains visibility
//! waiters so shim `wait` implementations can subscribe instead of polling.
//!
//! All shared mechanics (replica state, fan-out, waiters, WAL, hints,
//! repair) live in [`crate::engine::Engine`]; this module contributes only
//! the KV-specific read paths (local, strong) and re-exposes the engine
//! surface under the store's historical API. Failure injection is driven by
//! the simulation's [`antipode_sim::fault::FaultPlan`]: the store's legacy
//! knobs ([`KvStore::set_drop_probability`], [`KvStore::pause_replication`],
//! …) are thin wrappers over the plan.

use std::rc::Rc;

use antipode_sim::dist::Dist;
use antipode_sim::net::Network;
use antipode_sim::{Region, Sim, SimTime};
use bytes::Bytes;

use crate::engine::{Engine, ReplicaHealth};
use crate::probe::VisibilityProbe;
use crate::repair::{RepairConfig, RepairReport, ScrubReport};
use crate::substrate::KvSubstrate;

pub use crate::substrate::StoreError;

/// Latency and replication model for one datastore type.
#[derive(Clone, Debug)]
pub struct KvProfile {
    /// Commit latency at the origin replica.
    pub local_write: Dist,
    /// Local read latency.
    pub local_read: Dist,
    /// Extra replication lag beyond network transit (batching, apply, …).
    pub replication: Dist,
    /// How many one-way network delays a replication message costs.
    pub rtt_hops: f64,
    /// Backoff before retrying a dropped replication message.
    pub retry_interval: Dist,
}

impl Default for KvProfile {
    fn default() -> Self {
        KvProfile {
            local_write: Dist::constant_ms(1.0),
            local_read: Dist::constant_ms(0.5),
            replication: Dist::lognormal_ms(500.0, 0.4),
            rtt_hops: 1.0,
            retry_interval: Dist::constant_ms(200.0),
        }
    }
}

/// A versioned value as stored at one replica.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredValue {
    /// The version the origin assigned to this write.
    pub version: u64,
    /// The stored bytes (shims store [`crate::envelope::Envelope`]s here).
    pub bytes: Bytes,
    /// Virtual time this version became visible at this replica.
    pub visible_at: SimTime,
}

/// A simulated geo-replicated key-value store.
#[derive(Clone)]
pub struct KvStore {
    pub(crate) engine: Engine<KvSubstrate>,
}

impl KvStore {
    /// Creates a store named `name` with one replica per region. The first
    /// region acts as the primary for strongly consistent reads.
    pub fn new(
        sim: &Sim,
        net: Rc<Network>,
        name: impl Into<String>,
        regions: &[Region],
        profile: KvProfile,
    ) -> Self {
        KvStore {
            engine: Engine::new(sim, net, name, regions, KvSubstrate::new(profile)),
        }
    }

    /// Replaces the store's [`crate::recovery::RecoveryConfig`] (WAL and
    /// hinted-handoff knobs). Effective for subsequent operations.
    pub fn set_recovery(&self, cfg: crate::recovery::RecoveryConfig) {
        self.engine.set_recovery(cfg);
    }

    /// The store's current recovery configuration.
    pub fn recovery_config(&self) -> crate::recovery::RecoveryConfig {
        self.engine.recovery_config()
    }

    /// The store's name (what write identifiers refer to).
    pub fn name(&self) -> &str {
        self.engine.name()
    }

    /// The regions this store is replicated across.
    pub fn regions(&self) -> &[Region] {
        self.engine.regions()
    }

    /// The primary region (first configured).
    pub fn primary(&self) -> Region {
        self.engine.primary()
    }

    /// Writes `value` under `key` at the replica in `origin`. Commits locally
    /// (after the profile's commit latency), kicks off asynchronous
    /// replication to every other replica, and returns the assigned version.
    pub async fn put(&self, origin: Region, key: &str, value: Bytes) -> Result<u64, StoreError> {
        self.engine.commit(origin, Some(key), value).await
    }

    /// Applies a version at a replica directly, bypassing replication.
    /// Test plumbing.
    #[cfg(test)]
    pub(crate) fn apply(&self, region: Region, key: &str, version: u64, value: Bytes) {
        let committed_at = self.engine.sim().now();
        self.engine
            .apply(region, &Rc::from(key), version, value, committed_at);
    }

    /// Toggles batched replication fan-out (on by default). `false` selects
    /// the determinism ablation: the same pair-queue machinery, paying one
    /// virtual-time event per send entry instead of one per batch — same
    /// trace, unbatched event counts (see [`crate::batch`]).
    pub fn set_batching(&self, on: bool) {
        self.engine.set_batching(on);
    }

    /// Whether batched fan-out is enabled.
    pub fn batching(&self) -> bool {
        self.engine.batching()
    }

    /// Queued-but-undelivered replication sends (diagnostics).
    pub fn pending_sends(&self) -> usize {
        self.engine.pending_sends()
    }

    /// Number of write-ahead-log entries at a replica (diagnostics).
    pub fn wal_len(&self, region: Region) -> usize {
        self.engine.wal_len(region)
    }

    /// Total framed bytes in a replica's write-ahead log (diagnostics).
    pub fn wal_byte_len(&self, region: Region) -> usize {
        self.engine.wal_byte_len(region)
    }

    /// Integrity standing of a replica: `Healthy`, or `Tainted` when WAL
    /// verification found mid-log corruption and quarantined it (reads
    /// refuse with [`StoreError::IntegrityFault`] until anti-entropy
    /// rejoins it). See [`crate::wal`] and [`crate::repair`].
    pub fn replica_health(&self, region: Region) -> ReplicaHealth {
        self.engine.replica_health(region)
    }

    /// Installs an observation hook invoked at every replica apply; see
    /// [`crate::probe`]. Pass `None` to remove it.
    pub fn set_probe(&self, probe: Option<VisibilityProbe>) {
        self.engine.set_probe(probe);
    }

    /// Back-pressure injection: bound the number of in-flight replication
    /// sends. A put that would exceed the bound is rejected with
    /// [`StoreError::Overloaded`]. Pass `None` to lift the bound.
    pub fn set_send_capacity(&self, cap: Option<usize>) {
        self.engine.set_send_capacity(cap);
    }

    /// Writes like [`KvStore::put`] but *synchronously*: returns only once
    /// every replica has applied the write. This is the §3.3 strawman
    /// ("strengthening the guarantees of post-storage to make its
    /// replication synchronous... introduces undesirable delays") — kept for
    /// the ablation that quantifies exactly that delay. The write is still
    /// applied through the normal replication machinery.
    pub async fn put_sync(
        &self,
        origin: Region,
        key: &str,
        value: Bytes,
    ) -> Result<u64, StoreError> {
        let version = self.put(origin, key, value).await?;
        for &region in self.engine.regions() {
            self.wait_visible(region, key, version).await?;
        }
        Ok(version)
    }

    /// Reads the latest locally visible value (regular, possibly stale read).
    pub async fn get(&self, region: Region, key: &str) -> Result<Option<StoredValue>, StoreError> {
        self.engine.check_available(region)?;
        let lat = {
            let mut rng = self.engine.rng().borrow_mut();
            self.engine
                .substrate()
                .profile
                .local_read
                .sample_duration(&mut rng)
        };
        self.engine.sim().sleep(lat).await;
        Ok(self.get_sync(region, key))
    }

    /// Zero-latency read of the local replica, for checks and assertions.
    pub fn get_sync(&self, region: Region, key: &str) -> Option<StoredValue> {
        self.engine.record(region, key).map(|r| StoredValue {
            version: r.version,
            bytes: r.bytes,
            visible_at: r.visible_at,
        })
    }

    /// A strongly consistent read: consults the primary replica, paying a
    /// round trip when the caller is remote. This is how stores like
    /// DynamoDB expose read-after-write (§6.4).
    pub async fn get_strong(
        &self,
        from: Region,
        key: &str,
    ) -> Result<Option<StoredValue>, StoreError> {
        self.engine.check_available(from)?;
        let primary = self.primary();
        self.engine.check_available(primary)?;
        let rtt = {
            let mut rng = self.engine.rng().borrow_mut();
            let go = self.engine.net().delay(&mut *rng, from, primary);
            let back = self.engine.net().delay(&mut *rng, primary, from);
            let read = self
                .engine
                .substrate()
                .profile
                .local_read
                .sample_duration(&mut rng);
            go + back + read
        };
        self.engine.sim().sleep(rtt).await;
        Ok(self.get_sync(primary, key))
    }

    /// Whether `key` has reached at least `version` at `region`.
    pub fn is_visible(&self, region: Region, key: &str, version: u64) -> bool {
        self.engine.is_visible(region, key, version)
    }

    /// Resolves once `key` reaches at least `version` at `region` — the
    /// store-specific `wait` (paper §6.3), implemented by subscription
    /// rather than polling. A replica that goes dark mid-wait surfaces
    /// [`StoreError::Unavailable`] so barrier retry policies can re-arm.
    pub async fn wait_visible(
        &self,
        region: Region,
        key: &str,
        version: u64,
    ) -> Result<(), StoreError> {
        self.engine.wait_visible(region, key, version).await
    }

    /// Fault injection: probability each replication send attempt is dropped
    /// (dropped sends retry after the profile's `retry_interval`). Thin
    /// wrapper over the simulation's [`antipode_sim::fault::FaultPlan`].
    pub fn set_drop_probability(&self, p: f64) {
        self.engine
            .faults()
            .set_replication_drop(self.engine.name(), p);
    }

    /// Fault injection: stop applying replication at `region` until
    /// [`KvStore::resume_replication`]. Thin wrapper over the
    /// [`antipode_sim::fault::FaultPlan`].
    pub fn pause_replication(&self, region: Region) {
        self.engine
            .faults()
            .stall_replication(self.engine.name(), region);
    }

    /// Ends a [`KvStore::pause_replication`] stall.
    pub fn resume_replication(&self, region: Region) {
        self.engine
            .faults()
            .unstall_replication(self.engine.name(), region);
    }

    /// Congestion injection: adds `lag` to every replication send while set
    /// (pass `None` to clear). Used to model time-correlated congestion
    /// episodes, e.g. MongoDB oplog backlog under WAN stress (§7.3). Thin
    /// wrapper over the [`antipode_sim::fault::FaultPlan`].
    pub fn set_extra_replication_lag(&self, lag: Option<Dist>) {
        self.engine
            .faults()
            .set_replication_lag(self.engine.name(), lag);
    }

    /// Number of pending visibility waiters at a replica (diagnostics).
    pub fn waiter_count(&self, region: Region) -> usize {
        self.engine.waiter_count(region)
    }

    /// Number of queued hinted-handoff entries (diagnostics).
    pub fn pending_hints(&self) -> usize {
        self.engine.pending_hints()
    }

    /// Whether every replica holds an identical key→version map; see
    /// [`crate::repair`].
    pub fn converged(&self) -> bool {
        self.engine.converged()
    }

    /// Whether every replica holds byte-identical data (same keys, versions,
    /// *and* stored bytes) — strictly stronger than [`KvStore::converged`];
    /// see [`crate::repair`].
    pub fn converged_bytes(&self) -> bool {
        self.engine.converged_bytes()
    }

    /// One anti-entropy round; see [`crate::repair`].
    pub async fn repair_sweep(&self) -> RepairReport {
        self.engine.repair_sweep().await
    }

    /// One scrub round: re-verify every live replica's WAL checksums,
    /// truncating torn tails and quarantining mid-log corruption; see
    /// [`crate::repair`].
    pub fn scrub_sweep(&self) -> ScrubReport {
        self.engine.scrub_sweep()
    }

    /// Starts the periodic anti-entropy loop; see [`crate::repair`].
    pub fn enable_anti_entropy(&self, cfg: RepairConfig) {
        self.engine.enable_anti_entropy(cfg);
    }

    /// Starts the periodic scrub loop (detection only — pair with
    /// [`KvStore::enable_anti_entropy`] for back-fill and rejoin); see
    /// [`crate::repair`].
    pub fn enable_scrub(&self, cfg: RepairConfig) {
        self.engine.enable_scrub(cfg);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antipode_sim::net::regions::{EU, SG, US};
    use std::time::Duration;

    fn setup(profile: KvProfile) -> (Sim, KvStore) {
        let sim = Sim::new(7);
        let net = Rc::new(Network::global_triangle());
        let store = KvStore::new(&sim, net, "db", &[EU, US, SG], profile);
        (sim, store)
    }

    fn fast_profile() -> KvProfile {
        KvProfile {
            local_write: Dist::constant_ms(1.0),
            local_read: Dist::constant_ms(0.5),
            replication: Dist::constant_ms(100.0),
            rtt_hops: 1.0,
            retry_interval: Dist::constant_ms(50.0),
        }
    }

    #[test]
    fn local_write_is_immediately_visible_at_origin() {
        let (sim, store) = setup(fast_profile());
        let s = store.clone();
        sim.block_on(async move {
            let v = s.put(EU, "k", Bytes::from_static(b"x")).await.unwrap();
            assert_eq!(v, 1);
            let got = s.get(EU, "k").await.unwrap().unwrap();
            assert_eq!(got.bytes, Bytes::from_static(b"x"));
            assert_eq!(got.version, 1);
        });
    }

    #[test]
    fn remote_read_is_stale_until_replication() {
        let (sim, store) = setup(fast_profile());
        let s = store.clone();
        let sim2 = sim.clone();
        sim.block_on(async move {
            s.put(EU, "k", Bytes::from_static(b"x")).await.unwrap();
            // Immediately after commit: US replica does not have it yet.
            assert!(s.get_sync(US, "k").is_none());
            // After replication lag (~100ms + ~45ms transit) it appears.
            sim2.sleep(Duration::from_millis(500)).await;
            assert!(s.get_sync(US, "k").is_some());
        });
    }

    #[test]
    fn versions_are_monotone_across_keys() {
        let (sim, store) = setup(fast_profile());
        let s = store.clone();
        sim.block_on(async move {
            let v1 = s.put(EU, "a", Bytes::new()).await.unwrap();
            let v2 = s.put(EU, "b", Bytes::new()).await.unwrap();
            assert!(v2 > v1);
        });
    }

    #[test]
    fn wait_visible_blocks_until_replicated() {
        let (sim, store) = setup(fast_profile());
        let s = store.clone();
        let elapsed = sim.block_on(async move {
            let start = s.engine.sim().now();
            let v = s.put(EU, "k", Bytes::from_static(b"x")).await.unwrap();
            s.wait_visible(US, "k", v).await.unwrap();
            assert!(s.is_visible(US, "k", v));
            s.engine.sim().now().since(start)
        });
        assert!(elapsed >= Duration::from_millis(100), "waited {elapsed:?}");
    }

    #[test]
    fn wait_on_already_visible_returns_immediately() {
        let (sim, store) = setup(fast_profile());
        let s = store.clone();
        sim.block_on(async move {
            let v = s.put(EU, "k", Bytes::new()).await.unwrap();
            let before = s.engine.sim().now();
            s.wait_visible(EU, "k", v).await.unwrap();
            assert_eq!(s.engine.sim().now(), before);
        });
    }

    #[test]
    fn superseding_write_satisfies_older_waits() {
        let (sim, store) = setup(fast_profile());
        let s = store.clone();
        sim.block_on(async move {
            let v1 = s.put(EU, "k", Bytes::from_static(b"one")).await.unwrap();
            let _v2 = s.put(EU, "k", Bytes::from_static(b"two")).await.unwrap();
            // US will receive both; waiting on v1 must succeed even if v2
            // arrives first (superseded, §5.2).
            s.wait_visible(US, "k", v1).await.unwrap();
            let got = s.get_sync(US, "k").unwrap();
            assert!(got.version >= v1);
        });
    }

    #[test]
    fn out_of_order_replication_does_not_clobber() {
        let (sim, store) = setup(fast_profile());
        // Directly exercise apply: newer version first, then older.
        store.apply(US, "k", 5, Bytes::from_static(b"new"));
        store.apply(US, "k", 3, Bytes::from_static(b"old"));
        let got = store.get_sync(US, "k").unwrap();
        assert_eq!(got.version, 5);
        assert_eq!(got.bytes, Bytes::from_static(b"new"));
        drop(sim);
    }

    #[test]
    fn strong_read_sees_unreplicated_write() {
        // Primary is EU (first region).
        let (sim, store) = setup(KvProfile {
            replication: Dist::Constant(60.0), // very slow async replication
            ..fast_profile()
        });
        let s = store.clone();
        sim.block_on(async move {
            let v = s.put(EU, "k", Bytes::from_static(b"x")).await.unwrap();
            // Local US read misses; strong read from US sees it.
            assert!(s.get(US, "k").await.unwrap().is_none());
            let strong = s.get_strong(US, "k").await.unwrap().unwrap();
            assert_eq!(strong.version, v);
        });
    }

    #[test]
    fn unknown_region_errors() {
        let (sim, store) = setup(fast_profile());
        let s = store.clone();
        sim.block_on(async move {
            let bogus = Region("nowhere");
            assert_eq!(
                s.put(bogus, "k", Bytes::new()).await.unwrap_err(),
                StoreError::NoSuchRegion(bogus)
            );
            assert!(s.get(bogus, "k").await.is_err());
            assert!(s.wait_visible(bogus, "k", 1).await.is_err());
        });
    }

    #[test]
    fn dropped_replication_retries_and_lands() {
        let (sim, store) = setup(fast_profile());
        store.set_drop_probability(0.9); // most attempts dropped, but retried
        let s = store.clone();
        sim.block_on(async move {
            let v = s.put(EU, "k", Bytes::from_static(b"x")).await.unwrap();
            s.wait_visible(US, "k", v).await.unwrap();
        });
        assert!(sim.now().since(SimTime::ZERO) >= Duration::from_millis(100));
    }

    #[test]
    fn paused_replication_stalls_until_resume() {
        let (sim, store) = setup(fast_profile());
        store.pause_replication(US);
        let s = store.clone();
        let s2 = store.clone();
        let sim2 = sim.clone();
        sim.spawn(async move {
            s.put(EU, "k", Bytes::from_static(b"x")).await.unwrap();
        });
        sim.run_for(Duration::from_secs(10));
        assert!(
            store.get_sync(US, "k").is_none(),
            "paused replica must not apply"
        );
        sim.spawn(async move {
            sim2.sleep(Duration::from_secs(1)).await;
            s2.resume_replication(US);
        });
        sim.run_for(Duration::from_secs(5));
        assert!(store.get_sync(US, "k").is_some());
    }

    #[test]
    fn put_sync_returns_only_when_fully_replicated() {
        let (sim, store) = setup(fast_profile());
        let s = store.clone();
        sim.block_on(async move {
            let v = s.put_sync(EU, "k", Bytes::from_static(b"x")).await.unwrap();
            for region in [EU, US, SG] {
                assert!(s.is_visible(region, "k", v), "{region} must be caught up");
            }
        });
        assert!(
            sim.now().since(SimTime::ZERO) >= Duration::from_millis(100),
            "synchronous write must pay the replication delay"
        );
    }

    #[test]
    fn extra_replication_lag_slows_then_clears() {
        let (sim, store) = setup(fast_profile());
        store.set_extra_replication_lag(Some(Dist::Constant(5.0)));
        let s = store.clone();
        let first = sim.block_on({
            let sim = sim.clone();
            async move {
                let start = sim.now();
                let v = s.put(EU, "a", Bytes::new()).await.unwrap();
                s.wait_visible(US, "a", v).await.unwrap();
                sim.now().since(start)
            }
        });
        assert!(first >= Duration::from_secs(5), "congested lag {first:?}");
        store.set_extra_replication_lag(None);
        let s = store.clone();
        let second = sim.block_on({
            let sim = sim.clone();
            async move {
                let start = sim.now();
                let v = s.put(EU, "b", Bytes::new()).await.unwrap();
                s.wait_visible(US, "b", v).await.unwrap();
                sim.now().since(start)
            }
        });
        assert!(second < Duration::from_secs(2), "cleared lag {second:?}");
    }

    #[test]
    fn region_outage_rejects_ops_then_heals() {
        use antipode_sim::fault::FaultKind;
        let (sim, store) = setup(fast_profile());
        sim.faults().schedule(
            SimTime::ZERO,
            SimTime::from_secs(10),
            FaultKind::RegionOutage { region: US },
        );
        let s = store.clone();
        sim.block_on({
            let sim = sim.clone();
            async move {
                // Writes at a healthy region succeed; US operations fail fast.
                let v = s.put(EU, "k", Bytes::from_static(b"x")).await.unwrap();
                assert!(matches!(
                    s.get(US, "k").await.unwrap_err(),
                    StoreError::Unavailable { .. }
                ));
                assert!(matches!(
                    s.wait_visible(US, "k", v).await.unwrap_err(),
                    StoreError::Unavailable { .. }
                ));
                // Replication into the dark region is held at the boundary…
                sim.sleep(Duration::from_secs(5)).await;
                assert!(s.get_sync(US, "k").is_none());
                // …and lands deterministically once the outage heals.
                sim.sleep_until(SimTime::from_secs(10)).await;
                s.wait_visible(US, "k", v).await.unwrap();
                assert!(s.is_visible(US, "k", v));
            }
        });
    }

    #[test]
    fn partition_window_holds_replication() {
        use antipode_sim::fault::FaultKind;
        let (sim, store) = setup(fast_profile());
        sim.faults().schedule(
            SimTime::ZERO,
            SimTime::from_secs(30),
            FaultKind::Partition { a: EU, b: US },
        );
        let s = store.clone();
        sim.block_on(async move {
            let v = s.put(EU, "k", Bytes::new()).await.unwrap();
            // SG is unaffected by the EU↔US partition.
            s.wait_visible(SG, "k", v).await.unwrap();
            assert!(!s.is_visible(US, "k", v));
            // The partitioned destination catches up right at the heal edge.
            s.wait_visible(US, "k", v).await.unwrap();
            assert!(s.engine.sim().now() >= SimTime::from_secs(30));
        });
    }

    #[test]
    fn visible_at_timestamps_order_with_replication() {
        let (sim, store) = setup(fast_profile());
        let s = store.clone();
        sim.block_on(async move {
            let v = s.put(EU, "k", Bytes::new()).await.unwrap();
            s.wait_visible(US, "k", v).await.unwrap();
            let eu = s.get_sync(EU, "k").unwrap().visible_at;
            let us = s.get_sync(US, "k").unwrap().visible_at;
            assert!(us > eu);
        });
    }

    #[test]
    fn overload_backpressure_rejects_then_recovers() {
        let (sim, store) = setup(fast_profile());
        store.set_send_capacity(Some(0));
        let s = store.clone();
        sim.block_on(async move {
            assert!(matches!(
                s.put(EU, "k", Bytes::new()).await.unwrap_err(),
                StoreError::Overloaded { .. }
            ));
            s.set_send_capacity(None);
            s.put(EU, "k", Bytes::new()).await.unwrap();
        });
    }
}

//! The geo-replicated key-value framework underlying the simulated stores.
//!
//! A [`KvStore`] keeps one replica per region. Writes commit at the origin
//! replica, then replicate asynchronously to every other replica with a lag
//! sampled from the store's [`KvProfile`] — the racing of these per-store
//! lags against notification delivery is precisely what produces the paper's
//! Table 1 / Fig 6 / Fig 7 results. Each replica maintains visibility
//! waiters so shim `wait` implementations can subscribe instead of polling.
//!
//! Failure injection is driven by the simulation's [`FaultPlan`]: replication
//! messages can be dropped (with retry), a destination can be stalled, links
//! can partition, and whole regions can go dark. The store's legacy knobs
//! ([`KvStore::set_drop_probability`], [`KvStore::pause_replication`], …)
//! are thin wrappers over the plan.

use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;
#[cfg(test)]
use std::time::Duration;

use antipode_sim::dist::Dist;
use antipode_sim::fault::FaultPlan;
use antipode_sim::net::Network;
use antipode_sim::rng::SimRng;
use antipode_sim::sync::{oneshot, OneSender};
use antipode_sim::{Region, Sim, SimTime};
use bytes::Bytes;

use crate::probe::{VisibilityEvent, VisibilityProbe};

/// Latency and replication model for one datastore type.
#[derive(Clone, Debug)]
pub struct KvProfile {
    /// Commit latency at the origin replica.
    pub local_write: Dist,
    /// Local read latency.
    pub local_read: Dist,
    /// Extra replication lag beyond network transit (batching, apply, …).
    pub replication: Dist,
    /// How many one-way network delays a replication message costs.
    pub rtt_hops: f64,
    /// Backoff before retrying a dropped replication message.
    pub retry_interval: Dist,
}

impl Default for KvProfile {
    fn default() -> Self {
        KvProfile {
            local_write: Dist::constant_ms(1.0),
            local_read: Dist::constant_ms(0.5),
            replication: Dist::lognormal_ms(500.0, 0.4),
            rtt_hops: 1.0,
            retry_interval: Dist::constant_ms(200.0),
        }
    }
}

/// Errors from datastore operations.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum StoreError {
    /// The store has no replica in the named region.
    NoSuchRegion(Region),
    /// The replica exists but is inside a region-outage window: the store
    /// rejects the operation until the region heals. Barrier retry policies
    /// treat this as transient.
    Unavailable {
        /// The store name.
        store: String,
        /// The region that is down.
        region: Region,
    },
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::NoSuchRegion(r) => write!(f, "no replica in region {r}"),
            StoreError::Unavailable { store, region } => {
                write!(f, "store {store} unavailable in region {region} (outage)")
            }
        }
    }
}
impl std::error::Error for StoreError {}

/// A versioned value as stored at one replica.
#[derive(Clone, Debug, PartialEq)]
pub struct StoredValue {
    /// The version the origin assigned to this write.
    pub version: u64,
    /// The stored bytes (shims store [`crate::envelope::Envelope`]s here).
    pub bytes: Bytes,
    /// Virtual time this version became visible at this replica.
    pub visible_at: SimTime,
}

pub(crate) struct Waiter {
    pub(crate) key: String,
    pub(crate) version: u64,
    /// Resolved `Ok(())` when the awaited version lands, `Err(Unavailable)`
    /// when the replica goes dark (region outage or replica crash) — so
    /// waiters subscribed before a fault window never leak past it.
    pub(crate) tx: OneSender<Result<(), StoreError>>,
}

#[derive(Default)]
pub(crate) struct ReplicaState {
    pub(crate) data: BTreeMap<String, StoredValue>,
    pub(crate) waiters: Vec<Waiter>,
    /// Deterministic per-replica write-ahead log: every apply that changed
    /// the memtable, in apply order. Crash-restart replays it (see
    /// [`crate::recovery`]); disabled per [`crate::recovery::RecoveryConfig`].
    pub(crate) wal: Vec<crate::recovery::WalEntry>,
    /// Bumped on every crash; in-flight replication sends capture the origin
    /// epoch and abort when it moved (the sending process died).
    pub(crate) epoch: u64,
}

pub(crate) struct KvInner {
    pub(crate) name: String,
    pub(crate) sim: Sim,
    pub(crate) net: Rc<Network>,
    pub(crate) profile: KvProfile,
    pub(crate) regions: Vec<Region>,
    pub(crate) replicas: RefCell<BTreeMap<Region, ReplicaState>>,
    pub(crate) next_version: Cell<u64>,
    pub(crate) rng: RefCell<SimRng>,
    /// The simulation-wide chaos schedule; every fault this store observes
    /// (drops, stalls, partitions, outages, congestion, crashes) comes from
    /// here.
    pub(crate) faults: FaultPlan,
    /// Recovery knobs (WAL, hinted handoff); see [`crate::recovery`].
    pub(crate) recovery: Cell<crate::recovery::RecoveryConfig>,
    /// Hinted-handoff queue: replication sends suppressed by a fault, parked
    /// at their origin until the path heals. Flushed by the recovery monitor.
    pub(crate) hints: RefCell<Vec<crate::recovery::Hint>>,
    /// Optional observation hook for dynamic analysis (race detection).
    pub(crate) probe: RefCell<Option<VisibilityProbe>>,
}

/// A simulated geo-replicated key-value store.
#[derive(Clone)]
pub struct KvStore {
    pub(crate) inner: Rc<KvInner>,
}

impl KvStore {
    /// Creates a store named `name` with one replica per region. The first
    /// region acts as the primary for strongly consistent reads.
    pub fn new(
        sim: &Sim,
        net: Rc<Network>,
        name: impl Into<String>,
        regions: &[Region],
        profile: KvProfile,
    ) -> Self {
        let name = name.into();
        assert!(!regions.is_empty(), "a store needs at least one region");
        let rng = RefCell::new(sim.rng(&format!("kv:{name}")));
        let replicas = regions
            .iter()
            .map(|r| (*r, ReplicaState::default()))
            .collect::<BTreeMap<_, _>>();
        let store = KvStore {
            inner: Rc::new(KvInner {
                name,
                sim: sim.clone(),
                net,
                profile,
                regions: regions.to_vec(),
                replicas: RefCell::new(replicas),
                next_version: Cell::new(1),
                rng,
                faults: sim.faults(),
                recovery: Cell::new(crate::recovery::RecoveryConfig::default()),
                hints: RefCell::new(Vec::new()),
                probe: RefCell::new(None),
            }),
        };
        crate::recovery::spawn_monitor(&store);
        store
    }

    /// Replaces the store's [`crate::recovery::RecoveryConfig`] (WAL and
    /// hinted-handoff knobs). Effective for subsequent operations.
    pub fn set_recovery(&self, cfg: crate::recovery::RecoveryConfig) {
        self.inner.recovery.set(cfg);
    }

    /// The store's current recovery configuration.
    pub fn recovery_config(&self) -> crate::recovery::RecoveryConfig {
        self.inner.recovery.get()
    }

    /// The store's name (what write identifiers refer to).
    pub fn name(&self) -> &str {
        &self.inner.name
    }

    /// The regions this store is replicated across.
    pub fn regions(&self) -> &[Region] {
        &self.inner.regions
    }

    /// The primary region (first configured).
    pub fn primary(&self) -> Region {
        self.inner.regions[0]
    }

    fn check_region(&self, region: Region) -> Result<(), StoreError> {
        if self.inner.replicas.borrow().contains_key(&region) {
            Ok(())
        } else {
            Err(StoreError::NoSuchRegion(region))
        }
    }

    /// Like [`KvStore::check_region`], but also rejects regions inside a
    /// [`antipode_sim::fault::FaultKind::RegionOutage`] or
    /// [`antipode_sim::fault::FaultKind::ReplicaCrash`] window.
    fn check_available(&self, region: Region) -> Result<(), StoreError> {
        self.check_region(region)?;
        let now = self.inner.sim.now();
        if self.inner.faults.region_down(now, region)
            || self
                .inner
                .faults
                .replica_crashed(now, &self.inner.name, region)
        {
            return Err(StoreError::Unavailable {
                store: self.inner.name.clone(),
                region,
            });
        }
        Ok(())
    }

    /// Writes `value` under `key` at the replica in `origin`. Commits locally
    /// (after the profile's commit latency), kicks off asynchronous
    /// replication to every other replica, and returns the assigned version.
    pub async fn put(&self, origin: Region, key: &str, value: Bytes) -> Result<u64, StoreError> {
        self.check_available(origin)?;
        let commit = {
            let mut rng = self.inner.rng.borrow_mut();
            self.inner.profile.local_write.sample_duration(&mut rng)
        };
        self.inner.sim.sleep(commit).await;
        let version = self.inner.next_version.get();
        self.inner.next_version.set(version + 1);
        self.apply(origin, key, version, value.clone());
        // One shared key allocation for the whole replication fan-out (and
        // `Bytes` clones are refcount bumps), so a put's per-destination cost
        // is independent of key and value size.
        let key: Rc<str> = Rc::from(key);
        for &dest in &self.inner.regions {
            if dest != origin {
                self.spawn_replication(origin, dest, Rc::clone(&key), version, value.clone());
            }
        }
        Ok(version)
    }

    fn spawn_replication(
        &self,
        origin: Region,
        dest: Region,
        key: Rc<str>,
        version: u64,
        value: Bytes,
    ) {
        let store = self.clone();
        let origin_epoch = self.replica_epoch(origin);
        self.inner.sim.spawn(async move {
            loop {
                let now = store.inner.sim.now();
                let drop_p = store.inner.faults.replication_drop(now, &store.inner.name);
                let (dropped, backoff, lag) = {
                    let mut rng = store.inner.rng.borrow_mut();
                    let dropped = {
                        use rand::Rng;
                        rng.random::<f64>() < drop_p
                    };
                    let backoff = store.inner.profile.retry_interval.sample_duration(&mut rng);
                    let extra = store.inner.profile.replication.sample_duration(&mut rng);
                    let transit = store
                        .inner
                        .net
                        .delay_faulted(&mut *rng, origin, dest, &store.inner.faults, now)
                        .mul_f64(store.inner.profile.rtt_hops);
                    let congestion = store
                        .inner
                        .faults
                        .replication_extra_lag(&store.inner.name)
                        .map(|d| d.sample_duration(&mut rng))
                        .unwrap_or_default();
                    (dropped, backoff, extra + transit + congestion)
                };
                if dropped {
                    store.inner.sim.sleep(backoff).await;
                    continue;
                }
                store.inner.sim.sleep(lag).await;
                store.finish_replication(origin, origin_epoch, dest, key, version, value);
                return;
            }
        });
    }

    /// Terminal step of one replication send: apply at the destination when
    /// the path is healthy, or queue a hinted-handoff entry at the origin
    /// when a fault suppresses the send (stall, partition, outage, crashed
    /// destination). With handoff disabled the suppressed send is dropped
    /// outright — the ablation that shows the recovery plane is load-bearing.
    fn finish_replication(
        &self,
        origin: Region,
        origin_epoch: u64,
        dest: Region,
        key: Rc<str>,
        version: u64,
        value: Bytes,
    ) {
        if self.replica_epoch(origin) != origin_epoch {
            // The origin replica crash-restarted while this send was in
            // flight: the sending process died with it. The origin copy is in
            // the WAL; remote copies are recovered by anti-entropy repair.
            return;
        }
        let now = self.inner.sim.now();
        let suppressed = self
            .inner
            .faults
            .replication_stalled(now, &self.inner.name, dest)
            || self.inner.faults.link_blocked(now, origin, dest)
            || self
                .inner
                .faults
                .replica_crashed(now, &self.inner.name, dest);
        if !suppressed {
            self.apply(dest, &key, version, value);
        } else if self.inner.recovery.get().hinted_handoff {
            self.inner.hints.borrow_mut().push(crate::recovery::Hint {
                origin,
                dest,
                key,
                version,
                bytes: value,
            });
        }
    }

    /// Applies a version at a replica, waking matured waiters. Out-of-order
    /// (superseded) arrivals still satisfy waiters but do not clobber newer
    /// data. Messages addressed to a crashed replica are dropped (the
    /// process is dead); anti-entropy repair back-fills them after restart.
    pub(crate) fn apply(&self, region: Region, key: &str, version: u64, value: Bytes) {
        if self
            .inner
            .faults
            .replica_crashed(self.inner.sim.now(), &self.inner.name, region)
        {
            return;
        }
        let wal_enabled = self.inner.recovery.get().wal;
        let mut replicas = self.inner.replicas.borrow_mut();
        // Replication only targets configured replicas; treat a miss as a
        // dropped message rather than tearing the run down.
        let Some(state) = replicas.get_mut(&region) else {
            return;
        };
        let newer_exists = state
            .data
            .get(key)
            .map(|v| v.version >= version)
            .unwrap_or(false);
        if !newer_exists {
            let visible_at = self.inner.sim.now();
            state.data.insert(
                key.to_string(),
                StoredValue {
                    version,
                    bytes: value.clone(),
                    visible_at,
                },
            );
            if wal_enabled {
                state.wal.push(crate::recovery::WalEntry {
                    key: key.to_string(),
                    version,
                    bytes: value,
                    visible_at,
                });
            }
        }
        let watermark = state.data.get(key).map(|v| v.version).unwrap_or(version);
        let mut i = 0;
        while i < state.waiters.len() {
            if state.waiters[i].key == key && state.waiters[i].version <= watermark {
                let w = state.waiters.swap_remove(i);
                let _ = w.tx.send(Ok(()));
            } else {
                i += 1;
            }
        }
        drop(replicas);
        if let Some(p) = self.inner.probe.borrow().clone() {
            p(&VisibilityEvent::KvApplied {
                store: self.inner.name.clone(),
                region,
                key: key.to_string(),
                watermark,
                at: self.inner.sim.now(),
            });
        }
    }

    /// The crash epoch of a replica (bumped on every
    /// [`antipode_sim::fault::FaultKind::ReplicaCrash`] entry).
    pub(crate) fn replica_epoch(&self, region: Region) -> u64 {
        self.inner
            .replicas
            .borrow()
            .get(&region)
            .map(|s| s.epoch)
            .unwrap_or(0)
    }

    /// Number of write-ahead-log entries at a replica (diagnostics).
    pub fn wal_len(&self, region: Region) -> usize {
        self.inner
            .replicas
            .borrow()
            .get(&region)
            .map(|s| s.wal.len())
            .unwrap_or(0)
    }

    /// Installs an observation hook invoked at every replica apply; see
    /// [`crate::probe`]. Pass `None` to remove it.
    pub fn set_probe(&self, probe: Option<VisibilityProbe>) {
        *self.inner.probe.borrow_mut() = probe;
    }

    /// Writes like [`KvStore::put`] but *synchronously*: returns only once
    /// every replica has applied the write. This is the §3.3 strawman
    /// ("strengthening the guarantees of post-storage to make its
    /// replication synchronous... introduces undesirable delays") — kept for
    /// the ablation that quantifies exactly that delay. The write is still
    /// applied through the normal replication machinery.
    pub async fn put_sync(
        &self,
        origin: Region,
        key: &str,
        value: Bytes,
    ) -> Result<u64, StoreError> {
        let version = self.put(origin, key, value).await?;
        for &region in &self.inner.regions {
            self.wait_visible(region, key, version).await?;
        }
        Ok(version)
    }

    /// Reads the latest locally visible value (regular, possibly stale read).
    pub async fn get(&self, region: Region, key: &str) -> Result<Option<StoredValue>, StoreError> {
        self.check_available(region)?;
        let lat = {
            let mut rng = self.inner.rng.borrow_mut();
            self.inner.profile.local_read.sample_duration(&mut rng)
        };
        self.inner.sim.sleep(lat).await;
        Ok(self.get_sync(region, key))
    }

    /// Zero-latency read of the local replica, for checks and assertions.
    pub fn get_sync(&self, region: Region, key: &str) -> Option<StoredValue> {
        self.inner
            .replicas
            .borrow()
            .get(&region)?
            .data
            .get(key)
            .cloned()
    }

    /// A strongly consistent read: consults the primary replica, paying a
    /// round trip when the caller is remote. This is how stores like
    /// DynamoDB expose read-after-write (§6.4).
    pub async fn get_strong(
        &self,
        from: Region,
        key: &str,
    ) -> Result<Option<StoredValue>, StoreError> {
        self.check_available(from)?;
        let primary = self.primary();
        self.check_available(primary)?;
        let rtt = {
            let mut rng = self.inner.rng.borrow_mut();
            let go = self.inner.net.delay(&mut *rng, from, primary);
            let back = self.inner.net.delay(&mut *rng, primary, from);
            let read = self.inner.profile.local_read.sample_duration(&mut rng);
            go + back + read
        };
        self.inner.sim.sleep(rtt).await;
        Ok(self.get_sync(primary, key))
    }

    /// Whether `key` has reached at least `version` at `region`.
    pub fn is_visible(&self, region: Region, key: &str, version: u64) -> bool {
        self.get_sync(region, key)
            .map(|v| v.version >= version)
            .unwrap_or(false)
    }

    /// Resolves once `key` reaches at least `version` at `region` — the
    /// store-specific `wait` (paper §6.3), implemented by subscription
    /// rather than polling.
    pub async fn wait_visible(
        &self,
        region: Region,
        key: &str,
        version: u64,
    ) -> Result<(), StoreError> {
        loop {
            // Re-checked every lap: a replica that went dark mid-wait cancels
            // its waiters (see [`crate::recovery`]), and a fresh subscription
            // against a dark replica must not silently park forever.
            self.check_available(region)?;
            let rx = {
                let mut replicas = self.inner.replicas.borrow_mut();
                let state = replicas
                    .get_mut(&region)
                    .ok_or(StoreError::NoSuchRegion(region))?;
                let visible = state
                    .data
                    .get(key)
                    .map(|v| v.version >= version)
                    .unwrap_or(false);
                if visible {
                    return Ok(());
                }
                let (tx, rx) = oneshot();
                state.waiters.push(Waiter {
                    key: key.to_string(),
                    version,
                    tx,
                });
                rx
            };
            match rx.await {
                Ok(Ok(())) => return Ok(()),
                // The replica went dark while we were subscribed: surface
                // the outage so barrier retry policies can re-arm the wait.
                Ok(Err(e)) => return Err(e),
                // A dropped sender (cannot happen today, but harmless)
                // retries.
                Err(_) => continue,
            }
        }
    }

    /// Fault injection: probability each replication send attempt is dropped
    /// (dropped sends retry after the profile's `retry_interval`). Thin
    /// wrapper over the simulation's [`FaultPlan`].
    pub fn set_drop_probability(&self, p: f64) {
        self.inner.faults.set_replication_drop(&self.inner.name, p);
    }

    /// Fault injection: stop applying replication at `region` until
    /// [`KvStore::resume_replication`]. Thin wrapper over the [`FaultPlan`].
    pub fn pause_replication(&self, region: Region) {
        self.inner
            .faults
            .stall_replication(&self.inner.name, region);
    }

    /// Ends a [`KvStore::pause_replication`] stall.
    pub fn resume_replication(&self, region: Region) {
        self.inner
            .faults
            .unstall_replication(&self.inner.name, region);
    }

    /// Congestion injection: adds `lag` to every replication send while set
    /// (pass `None` to clear). Used to model time-correlated congestion
    /// episodes, e.g. MongoDB oplog backlog under WAN stress (§7.3). Thin
    /// wrapper over the [`FaultPlan`].
    pub fn set_extra_replication_lag(&self, lag: Option<Dist>) {
        self.inner.faults.set_replication_lag(&self.inner.name, lag);
    }

    /// Number of pending visibility waiters at a replica (diagnostics).
    pub fn waiter_count(&self, region: Region) -> usize {
        self.inner
            .replicas
            .borrow()
            .get(&region)
            .map(|s| s.waiters.len())
            .unwrap_or(0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antipode_sim::net::regions::{EU, SG, US};

    fn setup(profile: KvProfile) -> (Sim, KvStore) {
        let sim = Sim::new(7);
        let net = Rc::new(Network::global_triangle());
        let store = KvStore::new(&sim, net, "db", &[EU, US, SG], profile);
        (sim, store)
    }

    fn fast_profile() -> KvProfile {
        KvProfile {
            local_write: Dist::constant_ms(1.0),
            local_read: Dist::constant_ms(0.5),
            replication: Dist::constant_ms(100.0),
            rtt_hops: 1.0,
            retry_interval: Dist::constant_ms(50.0),
        }
    }

    #[test]
    fn local_write_is_immediately_visible_at_origin() {
        let (sim, store) = setup(fast_profile());
        let s = store.clone();
        sim.block_on(async move {
            let v = s.put(EU, "k", Bytes::from_static(b"x")).await.unwrap();
            assert_eq!(v, 1);
            let got = s.get(EU, "k").await.unwrap().unwrap();
            assert_eq!(got.bytes, Bytes::from_static(b"x"));
            assert_eq!(got.version, 1);
        });
    }

    #[test]
    fn remote_read_is_stale_until_replication() {
        let (sim, store) = setup(fast_profile());
        let s = store.clone();
        let sim2 = sim.clone();
        sim.block_on(async move {
            s.put(EU, "k", Bytes::from_static(b"x")).await.unwrap();
            // Immediately after commit: US replica does not have it yet.
            assert!(s.get_sync(US, "k").is_none());
            // After replication lag (~100ms + ~45ms transit) it appears.
            sim2.sleep(Duration::from_millis(500)).await;
            assert!(s.get_sync(US, "k").is_some());
        });
    }

    #[test]
    fn versions_are_monotone_across_keys() {
        let (sim, store) = setup(fast_profile());
        let s = store.clone();
        sim.block_on(async move {
            let v1 = s.put(EU, "a", Bytes::new()).await.unwrap();
            let v2 = s.put(EU, "b", Bytes::new()).await.unwrap();
            assert!(v2 > v1);
        });
    }

    #[test]
    fn wait_visible_blocks_until_replicated() {
        let (sim, store) = setup(fast_profile());
        let s = store.clone();
        let elapsed = sim.block_on(async move {
            let start = s.inner.sim.now();
            let v = s.put(EU, "k", Bytes::from_static(b"x")).await.unwrap();
            s.wait_visible(US, "k", v).await.unwrap();
            assert!(s.is_visible(US, "k", v));
            s.inner.sim.now().since(start)
        });
        assert!(elapsed >= Duration::from_millis(100), "waited {elapsed:?}");
    }

    #[test]
    fn wait_on_already_visible_returns_immediately() {
        let (sim, store) = setup(fast_profile());
        let s = store.clone();
        sim.block_on(async move {
            let v = s.put(EU, "k", Bytes::new()).await.unwrap();
            let before = s.inner.sim.now();
            s.wait_visible(EU, "k", v).await.unwrap();
            assert_eq!(s.inner.sim.now(), before);
        });
    }

    #[test]
    fn superseding_write_satisfies_older_waits() {
        let (sim, store) = setup(fast_profile());
        let s = store.clone();
        sim.block_on(async move {
            let v1 = s.put(EU, "k", Bytes::from_static(b"one")).await.unwrap();
            let _v2 = s.put(EU, "k", Bytes::from_static(b"two")).await.unwrap();
            // US will receive both; waiting on v1 must succeed even if v2
            // arrives first (superseded, §5.2).
            s.wait_visible(US, "k", v1).await.unwrap();
            let got = s.get_sync(US, "k").unwrap();
            assert!(got.version >= v1);
        });
    }

    #[test]
    fn out_of_order_replication_does_not_clobber() {
        let (sim, store) = setup(fast_profile());
        // Directly exercise apply: newer version first, then older.
        store.apply(US, "k", 5, Bytes::from_static(b"new"));
        store.apply(US, "k", 3, Bytes::from_static(b"old"));
        let got = store.get_sync(US, "k").unwrap();
        assert_eq!(got.version, 5);
        assert_eq!(got.bytes, Bytes::from_static(b"new"));
        drop(sim);
    }

    #[test]
    fn strong_read_sees_unreplicated_write() {
        // Primary is EU (first region).
        let (sim, store) = setup(KvProfile {
            replication: Dist::Constant(60.0), // very slow async replication
            ..fast_profile()
        });
        let s = store.clone();
        sim.block_on(async move {
            let v = s.put(EU, "k", Bytes::from_static(b"x")).await.unwrap();
            // Local US read misses; strong read from US sees it.
            assert!(s.get(US, "k").await.unwrap().is_none());
            let strong = s.get_strong(US, "k").await.unwrap().unwrap();
            assert_eq!(strong.version, v);
        });
    }

    #[test]
    fn unknown_region_errors() {
        let (sim, store) = setup(fast_profile());
        let s = store.clone();
        sim.block_on(async move {
            let bogus = Region("nowhere");
            assert_eq!(
                s.put(bogus, "k", Bytes::new()).await.unwrap_err(),
                StoreError::NoSuchRegion(bogus)
            );
            assert!(s.get(bogus, "k").await.is_err());
            assert!(s.wait_visible(bogus, "k", 1).await.is_err());
        });
    }

    #[test]
    fn dropped_replication_retries_and_lands() {
        let (sim, store) = setup(fast_profile());
        store.set_drop_probability(0.9); // most attempts dropped, but retried
        let s = store.clone();
        sim.block_on(async move {
            let v = s.put(EU, "k", Bytes::from_static(b"x")).await.unwrap();
            s.wait_visible(US, "k", v).await.unwrap();
        });
        assert!(sim.now().since(SimTime::ZERO) >= Duration::from_millis(100));
    }

    #[test]
    fn paused_replication_stalls_until_resume() {
        let (sim, store) = setup(fast_profile());
        store.pause_replication(US);
        let s = store.clone();
        let s2 = store.clone();
        let sim2 = sim.clone();
        sim.spawn(async move {
            s.put(EU, "k", Bytes::from_static(b"x")).await.unwrap();
        });
        sim.run_for(Duration::from_secs(10));
        assert!(
            store.get_sync(US, "k").is_none(),
            "paused replica must not apply"
        );
        sim.spawn(async move {
            sim2.sleep(Duration::from_secs(1)).await;
            s2.resume_replication(US);
        });
        sim.run_for(Duration::from_secs(5));
        assert!(store.get_sync(US, "k").is_some());
    }

    #[test]
    fn put_sync_returns_only_when_fully_replicated() {
        let (sim, store) = setup(fast_profile());
        let s = store.clone();
        sim.block_on(async move {
            let v = s.put_sync(EU, "k", Bytes::from_static(b"x")).await.unwrap();
            for region in [EU, US, SG] {
                assert!(s.is_visible(region, "k", v), "{region} must be caught up");
            }
        });
        assert!(
            sim.now().since(SimTime::ZERO) >= Duration::from_millis(100),
            "synchronous write must pay the replication delay"
        );
    }

    #[test]
    fn extra_replication_lag_slows_then_clears() {
        let (sim, store) = setup(fast_profile());
        store.set_extra_replication_lag(Some(Dist::Constant(5.0)));
        let s = store.clone();
        let first = sim.block_on({
            let sim = sim.clone();
            async move {
                let start = sim.now();
                let v = s.put(EU, "a", Bytes::new()).await.unwrap();
                s.wait_visible(US, "a", v).await.unwrap();
                sim.now().since(start)
            }
        });
        assert!(first >= Duration::from_secs(5), "congested lag {first:?}");
        store.set_extra_replication_lag(None);
        let s = store.clone();
        let second = sim.block_on({
            let sim = sim.clone();
            async move {
                let start = sim.now();
                let v = s.put(EU, "b", Bytes::new()).await.unwrap();
                s.wait_visible(US, "b", v).await.unwrap();
                sim.now().since(start)
            }
        });
        assert!(second < Duration::from_secs(2), "cleared lag {second:?}");
    }

    #[test]
    fn region_outage_rejects_ops_then_heals() {
        use antipode_sim::fault::FaultKind;
        let (sim, store) = setup(fast_profile());
        sim.faults().schedule(
            SimTime::ZERO,
            SimTime::from_secs(10),
            FaultKind::RegionOutage { region: US },
        );
        let s = store.clone();
        sim.block_on({
            let sim = sim.clone();
            async move {
                // Writes at a healthy region succeed; US operations fail fast.
                let v = s.put(EU, "k", Bytes::from_static(b"x")).await.unwrap();
                assert!(matches!(
                    s.get(US, "k").await.unwrap_err(),
                    StoreError::Unavailable { .. }
                ));
                assert!(matches!(
                    s.wait_visible(US, "k", v).await.unwrap_err(),
                    StoreError::Unavailable { .. }
                ));
                // Replication into the dark region is held at the boundary…
                sim.sleep(Duration::from_secs(5)).await;
                assert!(s.get_sync(US, "k").is_none());
                // …and lands deterministically once the outage heals.
                sim.sleep_until(SimTime::from_secs(10)).await;
                s.wait_visible(US, "k", v).await.unwrap();
                assert!(s.is_visible(US, "k", v));
            }
        });
    }

    #[test]
    fn partition_window_holds_replication() {
        use antipode_sim::fault::FaultKind;
        let (sim, store) = setup(fast_profile());
        sim.faults().schedule(
            SimTime::ZERO,
            SimTime::from_secs(30),
            FaultKind::Partition { a: EU, b: US },
        );
        let s = store.clone();
        sim.block_on(async move {
            let v = s.put(EU, "k", Bytes::new()).await.unwrap();
            // SG is unaffected by the EU↔US partition.
            s.wait_visible(SG, "k", v).await.unwrap();
            assert!(!s.is_visible(US, "k", v));
            // The partitioned destination catches up right at the heal edge.
            s.wait_visible(US, "k", v).await.unwrap();
            assert!(s.inner.sim.now() >= SimTime::from_secs(30));
        });
    }

    #[test]
    fn visible_at_timestamps_order_with_replication() {
        let (sim, store) = setup(fast_profile());
        let s = store.clone();
        sim.block_on(async move {
            let v = s.put(EU, "k", Bytes::new()).await.unwrap();
            s.wait_visible(US, "k", v).await.unwrap();
            let eu = s.get_sync(EU, "k").unwrap().visible_at;
            let us = s.get_sync(US, "k").unwrap().visible_at;
            assert!(us > eu);
        });
    }
}

//! The speculation plane (datastore half): the confinement buffer.
//!
//! A service executing past an open `SpeculationFrontier` must not let its
//! effects become externally visible — a reader elsewhere could otherwise
//! observe state that causally depends on writes that are not visible yet,
//! which is exactly the XCY violation the barrier exists to prevent. The
//! [`ConfinementBuffer`] is a shim-level redo log: [`KvShim`] writes and
//! [`QueueShim`] publishes issued under speculation are *parked* here
//! instead of hitting the stores. On confirmation, [`ConfinementBuffer::commit`]
//! replays the log in order through the real shims — each replayed operation
//! goes through the engine's usual WAL append at the origin replica plus the
//! replication fan-out, so a committed speculative write is
//! indistinguishable from a non-speculative one. On violation,
//! [`ConfinementBuffer::discard`] drops the log: nothing was ever admitted
//! to a store, so there is nothing to undo and nothing a reader could have
//! leaked.

use std::fmt;

use antipode_lineage::{Lineage, WriteId};
use antipode_sim::Region;
use bytes::Bytes;

use crate::shim::{KvShim, QueueShim, ShimError};

/// One parked operation in a [`ConfinementBuffer`].
#[derive(Clone)]
pub enum ConfinedOp {
    /// A parked [`KvShim::write`].
    KvWrite {
        /// The shim the write will replay through on commit.
        shim: KvShim,
        /// Origin region of the write.
        region: Region,
        /// Key to write.
        key: String,
        /// Value to write.
        value: Bytes,
    },
    /// A parked [`QueueShim::publish`].
    QueuePublish {
        /// The shim the publish will replay through on commit.
        shim: QueueShim,
        /// Origin region of the publish.
        region: Region,
        /// Message payload.
        payload: Bytes,
    },
}

impl fmt::Debug for ConfinedOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ConfinedOp::KvWrite {
                shim, region, key, ..
            } => f
                .debug_struct("KvWrite")
                .field("store", &shim.store().name())
                .field("region", region)
                .field("key", key)
                .finish(),
            ConfinedOp::QueuePublish { shim, region, .. } => f
                .debug_struct("QueuePublish")
                .field("store", &shim.store().name())
                .field("region", region)
                .finish(),
        }
    }
}

impl ConfinedOp {
    /// The datastore this operation targets.
    pub fn datastore(&self) -> &str {
        match self {
            ConfinedOp::KvWrite { shim, .. } => shim.store().name(),
            ConfinedOp::QueuePublish { shim, .. } => shim.store().name(),
        }
    }
}

/// Lifecycle of a [`ConfinementBuffer`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default)]
pub enum BufferState {
    /// Accepting parked operations; nothing externally visible yet.
    #[default]
    Open,
    /// The speculation confirmed and every parked operation replayed.
    Committed,
    /// The speculation violated and every parked operation was dropped.
    Discarded,
}

/// A redo log of side effects issued under an open speculation frontier.
///
/// The buffer is deliberately *not* transparent: services opt in by routing
/// writes through [`ConfinementBuffer::confine_write`] /
/// [`ConfinementBuffer::confine_publish`] while speculating (the
/// `antipode-lint` X2 rule flags shim writes reachable from an open frontier
/// that bypass it). Terminal transitions are idempotent: committing or
/// discarding an already-resolved buffer is a no-op.
#[derive(Debug, Default)]
pub struct ConfinementBuffer {
    ops: Vec<ConfinedOp>,
    state: BufferState,
    high_water: usize,
}

impl ConfinementBuffer {
    /// An empty, open buffer.
    pub fn new() -> Self {
        ConfinementBuffer::default()
    }

    /// Parks a [`KvShim::write`]: recorded, not admitted to the store. The
    /// write allocates no version and appends nothing to the lineage until
    /// commit.
    pub fn confine_write(
        &mut self,
        shim: &KvShim,
        region: Region,
        key: impl Into<String>,
        value: Bytes,
    ) {
        self.park(ConfinedOp::KvWrite {
            shim: shim.clone(),
            region,
            key: key.into(),
            value,
        });
    }

    /// Parks a [`QueueShim::publish`]: no message is delivered to any
    /// subscriber until commit.
    pub fn confine_publish(&mut self, shim: &QueueShim, region: Region, payload: Bytes) {
        self.park(ConfinedOp::QueuePublish {
            shim: shim.clone(),
            region,
            payload,
        });
    }

    fn park(&mut self, op: ConfinedOp) {
        if self.state != BufferState::Open {
            // A resolved speculation accepts no further effects; dropping
            // the op here (rather than panicking) keeps violation paths
            // simple — by then the handler is being redelivered anyway.
            return;
        }
        self.ops.push(op);
        self.high_water = self.high_water.max(self.ops.len());
    }

    /// Parked operations not yet committed or discarded.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether nothing is parked.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// The most operations the buffer ever held at once — the confinement
    /// memory the speculation cost, reported by the bench harness.
    pub fn high_water(&self) -> usize {
        self.high_water
    }

    /// Current lifecycle state.
    pub fn state(&self) -> BufferState {
        self.state
    }

    /// The parked operations, in issue order.
    pub fn ops(&self) -> &[ConfinedOp] {
        &self.ops
    }

    /// Commits the redo log: replays every parked operation *in issue
    /// order* through its real shim. Each replay takes the engine's normal
    /// write path — WAL append at the origin replica, then replication
    /// fan-out — and appends its fresh [`WriteId`] to `lineage`, so later
    /// parked writes causally include earlier ones and downstream barriers
    /// see the committed effects exactly like eager writes.
    ///
    /// Returns the identifiers in replay order. On a store error the
    /// remaining operations stay parked and the buffer remains open, so the
    /// caller can retry the commit once the store recovers; operations
    /// already replayed are not re-issued.
    pub async fn commit(&mut self, lineage: &mut Lineage) -> Result<Vec<WriteId>, ShimError> {
        if self.state != BufferState::Open {
            return Ok(Vec::new());
        }
        let mut committed = Vec::with_capacity(self.ops.len());
        while let Some(op) = self.ops.first().cloned() {
            let wid = match &op {
                ConfinedOp::KvWrite {
                    shim,
                    region,
                    key,
                    value,
                } => shim.write(*region, key, value.clone(), lineage).await?,
                ConfinedOp::QueuePublish {
                    shim,
                    region,
                    payload,
                } => shim.publish(*region, payload.clone(), lineage).await?,
            };
            self.ops.remove(0);
            committed.push(wid);
        }
        self.state = BufferState::Committed;
        Ok(committed)
    }

    /// Discards the redo log after a violation: every parked operation is
    /// dropped without ever having touched a store. Returns how many were
    /// dropped. Nothing leaks — no version was allocated, no WAL entry
    /// written, no subscriber delivered to.
    pub fn discard(&mut self) -> usize {
        if self.state != BufferState::Open {
            return 0;
        }
        let dropped = self.ops.len();
        self.ops.clear();
        self.state = BufferState::Discarded;
        dropped
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::queue::QueueStore;
    use crate::replica::{KvProfile, KvStore};
    use antipode_lineage::LineageId;
    use antipode_sim::net::regions::{EU, US};
    use antipode_sim::{Network, Sim};
    use std::rc::Rc;

    fn setup() -> (Sim, KvShim, QueueShim) {
        let sim = Sim::new(11);
        let net = Rc::new(Network::global_triangle());
        let kv = KvStore::new(&sim, net.clone(), "feed", &[EU, US], KvProfile::default());
        let q = QueueStore::new(&sim, net, "fanout", &[EU, US], Default::default());
        (sim, KvShim::new(kv), QueueShim::new(q))
    }

    #[test]
    fn parked_effects_are_invisible_everywhere() {
        let (sim, kv, q) = setup();
        let kv2 = kv.clone();
        sim.block_on(async move {
            let mut sub = q.subscribe(US).unwrap();
            let mut buf = ConfinementBuffer::new();
            buf.confine_write(&kv, EU, "feed-1", Bytes::from_static(b"post"));
            buf.confine_publish(&q, EU, Bytes::from_static(b"notif"));
            assert_eq!(buf.len(), 2);
            // Nothing reached any store: no key in any region, no delivery.
            assert!(kv.read(EU, "feed-1").await.unwrap().is_none());
            assert!(kv.read(US, "feed-1").await.unwrap().is_none());
            assert!(sub.try_recv().unwrap().is_none());
        });
        sim.run();
        let sim2 = sim.clone();
        sim2.block_on(async move {
            assert!(kv2.read(US, "feed-1").await.unwrap().is_none());
        });
    }

    #[test]
    fn commit_replays_in_order_through_the_engine_pipeline() {
        let (sim, kv, q) = setup();
        sim.block_on(async move {
            let mut sub = q.subscribe(US).unwrap();
            let mut buf = ConfinementBuffer::new();
            buf.confine_write(&kv, EU, "feed-1", Bytes::from_static(b"post"));
            buf.confine_publish(&q, EU, Bytes::from_static(b"notif"));
            let mut lineage = Lineage::new(LineageId(9));
            let ids = buf.commit(&mut lineage).await.unwrap();
            assert_eq!(ids.len(), 2);
            assert_eq!(buf.state(), BufferState::Committed);
            assert!(buf.is_empty());
            assert_eq!(buf.high_water(), 2);
            // Replay order: the write's id precedes the publish's, and both
            // landed in the lineage (later ops causally include earlier).
            assert_eq!(&*ids[0].datastore(), "feed");
            assert_eq!(&*ids[1].datastore(), "fanout");
            assert!(lineage.contains(&ids[0]));
            assert!(lineage.contains(&ids[1]));
            // The committed write went through the engine's WAL append:
            // it is durably readable at the origin…
            let (data, stored) = kv.read(EU, "feed-1").await.unwrap().unwrap();
            assert_eq!(data, Bytes::from_static(b"post"));
            // …and the lineage stored alongside carries the prior deps
            // (the feed write serialized before the publish appended).
            assert_eq!(stored.unwrap().id(), LineageId(9));
            assert!(kv.store().wal_len(EU) > 0, "commit appended to the WAL");
            // Fan-out delivered the publish to the US subscriber.
            let msg = sub.recv().await.unwrap().unwrap();
            assert_eq!(msg.payload, Bytes::from_static(b"notif"));
        });
    }

    #[test]
    fn discard_drops_everything_and_terminal_states_are_idempotent() {
        let (sim, kv, q) = setup();
        sim.block_on(async move {
            let mut buf = ConfinementBuffer::new();
            buf.confine_write(&kv, EU, "feed-1", Bytes::from_static(b"post"));
            buf.confine_publish(&q, EU, Bytes::from_static(b"notif"));
            assert_eq!(buf.discard(), 2);
            assert_eq!(buf.state(), BufferState::Discarded);
            // Idempotent terminals: discard again, commit after discard.
            assert_eq!(buf.discard(), 0);
            let mut lineage = Lineage::new(LineageId(1));
            assert!(buf.commit(&mut lineage).await.unwrap().is_empty());
            assert!(lineage.is_empty(), "nothing replays after a discard");
            // Parking after resolution is ignored.
            buf.confine_write(&kv, EU, "late", Bytes::new());
            assert!(buf.is_empty());
            assert_eq!(buf.high_water(), 2, "high water survives the discard");
            // And the stores never saw anything.
            assert!(kv.read(EU, "feed-1").await.unwrap().is_none());
            assert_eq!(kv.store().wal_len(EU), 0, "no WAL entry was written");
        });
    }

    #[test]
    fn commit_after_commit_is_a_no_op() {
        let (sim, kv, _q) = setup();
        sim.block_on(async move {
            let mut buf = ConfinementBuffer::new();
            buf.confine_write(&kv, EU, "k", Bytes::from_static(b"v"));
            let mut lineage = Lineage::new(LineageId(2));
            let first = buf.commit(&mut lineage).await.unwrap();
            assert_eq!(first.len(), 1);
            let again = buf.commit(&mut lineage).await.unwrap();
            assert!(again.is_empty(), "a committed buffer replays nothing");
            assert_eq!(lineage.len(), 1, "no duplicate write ids");
        });
    }
}

//! Simulated MySQL (Aurora-style global database) and its Antipode shim.
//!
//! Rows live in tables addressed by `(table, id)`; versioning models the
//! `rowversion`-style column of §6.1. Cross-region replication follows the
//! [`crate::profiles::mysql`] profile (propagation "within 1 second", §7.4).

use antipode_lineage::{Lineage, WriteId};
use antipode_sim::Region;
use bytes::Bytes;

use crate::facade::kv_facade;
use crate::replica::{StoreError, StoredValue};
use crate::shim::ShimError;

/// Extra storage amplification per row from the lineage column **and its
/// index** — the paper attributes MySQL's +14 kB (Table 3) to "more complex
/// data structures surrounding the new column and index created for lineage
/// identifiers".
pub const INDEX_OVERHEAD_BYTES: usize = 13_900;

kv_facade! {
    /// A simulated geo-replicated MySQL instance.
    store MySql(profile: crate::profiles::mysql);
    /// The Antipode shim for [`MySql`] — the paper's per-store shim layer
    /// (< 50 LoC of real logic; the generic plumbing lives in
    /// [`crate::shim::KvShim`]).
    shim MySqlShim;
}

impl MySql {
    fn key(table: &str, id: &str) -> String {
        format!("{table}/{id}")
    }

    /// INSERT/UPDATE a row (baseline path, no lineage).
    pub async fn insert(
        &self,
        region: Region,
        table: &str,
        id: &str,
        row: Bytes,
    ) -> Result<u64, StoreError> {
        self.store.put(region, &Self::key(table, id), row).await
    }

    /// SELECT a row by primary key from the local replica.
    pub async fn select(
        &self,
        region: Region,
        table: &str,
        id: &str,
    ) -> Result<Option<StoredValue>, StoreError> {
        self.store.get(region, &Self::key(table, id)).await
    }
}

impl MySqlShim {
    /// Lineage-propagating INSERT.
    pub async fn insert(
        &self,
        region: Region,
        table: &str,
        id: &str,
        row: Bytes,
        lineage: &mut Lineage,
    ) -> Result<WriteId, ShimError> {
        self.inner
            .write(region, &MySql::key(table, id), row, lineage)
            .await
    }

    /// Lineage-recovering SELECT.
    #[allow(clippy::type_complexity)]
    pub async fn select(
        &self,
        region: Region,
        table: &str,
        id: &str,
    ) -> Result<Option<(Bytes, Option<Lineage>)>, ShimError> {
        self.inner.read(region, &MySql::key(table, id)).await
    }

    /// Average per-object storage increase for this store (Table 3 model):
    /// the envelope plus the lineage-id column's index structures.
    pub fn storage_overhead(&self, lineage: &Lineage) -> usize {
        self.inner.envelope_overhead(lineage) + INDEX_OVERHEAD_BYTES
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antipode::wait::WaitTarget;
    use antipode_lineage::LineageId;
    use antipode_sim::net::regions::{EU, US};
    use antipode_sim::net::Network;
    use antipode_sim::Sim;
    use std::rc::Rc;

    fn setup() -> (Sim, MySql) {
        let sim = Sim::new(11);
        let net = Rc::new(Network::global_triangle());
        let db = MySql::new(&sim, net, "posts-mysql", &[EU, US]);
        (sim, db)
    }

    #[test]
    fn insert_select_round_trip() {
        let (sim, db) = setup();
        sim.block_on(async move {
            db.insert(EU, "posts", "1", Bytes::from_static(b"content"))
                .await
                .unwrap();
            let row = db.select(EU, "posts", "1").await.unwrap().unwrap();
            assert_eq!(row.bytes, Bytes::from_static(b"content"));
        });
    }

    #[test]
    fn tables_are_disjoint_keyspaces() {
        let (sim, db) = setup();
        sim.block_on(async move {
            db.insert(EU, "posts", "1", Bytes::from_static(b"p"))
                .await
                .unwrap();
            assert!(db.select(EU, "users", "1").await.unwrap().is_none());
        });
    }

    #[test]
    fn shim_wait_until_replicated() {
        let (sim, db) = setup();
        let shim = MySqlShim::new(&db);
        sim.block_on(async move {
            let mut lin = Lineage::new(LineageId(1));
            let wid = shim
                .insert(EU, "posts", "1", Bytes::from_static(b"c"), &mut lin)
                .await
                .unwrap();
            shim.wait(&wid, US).await.unwrap();
            let (data, _) = shim.select(US, "posts", "1").await.unwrap().unwrap();
            assert_eq!(data, Bytes::from_static(b"c"));
        });
    }

    #[test]
    fn storage_overhead_includes_index() {
        let (_sim, db) = setup();
        let shim = MySqlShim::new(&db);
        let mut lin = Lineage::new(LineageId(1));
        lin.append(WriteId::new("posts-mysql", "posts/1", 1));
        let oh = shim.storage_overhead(&lin);
        // Table 3: ≈ +14 kB for MySQL.
        assert!((13_000..16_000).contains(&oh), "overhead {oh}");
    }
}

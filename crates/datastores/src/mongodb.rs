//! Simulated MongoDB (replica set with oplog replication) and its shim.
//!
//! DeathStarBench's post-storage. Replication is fast on healthy links but
//! degrades badly under WAN latency (§7.3 attributes the US→SG 34 %
//! violation rate to network conditions interacting with MongoDB's
//! replication protocol); use [`crate::profiles::mongodb_wan_stressed`] for
//! that deployment.

use antipode_lineage::{Lineage, WriteId};
use antipode_sim::Region;
use bytes::Bytes;

use crate::facade::kv_facade;
use crate::replica::{StoreError, StoredValue};
use crate::shim::ShimError;

kv_facade! {
    /// A simulated MongoDB deployment (one replica per region).
    store MongoDb(profile: crate::profiles::mongodb);
    /// The Antipode shim for [`MongoDb`].
    shim MongoDbShim;
}

impl MongoDb {
    fn key(collection: &str, id: &str) -> String {
        format!("{collection}/{id}")
    }

    /// insertOne/replaceOne (baseline path, no lineage).
    pub async fn insert_one(
        &self,
        region: Region,
        collection: &str,
        id: &str,
        doc: Bytes,
    ) -> Result<u64, StoreError> {
        self.store
            .put(region, &Self::key(collection, id), doc)
            .await
    }

    /// findOne by id against the local replica.
    pub async fn find_one(
        &self,
        region: Region,
        collection: &str,
        id: &str,
    ) -> Result<Option<StoredValue>, StoreError> {
        self.store.get(region, &Self::key(collection, id)).await
    }
}

impl MongoDbShim {
    /// Lineage-propagating insertOne.
    pub async fn insert_one(
        &self,
        region: Region,
        collection: &str,
        id: &str,
        doc: Bytes,
        lineage: &mut Lineage,
    ) -> Result<WriteId, ShimError> {
        self.inner
            .write(region, &MongoDb::key(collection, id), doc, lineage)
            .await
    }

    /// Lineage-recovering findOne.
    #[allow(clippy::type_complexity)]
    pub async fn find_one(
        &self,
        region: Region,
        collection: &str,
        id: &str,
    ) -> Result<Option<(Bytes, Option<Lineage>)>, ShimError> {
        self.inner.read(region, &MongoDb::key(collection, id)).await
    }

    /// Table 3 model: the lineage is one extra BSON field (+46 B total).
    pub fn storage_overhead(&self, lineage: &Lineage) -> usize {
        self.inner.envelope_overhead(lineage)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiles;
    use crate::replica::KvProfile;
    use antipode::wait::WaitTarget;
    use antipode_lineage::LineageId;
    use antipode_sim::net::regions::{EU, SG, US};
    use antipode_sim::net::Network;
    use antipode_sim::{Samples, Sim};
    use std::rc::Rc;

    #[test]
    fn insert_find_round_trip() {
        let sim = Sim::new(41);
        let net = Rc::new(Network::global_triangle());
        let db = MongoDb::new(&sim, net, "post-storage", &[US, EU]);
        sim.block_on(async move {
            db.insert_one(US, "posts", "1", Bytes::from_static(b"doc"))
                .await
                .unwrap();
            let got = db.find_one(US, "posts", "1").await.unwrap().unwrap();
            assert_eq!(got.bytes, Bytes::from_static(b"doc"));
        });
    }

    #[test]
    fn stressed_profile_has_much_longer_tail() {
        // Replication-lag distributions, healthy vs stressed, measured
        // end-to-end through the store.
        fn lags(profile: KvProfile, dest: Region, seed: u64) -> Samples {
            let sim = Sim::new(seed);
            let net = Rc::new(Network::global_triangle());
            let db = MongoDb::with_profile(&sim, net, "m", &[US, dest], profile);
            let shim = MongoDbShim::new(&db);
            let mut out = Samples::new();
            for i in 0..200 {
                let shim = shim.clone();
                let sim2 = sim.clone();
                let lag = sim.block_on(async move {
                    let mut lin = Lineage::new(LineageId(i));
                    let wid = shim
                        .insert_one(US, "c", &format!("{i}"), Bytes::new(), &mut lin)
                        .await
                        .unwrap();
                    let start = sim2.now();
                    shim.wait(&wid, dest).await.unwrap();
                    sim2.now().since(start)
                });
                out.record_duration(lag);
            }
            out
        }
        let healthy = lags(profiles::mongodb(), EU, 1).summary().unwrap();
        let stressed = lags(profiles::mongodb_wan_stressed(), SG, 2)
            .summary()
            .unwrap();
        assert!(
            stressed.p99 > 4.0 * healthy.p99,
            "stressed {stressed} vs {healthy}"
        );
    }

    #[test]
    fn shim_overhead_is_tiny() {
        let sim = Sim::new(42);
        let net = Rc::new(Network::global_triangle());
        let db = MongoDb::new(&sim, net, "m", &[US]);
        let shim = MongoDbShim::new(&db);
        let mut lin = Lineage::new(LineageId(1));
        lin.append(WriteId::new("m", "posts/1", 1));
        // Table 3: ≈ +46 B.
        let oh = shim.storage_overhead(&lin);
        assert!(oh < 80, "overhead {oh}");
    }
}

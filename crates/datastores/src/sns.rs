//! Simulated SNS (pub/sub fanout) and its Antipode shim.
//!
//! The fastest notifier in Table 1: delivery in 100s of milliseconds, which
//! is why nearly every post-storage store loses the replication race against
//! it (the 88–100 % row).

use std::rc::Rc;

use antipode::wait::{LocalBoxFuture, WaitError, WaitTarget};
use antipode_lineage::{Lineage, WriteId};
use antipode_sim::net::Network;
use antipode_sim::{Region, Sim};
use bytes::Bytes;

use crate::profiles;
use crate::queue::{QueueProfile, QueueStore};
use crate::replica::StoreError;
use crate::shim::{QueueShim, ShimError, ShimSubscription};

/// A simulated SNS topic with cross-region subscriptions.
#[derive(Clone)]
pub struct Sns {
    queue: QueueStore,
}

impl Sns {
    /// Creates a topic with the calibrated SNS profile.
    pub fn new(sim: &Sim, net: Rc<Network>, name: impl Into<String>, regions: &[Region]) -> Self {
        Self::with_profile(sim, net, name, regions, profiles::sns())
    }

    /// Creates a topic with a custom profile.
    pub fn with_profile(
        sim: &Sim,
        net: Rc<Network>,
        name: impl Into<String>,
        regions: &[Region],
        profile: QueueProfile,
    ) -> Self {
        Sns {
            queue: QueueStore::new(sim, net, name, regions, profile),
        }
    }

    /// Publish (baseline path, no lineage).
    pub async fn publish(&self, region: Region, payload: Bytes) -> Result<u64, StoreError> {
        self.queue.publish(region, payload).await
    }

    /// Subscribe in a region.
    pub fn subscribe(
        &self,
        region: Region,
    ) -> Result<antipode_sim::sync::Receiver<crate::queue::QueueMessage>, StoreError> {
        self.queue.subscribe(region)
    }

    /// The underlying queue store.
    pub fn queue(&self) -> &QueueStore {
        &self.queue
    }
}

/// The Antipode shim for [`Sns`]. Table 3 model: the lineage is one message
/// attribute (+32 B total on a 120 B notification).
#[derive(Clone)]
pub struct SnsShim {
    inner: QueueShim,
}

impl SnsShim {
    /// Wraps a topic.
    pub fn new(sns: &Sns) -> Self {
        SnsShim {
            inner: QueueShim::new(sns.queue.clone()),
        }
    }

    /// Lineage-propagating publish.
    pub async fn publish(
        &self,
        region: Region,
        payload: Bytes,
        lineage: &mut Lineage,
    ) -> Result<WriteId, ShimError> {
        self.inner.publish(region, payload, lineage).await
    }

    /// Lineage-decoding subscription.
    pub fn subscribe(&self, region: Region) -> Result<ShimSubscription, ShimError> {
        self.inner.subscribe(region)
    }
}

impl WaitTarget for SnsShim {
    fn datastore_name(&self) -> &str {
        self.inner.datastore_name()
    }
    fn wait<'a>(
        &'a self,
        write: &'a WriteId,
        region: Region,
    ) -> LocalBoxFuture<'a, Result<(), WaitError>> {
        self.inner.wait(write, region)
    }
    fn is_visible(&self, write: &WriteId, region: Region) -> bool {
        self.inner.is_visible(write, region)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antipode_lineage::LineageId;
    use antipode_sim::net::regions::{EU, US};
    use std::time::Duration;

    #[test]
    fn fast_cross_region_delivery_with_lineage() {
        let sim = Sim::new(51);
        let net = Rc::new(Network::global_triangle());
        let sns = Sns::new(&sim, net, "notifier", &[EU, US]);
        let shim = SnsShim::new(&sns);
        let (elapsed, lineage_ok) = sim.block_on({
            let sim = sim.clone();
            async move {
                let mut sub = shim.subscribe(US).unwrap();
                let mut lin = Lineage::new(LineageId(1));
                lin.append(WriteId::new("posts", "post-1", 7));
                let start = sim.now();
                shim.publish(EU, Bytes::from_static(b"n"), &mut lin)
                    .await
                    .unwrap();
                let msg = sub.recv().await.unwrap().unwrap();
                let carried = msg.lineage.unwrap();
                (
                    sim.now().since(start),
                    carried.contains(&WriteId::new("posts", "post-1", 7)),
                )
            }
        });
        assert!(lineage_ok);
        assert!(elapsed < Duration::from_secs(2), "SNS delivery {elapsed:?}");
    }
}

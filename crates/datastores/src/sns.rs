//! Simulated SNS (pub/sub fanout) and its Antipode shim.
//!
//! The fastest notifier in Table 1: delivery in 100s of milliseconds, which
//! is why nearly every post-storage store loses the replication race against
//! it (the 88–100 % row).

use antipode_lineage::{Lineage, WriteId};
use antipode_sim::Region;
use bytes::Bytes;

use crate::facade::queue_facade;
use crate::replica::StoreError;
use crate::shim::{ShimError, ShimSubscription};

queue_facade! {
    /// A simulated SNS topic with cross-region subscriptions.
    store Sns(profile: crate::profiles::sns);
    /// The Antipode shim for [`Sns`]. Table 3 model: the lineage is one
    /// message attribute (+32 B total on a 120 B notification).
    shim SnsShim;
}

impl Sns {
    /// Publish (baseline path, no lineage).
    pub async fn publish(&self, region: Region, payload: Bytes) -> Result<u64, StoreError> {
        self.queue.publish(region, payload).await
    }

    /// Subscribe in a region.
    pub fn subscribe(
        &self,
        region: Region,
    ) -> Result<antipode_sim::sync::Receiver<crate::queue::QueueMessage>, StoreError> {
        self.queue.subscribe(region)
    }
}

impl SnsShim {
    /// Lineage-propagating publish.
    pub async fn publish(
        &self,
        region: Region,
        payload: Bytes,
        lineage: &mut Lineage,
    ) -> Result<WriteId, ShimError> {
        self.inner.publish(region, payload, lineage).await
    }

    /// Lineage-decoding subscription.
    pub fn subscribe(&self, region: Region) -> Result<ShimSubscription, ShimError> {
        self.inner.subscribe(region)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antipode_lineage::LineageId;
    use antipode_sim::net::regions::{EU, US};
    use antipode_sim::net::Network;
    use antipode_sim::Sim;
    use std::rc::Rc;
    use std::time::Duration;

    #[test]
    fn fast_cross_region_delivery_with_lineage() {
        let sim = Sim::new(51);
        let net = Rc::new(Network::global_triangle());
        let sns = Sns::new(&sim, net, "notifier", &[EU, US]);
        let shim = SnsShim::new(&sns);
        let (elapsed, lineage_ok) = sim.block_on({
            let sim = sim.clone();
            async move {
                let mut sub = shim.subscribe(US).unwrap();
                let mut lin = Lineage::new(LineageId(1));
                lin.append(WriteId::new("posts", "post-1", 7));
                let start = sim.now();
                shim.publish(EU, Bytes::from_static(b"n"), &mut lin)
                    .await
                    .unwrap();
                let msg = sub.recv().await.unwrap().unwrap();
                let carried = msg.lineage.unwrap();
                (
                    sim.now().since(start),
                    carried.contains(&WriteId::new("posts", "post-1", 7)),
                )
            }
        });
        assert!(lineage_ok);
        assert!(elapsed < Duration::from_secs(2), "SNS delivery {elapsed:?}");
    }
}

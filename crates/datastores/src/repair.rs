//! Anti-entropy repair: the background convergence mechanism of the
//! recovery plane.
//!
//! Hinted handoff ([`crate::recovery`]) repairs the *common* failure — a
//! suppressed send parks at its origin and flushes at the heal edge. But a
//! hint is volatile state: when the origin replica crash-restarts, its queued
//! hints die with the process, and nothing retries those sends. Anti-entropy
//! closes exactly that gap (plus any other divergence, e.g. the no-handoff
//! ablation) by periodically diffing replica version maps and back-filling
//! stale replicas from whichever live replica holds the newest version —
//! Dynamo-style read-repair run as a sweep.
//!
//! Like the rest of the recovery plane, the sweep is generic over the
//! engine's [`Substrate`], so queue brokers converge under chaos exactly
//! like KV stores; a back-filled queue delivery notifies subscribers and
//! consumer groups like a first-time delivery (the substrate's apply
//! reaction runs).
//!
//! The repair plane also closes the storage-integrity loop (see
//! [`crate::wal`]): the **scrub sweep** re-verifies every live replica's WAL
//! checksums on a cadence, truncating torn tails in place and quarantining
//! replicas whose logs hide mid-log corruption
//! ([`crate::engine::ReplicaHealth::Tainted`]). Anti-entropy then treats
//! quarantined replicas as back-fill *destinations only* — never as repair
//! sources — and, once a tainted replica's data covers everything its
//! healthy peers hold, **rejoins** it: health flips back, the epoch bumps
//! (so anything the dead durability promised is visibly a new incarnation),
//! and the WAL is re-framed from the healed memtable.
//!
//! The sweep is deterministic: replicas and keys are walked in `BTreeMap`
//! order, gossip transit is sampled from the store's seeded RNG stream, and
//! the periodic loop *self-terminates* once the store has converged, no
//! hints are queued, and the fault plan schedules no further transitions —
//! so `sim.run()` still quiesces with anti-entropy enabled.

use std::collections::BTreeSet;
use std::rc::Rc;
use std::time::Duration;

use antipode_sim::{Region, SimTime};
use bytes::Bytes;

use crate::engine::{Engine, ReplicaHealth};
use crate::recovery::WalEntry;
use crate::stats;
use crate::substrate::{StoreError, Substrate};
use crate::wal::WalFaultKind;

/// Knobs for the periodic anti-entropy loop.
#[derive(Clone, Copy, Debug)]
pub struct RepairConfig {
    /// Virtual time between sweeps.
    pub period: Duration,
    /// Hard stop: no sweep runs at or after this instant. Safety valve for
    /// plans that can never converge (e.g. a permanent imperative stall,
    /// which schedules no heal edge the loop could wait for).
    pub horizon: Option<SimTime>,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            period: Duration::from_secs(5),
            horizon: None,
        }
    }
}

/// What one repair sweep did (see [`crate::replica::KvStore::repair_sweep`]
/// and [`crate::queue::QueueStore::repair_sweep`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Distinct keys examined across live replicas.
    pub examined: usize,
    /// Stale (replica, key) pairs brought up to the newest live version.
    pub backfilled: usize,
    /// Quarantined replicas that covered the healthy union after this sweep
    /// and rejoined with a bumped epoch.
    pub rejoined: usize,
}

/// What one scrub sweep found (see
/// [`crate::replica::KvStore::scrub_sweep`]): a re-verification of every
/// live replica's WAL checksums against latent disk damage.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// WAL records whose checksums re-verified clean.
    pub verified: usize,
    /// Torn tail frames truncated in place (bounded loss, replica stays
    /// healthy — the memtable still holds the live copy).
    pub torn_tails: usize,
    /// Replicas newly quarantined for mid-log checksum mismatches.
    pub quarantined: usize,
}

impl<S: Substrate> Engine<S> {
    /// Whether every replica holds an identical key→version map. Crashed or
    /// dark replicas are compared as-is (a mid-crash replica is empty, so a
    /// store is never "converged" inside a crash window — by design).
    pub(crate) fn converged(&self) -> bool {
        let replicas = self.inner.replicas.borrow();
        let mut iter = replicas.values();
        let Some(first) = iter.next() else {
            return true;
        };
        let reference: Vec<(&Rc<str>, u64)> =
            first.data.iter().map(|(k, v)| (k, v.version)).collect();
        iter.all(|state| {
            state.data.len() == reference.len()
                && state
                    .data
                    .iter()
                    .zip(reference.iter())
                    .all(|((k, v), (rk, rv))| k == *rk && v.version == *rv)
        })
    }

    /// One anti-entropy round: diff the version maps of live replicas, pick
    /// the newest copy of every key, and back-fill each stale live replica
    /// whose path from the source is healthy. Pays one sampled gossip
    /// transit (the max over the repair paths used) before applying, and
    /// re-checks every path at apply time — a window edge may have moved
    /// while the messages were in flight.
    ///
    /// Quarantined replicas ([`ReplicaHealth::Tainted`]) are back-fill
    /// *destinations only*: their data never seeds the union (nothing a
    /// corrupt log rehydrated may propagate). Once a tainted replica covers
    /// the healthy union, the sweep rejoins it — see [`RepairReport::rejoined`].
    pub(crate) async fn repair_sweep(&self) -> RepairReport {
        let now = self.sim().now();
        let name = self.name().to_string();
        let live: Vec<Region> = self
            .regions()
            .iter()
            .copied()
            .filter(|&r| !self.substrate().op_blocked(self.faults(), now, &name, r))
            .collect();
        let healthy: Vec<Region> = live
            .iter()
            .copied()
            .filter(|&r| self.replica_health(r) == ReplicaHealth::Healthy)
            .collect();
        // key → (newest version, bytes, commit time, source replica), in
        // BTreeMap order. Keys and values are shared `Rc`/`Bytes` handles,
        // so snapshotting the union is refcount bumps, not copies.
        let mut union: Vec<(Rc<str>, u64, Bytes, SimTime, Region)> = Vec::new();
        {
            let replicas = self.inner.replicas.borrow();
            let mut newest: std::collections::BTreeMap<&Rc<str>, (u64, &Bytes, SimTime, Region)> =
                std::collections::BTreeMap::new();
            for &r in &healthy {
                let Some(state) = replicas.get(&r) else {
                    continue;
                };
                for (k, v) in &state.data {
                    let stale = newest.get(k).map(|(ver, _, _, _)| *ver < v.version);
                    if stale.unwrap_or(true) {
                        newest.insert(k, (v.version, &v.bytes, v.committed_at, r));
                    }
                }
            }
            for (k, (ver, bytes, committed_at, src)) in newest {
                union.push((Rc::clone(k), ver, bytes.clone(), committed_at, src));
            }
        }
        let examined = union.len();
        // Plan the back-fills against the snapshot. A pair whose path the
        // substrate reports suppressed (stall, pause, partition, outage) is
        // skipped this round; the next sweep retries it.
        let mut plan: Vec<(Region, Region, Rc<str>, u64, Bytes, SimTime)> = Vec::new();
        for &dest in &live {
            for (key, ver, bytes, committed_at, src) in &union {
                if dest == *src
                    || self
                        .substrate()
                        .send_suppressed(self.faults(), now, &name, *src, dest)
                {
                    continue;
                }
                let dest_ver = self.record(dest, key).map(|v| v.version).unwrap_or(0);
                if dest_ver < *ver {
                    plan.push((
                        *src,
                        dest,
                        Rc::clone(key),
                        *ver,
                        bytes.clone(),
                        *committed_at,
                    ));
                }
            }
        }
        if plan.is_empty() {
            let rejoined = self.try_rejoin(&union);
            return RepairReport {
                examined,
                backfilled: 0,
                rejoined,
            };
        }
        // One gossip round: the sweep completes when the slowest repair path
        // delivers. Paths are sampled in sorted order for determinism.
        let pairs: BTreeSet<(Region, Region)> =
            plan.iter().map(|(src, dest, ..)| (*src, *dest)).collect();
        let transit = {
            let mut rng = self.rng().borrow_mut();
            pairs
                .iter()
                .map(|&(src, dest)| {
                    self.net()
                        .delay_faulted(&mut *rng, src, dest, self.faults(), now)
                })
                .max()
                .unwrap_or_default()
        };
        self.sim().sleep(transit).await;
        let arrive = self.sim().now();
        let mut backfilled = 0usize;
        for (src, dest, key, ver, bytes, committed_at) in plan {
            // Re-check at delivery: a fault window may have opened (message
            // lost) and a concurrent apply may have superseded the repair.
            if self
                .substrate()
                .send_suppressed(self.faults(), arrive, &name, src, dest)
                || self.faults().replica_crashed(arrive, &name, dest)
            {
                continue;
            }
            if !self.is_visible(dest, &key, ver) {
                self.apply(dest, &key, ver, bytes, committed_at);
                backfilled += 1;
            }
        }
        let rejoined = self.try_rejoin(&union);
        RepairReport {
            examined,
            backfilled,
            rejoined,
        }
    }

    /// Rejoins every quarantined replica whose memtable now covers the
    /// healthy union snapshot: health flips back, the crash epoch bumps (the
    /// old incarnation's durability promises are dead — in-flight work keyed
    /// to them must not resume silently), and the WAL is re-framed from the
    /// healed memtable so the replica's durable truth is clean again.
    fn try_rejoin(&self, union: &[(Rc<str>, u64, Bytes, SimTime, Region)]) -> usize {
        let mut rejoined = 0usize;
        let mut replicas = self.inner.replicas.borrow_mut();
        for state in replicas.values_mut() {
            if state.health != ReplicaHealth::Tainted {
                continue;
            }
            let covered = union.iter().all(|(key, ver, ..)| {
                state
                    .data
                    .get(key)
                    .map(|r| r.version >= *ver)
                    .unwrap_or(false)
            });
            if !covered {
                continue;
            }
            state.epoch += 1;
            let entries: Vec<WalEntry> = state
                .data
                .iter()
                .map(|(k, r)| WalEntry {
                    key: Rc::clone(k),
                    version: r.version,
                    bytes: r.bytes.clone(),
                    visible_at: r.visible_at,
                    committed_at: r.committed_at,
                })
                .collect();
            state.wal.rebuild(entries.iter());
            state.rebuild_wal_index(entries.iter());
            state.health = ReplicaHealth::Healthy;
            rejoined += 1;
        }
        rejoined
    }

    /// One scrub round: re-verify every live replica's WAL checksums,
    /// truncating torn tails in place (the memtable still holds the live
    /// copy — no quarantine for a bounded, known loss) and quarantining
    /// replicas whose logs hide mid-log corruption. Crashed replicas are
    /// skipped: the process is dead, and restart replay verifies their logs
    /// at the heal edge anyway. Synchronous — scrubbing reads local disk,
    /// not the network.
    pub(crate) fn scrub_sweep(&self) -> ScrubReport {
        let now = self.sim().now();
        let name = self.name().to_string();
        let verify = self.inner.recovery.get().verify_checksums;
        let mut report = ScrubReport::default();
        let newly_tainted: Vec<Region> = {
            let mut replicas = self.inner.replicas.borrow_mut();
            let mut newly_tainted = Vec::new();
            for (&region, state) in replicas.iter_mut() {
                if self.inner.faults.replica_crashed(now, &name, region) {
                    continue;
                }
                let scan = state.wal.scan(verify);
                report.verified += scan.entries.len();
                stats::count_scrub_records(scan.entries.len() as u64);
                match scan.fault.map(|f| f.kind) {
                    None => {}
                    Some(WalFaultKind::TornFrame) => {
                        state.wal.truncate_to(&scan);
                        state.rebuild_wal_index(scan.entries.iter());
                        report.torn_tails += 1;
                    }
                    Some(WalFaultKind::ChecksumMismatch) => {
                        state.wal.truncate_to(&scan);
                        state.rebuild_wal_index(scan.entries.iter());
                        if state.health != ReplicaHealth::Tainted {
                            newly_tainted.push(region);
                        }
                        state.health = ReplicaHealth::Tainted;
                        report.quarantined += 1;
                    }
                }
            }
            newly_tainted
        };
        // Waiters parked at a replica that just entered quarantine surface
        // the integrity fault (KV) or silently resubscribe (queues) — the
        // same hygiene dark-replica edges get.
        for region in newly_tainted {
            let cancelled = {
                let mut replicas = self.inner.replicas.borrow_mut();
                match replicas.get_mut(&region) {
                    Some(state) => std::mem::take(&mut state.waiters),
                    None => continue,
                }
            };
            for w in cancelled {
                let _ = w.tx.send(Err(StoreError::IntegrityFault {
                    store: self.inner.name.clone(),
                    region,
                }));
            }
        }
        report
    }

    /// Whether every replica is [`ReplicaHealth::Healthy`]. The periodic
    /// loops refuse to self-terminate while any replica sits in quarantine —
    /// a tainted replica at quiescence would mean the plane detected damage
    /// and then abandoned the repair.
    pub(crate) fn all_healthy(&self) -> bool {
        self.inner
            .replicas
            .borrow()
            .values()
            .all(|state| state.health == ReplicaHealth::Healthy)
    }

    /// Starts the periodic scrub loop. When a sweep quarantines a replica —
    /// or any replica is still tainted from an earlier restart replay — the
    /// loop immediately runs a repair sweep rather than waiting out the
    /// anti-entropy cadence: scrub *detects*, and detection without repair
    /// would strand the quarantine if the anti-entropy loop already
    /// self-terminated. The loop itself self-terminates once a sweep finds
    /// no new damage, every replica is healthy, and the fault plan schedules
    /// no further transitions (no window left that could inject more) — so
    /// enabling scrub never prevents the simulation from quiescing.
    pub(crate) fn enable_scrub(&self, cfg: RepairConfig) {
        let engine = self.clone();
        self.sim().clone().spawn(async move {
            loop {
                engine.sim().sleep(cfg.period).await;
                if cfg.horizon.is_some_and(|h| engine.sim().now() >= h) {
                    break;
                }
                let report = engine.scrub_sweep();
                if report.quarantined > 0 || !engine.all_healthy() {
                    engine.repair_sweep().await;
                }
                if report.torn_tails == 0
                    && report.quarantined == 0
                    && engine.all_healthy()
                    && engine
                        .faults()
                        .next_transition_after(engine.sim().now())
                        .is_none()
                {
                    break;
                }
            }
        });
    }

    /// Whether every replica holds byte-identical data: same keys, same
    /// versions, same stored bytes. Strictly stronger than
    /// [`Engine::converged`] — the integrity property tests use it to show
    /// post-storm convergence is not just version agreement but value
    /// agreement.
    pub(crate) fn converged_bytes(&self) -> bool {
        let replicas = self.inner.replicas.borrow();
        let mut iter = replicas.values();
        let Some(first) = iter.next() else {
            return true;
        };
        iter.all(|state| {
            state.data.len() == first.data.len()
                && state
                    .data
                    .iter()
                    .zip(first.data.iter())
                    .all(|((k, v), (rk, rv))| {
                        k == rk && v.version == rv.version && v.bytes == rv.bytes
                    })
        })
    }

    /// Starts the periodic anti-entropy loop. The loop self-terminates when
    /// the store has converged, no hints are queued, and the fault plan has
    /// no scheduled transitions left — so enabling repair never prevents the
    /// simulation from quiescing. `cfg.horizon` bounds pathological plans
    /// that can never converge.
    pub(crate) fn enable_anti_entropy(&self, cfg: RepairConfig) {
        let engine = self.clone();
        self.sim().clone().spawn(async move {
            loop {
                engine.sim().sleep(cfg.period).await;
                let now = engine.sim().now();
                if cfg.horizon.is_some_and(|h| now >= h) {
                    break;
                }
                engine.repair_sweep().await;
                let after = engine.sim().now();
                if engine.converged()
                    && engine.all_healthy()
                    && engine.pending_hints() == 0
                    && engine.faults().next_transition_after(after).is_none()
                {
                    break;
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antipode_sim::dist::Dist;
    use antipode_sim::fault::FaultKind;
    use antipode_sim::net::regions::{EU, SG, US};
    use antipode_sim::net::Network;
    use antipode_sim::Sim;
    use std::rc::Rc;

    use crate::queue::{QueueProfile, QueueStore};
    use crate::recovery::RecoveryConfig;
    use crate::replica::{KvProfile, KvStore};

    fn fast_profile() -> KvProfile {
        KvProfile {
            local_write: Dist::constant_ms(1.0),
            local_read: Dist::constant_ms(0.5),
            replication: Dist::constant_ms(100.0),
            rtt_hops: 1.0,
            retry_interval: Dist::constant_ms(50.0),
        }
    }

    fn setup(seed: u64) -> (Sim, KvStore) {
        let sim = Sim::new(seed);
        let net = Rc::new(Network::global_triangle());
        let store = KvStore::new(&sim, net, "db", &[EU, US, SG], fast_profile());
        (sim, store)
    }

    #[test]
    fn converged_after_normal_replication() {
        let (sim, store) = setup(21);
        let s = store.clone();
        sim.block_on(async move {
            let v = s.put(EU, "k", Bytes::from_static(b"x")).await.unwrap();
            s.wait_visible(US, "k", v).await.unwrap();
            s.wait_visible(SG, "k", v).await.unwrap();
        });
        assert!(store.converged());
        assert_eq!(store.pending_hints(), 0);
    }

    #[test]
    fn single_sweep_backfills_dropped_sends() {
        let (sim, store) = setup(22);
        // No handoff: the partitioned EU→US send is dropped outright…
        store.set_recovery(RecoveryConfig {
            hinted_handoff: false,
            ..RecoveryConfig::default()
        });
        sim.faults().schedule(
            SimTime::ZERO,
            SimTime::from_secs(5),
            FaultKind::Partition { a: EU, b: US },
        );
        let s = store.clone();
        sim.block_on({
            let sim = sim.clone();
            async move {
                let v = s.put(EU, "k", Bytes::from_static(b"x")).await.unwrap();
                s.wait_visible(SG, "k", v).await.unwrap();
                sim.sleep_until(SimTime::from_secs(10)).await;
                assert!(!s.is_visible(US, "k", v), "dropped send never retried");
                // …until one repair sweep diffs the replicas and back-fills.
                let report = s.repair_sweep().await;
                assert_eq!(report.examined, 1);
                assert_eq!(report.backfilled, 1);
                assert!(s.is_visible(US, "k", v));
            }
        });
        assert!(store.converged());
    }

    #[test]
    fn sweep_skips_blocked_paths_and_crashed_replicas() {
        let (sim, store) = setup(23);
        store.set_recovery(RecoveryConfig::disabled());
        sim.faults().schedule(
            SimTime::ZERO,
            SimTime::from_secs(100),
            FaultKind::Partition { a: EU, b: US },
        );
        sim.faults().schedule(
            SimTime::ZERO,
            SimTime::from_secs(100),
            FaultKind::Partition { a: SG, b: US },
        );
        let s = store.clone();
        sim.block_on(async move {
            let v = s.put(EU, "k", Bytes::from_static(b"x")).await.unwrap();
            s.wait_visible(SG, "k", v).await.unwrap();
            // Every path into US is partitioned: the sweep must not repair
            // through a blocked link.
            let report = s.repair_sweep().await;
            assert_eq!(report.backfilled, 0);
            assert!(!s.is_visible(US, "k", v));
        });
    }

    #[test]
    fn anti_entropy_recovers_hints_lost_to_origin_crash() {
        let (sim, store) = setup(24);
        // EU↔US and SG↔US both partitioned, so the only copy of the write's
        // pending send to US is the hint queued at EU…
        sim.faults().schedule(
            SimTime::ZERO,
            SimTime::from_secs(30),
            FaultKind::Partition { a: EU, b: US },
        );
        sim.faults().schedule(
            SimTime::ZERO,
            SimTime::from_secs(30),
            FaultKind::Partition { a: SG, b: US },
        );
        // …and the EU crash at [5s, 10s) destroys that hint.
        sim.faults().schedule(
            SimTime::from_secs(5),
            SimTime::from_secs(10),
            FaultKind::ReplicaCrash {
                store: "db".into(),
                region: EU,
            },
        );
        store.enable_anti_entropy(RepairConfig {
            period: Duration::from_secs(2),
            horizon: None,
        });
        let s = store.clone();
        sim.spawn(async move {
            let v = s.put(EU, "k", Bytes::from_static(b"x")).await.unwrap();
            s.wait_visible(SG, "k", v).await.unwrap();
        });
        // The loop self-terminates once converged, so run() quiesces.
        sim.run();
        assert_eq!(store.pending_hints(), 0, "crash destroyed the hint");
        assert!(
            store.is_visible(US, "k", 1),
            "anti-entropy back-filled the write handoff lost"
        );
        assert!(store.is_visible(EU, "k", 1), "WAL replay restored EU");
        assert!(store.converged());
    }

    async fn seed_three_keys(s: &KvStore) {
        for (k, v) in [
            ("k1", &b"value-one"[..]),
            ("k2", &b"value-two"[..]),
            ("k3", &b"value-three"[..]),
        ] {
            let ver = s.put(EU, k, Bytes::copy_from_slice(v)).await.unwrap();
            s.wait_visible(US, k, ver).await.unwrap();
            s.wait_visible(SG, k, ver).await.unwrap();
        }
    }

    #[test]
    fn bitflip_quarantines_at_restart_and_anti_entropy_rejoins() {
        use crate::engine::ReplicaHealth;
        use antipode_sim::fault::DiskFaultKind;

        let (sim, store) = setup(27);
        let s = store.clone();
        sim.block_on(async move { seed_three_keys(&s).await });
        assert_eq!(store.wal_len(US), 3);
        // Bit rot strikes the US log at 4s; the crash-restart at [5s, 8s)
        // forces replay to read the damaged bytes.
        sim.faults().schedule(
            SimTime::from_secs(4),
            SimTime::from_secs(5),
            FaultKind::DiskFault {
                store: "db".into(),
                region: US,
                fault: DiskFaultKind::BitFlip { offset_seed: 3 },
            },
        );
        sim.faults().schedule(
            SimTime::from_secs(5),
            SimTime::from_secs(8),
            FaultKind::ReplicaCrash {
                store: "db".into(),
                region: US,
            },
        );
        sim.run_until(SimTime::from_secs(9));
        assert_eq!(store.replica_health(US), ReplicaHealth::Tainted);
        let epoch_before = store.engine.replica_epoch(US);
        let s = store.clone();
        let report = sim.block_on(async move {
            // Quarantined reads refuse rather than serve unbounded loss.
            assert!(matches!(
                s.get(US, "k1").await.unwrap_err(),
                StoreError::IntegrityFault { .. }
            ));
            assert!(matches!(
                s.put(US, "kx", Bytes::new()).await.unwrap_err(),
                StoreError::IntegrityFault { .. }
            ));
            s.repair_sweep().await
        });
        assert_eq!(report.rejoined, 1, "back-fill covered the union: rejoin");
        assert_eq!(store.replica_health(US), ReplicaHealth::Healthy);
        assert!(
            store.engine.replica_epoch(US) > epoch_before,
            "rejoin is a new incarnation"
        );
        assert!(store.converged_bytes());
        assert_eq!(
            store.wal_len(US),
            3,
            "the WAL was re-framed from the healed memtable"
        );
        let s = store.clone();
        sim.block_on(async move {
            let got = s.get(US, "k1").await.unwrap().unwrap();
            assert_eq!(got.bytes, Bytes::from_static(b"value-one"));
        });
    }

    #[test]
    fn scrub_detects_latent_bitrot_before_any_crash() {
        use crate::engine::ReplicaHealth;
        use antipode_sim::fault::DiskFaultKind;

        let (sim, store) = setup(28);
        let s = store.clone();
        sim.block_on(async move { seed_three_keys(&s).await });
        sim.faults().schedule(
            SimTime::from_secs(4),
            SimTime::from_secs(5),
            FaultKind::DiskFault {
                store: "db".into(),
                region: SG,
                fault: DiskFaultKind::BitFlip { offset_seed: 3 },
            },
        );
        sim.run_until(SimTime::from_secs(6));
        // The damage is latent: nothing re-read the log yet.
        assert_eq!(store.replica_health(SG), ReplicaHealth::Healthy);
        let scrub = store.scrub_sweep();
        assert_eq!(scrub.quarantined, 1, "scrub finds the rot");
        assert_eq!(store.replica_health(SG), ReplicaHealth::Tainted);
        // The memtable never crashed, so it already covers the healthy
        // union: one sweep rejoins without back-filling anything.
        let s = store.clone();
        let report = sim.block_on(async move { s.repair_sweep().await });
        assert_eq!(report.backfilled, 0);
        assert_eq!(report.rejoined, 1);
        assert_eq!(store.replica_health(SG), ReplicaHealth::Healthy);
        assert!(store.converged_bytes());
        // The rebuilt log re-verifies clean end to end (3 records at each
        // of the three replicas).
        let clean = store.scrub_sweep();
        assert_eq!(clean.verified, 9);
        assert_eq!(clean.torn_tails, 0);
        assert_eq!(clean.quarantined, 0);
    }

    #[test]
    fn scrub_loop_self_terminates_and_heals_with_anti_entropy() {
        use crate::engine::ReplicaHealth;
        use antipode_sim::fault::DiskFaultKind;

        let (sim, store) = setup(29);
        store.enable_scrub(RepairConfig {
            period: Duration::from_secs(3),
            horizon: None,
        });
        store.enable_anti_entropy(RepairConfig {
            period: Duration::from_secs(4),
            horizon: None,
        });
        sim.faults().schedule(
            SimTime::from_secs(6),
            SimTime::from_secs(7),
            FaultKind::DiskFault {
                store: "db".into(),
                region: US,
                fault: DiskFaultKind::BitFlip { offset_seed: 5 },
            },
        );
        let s = store.clone();
        sim.spawn(async move { seed_three_keys(&s).await });
        // Both loops self-terminate, so run() quiesces — and by then the
        // scrub has detected, anti-entropy has healed, and the store is
        // byte-identical everywhere.
        sim.run();
        assert_eq!(store.replica_health(US), ReplicaHealth::Healthy);
        assert!(store.converged_bytes());
        let clean = store.scrub_sweep();
        assert_eq!(clean.torn_tails + clean.quarantined, 0);
    }

    #[test]
    fn horizon_stops_a_plan_that_cannot_converge() {
        let (sim, store) = setup(25);
        store.set_recovery(RecoveryConfig::disabled());
        // Imperative stall: no scheduled heal edge exists, so without the
        // horizon the loop would sweep forever and run() would never return.
        store.pause_replication(US);
        store.enable_anti_entropy(RepairConfig {
            period: Duration::from_secs(1),
            horizon: Some(SimTime::from_secs(20)),
        });
        let s = store.clone();
        sim.spawn(async move {
            s.put(EU, "k", Bytes::from_static(b"x")).await.unwrap();
        });
        sim.run();
        assert!(sim.now() <= SimTime::from_secs(21));
        assert!(!store.is_visible(US, "k", 1), "stalled replica stays stale");
    }

    #[test]
    fn queue_sweep_backfills_and_notifies_consumers() {
        // Queue-family parity: a delivery lost to the no-handoff ablation is
        // back-filled by one sweep, and the back-fill notifies subscribers.
        let sim = Sim::new(26);
        let net = Rc::new(Network::global_triangle());
        let q = QueueStore::new(
            &sim,
            net,
            "amq",
            &[EU, US],
            QueueProfile {
                local_publish: Dist::constant_ms(1.0),
                delivery: Dist::constant_ms(80.0),
                local_delivery: Dist::constant_ms(2.0),
                rtt_hops: 1.0,
            },
        );
        q.set_recovery(RecoveryConfig {
            hinted_handoff: false,
            ..RecoveryConfig::default()
        });
        sim.faults().schedule(
            SimTime::ZERO,
            SimTime::from_secs(5),
            FaultKind::Partition { a: EU, b: US },
        );
        let q2 = q.clone();
        sim.block_on({
            let sim = sim.clone();
            async move {
                let mut sub = q2.subscribe(US).unwrap();
                let id = q2.publish(EU, Bytes::from_static(b"m")).await.unwrap();
                q2.wait_visible(EU, id).await.unwrap();
                sim.sleep_until(SimTime::from_secs(10)).await;
                assert!(!q2.is_visible(US, id), "dropped delivery never retried");
                let report = q2.repair_sweep().await;
                assert_eq!(report.backfilled, 1);
                assert!(q2.is_visible(US, id));
                // The back-fill fanned out to the subscriber like a normal
                // delivery.
                let got = sub.recv().await.unwrap();
                assert_eq!(got.id, id);
                assert_eq!(got.payload, Bytes::from_static(b"m"));
            }
        });
        assert!(q.converged());
    }
}

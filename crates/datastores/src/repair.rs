//! Anti-entropy repair: the background convergence mechanism of the
//! recovery plane.
//!
//! Hinted handoff ([`crate::recovery`]) repairs the *common* failure — a
//! suppressed send parks at its origin and flushes at the heal edge. But a
//! hint is volatile state: when the origin replica crash-restarts, its queued
//! hints die with the process, and nothing retries those sends. Anti-entropy
//! closes exactly that gap (plus any other divergence, e.g. the no-handoff
//! ablation) by periodically diffing replica version maps and back-filling
//! stale replicas from whichever live replica holds the newest version —
//! Dynamo-style read-repair run as a sweep.
//!
//! Like the rest of the recovery plane, the sweep is generic over the
//! engine's [`Substrate`], so queue brokers converge under chaos exactly
//! like KV stores; a back-filled queue delivery notifies subscribers and
//! consumer groups like a first-time delivery (the substrate's apply
//! reaction runs).
//!
//! The sweep is deterministic: replicas and keys are walked in `BTreeMap`
//! order, gossip transit is sampled from the store's seeded RNG stream, and
//! the periodic loop *self-terminates* once the store has converged, no
//! hints are queued, and the fault plan schedules no further transitions —
//! so `sim.run()` still quiesces with anti-entropy enabled.

use std::collections::BTreeSet;
use std::rc::Rc;
use std::time::Duration;

use antipode_sim::{Region, SimTime};
use bytes::Bytes;

use crate::engine::Engine;
use crate::substrate::Substrate;

/// Knobs for the periodic anti-entropy loop.
#[derive(Clone, Copy, Debug)]
pub struct RepairConfig {
    /// Virtual time between sweeps.
    pub period: Duration,
    /// Hard stop: no sweep runs at or after this instant. Safety valve for
    /// plans that can never converge (e.g. a permanent imperative stall,
    /// which schedules no heal edge the loop could wait for).
    pub horizon: Option<SimTime>,
}

impl Default for RepairConfig {
    fn default() -> Self {
        RepairConfig {
            period: Duration::from_secs(5),
            horizon: None,
        }
    }
}

/// What one repair sweep did (see [`crate::replica::KvStore::repair_sweep`]
/// and [`crate::queue::QueueStore::repair_sweep`]).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RepairReport {
    /// Distinct keys examined across live replicas.
    pub examined: usize,
    /// Stale (replica, key) pairs brought up to the newest live version.
    pub backfilled: usize,
}

impl<S: Substrate> Engine<S> {
    /// Whether every replica holds an identical key→version map. Crashed or
    /// dark replicas are compared as-is (a mid-crash replica is empty, so a
    /// store is never "converged" inside a crash window — by design).
    pub(crate) fn converged(&self) -> bool {
        let replicas = self.inner.replicas.borrow();
        let mut iter = replicas.values();
        let Some(first) = iter.next() else {
            return true;
        };
        let reference: Vec<(&Rc<str>, u64)> =
            first.data.iter().map(|(k, v)| (k, v.version)).collect();
        iter.all(|state| {
            state.data.len() == reference.len()
                && state
                    .data
                    .iter()
                    .zip(reference.iter())
                    .all(|((k, v), (rk, rv))| k == *rk && v.version == *rv)
        })
    }

    /// One anti-entropy round: diff the version maps of live replicas, pick
    /// the newest copy of every key, and back-fill each stale live replica
    /// whose path from the source is healthy. Pays one sampled gossip
    /// transit (the max over the repair paths used) before applying, and
    /// re-checks every path at apply time — a window edge may have moved
    /// while the messages were in flight.
    pub(crate) async fn repair_sweep(&self) -> RepairReport {
        let now = self.sim().now();
        let name = self.name().to_string();
        let live: Vec<Region> = self
            .regions()
            .iter()
            .copied()
            .filter(|&r| !self.substrate().op_blocked(self.faults(), now, &name, r))
            .collect();
        // key → (newest version, bytes, commit time, source replica), in
        // BTreeMap order. Keys and values are shared `Rc`/`Bytes` handles,
        // so snapshotting the union is refcount bumps, not copies.
        let mut union: Vec<(Rc<str>, u64, Bytes, SimTime, Region)> = Vec::new();
        {
            let replicas = self.inner.replicas.borrow();
            let mut newest: std::collections::BTreeMap<&Rc<str>, (u64, &Bytes, SimTime, Region)> =
                std::collections::BTreeMap::new();
            for &r in &live {
                let Some(state) = replicas.get(&r) else {
                    continue;
                };
                for (k, v) in &state.data {
                    let stale = newest.get(k).map(|(ver, _, _, _)| *ver < v.version);
                    if stale.unwrap_or(true) {
                        newest.insert(k, (v.version, &v.bytes, v.committed_at, r));
                    }
                }
            }
            for (k, (ver, bytes, committed_at, src)) in newest {
                union.push((Rc::clone(k), ver, bytes.clone(), committed_at, src));
            }
        }
        let examined = union.len();
        // Plan the back-fills against the snapshot. A pair whose path the
        // substrate reports suppressed (stall, pause, partition, outage) is
        // skipped this round; the next sweep retries it.
        let mut plan: Vec<(Region, Region, Rc<str>, u64, Bytes, SimTime)> = Vec::new();
        for &dest in &live {
            for (key, ver, bytes, committed_at, src) in &union {
                if dest == *src
                    || self
                        .substrate()
                        .send_suppressed(self.faults(), now, &name, *src, dest)
                {
                    continue;
                }
                let dest_ver = self.record(dest, key).map(|v| v.version).unwrap_or(0);
                if dest_ver < *ver {
                    plan.push((
                        *src,
                        dest,
                        Rc::clone(key),
                        *ver,
                        bytes.clone(),
                        *committed_at,
                    ));
                }
            }
        }
        if plan.is_empty() {
            return RepairReport {
                examined,
                backfilled: 0,
            };
        }
        // One gossip round: the sweep completes when the slowest repair path
        // delivers. Paths are sampled in sorted order for determinism.
        let pairs: BTreeSet<(Region, Region)> =
            plan.iter().map(|(src, dest, ..)| (*src, *dest)).collect();
        let transit = {
            let mut rng = self.rng().borrow_mut();
            pairs
                .iter()
                .map(|&(src, dest)| {
                    self.net()
                        .delay_faulted(&mut *rng, src, dest, self.faults(), now)
                })
                .max()
                .unwrap_or_default()
        };
        self.sim().sleep(transit).await;
        let arrive = self.sim().now();
        let mut backfilled = 0usize;
        for (src, dest, key, ver, bytes, committed_at) in plan {
            // Re-check at delivery: a fault window may have opened (message
            // lost) and a concurrent apply may have superseded the repair.
            if self
                .substrate()
                .send_suppressed(self.faults(), arrive, &name, src, dest)
                || self.faults().replica_crashed(arrive, &name, dest)
            {
                continue;
            }
            if !self.is_visible(dest, &key, ver) {
                self.apply(dest, &key, ver, bytes, committed_at);
                backfilled += 1;
            }
        }
        RepairReport {
            examined,
            backfilled,
        }
    }

    /// Starts the periodic anti-entropy loop. The loop self-terminates when
    /// the store has converged, no hints are queued, and the fault plan has
    /// no scheduled transitions left — so enabling repair never prevents the
    /// simulation from quiescing. `cfg.horizon` bounds pathological plans
    /// that can never converge.
    pub(crate) fn enable_anti_entropy(&self, cfg: RepairConfig) {
        let engine = self.clone();
        self.sim().clone().spawn(async move {
            loop {
                engine.sim().sleep(cfg.period).await;
                let now = engine.sim().now();
                if cfg.horizon.is_some_and(|h| now >= h) {
                    break;
                }
                engine.repair_sweep().await;
                let after = engine.sim().now();
                if engine.converged()
                    && engine.pending_hints() == 0
                    && engine.faults().next_transition_after(after).is_none()
                {
                    break;
                }
            }
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antipode_sim::dist::Dist;
    use antipode_sim::fault::FaultKind;
    use antipode_sim::net::regions::{EU, SG, US};
    use antipode_sim::net::Network;
    use antipode_sim::Sim;
    use std::rc::Rc;

    use crate::queue::{QueueProfile, QueueStore};
    use crate::recovery::RecoveryConfig;
    use crate::replica::{KvProfile, KvStore};

    fn fast_profile() -> KvProfile {
        KvProfile {
            local_write: Dist::constant_ms(1.0),
            local_read: Dist::constant_ms(0.5),
            replication: Dist::constant_ms(100.0),
            rtt_hops: 1.0,
            retry_interval: Dist::constant_ms(50.0),
        }
    }

    fn setup(seed: u64) -> (Sim, KvStore) {
        let sim = Sim::new(seed);
        let net = Rc::new(Network::global_triangle());
        let store = KvStore::new(&sim, net, "db", &[EU, US, SG], fast_profile());
        (sim, store)
    }

    #[test]
    fn converged_after_normal_replication() {
        let (sim, store) = setup(21);
        let s = store.clone();
        sim.block_on(async move {
            let v = s.put(EU, "k", Bytes::from_static(b"x")).await.unwrap();
            s.wait_visible(US, "k", v).await.unwrap();
            s.wait_visible(SG, "k", v).await.unwrap();
        });
        assert!(store.converged());
        assert_eq!(store.pending_hints(), 0);
    }

    #[test]
    fn single_sweep_backfills_dropped_sends() {
        let (sim, store) = setup(22);
        // No handoff: the partitioned EU→US send is dropped outright…
        store.set_recovery(RecoveryConfig {
            hinted_handoff: false,
            ..RecoveryConfig::default()
        });
        sim.faults().schedule(
            SimTime::ZERO,
            SimTime::from_secs(5),
            FaultKind::Partition { a: EU, b: US },
        );
        let s = store.clone();
        sim.block_on({
            let sim = sim.clone();
            async move {
                let v = s.put(EU, "k", Bytes::from_static(b"x")).await.unwrap();
                s.wait_visible(SG, "k", v).await.unwrap();
                sim.sleep_until(SimTime::from_secs(10)).await;
                assert!(!s.is_visible(US, "k", v), "dropped send never retried");
                // …until one repair sweep diffs the replicas and back-fills.
                let report = s.repair_sweep().await;
                assert_eq!(report.examined, 1);
                assert_eq!(report.backfilled, 1);
                assert!(s.is_visible(US, "k", v));
            }
        });
        assert!(store.converged());
    }

    #[test]
    fn sweep_skips_blocked_paths_and_crashed_replicas() {
        let (sim, store) = setup(23);
        store.set_recovery(RecoveryConfig::disabled());
        sim.faults().schedule(
            SimTime::ZERO,
            SimTime::from_secs(100),
            FaultKind::Partition { a: EU, b: US },
        );
        sim.faults().schedule(
            SimTime::ZERO,
            SimTime::from_secs(100),
            FaultKind::Partition { a: SG, b: US },
        );
        let s = store.clone();
        sim.block_on(async move {
            let v = s.put(EU, "k", Bytes::from_static(b"x")).await.unwrap();
            s.wait_visible(SG, "k", v).await.unwrap();
            // Every path into US is partitioned: the sweep must not repair
            // through a blocked link.
            let report = s.repair_sweep().await;
            assert_eq!(report.backfilled, 0);
            assert!(!s.is_visible(US, "k", v));
        });
    }

    #[test]
    fn anti_entropy_recovers_hints_lost_to_origin_crash() {
        let (sim, store) = setup(24);
        // EU↔US and SG↔US both partitioned, so the only copy of the write's
        // pending send to US is the hint queued at EU…
        sim.faults().schedule(
            SimTime::ZERO,
            SimTime::from_secs(30),
            FaultKind::Partition { a: EU, b: US },
        );
        sim.faults().schedule(
            SimTime::ZERO,
            SimTime::from_secs(30),
            FaultKind::Partition { a: SG, b: US },
        );
        // …and the EU crash at [5s, 10s) destroys that hint.
        sim.faults().schedule(
            SimTime::from_secs(5),
            SimTime::from_secs(10),
            FaultKind::ReplicaCrash {
                store: "db".into(),
                region: EU,
            },
        );
        store.enable_anti_entropy(RepairConfig {
            period: Duration::from_secs(2),
            horizon: None,
        });
        let s = store.clone();
        sim.spawn(async move {
            let v = s.put(EU, "k", Bytes::from_static(b"x")).await.unwrap();
            s.wait_visible(SG, "k", v).await.unwrap();
        });
        // The loop self-terminates once converged, so run() quiesces.
        sim.run();
        assert_eq!(store.pending_hints(), 0, "crash destroyed the hint");
        assert!(
            store.is_visible(US, "k", 1),
            "anti-entropy back-filled the write handoff lost"
        );
        assert!(store.is_visible(EU, "k", 1), "WAL replay restored EU");
        assert!(store.converged());
    }

    #[test]
    fn horizon_stops_a_plan_that_cannot_converge() {
        let (sim, store) = setup(25);
        store.set_recovery(RecoveryConfig::disabled());
        // Imperative stall: no scheduled heal edge exists, so without the
        // horizon the loop would sweep forever and run() would never return.
        store.pause_replication(US);
        store.enable_anti_entropy(RepairConfig {
            period: Duration::from_secs(1),
            horizon: Some(SimTime::from_secs(20)),
        });
        let s = store.clone();
        sim.spawn(async move {
            s.put(EU, "k", Bytes::from_static(b"x")).await.unwrap();
        });
        sim.run();
        assert!(sim.now() <= SimTime::from_secs(21));
        assert!(!store.is_visible(US, "k", 1), "stalled replica stays stale");
    }

    #[test]
    fn queue_sweep_backfills_and_notifies_consumers() {
        // Queue-family parity: a delivery lost to the no-handoff ablation is
        // back-filled by one sweep, and the back-fill notifies subscribers.
        let sim = Sim::new(26);
        let net = Rc::new(Network::global_triangle());
        let q = QueueStore::new(
            &sim,
            net,
            "amq",
            &[EU, US],
            QueueProfile {
                local_publish: Dist::constant_ms(1.0),
                delivery: Dist::constant_ms(80.0),
                local_delivery: Dist::constant_ms(2.0),
                rtt_hops: 1.0,
            },
        );
        q.set_recovery(RecoveryConfig {
            hinted_handoff: false,
            ..RecoveryConfig::default()
        });
        sim.faults().schedule(
            SimTime::ZERO,
            SimTime::from_secs(5),
            FaultKind::Partition { a: EU, b: US },
        );
        let q2 = q.clone();
        sim.block_on({
            let sim = sim.clone();
            async move {
                let mut sub = q2.subscribe(US).unwrap();
                let id = q2.publish(EU, Bytes::from_static(b"m")).await.unwrap();
                q2.wait_visible(EU, id).await.unwrap();
                sim.sleep_until(SimTime::from_secs(10)).await;
                assert!(!q2.is_visible(US, id), "dropped delivery never retried");
                let report = q2.repair_sweep().await;
                assert_eq!(report.backfilled, 1);
                assert!(q2.is_visible(US, id));
                // The back-fill fanned out to the subscriber like a normal
                // delivery.
                let got = sub.recv().await.unwrap();
                assert_eq!(got.id, id);
                assert_eq!(got.payload, Bytes::from_static(b"m"));
            }
        });
        assert!(q.converged());
    }
}

//! Calibrated latency/replication profiles for the eight stores.
//!
//! Absolute numbers on the authors' AWS/GCP testbed are not reproducible
//! here; these profiles are calibrated so the *relative* behaviour matches
//! the paper: Table 1's inconsistency matrix, Fig 6's delay-sweep curves,
//! and Fig 7's consistency windows. Sources for the shapes:
//!
//! - S3 cross-region replication is slow and heavy-tailed (§7.4: barrier
//!   waits ≈ 18 s on average; Fig 6: ≈ 20 % of objects still unreplicated
//!   after 50 s; AWS documents up to 15 minutes);
//! - MySQL (Aurora global database) replicates "within 1 second" (§7.4);
//! - DynamoDB global tables are comparable to MySQL for item data;
//! - Redis (ElastiCache global datastore) is fastest but jittery (Table 1:
//!   88 % vs SNS — i.e. it sometimes *beats* SNS delivery);
//! - SNS delivers notifications in 100s of milliseconds (Table 1 row ≈
//!   88–100 %);
//! - AMQ delivery ≈ 1 s (Table 1 row 7–13 % except S3);
//! - DynamoDB-as-notifier is much slower for this payload type (Table 1:
//!   ≈ 0 % row except S3 at 13 % — "less optimized replication for the
//!   notification's specific type of payload", §2.3);
//! - MongoDB replica-set replication is fast but degrades badly with WAN
//!   latency (§7.3 cites MongoDB replication-lag issues for the US→SG 34 %).

use antipode_sim::dist::Dist;

use crate::queue::QueueProfile;
use crate::replica::KvProfile;

/// MySQL / Aurora global database (post-storage role).
pub fn mysql() -> KvProfile {
    KvProfile {
        local_write: Dist::lognormal_ms(5.0, 0.3),
        local_read: Dist::lognormal_ms(1.2, 0.3),
        replication: Dist::LogNormal {
            median: 0.55,
            sigma: 0.35,
        },
        rtt_hops: 1.0,
        retry_interval: Dist::constant_ms(250.0),
    }
}

/// DynamoDB global tables (post-storage role).
pub fn dynamodb() -> KvProfile {
    KvProfile {
        local_write: Dist::lognormal_ms(4.0, 0.3),
        local_read: Dist::lognormal_ms(1.5, 0.3),
        replication: Dist::LogNormal {
            median: 0.6,
            sigma: 0.3,
        },
        rtt_hops: 1.0,
        retry_interval: Dist::constant_ms(250.0),
    }
}

/// Redis / ElastiCache global datastore: fastest replication, high jitter.
pub fn redis() -> KvProfile {
    KvProfile {
        local_write: Dist::lognormal_ms(0.4, 0.3),
        local_read: Dist::lognormal_ms(0.3, 0.3),
        replication: Dist::LogNormal {
            median: 0.35,
            sigma: 0.9,
        },
        rtt_hops: 1.0,
        retry_interval: Dist::constant_ms(100.0),
    }
}

/// S3 cross-region object replication: slow and heavy-tailed.
pub fn s3() -> KvProfile {
    KvProfile {
        local_write: Dist::lognormal_ms(30.0, 0.4), // ~1 MB object PUT
        local_read: Dist::lognormal_ms(18.0, 0.4),
        replication: Dist::LogNormal {
            median: 15.0,
            sigma: 1.1,
        },
        rtt_hops: 1.0,
        retry_interval: Dist::Constant(1.0),
    }
}

/// MongoDB replica set (DeathStarBench post-storage role) under a
/// well-provisioned WAN link (the paper's US→EU pair: ≈ 0.1 % violations —
/// oplog shipping beats the RabbitMQ fanout path almost always).
pub fn mongodb() -> KvProfile {
    KvProfile {
        local_write: Dist::lognormal_ms(2.0, 0.3),
        local_read: Dist::lognormal_ms(0.8, 0.3),
        replication: Dist::lognormal_ms(25.0, 0.3),
        rtt_hops: 1.0,
        retry_interval: Dist::constant_ms(100.0),
    }
}

/// MongoDB replica set on a stressed WAN link (the paper's US→SG pair:
/// ≈ 34 % violations with a 42 % standard deviation — oplog application
/// falls behind under high RTT, producing a bimodal lag). The social-network
/// experiment models the *time-correlated* version of this via congestion
/// episodes ([`crate::replica::KvStore::set_extra_replication_lag`]); this
/// profile is the stationary equivalent.
pub fn mongodb_wan_stressed() -> KvProfile {
    KvProfile {
        replication: Dist::Mix(vec![
            (0.70, Dist::lognormal_ms(25.0, 0.3)),
            (
                0.30,
                Dist::LogNormal {
                    median: 0.25,
                    sigma: 0.8,
                },
            ),
        ]),
        ..mongodb()
    }
}

/// SNS pub/sub delivery (notifier role): fast fanout, occasionally jittery.
pub fn sns() -> QueueProfile {
    QueueProfile {
        local_publish: Dist::lognormal_ms(2.0, 0.3),
        delivery: Dist::LogNormal {
            median: 0.08,
            sigma: 0.8,
        },
        local_delivery: Dist::lognormal_ms(3.0, 0.3),
        rtt_hops: 1.0,
    }
}

/// Amazon MQ broker with cross-region forwarding (notifier role).
pub fn amq() -> QueueProfile {
    QueueProfile {
        local_publish: Dist::lognormal_ms(3.0, 0.3),
        delivery: Dist::LogNormal {
            median: 1.0,
            sigma: 0.25,
        },
        local_delivery: Dist::lognormal_ms(4.0, 0.3),
        rtt_hops: 1.0,
    }
}

/// DynamoDB used as the notifier (item write + streams poll at the reader):
/// slow for this payload type, so posts usually replicate first (Table 1).
pub fn dynamodb_stream() -> QueueProfile {
    QueueProfile {
        local_publish: Dist::lognormal_ms(4.0, 0.3),
        delivery: Dist::LogNormal {
            median: 85.0,
            sigma: 0.9,
        },
        local_delivery: Dist::lognormal_ms(5.0, 0.3),
        rtt_hops: 1.0,
    }
}

/// RabbitMQ with federation (DeathStarBench's write-home-timeline queue):
/// one WAN hop plus federation forwarding and consumer prefetch batching.
pub fn rabbitmq() -> QueueProfile {
    QueueProfile {
        local_publish: Dist::lognormal_ms(1.0, 0.3),
        delivery: Dist::lognormal_ms(60.0, 0.15),
        local_delivery: Dist::lognormal_ms(1.5, 0.3),
        rtt_hops: 1.0,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antipode_sim::rng::rng_from_seed;

    fn mean_secs(d: &Dist, n: usize) -> f64 {
        let mut rng = rng_from_seed(42);
        (0..n).map(|_| d.sample(&mut rng).max(0.0)).sum::<f64>() / n as f64
    }

    #[test]
    fn replication_speed_ordering_matches_table_1() {
        // redis < mysql ≈ dynamodb << s3 (Table 1 + §7.4).
        let redis = mean_secs(&redis().replication, 20_000);
        let mysql = mean_secs(&mysql().replication, 20_000);
        let dynamo = mean_secs(&dynamodb().replication, 20_000);
        let s3 = mean_secs(&s3().replication, 20_000);
        assert!(redis < mysql, "redis {redis} < mysql {mysql}");
        assert!(
            (mysql - dynamo).abs() < 0.3,
            "mysql {mysql} ≈ dynamo {dynamo}"
        );
        assert!(s3 > 10.0 * mysql, "s3 {s3} must dwarf mysql {mysql}");
    }

    #[test]
    fn notifier_speed_ordering_matches_table_1() {
        // sns << amq << dynamodb_stream.
        let sns = mean_secs(&sns().delivery, 20_000);
        let amq = mean_secs(&amq().delivery, 20_000);
        let ddb = mean_secs(&dynamodb_stream().delivery, 20_000);
        assert!(sns < 0.3, "sns mean {sns}");
        assert!(amq > 3.0 * sns, "amq {amq} >> sns {sns}");
        assert!(ddb > 10.0 * amq, "ddb-stream {ddb} >> amq {amq}");
    }

    #[test]
    fn s3_mean_and_tail_match_paper_shape() {
        // §7.4: barrier waits on S3 ≈ 18 s on average (we land in the same
        // ballpark); Fig 6: a nontrivial fraction still unreplicated at 50 s.
        let d = s3().replication;
        let mean = mean_secs(&d, 50_000);
        assert!((10.0..40.0).contains(&mean), "s3 mean {mean}");
        let mut rng = rng_from_seed(7);
        let over50 = (0..50_000).filter(|_| d.sample(&mut rng) > 50.0).count() as f64 / 50_000.0;
        assert!((0.05..0.3).contains(&over50), "s3 P(>50s) {over50}");
    }

    #[test]
    fn stressed_mongodb_has_heavy_tail() {
        let fast = mean_secs(&mongodb().replication, 20_000);
        let slow = mean_secs(&mongodb_wan_stressed().replication, 20_000);
        assert!(slow > 3.0 * fast, "stressed {slow} >> fast {fast}");
    }
}

//! The recovery plane of the replication engine: write-ahead logs,
//! crash-restart, hinted handoff, and waiter hygiene.
//!
//! Three mechanisms, all driven off the simulation's [`FaultPlan`] by one
//! per-store monitor task (spawned in [`Engine::new`], parked on the plan's
//! change notifier between window edges — no polling). Because the monitor
//! is generic over the engine's [`Substrate`], *both* store families get it:
//! KV stores and queue brokers recover identically.
//!
//! - **Crash-restart** ([`antipode_sim::fault::FaultKind::ReplicaCrash`]):
//!   on window entry the replica's volatile state (memtable, visibility
//!   waiters, in-flight sends it originated, hints it queued) is lost; on the
//!   heal edge the replica restarts and deterministically replays its
//!   write-ahead log. With the WAL disabled the replica restarts empty and
//!   relies entirely on anti-entropy repair ([`crate::repair`]).
//! - **Hinted handoff**: a send suppressed by a partition, outage, stall,
//!   pause, or crashed destination parks as a [`Hint`] at its origin; the
//!   monitor flushes hints the moment the fault plan says the path is
//!   healthy again. Origin-crash drops that origin's queued hints — exactly
//!   the writes anti-entropy repair exists to back-fill.
//! - **Waiter hygiene**: visibility waiters subscribed at a replica that
//!   goes dark are cancelled with [`StoreError::Unavailable`] (instead of
//!   leaking forever). The KV family surfaces the cancellation so barrier
//!   retry policies re-arm; the queue family silently resubscribes (queue
//!   waits never error on faults).
//!
//! Everything is deterministic: the monitor wakes only at scheduled window
//! edges and imperative plan changes, hint queues preserve push order, and
//! WAL replay is a pure fold over the log.

use std::collections::BTreeMap;
use std::rc::Rc;

use antipode_sim::fault::FaultPlan;
use antipode_sim::{timeout, Region, SimTime};
use bytes::Bytes;

use crate::engine::{Engine, Record};
use crate::substrate::{StoreError, Substrate};

/// Per-store recovery knobs. Defaults model a production store: durable WAL
/// and hinted handoff both on. [`RecoveryConfig::disabled`] is the ablation
/// in which suppressed sends are dropped outright and a crashed replica
/// restarts empty — the configuration the convergence-under-chaos property
/// tests demonstrate to be *not* eventually consistent.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RecoveryConfig {
    /// Queue suppressed sends as hints and flush them when the path heals.
    /// Off: suppressed sends are silently dropped.
    pub hinted_handoff: bool,
    /// Append every apply to a per-replica write-ahead log and replay it at
    /// crash-restart. Off: a crash loses the replica's entire dataset.
    pub wal: bool,
}

impl Default for RecoveryConfig {
    fn default() -> Self {
        RecoveryConfig {
            hinted_handoff: true,
            wal: true,
        }
    }
}

impl RecoveryConfig {
    /// No WAL, no handoff: the no-recovery ablation.
    pub fn disabled() -> Self {
        RecoveryConfig {
            hinted_handoff: false,
            wal: false,
        }
    }
}

/// One durable write-ahead-log record: an apply that changed the memtable.
/// The key is a shared `Rc<str>` — one allocation per commit, refcount
/// bumps everywhere else (WAL, index, memtable, hints, batch entries).
#[derive(Clone, Debug)]
pub struct WalEntry {
    /// The written key.
    pub key: Rc<str>,
    /// The version applied.
    pub version: u64,
    /// The stored bytes.
    pub bytes: Bytes,
    /// When the apply originally became visible (preserved across replay so
    /// post-restart timestamps keep their happens-before ordering).
    pub visible_at: SimTime,
    /// When the write committed at its origin (preserved so replayed queue
    /// messages keep their publish timestamps).
    pub committed_at: SimTime,
}

/// A send parked at its origin because a fault suppressed the path to
/// `dest`; flushed when the fault plan says the path is healthy.
#[derive(Clone, Debug)]
pub struct Hint {
    /// The region that committed the write (where the hint is stored).
    pub origin: Region,
    /// The replica the send was addressed to.
    pub dest: Region,
    /// The written key.
    pub key: Rc<str>,
    /// The version to apply.
    pub version: u64,
    /// The stored bytes.
    pub bytes: Bytes,
    /// When the write committed at its origin.
    pub committed_at: SimTime,
}

/// Spawns the store's recovery monitor: one task that wakes at every fault
/// transition (and imperative change) to run crash/restart edges, cancel
/// waiters of dark replicas, and flush healed hints. Parks without a timer
/// when the plan has no future transitions, so simulations still quiesce.
pub(crate) fn spawn_monitor<S: Substrate>(engine: &Engine<S>) {
    let engine = engine.clone();
    let sim = engine.sim().clone();
    let faults: FaultPlan = engine.faults().clone();
    let mut dark: BTreeMap<Region, bool> = BTreeMap::new();
    let mut crashed: BTreeMap<Region, bool> = BTreeMap::new();
    for &r in engine.regions() {
        dark.insert(r, false);
        crashed.insert(r, false);
    }
    sim.clone().spawn(async move {
        loop {
            let notified = faults.on_change();
            let now = sim.now();
            engine.recovery_tick(now, &mut dark, &mut crashed);
            match faults.next_transition_after(now) {
                Some(t) => {
                    let _ = timeout(&sim, t.since(now), notified).await;
                }
                None => notified.await,
            }
        }
    });
}

impl<S: Substrate> Engine<S> {
    /// One monitor pass at `now`: process crash/restart and dark/lit edges
    /// per replica, then flush any hints whose paths healed.
    fn recovery_tick(
        &self,
        now: SimTime,
        dark: &mut BTreeMap<Region, bool>,
        crashed: &mut BTreeMap<Region, bool>,
    ) {
        let regions = self.regions().to_vec();
        for region in regions {
            let is_crashed = self
                .inner
                .faults
                .replica_crashed(now, &self.inner.name, region);
            let is_dark = is_crashed
                || self.inner.substrate.op_blocked(
                    &self.inner.faults,
                    now,
                    &self.inner.name,
                    region,
                );
            let was_crashed = crashed.insert(region, is_crashed).unwrap_or(false);
            let was_dark = dark.insert(region, is_dark).unwrap_or(false);
            if is_crashed && !was_crashed {
                self.crash_replica(region);
            }
            if !is_crashed && was_crashed {
                self.restart_replica(region);
            }
            if is_dark && !was_dark {
                self.cancel_waiters(region);
            }
        }
        self.flush_hints(now);
    }

    /// Crash entry: volatile state dies with the process. The memtable is
    /// wiped (the WAL, being durable, survives), pending visibility waiters
    /// are cancelled, hints queued at this origin are lost, and the epoch
    /// bump aborts in-flight sends this replica originated.
    fn crash_replica(&self, region: Region) {
        let cancelled = {
            let mut replicas = self.inner.replicas.borrow_mut();
            let Some(state) = replicas.get_mut(&region) else {
                return;
            };
            state.data.clear();
            state.epoch += 1;
            std::mem::take(&mut state.waiters)
        };
        for w in cancelled {
            let _ = w.tx.send(Err(StoreError::Unavailable {
                store: self.inner.name.clone(),
                region,
            }));
        }
        self.inner.hints.borrow_mut().retain(|h| h.origin != region);
    }

    /// Restart at the heal edge: deterministically replay the write-ahead
    /// log into the fresh memtable (a no-op fold when the WAL is disabled —
    /// the replica restarts empty and waits for anti-entropy repair).
    /// Replay restores state without invoking the substrate's apply
    /// reaction: observers were already notified by the original applies.
    /// Waiters the replay satisfies *are* woken — queue waiters resubscribe
    /// during the crash window, and for a publish that was durably logged
    /// but never delivered (its in-flight sends died with the origin), the
    /// replayed record is the only apply they will ever see.
    fn restart_replica(&self, region: Region) {
        let woken = {
            let mut replicas = self.inner.replicas.borrow_mut();
            let Some(state) = replicas.get_mut(&region) else {
                return;
            };
            for entry in &state.wal {
                let newer_exists = state
                    .data
                    .get(&entry.key)
                    .map(|v| v.version >= entry.version)
                    .unwrap_or(false);
                if !newer_exists {
                    state.data.insert(
                        Rc::clone(&entry.key),
                        Record {
                            version: entry.version,
                            bytes: entry.bytes.clone(),
                            visible_at: entry.visible_at,
                            committed_at: entry.committed_at,
                        },
                    );
                }
            }
            let mut woken = Vec::new();
            let mut i = 0;
            while i < state.waiters.len() {
                let satisfied = state
                    .data
                    .get(&state.waiters[i].key)
                    .map(|v| v.version >= state.waiters[i].version)
                    .unwrap_or(false);
                if satisfied {
                    // lint: allow(scheduler-bypass, replaying the WAL completes store
                    // visibility waiters — bookkeeping, not a run-next decision)
                    woken.push(state.waiters.swap_remove(i).tx);
                } else {
                    i += 1;
                }
            }
            woken
        };
        for tx in woken {
            let _ = tx.send(Ok(()));
        }
    }

    /// Cancels every visibility waiter at a replica that went dark. KV
    /// subscribers surface [`StoreError::Unavailable`]; queue subscribers
    /// silently resubscribe (see [`Engine::wait_visible`]).
    fn cancel_waiters(&self, region: Region) {
        let cancelled = {
            let mut replicas = self.inner.replicas.borrow_mut();
            match replicas.get_mut(&region) {
                Some(state) => std::mem::take(&mut state.waiters),
                None => return,
            }
        };
        for w in cancelled {
            let _ = w.tx.send(Err(StoreError::Unavailable {
                store: self.inner.name.clone(),
                region,
            }));
        }
    }

    /// Flushes every queued hint whose origin→dest path is healthy at `now`,
    /// in queue order. Hints whose paths are still faulted stay queued.
    fn flush_hints(&self, now: SimTime) {
        if self.inner.hints.borrow().is_empty() {
            return;
        }
        let ready: Vec<Hint> = {
            let mut hints = self.inner.hints.borrow_mut();
            let mut ready = Vec::new();
            hints.retain(|h| {
                let suppressed = self.inner.substrate.send_suppressed(
                    &self.inner.faults,
                    now,
                    &self.inner.name,
                    h.origin,
                    h.dest,
                ) || self.inner.faults.replica_crashed(
                    now,
                    &self.inner.name,
                    h.dest,
                ) || self.inner.faults.replica_crashed(
                    now,
                    &self.inner.name,
                    h.origin,
                );
                if suppressed {
                    true
                } else {
                    ready.push(h.clone());
                    false
                }
            });
            ready
        };
        for h in ready {
            self.apply(h.dest, &h.key, h.version, h.bytes, h.committed_at);
        }
    }

    /// Number of queued hinted-handoff entries (diagnostics).
    pub(crate) fn pending_hints(&self) -> usize {
        self.inner.hints.borrow().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use antipode_sim::dist::Dist;
    use antipode_sim::fault::FaultKind;
    use antipode_sim::net::regions::{EU, SG, US};
    use antipode_sim::net::Network;
    use antipode_sim::{Sim, SimTime};

    use crate::replica::{KvProfile, KvStore};

    fn fast_profile() -> KvProfile {
        KvProfile {
            local_write: Dist::constant_ms(1.0),
            local_read: Dist::constant_ms(0.5),
            replication: Dist::constant_ms(100.0),
            rtt_hops: 1.0,
            retry_interval: Dist::constant_ms(50.0),
        }
    }

    fn setup(seed: u64) -> (Sim, KvStore) {
        let sim = Sim::new(seed);
        let net = Rc::new(Network::global_triangle());
        let store = KvStore::new(&sim, net, "db", &[EU, US, SG], fast_profile());
        (sim, store)
    }

    #[test]
    fn crash_wipes_volatile_state_and_wal_replay_restores_it() {
        let (sim, store) = setup(11);
        let s = store.clone();
        sim.block_on(async move {
            let v = s.put(US, "k", Bytes::from_static(b"x")).await.unwrap();
            assert!(s.is_visible(US, "k", v));
            assert_eq!(s.wal_len(US), 1);
            v
        });
        sim.faults().schedule(
            SimTime::from_secs(5),
            SimTime::from_secs(8),
            FaultKind::ReplicaCrash {
                store: "db".into(),
                region: US,
            },
        );
        // Mid-window: the memtable is gone, operations are rejected.
        sim.run_until(SimTime::from_secs(6));
        assert!(store.get_sync(US, "k").is_none(), "crash wipes volatile");
        let s = store.clone();
        sim.block_on(async move {
            assert!(matches!(
                s.put(US, "k2", Bytes::new()).await.unwrap_err(),
                StoreError::Unavailable { .. }
            ));
        });
        // Post-restart: WAL replay restored the data at the heal edge.
        sim.run_until(SimTime::from_secs(9));
        let got = store.get_sync(US, "k").expect("WAL replay restores");
        assert_eq!(got.bytes, Bytes::from_static(b"x"));
    }

    #[test]
    fn crash_without_wal_restarts_empty() {
        let (sim, store) = setup(12);
        store.set_recovery(RecoveryConfig {
            wal: false,
            ..RecoveryConfig::default()
        });
        let s = store.clone();
        sim.block_on(async move {
            s.put(US, "k", Bytes::from_static(b"x")).await.unwrap();
        });
        assert_eq!(store.wal_len(US), 0);
        sim.faults().schedule(
            SimTime::from_secs(5),
            SimTime::from_secs(8),
            FaultKind::ReplicaCrash {
                store: "db".into(),
                region: US,
            },
        );
        sim.run_until(SimTime::from_secs(9));
        assert!(
            store.get_sync(US, "k").is_none(),
            "no WAL: the replica restarts empty until repair back-fills it"
        );
    }

    #[test]
    fn suppressed_sends_queue_hints_and_flush_at_heal() {
        let (sim, store) = setup(13);
        sim.faults().schedule(
            SimTime::ZERO,
            SimTime::from_secs(20),
            FaultKind::Partition { a: EU, b: US },
        );
        let s = store.clone();
        sim.block_on(async move {
            let v = s.put(EU, "k", Bytes::from_static(b"x")).await.unwrap();
            // SG applies directly; the EU→US send parks as a hint.
            s.wait_visible(SG, "k", v).await.unwrap();
            assert_eq!(s.pending_hints(), 1);
            assert!(!s.is_visible(US, "k", v));
            s.wait_visible(US, "k", v).await.unwrap();
            assert!(s.engine.sim().now() >= SimTime::from_secs(20));
            assert_eq!(s.pending_hints(), 0);
        });
    }

    #[test]
    fn disabled_handoff_drops_suppressed_sends() {
        let (sim, store) = setup(14);
        store.set_recovery(RecoveryConfig::disabled());
        sim.faults().schedule(
            SimTime::ZERO,
            SimTime::from_secs(5),
            FaultKind::Partition { a: EU, b: US },
        );
        let s = store.clone();
        let v = sim.block_on(async move {
            let v = s.put(EU, "k", Bytes::from_static(b"x")).await.unwrap();
            s.wait_visible(SG, "k", v).await.unwrap();
            v
        });
        assert_eq!(store.pending_hints(), 0, "no hint without handoff");
        // Even long after the partition heals the write never reaches US:
        // nothing retries a dropped send.
        sim.run_until(SimTime::from_secs(60));
        assert!(!store.is_visible(US, "k", v));
    }

    #[test]
    fn origin_crash_drops_queued_hints() {
        let (sim, store) = setup(15);
        // EU→US partitioned, so the EU write parks a hint at EU…
        sim.faults().schedule(
            SimTime::ZERO,
            SimTime::from_secs(30),
            FaultKind::Partition { a: EU, b: US },
        );
        // …then the EU replica crash-restarts while the hint is queued.
        sim.faults().schedule(
            SimTime::from_secs(5),
            SimTime::from_secs(10),
            FaultKind::ReplicaCrash {
                store: "db".into(),
                region: EU,
            },
        );
        let s = store.clone();
        let v = sim.block_on(async move {
            let v = s.put(EU, "k", Bytes::from_static(b"x")).await.unwrap();
            s.wait_visible(SG, "k", v).await.unwrap();
            assert_eq!(s.pending_hints(), 1);
            v
        });
        sim.run_until(SimTime::from_secs(60));
        assert_eq!(store.pending_hints(), 0, "crash lost the hint queue");
        // The hint died with the EU process; without anti-entropy the US
        // replica never converges (the repair module closes this gap).
        assert!(!store.is_visible(US, "k", v));
        // EU itself recovered its copy from the WAL.
        assert!(store.is_visible(EU, "k", v));
    }

    #[test]
    fn waiters_in_dark_region_are_cancelled_not_leaked() {
        let (sim, store) = setup(16);
        // Subscribe a waiter at US for a write that will never arrive before
        // the outage, then let the outage start.
        sim.faults().schedule(
            SimTime::from_secs(2),
            SimTime::from_secs(6),
            FaultKind::RegionOutage { region: US },
        );
        let s = store.clone();
        let outcome: Rc<std::cell::RefCell<Option<Result<(), StoreError>>>> =
            Rc::new(std::cell::RefCell::new(None));
        let slot = outcome.clone();
        sim.spawn(async move {
            let res = s.wait_visible(US, "never-written", 1).await;
            *slot.borrow_mut() = Some(res);
        });
        sim.run_until(SimTime::from_secs(1));
        assert_eq!(store.waiter_count(US), 1, "waiter subscribed pre-outage");
        sim.run_until(SimTime::from_secs(3));
        // Regression (waiter leak): outage entry must cancel the waiter, not
        // strand it past the window.
        assert_eq!(store.waiter_count(US), 0, "outage entry drains waiters");
        match outcome.borrow().clone() {
            Some(Err(StoreError::Unavailable { region, .. })) => assert_eq!(region, US),
            other => panic!("waiter should surface Unavailable, got {other:?}"),
        }
        // Re-armed waits after the heal succeed normally.
        let s = store.clone();
        sim.block_on({
            let sim = sim.clone();
            async move {
                sim.sleep_until(SimTime::from_secs(6)).await;
                let v = s.put(EU, "k", Bytes::new()).await.unwrap();
                s.wait_visible(US, "k", v).await.unwrap();
            }
        });
        assert_eq!(store.waiter_count(US), 0, "satisfied waiters drain too");
    }

    #[test]
    fn recovery_monitor_does_not_prevent_quiescence() {
        // A store with no faults: sim.run() must terminate even though the
        // monitor task is parked (it holds no timer while the plan is empty).
        let (sim, store) = setup(17);
        let s = store.clone();
        sim.spawn(async move {
            s.put(EU, "k", Bytes::new()).await.unwrap();
        });
        sim.run();
        assert!(store.is_visible(US, "k", 1));
        assert!(store.is_visible(SG, "k", 1));
    }
}
